"""Content-keyed compile cache shared by the sweep runner, DSE and benchmarks.

Mapping, simulation and codegen artifacts are memoised under the stable
digests of :mod:`repro.compiler.fingerprint`, so a repeated sweep or DSE
run skips STEP1-6 (and the downstream cost aggregation) entirely on a
hit.  Two layers:

* an in-process **memory** table, always on;
* an optional **disk** layer (pickles under ``<dir>/<kind>/<digest>.pkl``)
  shared between worker processes and across CLI invocations, enabled by
  passing a directory or setting ``REPRO_CACHE_DIR``.

Invalidation rules: the digest bakes in the compiler version, so
changing the compiler, the network topology, or any preset field makes
old entries unreachable automatically; :meth:`CompileCache.clear` (and
``repro sweep --clear-cache`` / ``bench.clear_caches``) drops both
layers explicitly, and ``--no-cache`` bypasses the cache for one run.

Cache activity is observable: every hit/miss bumps a ``cache`` group
counter on the active telemetry handle (``<kind>_hits`` /
``<kind>_misses``) and the per-process :attr:`CompileCache.stats` table.
"""

from __future__ import annotations

import os
import pickle
from pathlib import Path
from threading import Lock
from typing import Callable, Dict, Optional, Tuple, TypeVar, Union

# repro.sim must start loading before repro.compiler: the compiler
# package pulls in the engine-facing codegen, which resolves through the
# already-in-progress sim package (same ordering dse relies on).
from repro.sim.perf import DEFAULT_MINIBATCH, PerfResult, simulate

from repro.arch.node import NodeConfig
from repro.compiler.fingerprint import compile_digest
from repro.compiler.mapping import WorkloadMapping
from repro.dnn.network import Network
from repro.faults.model import FaultMask, FaultSpec, sample_faults
from repro.telemetry.core import get_telemetry

T = TypeVar("T")

#: Environment variable naming the default on-disk cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: On-disk entry format version.  Entries are ``{"version", "kind",
#: "digest", "artifact"}`` dicts; anything else (truncated pickle, a
#: pre-versioning bare artifact, a future format) is treated as corrupt:
#: counted, evicted and rebuilt — never raised to the caller.
DISK_FORMAT_VERSION = 2


class CompileCache:
    """Keyed artifact store: memory table plus optional pickle directory."""

    def __init__(self, directory: Union[str, Path, None] = None) -> None:
        self.directory = (
            Path(directory).expanduser() if directory else None
        )
        self._memory: Dict[Tuple[str, str], object] = {}
        self._lock = Lock()
        #: ``{"<kind>_hits": n, "<kind>_misses": n}`` for this process.
        self.stats: Dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._memory)

    def _bump(self, kind: str, outcome: str) -> None:
        name = f"{kind}_{outcome}"
        self.stats[name] = self.stats.get(name, 0) + 1
        tel = get_telemetry()
        if tel.enabled:
            tel.count("cache", name)

    def _disk_path(self, kind: str, digest: str) -> Optional[Path]:
        if self.directory is None:
            return None
        return self.directory / kind / f"{digest}.pkl"

    def _evict_corrupt(self, kind: str, path: Path) -> None:
        """A disk entry failed validation: count it, delete it, and let
        the caller rebuild through the normal miss path."""
        self.stats["corrupt"] = self.stats.get("corrupt", 0) + 1
        tel = get_telemetry()
        if tel.enabled:
            tel.count("cache", "corrupt")
        try:
            path.unlink()
        except OSError:
            pass

    def _disk_load(self, kind: str, digest: str) -> Optional[object]:
        path = self._disk_path(kind, digest)
        if path is None or not path.exists():
            return None
        try:
            with path.open("rb") as handle:
                entry = pickle.load(handle)
        except Exception:
            # Truncated or garbled pickle.
            self._evict_corrupt(kind, path)
            return None
        if (
            not isinstance(entry, dict)
            or entry.get("version") != DISK_FORMAT_VERSION
            or entry.get("kind") != kind
            or entry.get("digest") != digest
            or "artifact" not in entry
        ):
            # Stale format, or an entry that does not match its own
            # file name (bit rot, a bad copy): self-invalidate.
            self._evict_corrupt(kind, path)
            return None
        return entry["artifact"]

    def _disk_store(self, kind: str, digest: str, artifact: object) -> None:
        path = self._disk_path(kind, digest)
        if path is None:
            return
        entry = {
            "version": DISK_FORMAT_VERSION,
            "kind": kind,
            "digest": digest,
            "artifact": artifact,
        }
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            # Atomic publish: parallel writers race benignly (same
            # digest -> same content), partial writes never surface.
            tmp = path.with_suffix(f".tmp.{os.getpid()}")
            with tmp.open("wb") as handle:
                pickle.dump(entry, handle)
            tmp.replace(path)
        except Exception:
            pass  # unpicklable or unwritable: memory layer still serves

    # ------------------------------------------------------------------
    def get(self, kind: str, digest: str, build: Callable[[], T]) -> T:
        """The artifact under ``(kind, digest)``, building it on a miss."""
        key = (kind, digest)
        with self._lock:
            if key in self._memory:
                self._bump(kind, "hits")
                return self._memory[key]  # type: ignore[return-value]
        artifact = self._disk_load(kind, digest)
        if artifact is not None:
            with self._lock:
                self._memory[key] = artifact
            self._bump(kind, "hits")
            return artifact  # type: ignore[return-value]
        self._bump(kind, "misses")
        artifact = build()
        self.put(kind, digest, artifact)
        return artifact

    def put(self, kind: str, digest: str, artifact: object) -> None:
        """Install an artifact (used by the sweep runner to warm the
        parent cache with results computed in worker processes)."""
        with self._lock:
            self._memory[(kind, digest)] = artifact
        self._disk_store(kind, digest, artifact)

    def clear(self) -> int:
        """Drop every memory entry and delete the disk entries; returns
        the number of entries removed."""
        with self._lock:
            removed = len(self._memory)
            self._memory.clear()
        if self.directory is not None and self.directory.exists():
            for path in self.directory.glob("*/*.pkl"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed


# ---------------------------------------------------------------------------
# Process-global default cache
# ---------------------------------------------------------------------------
_default: Optional[CompileCache] = None


def get_cache() -> CompileCache:
    """The process-global cache (disk-backed iff ``REPRO_CACHE_DIR`` is
    set or :func:`set_cache` installed a directory-backed one)."""
    global _default
    if _default is None:
        _default = CompileCache(os.environ.get(CACHE_DIR_ENV) or None)
    return _default


def set_cache(cache: Optional[CompileCache]) -> Optional[CompileCache]:
    """Install ``cache`` globally (None resets to a fresh default);
    returns the previous handle so callers can restore it."""
    global _default
    previous = _default
    _default = cache
    return previous


def clear_cache() -> int:
    """Clear the process-global cache (memory and disk layers)."""
    return get_cache().clear()


# ---------------------------------------------------------------------------
# Cached compile/simulate entry points
# ---------------------------------------------------------------------------
def _fault_extra(faults: Optional[FaultSpec]) -> dict:
    """Digest payload for a fault spec (empty when fault-free, so
    historical fault-free digests keep their shape)."""
    return {"faults": faults} if faults is not None else {}


def cached_mapping(
    net: Network,
    node: NodeConfig,
    cache: Optional[CompileCache] = None,
    faults: Optional[FaultSpec] = None,
) -> WorkloadMapping:
    """STEP1-6 mapping of ``net`` on ``node``, content-cached.

    ``faults`` is a declarative :class:`FaultSpec`: sampling is a pure
    function of (spec, node), so the spec is the true content key and
    the mask is re-sampled only on a miss.
    """
    cache = cache if cache is not None else get_cache()
    digest = compile_digest(
        net, node, artifact="mapping", **_fault_extra(faults)
    )

    def build() -> WorkloadMapping:
        from repro.compiler.pipeline import compile_network

        mask: Optional[FaultMask] = (
            sample_faults(faults, node) if faults is not None else None
        )
        return compile_network(net, node, faults=mask).mapping

    return cache.get("mapping", digest, build)


def simulation_digest(
    net: Network,
    node: NodeConfig,
    minibatch: int = DEFAULT_MINIBATCH,
    faults: Optional[FaultSpec] = None,
    system: Optional["SystemConfig"] = None,
) -> str:
    """Digest keying a full simulation result.

    ``system`` stays ``None`` on the single-node path so those digests
    are untouched by the scale-out axes; sweep rows with ``--nodes`` or
    ``--strategy`` set key under their full system fingerprint.
    """
    return compile_digest(
        net, node, artifact="simulation", minibatch=minibatch,
        system=system, **_fault_extra(faults),
    )


def cached_simulation(
    net: Network,
    node: NodeConfig,
    minibatch: int = DEFAULT_MINIBATCH,
    cache: Optional[CompileCache] = None,
    faults: Optional[FaultSpec] = None,
    system: Optional["SystemConfig"] = None,
) -> PerfResult:
    """Full analytical simulation, content-cached (the mapping inside a
    freshly-built result comes from the same cache).

    The cached artifact is always the *per-node* :class:`PerfResult`;
    ``system`` only namespaces the digest so multi-node sweep rows get
    their own cache entries (the cheap scale-out overlay is recomputed
    by the caller)."""
    cache = cache if cache is not None else get_cache()
    digest = simulation_digest(net, node, minibatch, faults, system=system)
    return cache.get(
        "simulation",
        digest,
        lambda: simulate(
            net, node, minibatch,
            mapping=cached_mapping(net, node, cache, faults=faults),
        ),
    )


def cached_forward_codegen(
    net: Network,
    seed: int = 0,
    chip=None,
    rows: int = 2,
    cache: Optional[CompileCache] = None,
    fuse: bool = True,
):
    """Engine codegen (compiled forward pass), content-cached.

    The reference model's weights are a pure function of the topology
    and ``seed``, so the digest — (topology, chip, rows, seed, fuse
    flag, compiler version) — covers everything the generated programs,
    fusion plans and preloads depend on.
    """
    from repro.arch.presets import conv_chip
    from repro.compiler.codegen import compile_forward
    from repro.functional.reference import ReferenceModel

    cache = cache if cache is not None else get_cache()
    chip = chip if chip is not None else conv_chip()
    digest = compile_digest(
        net, None, artifact="codegen", seed=seed, chip=chip, rows=rows,
        fuse=bool(fuse),
    )
    return cache.get(
        "codegen",
        digest,
        lambda: compile_forward(
            net, ReferenceModel(net, seed=seed), chip, rows, fuse=fuse
        ),
    )


def cached_dag_forward_codegen(
    net: Network,
    seed: int = 0,
    rows: int = 2,
    cache: Optional[CompileCache] = None,
    fuse: bool = True,
):
    """DAG-scheduled engine codegen, content-cached.

    Same contract as :func:`cached_forward_codegen` but through the
    DAG scheduler (:func:`repro.compiler.codegen_dag.compile_dag_forward`)
    — the path the validation harness runs, which also covers networks
    the linear schedule deadlocks on (e.g. LeNet-5's connection-table
    conv).
    """
    from repro.compiler.codegen_dag import compile_dag_forward
    from repro.functional.reference import ReferenceModel

    cache = cache if cache is not None else get_cache()
    digest = compile_digest(
        net, None, artifact="codegen_dag", seed=seed, rows=rows,
        fuse=bool(fuse),
    )
    return cache.get(
        "codegen",
        digest,
        lambda: compile_dag_forward(
            net, ReferenceModel(net, seed=seed), rows=rows, fuse=fuse
        ),
    )
