"""Sweep subsystem: parallel batch evaluation with compile caching.

``run_sweep`` fans (network x chip-preset x minibatch) jobs across
worker processes; :mod:`repro.sweep.cache` memoises mapping / simulation
/ codegen artifacts under content digests so repeated sweeps and DSE
runs skip STEP1-6 entirely.
"""

from repro.sweep.cache import (
    CACHE_DIR_ENV,
    CompileCache,
    cached_forward_codegen,
    cached_mapping,
    cached_simulation,
    clear_cache,
    get_cache,
    set_cache,
    simulation_digest,
)
from repro.sweep.runner import (
    SweepJob,
    SweepReport,
    SweepResult,
    expand_jobs,
    fan_out,
    run_sweep,
)

__all__ = [
    "CACHE_DIR_ENV",
    "CompileCache",
    "SweepJob",
    "SweepReport",
    "SweepResult",
    "cached_forward_codegen",
    "cached_mapping",
    "cached_simulation",
    "clear_cache",
    "expand_jobs",
    "fan_out",
    "get_cache",
    "run_sweep",
    "set_cache",
    "simulation_digest",
]
