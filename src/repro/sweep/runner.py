"""Parallel sweep runner: (network x chip-preset x minibatch) fan-out.

Jobs are picklable value objects, workers are plain processes
(``concurrent.futures.ProcessPoolExecutor``), and every job routes
through the content-keyed compile cache (:mod:`repro.sweep.cache`), so:

* ``workers=1`` runs serially in-process (and is the graceful fallback
  when a pool cannot be created in a restricted environment);
* results are **bit-identical** regardless of worker count — jobs are
  independent, the simulator is deterministic, and results return in
  job order;
* a warm rerun answers every job from the cache without touching
  STEP1-6 (observable through the ``cache`` telemetry counters);
* each job's telemetry (mapping decisions, stage spans, counters) is
  captured in the worker and replayed into the caller's active handle,
  plus one ``sweep.job`` span per job, so ``trace``/``profile``-style
  exporters work on sweep runs.
"""

from __future__ import annotations

import sys
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from functools import partial
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from repro.arch.presets import load_preset
from repro.arch.system import ParallelismStrategy, make_system
from repro.dnn import zoo
from repro.errors import ReproError, SweepError
from repro.faults.model import FaultSpec, sample_faults
from repro.sim.perf import (
    DEFAULT_MINIBATCH,
    PerfResult,
    simulate,
    simulate_system,
)
from repro.sim.tco import tco_report
from repro.sweep.cache import (
    CompileCache,
    cached_simulation,
    get_cache,
    set_cache,
    simulation_digest,
)
from repro.telemetry.core import capture, get_telemetry


@dataclass(frozen=True)
class SweepJob:
    """One evaluation: a zoo network on a chip preset at a minibatch,
    optionally on a fault-degraded machine, optionally scaled out to a
    multi-node system under a parallelism strategy."""

    network: str  # canonical zoo name
    preset: str  # key into repro.arch.presets.PRESETS
    minibatch: int = DEFAULT_MINIBATCH
    faults: Optional[FaultSpec] = None
    nodes: int = 1  # system node count
    strategy: str = "data"  # ParallelismStrategy.parse token

    @property
    def label(self) -> str:
        base = f"{self.network}/{self.preset}/mb{self.minibatch}"
        if self.faults is not None:
            base += f"/fault{self.faults.rate:g}s{self.faults.seed}"
        if self.nodes != 1 or self.strategy != "data":
            base += f"/n{self.nodes}/{self.strategy}"
        return base


@dataclass(frozen=True)
class SweepResult:
    """The exported row for one job (deterministic fields only — wall
    times and cache outcomes live in telemetry, not in results, so
    parallel and serial runs export byte-identical files).

    A job that crashed is quarantined as a row with ``status="failed"``
    and the trimmed traceback in ``error`` (numeric fields zeroed); the
    sweep itself always completes unless ``fail_fast`` is set.
    """

    network: str
    preset: str
    minibatch: int
    digest: str  # simulation content digest (cache key)
    train_images_per_s: float
    eval_images_per_s: float
    pe_utilization: float
    achieved_tflops: float
    gflops_per_watt: float
    total_power_w: float
    conv_columns_per_copy: int
    copies: int
    bottleneck: str
    bound_by: str
    cache_hit: bool  # informational; excluded from exported rows
    status: str = "ok"  # "ok" | "failed"
    error: str = ""  # traceback string for failed rows
    # --- scale-out overlay (per-node fields above stay untouched) ---
    nodes: int = 1
    strategy: str = "data/ring"  # canonical ParallelismStrategy token
    system_train_images_per_s: float = 0.0
    system_eval_images_per_s: float = 0.0
    scaling_efficiency: float = 0.0
    system_power_w: float = 0.0
    dollars_per_training_run: float = 0.0
    dollars_per_1m_inferences: float = 0.0

    #: Exported column order (shared by the JSON and CSV writers).
    EXPORT_FIELDS = (
        "network", "preset", "minibatch", "digest",
        "train_images_per_s", "eval_images_per_s", "pe_utilization",
        "achieved_tflops", "gflops_per_watt", "total_power_w",
        "conv_columns_per_copy", "copies", "bottleneck", "bound_by",
        "nodes", "strategy", "system_train_images_per_s",
        "system_eval_images_per_s", "scaling_efficiency",
        "system_power_w", "dollars_per_training_run",
        "dollars_per_1m_inferences",
        "status", "error",
    )

    @property
    def failed(self) -> bool:
        return self.status != "ok"

    def to_row(self) -> Dict[str, object]:
        """The deterministic export payload for this job."""
        return {name: getattr(self, name) for name in self.EXPORT_FIELDS}


@dataclass
class SweepReport:
    """Results plus run-level bookkeeping for one sweep invocation."""

    results: Tuple[SweepResult, ...]
    workers: int
    elapsed_s: float
    cache_stats: Dict[str, int]  # aggregated hit/miss deltas

    @property
    def cache_hits(self) -> int:
        return sum(n for k, n in self.cache_stats.items()
                   if k.endswith("_hits"))

    @property
    def cache_misses(self) -> int:
        return sum(n for k, n in self.cache_stats.items()
                   if k.endswith("_misses"))

    @property
    def failures(self) -> Tuple[SweepResult, ...]:
        return tuple(r for r in self.results if r.failed)

    def describe(self) -> str:
        failed = len(self.failures)
        suffix = f", {failed} job(s) FAILED" if failed else ""
        return (
            f"{len(self.results)} jobs on {self.workers} worker"
            f"{'s' if self.workers != 1 else ''} in {self.elapsed_s:.2f}s "
            f"(cache: {self.cache_hits} hits / "
            f"{self.cache_misses} misses){suffix}"
        )


def expand_jobs(
    networks: Optional[Sequence[str]] = None,
    presets: Sequence[str] = ("sp",),
    minibatches: Optional[Sequence[int]] = None,
    faults: Optional[FaultSpec] = None,
    nodes: Sequence[int] = (1,),
    strategies: Sequence[str] = ("data",),
) -> List[SweepJob]:
    """The (network x preset x minibatch x nodes x strategy) job grid,
    in deterministic order.  ``networks`` defaults to the Fig 15 zoo
    and ``minibatches`` to the paper's 256; names resolve
    case-insensitively with zoo aliases, presets and strategies eagerly
    (unknown names raise before any work starts).  ``faults`` applies
    one fault spec to every job (the mask itself still differs per
    preset — sampling depends on the node)."""
    names = [
        zoo.resolve(n) for n in (networks or list(zoo.BENCHMARKS))
    ]
    minibatches = minibatches or (DEFAULT_MINIBATCH,)
    for preset in presets:
        load_preset(preset)  # validate eagerly
    for count in nodes:
        if count < 1:
            raise SweepError(f"node count must be >= 1, got {count}")
    for strategy in strategies:
        ParallelismStrategy.parse(strategy)  # validate eagerly
    return [
        SweepJob(
            network=n, preset=p, minibatch=m, faults=faults,
            nodes=count, strategy=strategy,
        )
        for n in names
        for p in presets
        for m in minibatches
        for count in nodes
        for strategy in strategies
    ]


# ---------------------------------------------------------------------------
# The per-job unit of work (module-level: must pickle for the pool)
# ---------------------------------------------------------------------------
def _execute_job(
    job: SweepJob,
    use_cache: bool = True,
    cache_dir: Optional[str] = None,
) -> Tuple[SweepResult, PerfResult, Dict[str, int], tuple, tuple, object]:
    """Run one job; returns the result row, the full simulation (to warm
    the parent's cache), the cache hit/miss delta, and the telemetry the
    job emitted (events + counter rows + the metrics registry) for
    replay in the parent."""
    net = zoo.load(job.network)
    node = load_preset(job.preset)
    system = make_system(node, job.nodes, job.strategy)
    # Default-shaped jobs keep the single-node digest: the scale-out
    # axes only namespace the cache when they are actually in play.
    digest_system = (
        system if (job.nodes > 1 or job.strategy != "data") else None
    )

    cache: Optional[CompileCache] = None
    if use_cache:
        cache = get_cache()
        if cache_dir is not None and str(cache.directory or "") != cache_dir:
            cache = CompileCache(cache_dir)
            set_cache(cache)
    before = dict(cache.stats) if cache is not None else {}

    with capture() as tel:
        job_started = time.perf_counter()
        if cache is not None:
            perf = cached_simulation(
                net, node, job.minibatch, cache, faults=job.faults,
                system=digest_system,
            )
        else:
            mask = (
                sample_faults(job.faults, node)
                if job.faults is not None else None
            )
            perf = simulate(net, node, job.minibatch, faults=mask)
        sysres = simulate_system(
            net, system, minibatch=job.minibatch, node_result=perf
        )
        tco = tco_report(sysres)
        job_elapsed = time.perf_counter() - job_started
        # Deterministic job metrics feed `repro stats`; wall-clock
        # measurements go to `wall.*` groups, which snapshots and
        # baseline comparisons exclude (see telemetry.metrics).
        tel.observe(
            "sweep.job_cycles", "bottleneck", perf.bottleneck.cycles
        )
        tel.observe("wall.sweep", "job_s", job_elapsed)

    delta: Dict[str, int] = {}
    if cache is not None:
        delta = {
            k: v - before.get(k, 0)
            for k, v in cache.stats.items()
            if v != before.get(k, 0)
        }
        hit = delta.get("simulation_hits", 0) > 0
        tel.observe(
            "wall.cache", "hit_s" if hit else "miss_s", job_elapsed
        )

    bottleneck = perf.bottleneck
    row = SweepResult(
        network=job.network,
        preset=job.preset,
        minibatch=job.minibatch,
        digest=simulation_digest(
            net, node, job.minibatch, job.faults, system=digest_system
        ),
        train_images_per_s=perf.training_images_per_s,
        eval_images_per_s=perf.evaluation_images_per_s,
        pe_utilization=perf.pe_utilization,
        achieved_tflops=perf.achieved_tflops,
        gflops_per_watt=perf.gflops_per_watt,
        total_power_w=perf.average_power.total_w,
        conv_columns_per_copy=perf.mapping.conv_columns_per_copy,
        copies=perf.mapping.copies,
        bottleneck=f"{bottleneck.unit}/{bottleneck.step.value}",
        bound_by=bottleneck.cost.bound_by,
        cache_hit=delta.get("simulation_hits", 0) > 0,
        nodes=job.nodes,
        strategy=sysres.strategy,
        system_train_images_per_s=sysres.system_training_images_per_s,
        system_eval_images_per_s=sysres.system_evaluation_images_per_s,
        scaling_efficiency=sysres.scaling_efficiency,
        system_power_w=sysres.system_power_w,
        dollars_per_training_run=tco.dollars_per_training_run,
        dollars_per_1m_inferences=tco.dollars_per_1m_inferences,
    )
    return (
        row, perf, delta, tuple(tel.events), tuple(tel.counters.rows()),
        tel.metrics,
    )


def _format_failure(exc: BaseException) -> str:
    """A traceback string trimmed to the frames at/below
    :func:`_execute_job`, so serial and pooled runs (whose outer call
    stacks differ) quarantine a poison job with byte-identical text."""
    frames = traceback.extract_tb(exc.__traceback__)
    for index, frame in enumerate(frames):
        if frame.name == "_execute_job":
            frames = frames[index:]
            break
    lines = ["Traceback (most recent call last):\n"]
    lines += traceback.format_list(frames)
    lines += traceback.format_exception_only(type(exc), exc)
    return "".join(lines).rstrip()


def _failed_result(job: SweepJob, error: str) -> SweepResult:
    """The quarantine row for a job whose execution raised."""
    return SweepResult(
        network=job.network,
        preset=job.preset,
        minibatch=job.minibatch,
        digest="",
        train_images_per_s=0.0,
        eval_images_per_s=0.0,
        pe_utilization=0.0,
        achieved_tflops=0.0,
        gflops_per_watt=0.0,
        total_power_w=0.0,
        conv_columns_per_copy=0,
        copies=0,
        bottleneck="",
        bound_by="",
        cache_hit=False,
        status="failed",
        error=error,
        nodes=job.nodes,
        strategy=job.strategy,
        system_train_images_per_s=0.0,
        system_eval_images_per_s=0.0,
        scaling_efficiency=0.0,
        system_power_w=0.0,
        dollars_per_training_run=0.0,
        dollars_per_1m_inferences=0.0,
    )


def _run_job(
    job: SweepJob,
    use_cache: bool = True,
    cache_dir: Optional[str] = None,
    retries: int = 1,
    backoff: float = 0.1,
    sleep: Callable[[float], None] = time.sleep,
) -> Tuple[
    SweepResult, Optional[PerfResult], Dict[str, int], tuple, tuple, object
]:
    """Execute one job with retry + quarantine (runs in the worker, so
    the pool never sees an exception and a poison job cannot abort the
    sweep).  Unexpected crashes get ``retries`` re-attempts with
    exponential backoff; a **typed** failure (:class:`ReproError` — e.g.
    an unmappable network or a bad config) is deterministic and fails
    identically every attempt, so it is quarantined immediately without
    retrying or sleeping.  A job still failing is returned as a
    ``status="failed"`` row carrying its traceback.  ``sleep`` is
    injectable so robustness tests don't wall-sleep."""
    attempt = 0
    while True:
        try:
            return _execute_job(job, use_cache=use_cache,
                                cache_dir=cache_dir)
        except ReproError as exc:
            # Deterministic domain failure: retrying burns wall-clock
            # for an identical outcome.  Fail fast.
            return (
                _failed_result(job, _format_failure(exc)),
                None, {}, (), (), None,
            )
        except Exception as exc:
            if attempt < retries:
                sleep(backoff * (2 ** attempt))
                attempt += 1
                continue
            return (
                _failed_result(job, _format_failure(exc)),
                None, {}, (), (), None,
            )


_T = TypeVar("_T")
_R = TypeVar("_R")


def fan_out(
    fn: Callable[[_T], _R],
    items: Sequence[_T],
    workers: int = 1,
) -> List[_R]:
    """Order-preserving parallel map with graceful serial fallback.

    The unit of parallelism shared by the sweep runner and the serve
    curve sweep: ``fn`` and every item must be picklable; ``workers=1``
    (or a single item) runs serially in-process, and a pool that cannot
    start (sandboxed environments) falls back to serial with a warning
    rather than failing the run.  Results return in item order, so
    callers producing deterministic outputs stay deterministic at any
    worker count.
    """
    items = list(items)
    pool_size = min(workers, len(items)) if items else 1
    if pool_size > 1:
        try:
            with ProcessPoolExecutor(max_workers=pool_size) as pool:
                return list(pool.map(fn, items))
        except (OSError, BrokenProcessPool) as exc:
            print(
                f"repro: worker pool unavailable ({exc}); "
                "falling back to serial execution",
                file=sys.stderr,
            )
    return [fn(item) for item in items]


def run_sweep(
    jobs: Iterable[SweepJob],
    workers: int = 1,
    use_cache: bool = True,
    cache_dir: Optional[str] = None,
    retries: int = 1,
    backoff: float = 0.1,
    fail_fast: bool = False,
    sleep: Callable[[float], None] = time.sleep,
) -> SweepReport:
    """Evaluate ``jobs`` across ``workers`` processes.

    ``workers=1`` (or a single job) runs serially in-process; a pool
    that cannot start (sandboxed environments) falls back to serial with
    a warning rather than failing the sweep.  ``cache_dir`` installs a
    disk-backed cache for this process and every worker.

    A job crashing with an *unexpected* exception is retried ``retries``
    times with exponential backoff (``sleep`` is injectable for tests)
    and then quarantined as a ``status="failed"`` row — the other jobs
    always complete.  Typed :class:`ReproError` failures are
    deterministic and quarantine immediately without retrying.
    ``fail_fast=True`` opts out: the sweep raises :class:`SweepError`
    on the first failed job instead.
    """
    jobs = list(jobs)
    if use_cache and cache_dir is not None:
        current = get_cache()
        if str(current.directory or "") != cache_dir:
            set_cache(CompileCache(cache_dir))

    run = partial(_run_job, use_cache=use_cache, cache_dir=cache_dir,
                  retries=retries, backoff=backoff, sleep=sleep)
    started = time.perf_counter()
    outputs = fan_out(run, jobs, workers=workers)
    elapsed = time.perf_counter() - started

    tel = get_telemetry()
    cache = get_cache() if use_cache else None
    results: List[SweepResult] = []
    totals: Dict[str, int] = {}
    offset = 0.0
    for job, (row, perf, delta, events, counter_rows, job_metrics) in zip(
        jobs, outputs
    ):
        results.append(row)
        if row.failed and fail_fast:
            raise SweepError(
                f"sweep aborted (fail-fast): job {job.label} failed:\n"
                f"{row.error}"
            )
        for key, value in delta.items():
            totals[key] = totals.get(key, 0) + value
        if cache is not None and perf is not None:
            # Warm the parent's cache with worker-computed results so a
            # rerun hits even when this run fanned out to processes.
            cache.put("simulation", row.digest, perf)
        if tel.enabled:
            tel.span(
                job.label, "sweep.job", ("sweep", job.preset),
                offset, 1.0,
                network=job.network, preset=job.preset,
                minibatch=job.minibatch, digest=row.digest,
                cache_hit=row.cache_hit, status=row.status,
            )
            offset += 1.0
            tel.count("sweep", "jobs")
            if row.failed:
                tel.count("sweep", "failed_jobs")
            else:
                tel.count(
                    "sweep",
                    "cache_hits" if row.cache_hit else "cache_misses",
                )
            for event in events:
                tel.events.append(event)
            for group, name, value in counter_rows:
                if group == "cache":
                    tel.count(group, name, value)
                else:
                    tel.record(group, name, value)
            if job_metrics is not None:
                # Replayed in job order, so the merged registry is
                # bit-identical regardless of worker count.
                tel.metrics.merge(job_metrics)
    if tel.enabled:
        tel.record("sweep", "elapsed_s", elapsed)
        tel.record("sweep", "workers", workers)

    return SweepReport(
        results=tuple(results),
        workers=workers,
        elapsed_s=elapsed,
        cache_stats=totals,
    )
