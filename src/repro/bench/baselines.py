"""Regression baselines: persisted metric snapshots with tolerance bands.

A **snapshot** is the deterministic metric state of one ``repro stats``
run — gauges and histogram summaries (counts, means, p50/p90/p95/p99)
plus headline attribution shares — keyed by the compiler fingerprint
digest of everything that produced it (network topology, node config,
compiler/IR versions, minibatch).  A **baseline file** stores one
snapshot per digest, so one checked-in file can gate several
configurations, and a digest change (a deliberate compiler change)
surfaces as "no baseline entry" rather than a spurious diff.

:func:`compare_snapshots` diffs a current snapshot against a baseline
with per-metric tolerance **bands**: each band names a glob pattern
over ``group/name/field`` paths, a relative tolerance, and a direction
(whether larger values are regressions, smaller are, or both).  The
``repro stats --compare`` verb exits 2 when any metric degrades beyond
its band — the CI regression gate.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ConfigError

#: Bump when the snapshot layout changes incompatibly.
SNAPSHOT_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class Band:
    """Tolerance band for one family of metrics.

    ``direction`` says which drift is a regression: ``"higher"`` (more
    is worse — cycle counts, stall shares), ``"lower"`` (less is worse —
    throughput, utilization), or ``"both"``.  Drift within
    ``rel_tol`` (relative) or ``abs_tol`` (absolute) is tolerated.
    """

    rel_tol: float = 0.01
    abs_tol: float = 1e-9
    direction: str = "both"  # "higher" | "lower" | "both"

    def allows(self, baseline: float, current: float) -> bool:
        delta = current - baseline
        if self.direction == "higher" and delta <= 0:
            return True
        if self.direction == "lower" and delta >= 0:
            return True
        return abs(delta) <= max(self.abs_tol, self.rel_tol * abs(baseline))

    def describe(self) -> str:
        return f"±{self.rel_tol:.1%} ({self.direction}-is-worse)"


#: Default per-metric tolerance bands, first match wins (patterns match
#: the ``group/name/field`` path of each scalar).  Counts are exact:
#: an instruction-count or stage-count drift is a compiler change and
#: must be re-baselined deliberately.
DEFAULT_BANDS: Tuple[Tuple[str, Band], ...] = (
    ("*/count", Band(rel_tol=0.0, abs_tol=0.0, direction="both")),
    ("*images_per_s*", Band(rel_tol=0.01, direction="lower")),
    ("*utilization*", Band(rel_tol=0.01, direction="lower")),
    ("*util*", Band(rel_tol=0.01, direction="lower")),
    ("*cycles*", Band(rel_tol=0.01, direction="higher")),
    ("*bytes*", Band(rel_tol=0.01, direction="higher")),
    ("*", Band(rel_tol=0.01, direction="both")),
)


def band_for(
    path: str, bands: Sequence[Tuple[str, Band]] = DEFAULT_BANDS
) -> Band:
    """The first band whose pattern matches ``path`` (always matches:
    the default table ends with ``*``)."""
    for pattern, band in bands:
        if fnmatchcase(path, pattern):
            return band
    return Band()


def _scalar_paths(snapshot_metrics: Dict) -> Dict[str, float]:
    """Flatten ``{group: {name: entry}}`` into ``group/name/field``
    scalars (gauges contribute one ``value`` field, histograms their
    whole summary)."""
    flat: Dict[str, float] = {}
    for group in sorted(snapshot_metrics):
        for name in sorted(snapshot_metrics[group]):
            entry = snapshot_metrics[group][name]
            for key in sorted(entry):
                if key == "kind":
                    continue
                value = entry[key]
                if isinstance(value, (int, float)):
                    flat[f"{group}/{name}/{key}"] = float(value)
    return flat


@dataclass(frozen=True)
class MetricDelta:
    """One compared metric: baseline vs current against its band."""

    path: str  # group/name/field
    baseline: Optional[float]
    current: Optional[float]
    band: Band
    status: str  # "ok" | "regressed" | "new" | "missing"

    @property
    def regressed(self) -> bool:
        return self.status in ("regressed", "missing")

    def describe(self) -> str:
        def fmt(v: Optional[float]) -> str:
            return "-" if v is None else f"{v:,.4g}"

        return (
            f"{self.path}: baseline {fmt(self.baseline)} -> current "
            f"{fmt(self.current)} [{self.status}, band "
            f"{self.band.describe()}]"
        )


@dataclass
class BaselineComparison:
    """The diff of one snapshot against one baseline entry."""

    digest: str
    deltas: List[MetricDelta] = field(default_factory=list)

    @property
    def regressions(self) -> List[MetricDelta]:
        return [d for d in self.deltas if d.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def describe(self) -> str:
        compared = sum(1 for d in self.deltas if d.status != "new")
        head = (
            f"compared {compared} metric(s) against baseline "
            f"{self.digest[:12]}: "
        )
        if self.ok:
            return head + "no regressions"
        lines = [head + f"{len(self.regressions)} REGRESSION(S)"]
        lines += [f"  {d.describe()}" for d in self.regressions]
        return "\n".join(lines)


def compare_snapshots(
    current: Dict,
    baseline: Dict,
    bands: Sequence[Tuple[str, Band]] = DEFAULT_BANDS,
) -> BaselineComparison:
    """Diff two snapshots' ``metrics`` sections metric by metric.

    A metric present in the baseline but missing from the current run is
    a regression (coverage loss); a new metric is informational only.
    """
    base_flat = _scalar_paths(baseline.get("metrics", {}))
    cur_flat = _scalar_paths(current.get("metrics", {}))
    comparison = BaselineComparison(digest=baseline.get("fingerprint", ""))
    for path in sorted(set(base_flat) | set(cur_flat)):
        band = band_for(path, bands)
        if path not in cur_flat:
            comparison.deltas.append(
                MetricDelta(path, base_flat[path], None, band, "missing")
            )
            continue
        if path not in base_flat:
            comparison.deltas.append(
                MetricDelta(path, None, cur_flat[path], band, "new")
            )
            continue
        status = (
            "ok" if band.allows(base_flat[path], cur_flat[path])
            else "regressed"
        )
        comparison.deltas.append(
            MetricDelta(path, base_flat[path], cur_flat[path], band, status)
        )
    return comparison


# ---------------------------------------------------------------------------
# Baseline files: {digest: snapshot}, JSON on disk
# ---------------------------------------------------------------------------
def load_baseline_file(path: Union[str, Path]) -> Dict[str, Dict]:
    """Read a baseline file; returns the ``{digest: snapshot}`` map."""
    path = Path(path)
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigError(f"cannot read baseline file {path}: {exc}")
    if (
        not isinstance(document, dict)
        or document.get("schema") != SNAPSHOT_SCHEMA_VERSION
        or not isinstance(document.get("entries"), dict)
    ):
        raise ConfigError(
            f"baseline file {path} is not a schema-"
            f"{SNAPSHOT_SCHEMA_VERSION} baseline document"
        )
    return document["entries"]


def write_baseline_file(
    snapshot: Dict,
    path: Union[str, Path],
) -> Path:
    """Add/replace ``snapshot`` (keyed by its fingerprint digest) in the
    baseline file at ``path``, creating the file if needed.  Sorted keys
    and a trailing newline, so regenerating an unchanged baseline is a
    no-op diff."""
    digest = snapshot.get("fingerprint")
    if not digest:
        raise ConfigError("snapshot has no fingerprint digest")
    path = Path(path)
    entries: Dict[str, Dict] = {}
    if path.exists():
        entries = load_baseline_file(path)
    entries[digest] = snapshot
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(
            {"schema": SNAPSHOT_SCHEMA_VERSION, "entries": entries},
            handle, indent=2, sort_keys=True,
        )
        handle.write("\n")
    return path


def compare_to_baseline(
    snapshot: Dict,
    path: Union[str, Path],
    bands: Sequence[Tuple[str, Band]] = DEFAULT_BANDS,
) -> BaselineComparison:
    """Compare ``snapshot`` against the baseline entry with the same
    fingerprint digest in the file at ``path``.

    A missing entry is a :class:`ConfigError` — the digest names the
    compiler/config contract, so "no entry" means the baseline must be
    regenerated deliberately, not silently passed.
    """
    entries = load_baseline_file(path)
    digest = snapshot.get("fingerprint", "")
    if digest not in entries:
        known = ", ".join(d[:12] for d in sorted(entries)) or "none"
        raise ConfigError(
            f"no baseline entry for fingerprint {digest[:12]} in {path} "
            f"(entries: {known}); regenerate with --baseline"
        )
    return compare_snapshots(snapshot, entries[digest], bands)
