"""CSV export of the figure data for downstream plotting.

The benchmarks print tables; real consumers want machine-readable
series.  ``export_all`` regenerates every figure's data from the cached
simulations and writes one CSV per figure, so an external notebook can
plot the reproduction against the paper without re-running anything.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, List, Sequence, Union

from repro.baselines.gpu import GpuFramework, all_framework_rates
from repro.bench.runner import cached_mapping, cached_simulation, suite_results
from repro.dnn import zoo
from repro.dnn.analysis import evaluation_flops
from repro.sim.energy import energy_report
from repro.sim.perf import utilization_report


def _write(path: Path, header: Sequence[str], rows: List[Sequence]) -> Path:
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        writer.writerows(rows)
    return path


def export_fig01(directory: Path) -> Path:
    rows = [
        (name, evaluation_flops(zoo.load(name)) / 1e9)
        for name in zoo.BENCHMARKS
    ]
    return _write(
        directory / "fig01_flops_growth.csv",
        ["network", "gflops_per_evaluation"], rows,
    )


def export_fig16_17(directory: Path) -> List[Path]:
    paths = []
    for precision, stem in (("sp", "fig16_sp"), ("hp", "fig17_hp")):
        rows = []
        for name, result in suite_results(precision).items():
            rows.append((
                name,
                round(result.training_images_per_s, 1),
                round(result.evaluation_images_per_s, 1),
                round(result.pe_utilization, 4),
                result.mapping.conv_columns_per_copy,
            ))
        paths.append(_write(
            directory / f"{stem}_throughput.csv",
            ["network", "train_img_s", "eval_img_s", "pe_util",
             "columns"],
            rows,
        ))
    return paths


def export_fig18(directory: Path) -> Path:
    rows = []
    for name in ("AlexNet", "GoogLeNet", "OF-Acc", "VGG-A"):
        result = cached_simulation(name)
        cluster = (
            result.training_images_per_s
            / result.mapping.node.cluster_count
        )
        for fw, rate in all_framework_rates(zoo.load(name)).items():
            rows.append((name, fw.value, round(cluster / rate, 2)))
    return _write(
        directory / "fig18_gpu_speedup.csv",
        ["network", "framework", "speedup"], rows,
    )


def export_fig19(directory: Path) -> Path:
    rows = [
        (
            r.unit, r.columns, r.pes, round(r.ideal_pes, 1),
            round(r.column_peak_util, 3),
            round(r.feature_distribution, 3),
            round(r.array_residue, 3), round(r.achieved, 3),
        )
        for r in utilization_report(cached_mapping("AlexNet"))
    ]
    return _write(
        directory / "fig19_alexnet_utilization.csv",
        ["unit", "columns", "pes", "ideal_pes", "column_peak_util",
         "feature_distribution", "array_residue", "achieved"],
        rows,
    )


def export_fig20_21(directory: Path) -> List[Path]:
    power_rows, link_rows = [], []
    for name, result in suite_results("sp").items():
        p = result.average_power
        e = energy_report(result)
        power_rows.append((
            name, round(p.logic_w, 1), round(p.memory_w, 1),
            round(p.interconnect_w, 1), round(result.gflops_per_watt, 1),
            round(e.joules_per_training_image * 1e3, 2),
        ))
        link_rows.append(
            (name,) + tuple(
                round(v, 3)
                for v in result.link_utilization.as_dict().values()
            )
        )
    return [
        _write(
            directory / "fig20_power_efficiency.csv",
            ["network", "logic_w", "memory_w", "interconnect_w",
             "gflops_per_watt", "mj_per_training_image"],
            power_rows,
        ),
        _write(
            directory / "fig21_link_utilization.csv",
            ["network", "comp_mem", "mem_mem", "conv_ext", "fc_ext",
             "spoke", "arc", "ring"],
            link_rows,
        ),
    ]


def write_sweep_json(results: Sequence, path: Union[str, Path]) -> Path:
    """Write sweep results as a JSON list of row objects.

    Only the deterministic :meth:`SweepResult.to_row` payload is
    written, at full float precision, with sorted keys — so parallel
    and serial sweeps over the same jobs produce byte-identical files.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as handle:
        json.dump(
            [r.to_row() for r in results], handle,
            indent=2, sort_keys=True,
        )
        handle.write("\n")
    return path


def write_validation_json(report, path: Union[str, Path]) -> Path:
    """Write a :class:`~repro.sim.validation.ValidationReport` as the
    ``BENCH_validate.json`` artifact: the full differential table
    (per-network cycles, ratios, tolerance bands, output errors), the
    rank-agreement score, the gate verdict, and the fast-path speedup
    measurement.  Sorted keys; only the timing fields vary across
    reruns."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as handle:
        json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def write_serve_json(report, path: Union[str, Path]) -> Path:
    """Write a serving result — a
    :class:`~repro.serve.report.ServeReport` or a
    :class:`~repro.serve.curve.CurveReport` — as the ``BENCH_serve.json``
    (or, for failure-aware runs, ``BENCH_chaos.json``) artifact.  Full
    float precision, sorted keys: the serving loop *and* the fault
    lifecycle are seeded and wall-clock free, so reruns at the same
    seed produce byte-identical files (the CI serve and chaos smokes
    pin this with ``cmp``)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as handle:
        json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def write_serve_csv(report, path: Union[str, Path]) -> Path:
    """Write serving rows as CSV: per-(network, load-point) rows in
    :data:`~repro.serve.curve.CURVE_FIELDS` order for a curve, or the
    per-tenant rows of a single run (full float precision).  Both row
    shapes carry the per-outcome columns — completed/shed/timed_out/
    failed partition each tenant's offered count."""
    from repro.serve.curve import CURVE_FIELDS, CurveReport

    path = Path(path)
    rows = report.rows()
    if isinstance(report, CurveReport):
        fields: Sequence[str] = CURVE_FIELDS
    elif rows:
        fields = list(rows[0])
    else:
        fields = []
    return _write(path, fields, [[r[f] for f in fields] for r in rows])


def sweep_scaling_series(results: Sequence) -> Dict[tuple, List[dict]]:
    """Group sweep rows into scaling-curve series.

    Returns ``{(network, preset, strategy): [row dict, ...]}`` with
    each series sorted by (nodes, minibatch) — the shape the dashboard
    scaling panel plots (system throughput vs node count, one line per
    configuration).  Failed rows are dropped.
    """
    series: Dict[tuple, List[dict]] = {}
    for result in results:
        row = result.to_row()
        if row.get("status") != "ok":
            continue
        key = (row["network"], row["preset"], row["strategy"])
        series.setdefault(key, []).append(row)
    for rows in series.values():
        rows.sort(key=lambda r: (r["nodes"], r["minibatch"]))
    return series


def write_sweep_csv(results: Sequence, path: Union[str, Path]) -> Path:
    """Write sweep results as CSV in ``SweepResult.EXPORT_FIELDS`` order
    (full float precision via ``repr``, like the JSON writer)."""
    path = Path(path)
    if not results:
        return _write(path, [], [])
    fields = type(results[0]).EXPORT_FIELDS
    rows = [
        [row[name] for name in fields]
        for row in (r.to_row() for r in results)
    ]
    return _write(path, fields, rows)


def export_all(directory: Union[str, Path]) -> List[Path]:
    """Write every figure's data series as CSV; returns the paths."""
    directory = Path(directory)
    paths = [export_fig01(directory)]
    paths.extend(export_fig16_17(directory))
    paths.append(export_fig18(directory))
    paths.append(export_fig19(directory))
    paths.extend(export_fig20_21(directory))
    return paths
