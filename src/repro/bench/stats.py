"""One-shot performance statistics: both simulators, one report.

:func:`collect_stats` runs the analytical model (always) and the
functional engine (when the network is inside engine scope) under a
single telemetry capture, then derives everything ``repro stats``
prints or persists:

* percentile summaries of the captured metric distributions
  (instruction-class cycle costs, DMA transfer sizes, per-stage
  latencies),
* the stall-cause attribution of every tile group, joined with the
  roofline verdict of the layers it serves,
* a deterministic :meth:`StatsReport.snapshot` keyed by the compiler
  fingerprint digest — the unit of baseline comparison
  (:mod:`repro.bench.baselines`) and the input to the HTML dashboard
  (:mod:`repro.bench.dashboard`).

Everything here is deterministic: the capture contains no wall-clock
observations (those live in ``wall.``-prefixed volatile groups, which
:meth:`~repro.telemetry.metrics.MetricsRegistry.to_dict` excludes), so
two runs of the same network/node/minibatch produce bit-identical
snapshots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.arch.node import NodeConfig
from repro.compiler.fingerprint import compile_digest
from repro.dnn.network import Network
from repro.errors import ReproError
from repro.sim.perf import DEFAULT_MINIBATCH, PerfResult, simulate
from repro.sim.validation import ENGINE_WEIGHT_LIMIT
from repro.telemetry import (
    StallAttribution,
    TileGroupProfile,
    analytical_attribution,
    analytical_tile_profile,
    capture,
    engine_attribution,
    engine_tile_profile,
)
from repro.telemetry.metrics import MetricsRegistry


@dataclass
class StatsReport:
    """Everything one ``repro stats`` run measured."""

    network: str
    node: str
    minibatch: int
    #: Digest of the full compile contract — the baseline snapshot key.
    fingerprint: str
    result: PerfResult
    metrics: MetricsRegistry
    analytical_profile: List[TileGroupProfile] = field(default_factory=list)
    analytical_causes: List[StallAttribution] = field(default_factory=list)
    engine_profile: List[TileGroupProfile] = field(default_factory=list)
    engine_causes: List[StallAttribution] = field(default_factory=list)
    #: ``None`` when the engine ran; otherwise why it did not.
    engine_skipped: Optional[str] = None
    #: Set when the engine ran a rescaled proxy of the network.
    engine_note: Optional[str] = None
    #: Roofline scatter data: per-chip knee plus per-layer points
    #: (``{"layer", "chip", "bytes_per_flop", "attainable_fraction",
    #: "boundedness"}``), forward pass, FC weight traffic amortised by
    #: the mapping's FC batch.
    roofline_knees: Dict[str, float] = field(default_factory=dict)
    roofline_points: List[Dict] = field(default_factory=list)

    @property
    def engine_ran(self) -> bool:
        return self.engine_skipped is None

    def attributions(self) -> List[StallAttribution]:
        """Both simulators' rows, analytical first."""
        return list(self.analytical_causes) + list(self.engine_causes)

    def snapshot(self) -> Dict:
        """Deterministic dict for baselines and JSON export.

        Metric histograms collapse to their summaries (count/mean/
        percentiles); attribution rows collapse to per-cause shares.
        Volatile (wall-clock) groups are excluded, so the snapshot is
        bit-identical across reruns and sweep worker counts.
        """
        causes = {}
        for row in self.attributions():
            causes[f"{row.simulator}:{row.group}"] = {
                "chip": row.chip,
                "boundedness": row.boundedness,
                "dominant": row.dominant.value,
                "cycles": {
                    cause.value: row.cycles.get(cause, 0.0)
                    for cause in sorted(
                        row.cycles, key=lambda c: c.value
                    )
                },
            }
        return {
            "schema": 1,
            "network": self.network,
            "node": self.node,
            "minibatch": self.minibatch,
            "fingerprint": self.fingerprint,
            "engine_ran": self.engine_ran,
            "metrics": self.metrics.to_dict(),
            "attribution": causes,
            "headline": {
                "bottleneck_cycles": self.result.bottleneck.cycles,
                "train_images_per_s": self.result.training_images_per_s,
                "eval_images_per_s": self.result.evaluation_images_per_s,
                "pe_utilization": self.result.pe_utilization,
            },
        }


def _engine_forward(net: Network):
    """Compile and run one engine forward pass (mirrors the CLI helper:
    cached DAG codegen, fixed input seed, telemetry to the active
    handle)."""
    import numpy as np

    from repro.sweep.cache import cached_dag_forward_codegen

    compiled = cached_dag_forward_codegen(net, seed=0)
    shape = net.input.output_shape
    rng = np.random.default_rng(0)
    image = rng.normal(
        0, 1, (shape.count, shape.height, shape.width)
    ).astype(np.float32)
    return compiled.run(image)


def collect_stats(
    net: Network,
    node: NodeConfig,
    minibatch: int = DEFAULT_MINIBATCH,
) -> StatsReport:
    """Run both simulators under one capture and assemble the report."""
    from repro.dnn.zoo.engine_proxies import engine_scale

    engine_skipped: Optional[str] = None
    engine_note: Optional[str] = None
    run_net, engine_note = engine_scale(net, ENGINE_WEIGHT_LIMIT)
    with capture() as tel:
        result = simulate(net, node, minibatch)
        if run_net is not None:
            try:
                _engine_forward(run_net)
            except ReproError as exc:
                engine_skipped = (
                    f"engine scope excludes {run_net.name}: {exc}"
                )
        else:
            engine_skipped = engine_note
            engine_note = None
    report = StatsReport(
        network=net.name,
        node=node.describe(),
        minibatch=minibatch,
        fingerprint=compile_digest(
            net, node, artifact="stats", minibatch=minibatch
        ),
        result=result,
        metrics=tel.metrics,
        analytical_profile=analytical_tile_profile(result),
        analytical_causes=analytical_attribution(result),
        engine_skipped=engine_skipped,
        engine_note=engine_note,
    )
    if report.engine_ran:
        report.engine_profile = engine_tile_profile(tel)
        report.engine_causes = engine_attribution(tel)
    _attach_roofline(report, net, node)
    return report


def _attach_roofline(
    report: StatsReport, net: Network, node: NodeConfig
) -> None:
    """Place every weighted layer on its serving chip's roofline (conv
    layers on the conv chip at batch 1, FC layers on the FC chip with
    the mapping's weight-reuse batch)."""
    from repro.arch.roofline import chip_roofline, network_roofline

    mapping = report.result.mapping
    fc_members = {
        member
        for alloc in mapping.fc_allocations.values()
        for member in alloc.members
    }
    chips = (
        (node.cluster.conv_chip, 1),
        (node.cluster.fc_chip, max(1, mapping.fc_batch_size)),
    )
    for chip, batch in chips:
        roofline = chip_roofline(chip, node.frequency_hz)
        report.roofline_knees[roofline.name] = (
            roofline.balance_bytes_per_flop
        )
        for point in network_roofline(
            net, roofline, dtype_bytes=node.dtype_bytes,
            weight_reuse_batch=batch,
        ):
            if (point.layer in fc_members) != (
                chip is node.cluster.fc_chip
            ):
                continue
            report.roofline_points.append({
                "layer": point.layer,
                "chip": roofline.name,
                "bytes_per_flop": point.bytes_per_flop,
                "attainable_fraction": point.attainable_fraction,
                "boundedness": point.boundedness.value,
            })
