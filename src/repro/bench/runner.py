"""Cached simulation runs shared by the figure benchmarks.

Several figures consume the same per-network simulation, so the harness
memoises mapping and simulation results — but through the shared
content-keyed compile cache (:mod:`repro.sweep.cache`) rather than
per-function ``lru_cache`` tables.  Keying on the digest of (topology,
node config, compiler version) means logically-equal requests hit the
same entry regardless of spelling (``"alexnet"`` vs ``"AlexNet"``), a
changed preset can never serve a stale result, and CLI sweeps, DSE runs
and the figure benchmarks all warm one another.
"""

from __future__ import annotations

from typing import Dict

from repro.arch import half_precision_node, single_precision_node
from repro.arch.node import NodeConfig
from repro.compiler import WorkloadMapping
from repro.dnn import zoo
from repro.errors import ConfigError
from repro.sim import PerfResult
from repro.sweep.cache import (
    cached_mapping as _cached_mapping,
    cached_simulation as _cached_simulation,
    get_cache,
)


def _node(precision: str) -> NodeConfig:
    if precision == "sp":
        return single_precision_node()
    if precision == "hp":
        return half_precision_node()
    raise ConfigError(f"unknown precision {precision!r}")


def cached_mapping(name: str, precision: str = "sp") -> WorkloadMapping:
    """Memoised workload mapping for a benchmark network."""
    node = _node(precision)
    return _cached_mapping(zoo.load(name), node)


def cached_simulation(name: str, precision: str = "sp") -> PerfResult:
    """Memoised full simulation for a benchmark network."""
    node = _node(precision)
    return _cached_simulation(zoo.load(name), node)


def suite_results(precision: str = "sp") -> Dict[str, PerfResult]:
    """Simulation results for the whole Fig 15 suite, in paper order."""
    return {
        name: cached_simulation(name, precision) for name in zoo.BENCHMARKS
    }


def clear_caches() -> None:
    """Drop every memoised mapping/simulation result (the shared compile
    cache, both its memory and disk layers).

    Benchmark teardown calls this so repeated suite runs in one process
    measure cold caches rather than the previous run's warm results."""
    get_cache().clear()
