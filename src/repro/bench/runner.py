"""Cached simulation runs shared by the figure benchmarks.

Several figures consume the same per-network simulation, so the harness
memoises mapping and simulation results per (network, precision) pair —
each figure's pytest-benchmark then times its own aggregation while the
expensive substrate runs once per session.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict

from repro.arch import half_precision_node, single_precision_node
from repro.arch.node import NodeConfig
from repro.compiler import WorkloadMapping, map_network
from repro.dnn import zoo
from repro.dnn.network import Network
from repro.sim import PerfResult, simulate


@lru_cache(maxsize=None)
def _network(name: str) -> Network:
    return zoo.load(name)


@lru_cache(maxsize=None)
def _node(precision: str) -> NodeConfig:
    if precision == "sp":
        return single_precision_node()
    if precision == "hp":
        return half_precision_node()
    raise ValueError(f"unknown precision {precision!r}")


@lru_cache(maxsize=None)
def cached_mapping(name: str, precision: str = "sp") -> WorkloadMapping:
    """Memoised workload mapping for a benchmark network."""
    return map_network(_network(name), _node(precision))


@lru_cache(maxsize=None)
def cached_simulation(name: str, precision: str = "sp") -> PerfResult:
    """Memoised full simulation for a benchmark network."""
    return simulate(
        _network(name), _node(precision), mapping=cached_mapping(name, precision)
    )


def suite_results(precision: str = "sp") -> Dict[str, PerfResult]:
    """Simulation results for the whole Fig 15 suite, in paper order."""
    return {
        name: cached_simulation(name, precision) for name in zoo.BENCHMARKS
    }


def clear_caches() -> None:
    """Drop every memoised network/node/mapping/simulation result.

    Benchmark teardown calls this so repeated suite runs in one process
    measure cold caches rather than the previous run's warm results."""
    for memo in (_network, _node, cached_mapping, cached_simulation):
        memo.cache_clear()
