"""Small fixed-width table formatter for benchmark output.

The figure benchmarks print the same rows/series the paper reports;
this keeps their output uniform and legible in pytest's captured
sections.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.errors import ConfigError


def fmt_rate(value: float) -> str:
    """Format an images/s figure."""
    return f"{value:,.0f}"


def fmt_count(value: float, unit: str = "") -> str:
    """Format large counts with engineering suffixes."""
    for threshold, suffix in ((1e12, "T"), (1e9, "G"), (1e6, "M"), (1e3, "K")):
        if abs(value) >= threshold:
            return f"{value / threshold:.2f}{suffix}{unit}"
    return f"{value:.2f}{unit}"


class Table:
    """Accumulate rows, then render once with aligned columns."""

    def __init__(self, title: str, columns: Sequence[str]) -> None:
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[str]] = []

    def add(self, *cells: object) -> None:
        if len(cells) != len(self.columns):
            raise ConfigError(
                f"row has {len(cells)} cells, table has "
                f"{len(self.columns)} columns"
            )
        self.rows.append([str(c) for c in cells])

    def render(self) -> str:
        widths = [
            max(len(self.columns[i]), *(len(r[i]) for r in self.rows))
            if self.rows
            else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        lines = [self.title]
        header = "  ".join(
            c.ljust(w) for c, w in zip(self.columns, widths)
        )
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            lines.append(
                "  ".join(c.rjust(w) for c, w in zip(row, widths))
            )
        return "\n".join(lines)

    def show(self) -> None:
        print("\n" + self.render())
