"""Benchmark-harness support: cached suite simulation and table output."""

from repro.bench.runner import (
    cached_mapping,
    cached_simulation,
    clear_caches,
    suite_results,
)
from repro.bench.export import export_all, write_sweep_csv, write_sweep_json
from repro.bench.reporting import Table, fmt_count, fmt_rate

__all__ = [
    "Table",
    "cached_mapping",
    "cached_simulation",
    "clear_caches",
    "export_all",
    "fmt_count",
    "fmt_rate",
    "suite_results",
    "write_sweep_csv",
    "write_sweep_json",
]
