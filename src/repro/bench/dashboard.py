"""Self-contained HTML performance dashboard for ``repro stats``.

:func:`write_stats_html` renders a :class:`~repro.bench.stats.StatsReport`
as one HTML file with **no network access**: all CSS and the (small)
tooltip script are inline, charts are inline SVG/HTML, and every chart
has a table-view twin so no value is gated behind hover or color.

Layout:

* a KPI row (beat cycles, train/eval throughput, PE utilization),
* a per-tile-group **utilization heatmap** for each simulator
  (sequential blue ramp, light = idle, dark = busy),
* the **roofline scatter** (operational intensity vs attainable
  fraction, log-log, one series per chip, the chips' rooflines drawn),
* **cycle-attribution stacked bars** per tile group (five stall
  causes, categorical palette, per-row normalized),
* **percentile tables** of every captured metric distribution.

Palette and mark conventions follow the validated reference palette
(categorical slots 1-5, sequential blue ramp, hairline grid, 2px
surface gaps between stacked segments, dark mode via
``prefers-color-scheme``).
"""

from __future__ import annotations

import html
import json
import math
from pathlib import Path
from typing import Dict, List, Sequence, Tuple, Union

from repro.bench.stats import StatsReport
from repro.telemetry.metrics import VOLATILE_GROUP_PREFIX
from repro.telemetry.profile import StallCause, TileGroupProfile

#: Categorical slots 1-5 (light, dark) — validated adjacent-pairs in
#: both modes; the roofline scatter uses only the first two (all-pairs
#: safe through three).
SERIES = (
    ("#2a78d6", "#3987e5"),
    ("#eb6834", "#d95926"),
    ("#1baf7a", "#199e70"),
    ("#eda100", "#c98500"),
    ("#e87ba4", "#d55181"),
)

#: Sequential blue ramp, light -> dark (steps 100..700) — utilization.
SEQ_RAMP = (
    "#cde2fb", "#b7d3f6", "#9ec5f4", "#86b6ef", "#6da7ec", "#5598e7",
    "#3987e5", "#2a78d6", "#256abf", "#1c5cab", "#184f95", "#104281",
    "#0d366b",
)

#: Stall causes in display order, each bound to a categorical slot.
CAUSE_ORDER: Tuple[StallCause, ...] = (
    StallCause.COMPUTE,
    StallCause.DMA,
    StallCause.TRACKER,
    StallCause.LINK,
    StallCause.BEAT_IDLE,
)

_CSS = """
:root {
  color-scheme: light;
  --surface-1: #fcfcfb; --page: #f9f9f7;
  --ink-1: #0b0b0b; --ink-2: #52514e; --ink-3: #898781;
  --grid: #e1e0d9; --axis: #c3c2b7;
  --border: rgba(11,11,11,0.10);
  --s1: #2a78d6; --s2: #eb6834; --s3: #1baf7a;
  --s4: #eda100; --s5: #e87ba4;
}
@media (prefers-color-scheme: dark) {
  :root {
    color-scheme: dark;
    --surface-1: #1a1a19; --page: #0d0d0d;
    --ink-1: #ffffff; --ink-2: #c3c2b7; --ink-3: #898781;
    --grid: #2c2c2a; --axis: #383835;
    --border: rgba(255,255,255,0.10);
    --s1: #3987e5; --s2: #d95926; --s3: #199e70;
    --s4: #c98500; --s5: #d55181;
  }
}
* { box-sizing: border-box; }
body {
  margin: 0; padding: 24px; background: var(--page); color: var(--ink-1);
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
}
h1 { font-size: 20px; margin: 0 0 2px; }
h2 { font-size: 15px; margin: 0 0 10px; font-weight: 600; }
.sub { color: var(--ink-2); margin: 0 0 20px; }
.sub code { color: var(--ink-3); font-size: 12px; }
.card {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 16px 18px; margin: 0 0 16px;
}
.kpis { display: flex; flex-wrap: wrap; gap: 16px; margin: 0 0 16px; }
.kpis .card { flex: 1 1 160px; margin: 0; }
.kpi-label { color: var(--ink-2); font-size: 12px; }
.kpi-value { font-size: 26px; font-weight: 600; }
.kpi-unit { color: var(--ink-3); font-size: 12px; }
table { border-collapse: collapse; width: 100%; }
th, td {
  text-align: right; padding: 4px 10px;
  border-bottom: 1px solid var(--grid);
  font-variant-numeric: tabular-nums;
}
th { color: var(--ink-2); font-weight: 600; }
th:first-child, td:first-child { text-align: left; }
td:first-child { color: var(--ink-2); }
.legend {
  display: flex; flex-wrap: wrap; gap: 14px; margin: 0 0 10px;
  color: var(--ink-2); font-size: 12px; align-items: center;
}
.legend .key {
  display: inline-block; width: 10px; height: 10px;
  border-radius: 2px; margin-right: 5px; vertical-align: -1px;
}
.heatmap {
  display: flex; flex-wrap: wrap; gap: 6px; margin: 0 0 8px;
}
.cell { width: 64px; }
.cell .fill {
  height: 36px; border-radius: 4px; display: flex;
  align-items: center; justify-content: center;
  font-size: 11px; font-variant-numeric: tabular-nums;
}
.cell .name {
  color: var(--ink-3); font-size: 11px; margin-top: 2px;
  overflow: hidden; text-overflow: ellipsis; white-space: nowrap;
}
.ramp-key { display: flex; align-items: center; gap: 6px;
  color: var(--ink-3); font-size: 11px; }
.ramp-key .step { width: 18px; height: 8px; }
.bars .row { display: flex; align-items: center; margin: 0 0 6px; }
.bars .row-label {
  flex: 0 0 130px; color: var(--ink-2); font-size: 12px;
  overflow: hidden; text-overflow: ellipsis; white-space: nowrap;
  padding-right: 8px;
}
.bars .track { flex: 1; display: flex; gap: 2px; height: 16px; }
.bars .seg { height: 16px; }
.bars .seg:last-child { border-radius: 0 4px 4px 0; }
.muted { color: var(--ink-3); font-size: 12px; }
details > summary {
  cursor: pointer; color: var(--ink-2); font-size: 12px;
  margin: 8px 0 6px;
}
svg text {
  font: 11px system-ui, -apple-system, "Segoe UI", sans-serif;
  fill: var(--ink-3);
}
svg .series-label { fill: var(--ink-2); }
#tip {
  position: fixed; display: none; pointer-events: none; z-index: 10;
  background: var(--surface-1); color: var(--ink-1);
  border: 1px solid var(--border); border-radius: 6px;
  padding: 6px 9px; font-size: 12px; max-width: 340px;
  box-shadow: 0 2px 10px rgba(0,0,0,0.18);
}
"""

_JS = """
(function () {
  var tip = document.getElementById('tip');
  function show(e) {
    var text = e.currentTarget.getAttribute('data-tip');
    if (!text) return;
    tip.textContent = text;
    tip.style.display = 'block';
    move(e);
  }
  function move(e) {
    var x = (e.clientX || 0) + 12, y = (e.clientY || 0) + 12;
    var r = tip.getBoundingClientRect();
    if (x + r.width > window.innerWidth - 8) x -= r.width + 24;
    if (y + r.height > window.innerHeight - 8) y -= r.height + 24;
    tip.style.left = x + 'px';
    tip.style.top = y + 'px';
  }
  function hide() { tip.style.display = 'none'; }
  var marks = document.querySelectorAll('[data-tip]');
  for (var i = 0; i < marks.length; i++) {
    marks[i].addEventListener('mouseenter', show);
    marks[i].addEventListener('mousemove', move);
    marks[i].addEventListener('mouseleave', hide);
    marks[i].addEventListener('focus', function (e) {
      var r = e.currentTarget.getBoundingClientRect();
      show({currentTarget: e.currentTarget,
            clientX: r.right, clientY: r.bottom});
    });
    marks[i].addEventListener('blur', hide);
  }
})();
"""


def _esc(value) -> str:
    return html.escape(str(value), quote=True)


def _fmt(value: float, decimals: int = 0) -> str:
    if value != value or value in (float("inf"), float("-inf")):
        return "-"
    if decimals:
        return f"{value:,.{decimals}f}"
    if value and abs(value) < 1:
        return f"{value:.3g}"
    return f"{value:,.0f}"


def _util_color(utilization: float) -> Tuple[str, str]:
    """(fill, ink) for a utilization cell — sequential blue ramp, text
    color picked by the fill's depth so labels always clear contrast."""
    clamped = min(max(utilization, 0.0), 1.0)
    index = min(int(clamped * len(SEQ_RAMP)), len(SEQ_RAMP) - 1)
    ink = "#0b0b0b" if index < 6 else "#ffffff"
    return SEQ_RAMP[index], ink


# ---------------------------------------------------------------------------
# Sections
# ---------------------------------------------------------------------------
def _kpi_row(report: StatsReport) -> str:
    result = report.result
    tiles = (
        ("Pipeline beat", _fmt(result.bottleneck.cycles, 1), "cycles"),
        ("Training", _fmt(result.training_images_per_s), "img/s"),
        ("Evaluation", _fmt(result.evaluation_images_per_s), "img/s"),
        ("PE utilization", f"{result.pe_utilization:.2f}", "of peak"),
    )
    cards = "".join(
        f'<div class="card"><div class="kpi-label">{_esc(label)}</div>'
        f'<div class="kpi-value">{_esc(value)}</div>'
        f'<div class="kpi-unit">{_esc(unit)}</div></div>'
        for label, value, unit in tiles
    )
    return f'<div class="kpis">{cards}</div>'


def _heatmap(rows: Sequence[TileGroupProfile], title: str) -> str:
    if not rows:
        return ""
    cells = []
    for row in sorted(rows, key=lambda r: r.group):
        fill, ink = _util_color(row.utilization)
        tip = (
            f"{row.group} - utilization {row.utilization:.2f} "
            f"(busy {row.busy_cycles:,.0f}, blocked "
            f"{row.blocked_cycles:,.0f}, stalled "
            f"{row.stalled_cycles:,.0f} cycles)"
        )
        cells.append(
            f'<div class="cell"><div class="fill" tabindex="0" '
            f'style="background:{fill};color:{ink}" '
            f'data-tip="{_esc(tip)}">{row.utilization:.2f}</div>'
            f'<div class="name">{_esc(row.group)}</div></div>'
        )
    ramp = "".join(
        f'<span class="step" style="background:{step}"></span>'
        for step in SEQ_RAMP[::3]
    )
    table = _profile_table(rows)
    return (
        f'<div class="card"><h2>{_esc(title)}</h2>'
        f'<div class="heatmap">{"".join(cells)}</div>'
        f'<div class="ramp-key"><span>idle 0.0</span>{ramp}'
        f"<span>busy 1.0</span></div>"
        f"<details><summary>Table view</summary>{table}</details></div>"
    )


def _profile_table(rows: Sequence[TileGroupProfile]) -> str:
    body = "".join(
        f"<tr><td>{_esc(r.group)}</td><td>{r.tiles}</td>"
        f"<td>{_fmt(r.busy_cycles, 1)}</td>"
        f"<td>{_fmt(r.blocked_cycles, 1)}</td>"
        f"<td>{_fmt(r.stalled_cycles, 1)}</td>"
        f"<td>{r.utilization:.2f}</td></tr>"
        for r in sorted(rows, key=lambda r: -r.busy_cycles)
    )
    return (
        "<table><thead><tr><th>tile group</th><th>tiles</th><th>busy"
        "</th><th>blocked</th><th>stalled</th><th>util</th></tr>"
        f"</thead><tbody>{body}</tbody></table>"
    )


def _roofline_svg(report: StatsReport) -> str:
    points = report.roofline_points
    if not points:
        return ""
    width, height = 640, 330
    left, right, top, bottom = 52, 16, 14, 40
    plot_w, plot_h = width - left - right, height - top - bottom
    xs = [p["bytes_per_flop"] for p in points if p["bytes_per_flop"] > 0]
    x_lo = 10 ** math.floor(math.log10(min(xs))) if xs else 1e-3
    x_hi = 10 ** math.ceil(math.log10(max(xs))) if xs else 10.0
    fractions = [
        p["attainable_fraction"] for p in points
        if p["attainable_fraction"] > 0
    ]
    y_lo = 10 ** math.floor(math.log10(min(fractions + [1.0])))
    y_lo = max(min(y_lo, 0.1), 1e-4)

    def x_of(value: float) -> float:
        span = math.log10(x_hi) - math.log10(x_lo)
        return left + (math.log10(value) - math.log10(x_lo)) / span * plot_w

    def y_of(fraction: float) -> float:
        span = -math.log10(y_lo)
        clamped = max(fraction, y_lo)
        return top + (-math.log10(clamped)) / span * plot_h

    parts: List[str] = []
    # Hairline grid + tick labels at decades.
    decade = x_lo
    while decade <= x_hi * 1.0001:
        x = x_of(decade)
        parts.append(
            f'<line x1="{x:.1f}" y1="{top}" x2="{x:.1f}" '
            f'y2="{top + plot_h}" stroke="var(--grid)"/>'
            f'<text x="{x:.1f}" y="{height - 22}" '
            f'text-anchor="middle">{decade:g}</text>'
        )
        decade *= 10
    fraction = 1.0
    while fraction >= y_lo * 0.999:
        y = y_of(fraction)
        parts.append(
            f'<line x1="{left}" y1="{y:.1f}" x2="{left + plot_w}" '
            f'y2="{y:.1f}" stroke="var(--grid)"/>'
            f'<text x="{left - 6}" y="{y + 3:.1f}" '
            f'text-anchor="end">{fraction:g}</text>'
        )
        fraction /= 10
    # Each chip's roofline: flat at 1.0 until the knee, then 1/x decay.
    for index, chip in enumerate(sorted(report.roofline_knees)):
        knee = report.roofline_knees[chip]
        color = f"var(--s{index % len(SERIES) + 1})"
        if knee <= 0:
            continue
        knee_x = min(max(knee, x_lo), x_hi)
        path = (
            f"M {x_of(x_lo):.1f} {y_of(1.0):.1f} "
            f"L {x_of(knee_x):.1f} {y_of(1.0):.1f} "
            f"L {x_of(x_hi):.1f} {y_of(max(knee / x_hi, y_lo)):.1f}"
        )
        parts.append(
            f'<path d="{path}" fill="none" stroke="{color}" '
            'stroke-width="2" stroke-linejoin="round" opacity="0.55"/>'
        )
    # Layer dots: >=8px markers with a 2px surface ring.
    for point in points:
        chip_index = sorted(report.roofline_knees).index(point["chip"])
        color = f"var(--s{chip_index % len(SERIES) + 1})"
        x = x_of(max(point["bytes_per_flop"], x_lo))
        y = y_of(point["attainable_fraction"])
        tip = (
            f'{point["layer"]} on {point["chip"]}: '
            f'{point["bytes_per_flop"]:.3g} B/FLOP, attains '
            f'{point["attainable_fraction"]:.2f} of peak '
            f'({point["boundedness"]})'
        )
        parts.append(
            f'<circle cx="{x:.1f}" cy="{y:.1f}" r="6" fill="{color}" '
            f'stroke="var(--surface-1)" stroke-width="2" tabindex="0" '
            f'data-tip="{_esc(tip)}"/>'
        )
    parts.append(
        f'<text x="{left + plot_w / 2:.0f}" y="{height - 6}" '
        'text-anchor="middle">operational intensity (bytes / FLOP)'
        "</text>"
        f'<text x="12" y="{top + plot_h / 2:.0f}" text-anchor="middle" '
        f'transform="rotate(-90 12 {top + plot_h / 2:.0f})">'
        "attainable fraction of peak</text>"
    )
    legend = "".join(
        f'<span><span class="key" '
        f'style="background:var(--s{i % len(SERIES) + 1})"></span>'
        f"{_esc(chip)}</span>"
        for i, chip in enumerate(sorted(report.roofline_knees))
    )
    table_rows = "".join(
        f'<tr><td>{_esc(p["layer"])}</td><td>{_esc(p["chip"])}</td>'
        f'<td>{p["bytes_per_flop"]:.4g}</td>'
        f'<td>{p["attainable_fraction"]:.3f}</td>'
        f'<td>{_esc(p["boundedness"])}</td></tr>'
        for p in points
    )
    table = (
        "<table><thead><tr><th>layer</th><th>chip</th><th>B/FLOP</th>"
        "<th>attainable</th><th>regime</th></tr></thead>"
        f"<tbody>{table_rows}</tbody></table>"
    )
    return (
        '<div class="card"><h2>Roofline - layers vs chip ceilings</h2>'
        f'<div class="legend">{legend}'
        '<span class="muted">line = chip roofline; dots left of the '
        "knee are compute-bound</span></div>"
        f'<svg viewBox="0 0 {width} {height}" width="{width}" '
        f'height="{height}" role="img">{"".join(parts)}</svg>'
        f"<details><summary>Table view</summary>{table}</details></div>"
    )


def _attribution_bars(report: StatsReport) -> str:
    rows = report.attributions()
    if not rows:
        return ""
    legend = "".join(
        f'<span><span class="key" '
        f'style="background:var(--s{i + 1})"></span>'
        f"{_esc(cause.value)}</span>"
        for i, cause in enumerate(CAUSE_ORDER)
    )
    bars = []
    for row in rows:
        total = row.total_cycles
        if total <= 0:
            continue
        segments = []
        for index, cause in enumerate(CAUSE_ORDER):
            share = row.cycles.get(cause, 0.0) / total
            if share <= 0:
                continue
            tip = (
                f"{row.group} [{row.simulator}] - {cause.value}: "
                f"{share:.1%} ({row.cycles.get(cause, 0.0):,.0f} of "
                f"{total:,.0f} cycles)"
            )
            segments.append(
                f'<div class="seg" tabindex="0" '
                f'style="width:{share * 100:.2f}%;'
                f'background:var(--s{index + 1})" '
                f'data-tip="{_esc(tip)}"></div>'
            )
        label = f"{row.group} [{row.simulator[0]}]"
        bars.append(
            f'<div class="row"><div class="row-label" '
            f'data-tip="{_esc(row.group)} ({row.simulator}) - dominant '
            f'{_esc(row.dominant.value)}; fix: {_esc(row.remedy)}">'
            f'{_esc(label)}</div>'
            f'<div class="track">{"".join(segments)}</div></div>'
        )
    table_rows = "".join(
        f"<tr><td>{_esc(r.group)}</td><td>{_esc(r.simulator)}</td>"
        + "".join(
            f"<td>{r.share(cause):.2f}</td>" for cause in CAUSE_ORDER
        )
        + f"<td>{_esc(r.boundedness or '-')}</td>"
        f"<td>{_esc(r.dominant.value)}</td><td>{_esc(r.remedy)}</td>"
        "</tr>"
        for r in sorted(rows, key=lambda r: -r.total_cycles)
    )
    table = (
        "<table><thead><tr><th>tile group</th><th>sim</th>"
        + "".join(f"<th>{_esc(c.value)}</th>" for c in CAUSE_ORDER)
        + "<th>roofline</th><th>dominant</th><th>what would fix it</th>"
        f"</tr></thead><tbody>{table_rows}</tbody></table>"
    )
    return (
        '<div class="card"><h2>Cycle attribution - where each tile '
        "group's beat goes</h2>"
        f'<div class="legend">{legend}</div>'
        f'<div class="bars">{"".join(bars)}</div>'
        '<div class="muted">[a] analytical stage - [e] engine tile; '
        "each bar normalized to its own beat</div>"
        f"<details open><summary>Table view (with remedies)</summary>"
        f"{table}</details></div>"
    )


def _percentile_tables(report: StatsReport) -> str:
    by_group: Dict[str, List[Tuple[str, Dict[str, float]]]] = {}
    for group, name, histogram in report.metrics.histograms():
        if group.startswith(VOLATILE_GROUP_PREFIX):
            continue
        by_group.setdefault(group, []).append(
            (name, histogram.summary())
        )
    sections = []
    for group in sorted(by_group):
        rows = []
        for name, summary in by_group[group]:
            rows.append(
                f"<tr><td>{_esc(name)}</td>"
                f'<td>{summary["count"]:,.0f}</td>'
                f'<td>{_fmt(summary["mean"], 2)}</td>'
                f'<td>{_fmt(summary["p50"], 2)}</td>'
                f'<td>{_fmt(summary["p90"], 2)}</td>'
                f'<td>{_fmt(summary["p95"], 2)}</td>'
                f'<td>{_fmt(summary["p99"], 2)}</td>'
                f'<td>{_fmt(summary["max"], 2)}</td></tr>'
            )
        sections.append(
            f"<h2>{_esc(group)}</h2>"
            "<table><thead><tr><th>metric</th><th>count</th><th>mean"
            "</th><th>p50</th><th>p90</th><th>p95</th><th>p99</th>"
            f"<th>max</th></tr></thead><tbody>{''.join(rows)}</tbody>"
            "</table>"
        )
    if not sections:
        return ""
    return f'<div class="card">{"".join(sections)}</div>'


# ---------------------------------------------------------------------------
# Serving panel (latency-throughput curves)
# ---------------------------------------------------------------------------
def _serve_kpis(curve) -> str:
    worst_p99 = max(
        (
            stats.latency_percentile_ms(99)
            for point in curve.points
            for stats in point.report.tenants
        ),
        default=0.0,
    )
    shed = sum(p.report.shed for p in curve.points)
    offered = sum(p.report.offered for p in curve.points)
    tiles = (
        ("Saturation", _fmt(curve.capacity_qps), "QPS (analytical)"),
        ("Load points", _fmt(len(curve.points)),
         f"x {len(curve.networks)} network(s)"),
        ("Worst p99", _fmt(worst_p99, 2), "ms"),
        ("Shed overall", f"{shed / offered:.1%}" if offered else "-",
         f"{shed:,} of {offered:,} requests"),
    )
    cards = "".join(
        f'<div class="card"><div class="kpi-label">{_esc(label)}</div>'
        f'<div class="kpi-value">{_esc(value)}</div>'
        f'<div class="kpi-unit">{_esc(unit)}</div></div>'
        for label, value, unit in tiles
    )
    return f'<div class="kpis">{cards}</div>'


def _serve_curve_svg(curve) -> str:
    """The latency-throughput chart: offered load (fraction of each
    tenant's saturation share) against p50/p99 request latency on a log
    scale — one categorical series per network, p99 solid, p50 faded."""
    series: Dict[str, List[Tuple[float, float, float, float]]] = {
        name: [] for name in curve.networks
    }
    for point in curve.points:
        for stats in point.report.tenants:
            series[stats.network].append((
                point.fraction,
                stats.latency_percentile_ms(50),
                stats.latency_percentile_ms(99),
                stats.offered_qps,
            ))
    values = [
        v
        for rows in series.values()
        for (_, p50, p99, _) in rows
        for v in (p50, p99)
        if v > 0
    ]
    if not values:
        return ""
    width, height = 640, 330
    left, right, top, bottom = 58, 16, 14, 40
    plot_w, plot_h = width - left - right, height - top - bottom
    x_lo = 0.0
    x_hi = max(f for rows in series.values() for (f, *_) in rows)
    y_lo = 10 ** math.floor(math.log10(min(values)))
    y_hi = 10 ** math.ceil(math.log10(max(values)))
    if y_hi <= y_lo:
        y_hi = y_lo * 10

    def x_of(fraction: float) -> float:
        return left + (fraction - x_lo) / (x_hi - x_lo) * plot_w

    def y_of(latency: float) -> float:
        span = math.log10(y_hi) - math.log10(y_lo)
        clamped = min(max(latency, y_lo), y_hi)
        return (
            top + plot_h
            - (math.log10(clamped) - math.log10(y_lo)) / span * plot_h
        )

    parts: List[str] = []
    decade = y_lo
    while decade <= y_hi * 1.0001:
        y = y_of(decade)
        parts.append(
            f'<line x1="{left}" y1="{y:.1f}" x2="{left + plot_w}" '
            f'y2="{y:.1f}" stroke="var(--grid)"/>'
            f'<text x="{left - 6}" y="{y + 3:.1f}" '
            f'text-anchor="end">{decade:g}</text>'
        )
        decade *= 10
    for tick in (0.25, 0.5, 0.75, 1.0):
        if tick > x_hi:
            continue
        x = x_of(tick)
        parts.append(
            f'<line x1="{x:.1f}" y1="{top}" x2="{x:.1f}" '
            f'y2="{top + plot_h}" stroke="var(--grid)"/>'
            f'<text x="{x:.1f}" y="{height - 22}" '
            f'text-anchor="middle">{tick:g}</text>'
        )
    # The knee: offered load == analytical saturation.
    if x_hi >= 1.0:
        x = x_of(1.0)
        parts.append(
            f'<line x1="{x:.1f}" y1="{top}" x2="{x:.1f}" '
            f'y2="{top + plot_h}" stroke="var(--axis)" '
            'stroke-dasharray="4 3"/>'
        )
    for index, name in enumerate(curve.networks):
        color = f"var(--s{index % len(SERIES) + 1})"
        p50_path = " ".join(
            f'{"M" if i == 0 else "L"} {x_of(f):.1f} {y_of(p50):.1f}'
            for i, (f, p50, _, _) in enumerate(series[name])
        )
        p99_path = " ".join(
            f'{"M" if i == 0 else "L"} {x_of(f):.1f} {y_of(p99):.1f}'
            for i, (f, _, p99, _) in enumerate(series[name])
        )
        parts.append(
            f'<path d="{p50_path}" fill="none" stroke="{color}" '
            'stroke-width="2" stroke-dasharray="5 4" opacity="0.45"/>'
            f'<path d="{p99_path}" fill="none" stroke="{color}" '
            'stroke-width="2" stroke-linejoin="round"/>'
        )
        for fraction, p50, p99, offered_qps in series[name]:
            tip = (
                f"{name} at {fraction:g}x saturation "
                f"({offered_qps:,.0f} QPS offered): "
                f"p50 {p50:.3g}ms, p99 {p99:.3g}ms"
            )
            parts.append(
                f'<circle cx="{x_of(fraction):.1f}" '
                f'cy="{y_of(p99):.1f}" r="5" fill="{color}" '
                f'stroke="var(--surface-1)" stroke-width="2" '
                f'tabindex="0" data-tip="{_esc(tip)}"/>'
            )
    parts.append(
        f'<text x="{left + plot_w / 2:.0f}" y="{height - 6}" '
        'text-anchor="middle">offered load (fraction of saturation)'
        "</text>"
        f'<text x="12" y="{top + plot_h / 2:.0f}" text-anchor="middle" '
        f'transform="rotate(-90 12 {top + plot_h / 2:.0f})">'
        "request latency (ms)</text>"
    )
    legend = "".join(
        f'<span><span class="key" '
        f'style="background:var(--s{i % len(SERIES) + 1})"></span>'
        f"{_esc(name)}</span>"
        for i, name in enumerate(curve.networks)
    )
    return (
        '<div class="card"><h2>Latency vs offered load</h2>'
        f'<div class="legend">{legend}'
        '<span class="muted">solid = p99, dashed = p50; dotted rule = '
        "saturation</span></div>"
        f'<svg viewBox="0 0 {width} {height}" width="{width}" '
        f'height="{height}" role="img">{"".join(parts)}</svg></div>'
    )


def _serve_table(curve) -> str:
    body = "".join(
        f'<tr><td>{_esc(row["network"])}</td>'
        f'<td>{row["fraction"]:g}</td>'
        f'<td>{_fmt(row["offered_net_qps"])}</td>'
        f'<td>{_fmt(row["sustained_qps"])}</td>'
        f'<td>{_fmt(row["p50_ms"], 3)}</td>'
        f'<td>{_fmt(row["p95_ms"], 3)}</td>'
        f'<td>{_fmt(row["p99_ms"], 3)}</td>'
        f'<td>{row["shed_rate"]:.1%}</td>'
        f'<td>{row["mean_batch"]:.1f}</td></tr>'
        for row in curve.rows()
    )
    return (
        '<div class="card"><h2>Curve points</h2>'
        "<table><thead><tr><th>network</th><th>load</th>"
        "<th>offered QPS</th><th>sustained QPS</th><th>p50 ms</th>"
        "<th>p95 ms</th><th>p99 ms</th><th>shed</th><th>batch</th>"
        f"</tr></thead><tbody>{body}</tbody></table></div>"
    )


def _serve_placement_table(curve) -> str:
    body = "".join(
        f"<tr><td>{_esc(t.network)}</td><td>{t.clusters}</td>"
        f"<td>{t.share:.1%}</td><td>{t.pipeline_depth}</td>"
        f"<td>{_fmt(t.rate_qps)}</td>"
        f"<td>{_fmt(t.saturation_qps(curve.config.policy.max_batch))}"
        "</td></tr>"
        for t in curve.placement.tenants
    )
    return (
        '<div class="card"><h2>Placement</h2>'
        "<table><thead><tr><th>network</th><th>clusters</th>"
        "<th>share</th><th>pipeline depth</th><th>rate img/s</th>"
        "<th>saturation QPS</th></tr></thead>"
        f"<tbody>{body}</tbody></table></div>"
    )


def serve_html(curve) -> str:
    """Render a :class:`~repro.serve.curve.CurveReport` as the serving
    dashboard document (same palette/layout grammar as ``stats``)."""
    config = curve.config
    body = (
        f"<h1>ScaleDeep serving - {_esc(', '.join(curve.networks))}"
        "</h1>"
        f'<p class="sub">{_esc(curve.node)} - {_esc(config.arrivals)} '
        f"arrivals, seed {config.seed} - "
        f"{_esc(config.policy.kind)} batching (max batch "
        f"{config.policy.max_batch}, max wait "
        f"{config.policy.max_wait_s * 1e3:g}ms, queue depth "
        f"{config.policy.queue_depth}) - {config.duration_s:g}s per "
        "point</p>"
        + _serve_kpis(curve)
        + _serve_curve_svg(curve)
        + _serve_table(curve)
        + _serve_placement_table(curve)
    )
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">\n'
        f"<title>repro serve - {_esc(', '.join(curve.networks))}"
        "</title>\n"
        f"<style>{_CSS}</style></head>\n"
        f'<body>{body}<div id="tip" role="status"></div>\n'
        f"<script>{_JS}</script></body></html>\n"
    )


def write_serve_html(curve, path: Union[str, Path]) -> Path:
    """Write the serving dashboard (same contract as
    :func:`write_stats_html`)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(serve_html(curve), encoding="utf-8")
    return path


# ---------------------------------------------------------------------------
# Scale-out panel (sweep scaling curves + TCO KPIs)
# ---------------------------------------------------------------------------
def _series_label(key: Tuple[str, str, str]) -> str:
    network, preset, strategy = key
    return f"{network}/{preset} {strategy}"


def _scaling_kpis(series: Dict[tuple, List[dict]]) -> str:
    rows = [row for points in series.values() for row in points]
    if not rows:
        return ""
    best = max(rows, key=lambda r: r["system_train_images_per_s"])
    cheapest_run = min(rows, key=lambda r: r["dollars_per_training_run"])
    cheapest_inf = min(rows, key=lambda r: r["dollars_per_1m_inferences"])
    tiles = (
        ("Best system throughput",
         _fmt(best["system_train_images_per_s"]),
         f"img/s ({best['network']} x{best['nodes']})"),
        ("Cheapest training run",
         f"${cheapest_run['dollars_per_training_run']:,.2f}",
         f"{cheapest_run['network']} x{cheapest_run['nodes']} "
         f"({cheapest_run['strategy']})"),
        ("Cheapest inference",
         f"${cheapest_inf['dollars_per_1m_inferences']:,.2f}",
         f"per 1M images ({cheapest_inf['network']} "
         f"x{cheapest_inf['nodes']})"),
        ("Largest system",
         _fmt(max(r["nodes"] for r in rows)),
         f"node(s), {len(series)} configuration(s)"),
    )
    cards = "".join(
        f'<div class="card"><div class="kpi-label">{_esc(label)}</div>'
        f'<div class="kpi-value">{_esc(value)}</div>'
        f'<div class="kpi-unit">{_esc(unit)}</div></div>'
        for label, value, unit in tiles
    )
    return f'<div class="kpis">{cards}</div>'


def _scaling_svg(series: Dict[tuple, List[dict]]) -> str:
    """System training throughput vs node count, one categorical series
    per (network, preset, strategy); each series' ideal linear scaling
    (its smallest-system rate extrapolated) drawn dashed."""
    keys = [k for k, points in series.items() if points]
    if not keys:
        return ""
    x_hi = max(row["nodes"] for k in keys for row in series[k])
    x_lo = min(row["nodes"] for k in keys for row in series[k])
    ideal: Dict[tuple, float] = {}
    for key in keys:
        base = series[key][0]
        ideal[key] = (
            base["system_train_images_per_s"] / base["nodes"]
        )
    y_hi = max(
        max(row["system_train_images_per_s"] for row in series[k])
        for k in keys
    )
    y_hi = max(y_hi, max(ideal[k] * x_hi for k in keys))
    if y_hi <= 0 or x_hi <= 0:
        return ""
    width, height = 640, 330
    left, right, top, bottom = 70, 16, 14, 40
    plot_w, plot_h = width - left - right, height - top - bottom

    def x_of(nodes: float) -> float:
        if x_hi == x_lo:
            return left + plot_w / 2
        return left + (nodes - x_lo) / (x_hi - x_lo) * plot_w

    def y_of(rate: float) -> float:
        return top + plot_h - min(rate, y_hi) / y_hi * plot_h

    parts: List[str] = []
    for frac in (0.25, 0.5, 0.75, 1.0):
        y = y_of(frac * y_hi)
        parts.append(
            f'<line x1="{left}" y1="{y:.1f}" x2="{left + plot_w}" '
            f'y2="{y:.1f}" stroke="var(--grid)"/>'
            f'<text x="{left - 6}" y="{y + 3:.1f}" '
            f'text-anchor="end">{_fmt(frac * y_hi)}</text>'
        )
    ticks = sorted({row["nodes"] for k in keys for row in series[k]})
    for tick in ticks:
        x = x_of(tick)
        parts.append(
            f'<line x1="{x:.1f}" y1="{top}" x2="{x:.1f}" '
            f'y2="{top + plot_h}" stroke="var(--grid)"/>'
            f'<text x="{x:.1f}" y="{height - 22}" '
            f'text-anchor="middle">{tick}</text>'
        )
    for index, key in enumerate(keys):
        color = f"var(--s{index % len(SERIES) + 1})"
        # Ideal linear scaling for this configuration, dashed.
        ideal_path = (
            f"M {x_of(x_lo):.1f} {y_of(ideal[key] * x_lo):.1f} "
            f"L {x_of(x_hi):.1f} {y_of(ideal[key] * x_hi):.1f}"
        )
        parts.append(
            f'<path d="{ideal_path}" fill="none" stroke="{color}" '
            'stroke-width="1.5" stroke-dasharray="5 4" opacity="0.4"/>'
        )
        path = " ".join(
            f'{"M" if i == 0 else "L"} {x_of(row["nodes"]):.1f} '
            f'{y_of(row["system_train_images_per_s"]):.1f}'
            for i, row in enumerate(series[key])
        )
        parts.append(
            f'<path d="{path}" fill="none" stroke="{color}" '
            'stroke-width="2" stroke-linejoin="round"/>'
        )
        for row in series[key]:
            tip = (
                f"{_series_label(key)} at {row['nodes']} node(s): "
                f"{row['system_train_images_per_s']:,.0f} img/s "
                f"({row['scaling_efficiency']:.0%} of linear), "
                f"${row['dollars_per_training_run']:,.2f}/training run"
            )
            parts.append(
                f'<circle cx="{x_of(row["nodes"]):.1f}" '
                f'cy="{y_of(row["system_train_images_per_s"]):.1f}" '
                f'r="5" fill="{color}" stroke="var(--surface-1)" '
                f'stroke-width="2" tabindex="0" data-tip="{_esc(tip)}"/>'
            )
    parts.append(
        f'<text x="{left + plot_w / 2:.0f}" y="{height - 6}" '
        'text-anchor="middle">nodes</text>'
        f'<text x="12" y="{top + plot_h / 2:.0f}" text-anchor="middle" '
        f'transform="rotate(-90 12 {top + plot_h / 2:.0f})">'
        "system training throughput (img/s)</text>"
    )
    legend = "".join(
        f'<span><span class="key" '
        f'style="background:var(--s{i % len(SERIES) + 1})"></span>'
        f"{_esc(_series_label(key))}</span>"
        for i, key in enumerate(keys)
    )
    return (
        '<div class="card"><h2>Scaling curve</h2>'
        f'<div class="legend">{legend}'
        '<span class="muted">solid = simulated, dashed = ideal linear '
        "scaling</span></div>"
        f'<svg viewBox="0 0 {width} {height}" width="{width}" '
        f'height="{height}" role="img">{"".join(parts)}</svg></div>'
    )


def _scaling_table(series: Dict[tuple, List[dict]]) -> str:
    body = "".join(
        f'<tr><td>{_esc(_series_label(key))}</td>'
        f'<td>{row["nodes"]}</td>'
        f'<td>{row["minibatch"]}</td>'
        f'<td>{_fmt(row["system_train_images_per_s"])}</td>'
        f'<td>{_fmt(row["system_eval_images_per_s"])}</td>'
        f'<td>{row["scaling_efficiency"]:.1%}</td>'
        f'<td>{_fmt(row["system_power_w"] / 1e3, 2)}</td>'
        f'<td>{row["dollars_per_training_run"]:,.2f}</td>'
        f'<td>{row["dollars_per_1m_inferences"]:,.2f}</td></tr>'
        for key in series
        for row in series[key]
    )
    return (
        '<div class="card"><h2>Scaling points</h2>'
        "<table><thead><tr><th>configuration</th><th>nodes</th>"
        "<th>minibatch</th><th>train img/s</th><th>eval img/s</th>"
        "<th>efficiency</th><th>power kW</th><th>$/training run</th>"
        "<th>$/1M inferences</th></tr></thead>"
        f"<tbody>{body}</tbody></table></div>"
    )


def sweep_html(results: Sequence) -> str:
    """Render sweep results as the scale-out dashboard: a TCO KPI row,
    the scaling-curve chart, and its table-view twin."""
    from repro.bench.export import sweep_scaling_series

    series = sweep_scaling_series(results)
    networks = sorted({key[0] for key in series})
    title = ", ".join(networks) if networks else "no results"
    body = (
        f"<h1>ScaleDeep scale-out - {_esc(title)}</h1>"
        f'<p class="sub">{len(list(results))} sweep row(s), '
        f"{len(series)} configuration(s)</p>"
        + _scaling_kpis(series)
        + _scaling_svg(series)
        + _scaling_table(series)
    )
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">\n'
        f"<title>repro sweep - {_esc(title)}</title>\n"
        f"<style>{_CSS}</style></head>\n"
        f'<body>{body}<div id="tip" role="status"></div>\n'
        f"<script>{_JS}</script></body></html>\n"
    )


def write_sweep_html(results: Sequence, path: Union[str, Path]) -> Path:
    """Write the scale-out dashboard (same contract as
    :func:`write_stats_html`)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(sweep_html(results), encoding="utf-8")
    return path


# ---------------------------------------------------------------------------
# Chaos (failure-aware serving) dashboard


def _chaos_kpis(report) -> str:
    burn = report.error_budget_burn()
    degraded_share = (
        report.degraded_s / report.horizon_s if report.horizon_s else 0.0
    )
    tiles = (
        ("Availability", f"{report.availability:.2%}",
         f"{report.completed:,} of {report.offered:,} offered"),
        ("Error-budget burn", _fmt(burn, 2) if burn else "0",
         "unavailability / budget"),
        ("Faults", _fmt(len(report.fault_events) // 2),
         f"{len(report.degraded_intervals)} degraded interval(s)"),
        ("Degraded time", f"{degraded_share:.1%}",
         f"{report.degraded_s:.4f}s of {report.horizon_s:.4f}s"),
    )
    cards = "".join(
        f'<div class="card"><div class="kpi-label">{_esc(label)}</div>'
        f'<div class="kpi-value">{_esc(value)}</div>'
        f'<div class="kpi-unit">{_esc(unit)}</div></div>'
        for label, value, unit in tiles
    )
    return f'<div class="kpis">{cards}</div>'


def _chaos_timeline_svg(report) -> str:
    """Per-bucket p99 latency over the run, with every degraded
    interval shaded — the healthy-vs-degraded latency contrast at a
    glance."""
    bins = [b for b in report.timeline if b["completed"] > 0]
    if not bins:
        return ""
    width, height = 640, 280
    left, right, top, bottom = 58, 16, 14, 40
    plot_w, plot_h = width - left - right, height - top - bottom
    x_hi = report.horizon_s or 1.0
    y_hi = max(b["p99_ms"] for b in bins) * 1.15 or 1.0

    def x_of(t: float) -> float:
        return left + min(t / x_hi, 1.0) * plot_w

    def y_of(ms: float) -> float:
        return top + plot_h - min(ms / y_hi, 1.0) * plot_h

    parts: List[str] = []
    # Degraded bands first (under everything).
    for interval in report.degraded_intervals:
        x0, x1 = x_of(interval.start_s), x_of(interval.end_s)
        tip = (
            f"degraded {interval.start_s:.4f}-{interval.end_s:.4f}s: "
            + ", ".join(interval.sites)
        )
        parts.append(
            f'<rect x="{x0:.1f}" y="{top}" '
            f'width="{max(x1 - x0, 1.0):.1f}" height="{plot_h}" '
            f'fill="var(--s2)" opacity="0.18" tabindex="0" '
            f'data-tip="{_esc(tip)}"/>'
        )
    for frac in (0.25, 0.5, 0.75, 1.0):
        y = y_of(y_hi * frac / 1.15)
        parts.append(
            f'<line x1="{left}" y1="{y:.1f}" x2="{left + plot_w}" '
            f'y2="{y:.1f}" stroke="var(--grid)"/>'
            f'<text x="{left - 6}" y="{y + 3:.1f}" text-anchor="end">'
            f"{y_hi * frac / 1.15:.3g}</text>"
        )
        x = x_of(x_hi * frac)
        parts.append(
            f'<line x1="{x:.1f}" y1="{top}" x2="{x:.1f}" '
            f'y2="{top + plot_h}" stroke="var(--grid)"/>'
            f'<text x="{x:.1f}" y="{height - 22}" '
            f'text-anchor="middle">{x_hi * frac:.3g}</text>'
        )
    path = " ".join(
        f'{"M" if i == 0 else "L"} '
        f'{x_of((b["start_s"] + b["end_s"]) / 2):.1f} '
        f'{y_of(b["p99_ms"]):.1f}'
        for i, b in enumerate(bins)
    )
    parts.append(
        f'<path d="{path}" fill="none" stroke="var(--s1)" '
        'stroke-width="2" stroke-linejoin="round"/>'
    )
    for b in bins:
        mid = (b["start_s"] + b["end_s"]) / 2
        tip = (
            f"{b['start_s']:.4f}-{b['end_s']:.4f}s: "
            f"p99 {b['p99_ms']:.4g}ms, {b['completed']:.0f} done, "
            f"{b['degraded']:.0f} degraded, {b['failed']:.0f} failed"
        )
        parts.append(
            f'<circle cx="{x_of(mid):.1f}" cy="{y_of(b["p99_ms"]):.1f}" '
            f'r="4" fill="var(--s1)" stroke="var(--surface-1)" '
            f'stroke-width="2" tabindex="0" data-tip="{_esc(tip)}"/>'
        )
    parts.append(
        f'<text x="{left + plot_w / 2:.0f}" y="{height - 6}" '
        'text-anchor="middle">run time (s)</text>'
        f'<text x="12" y="{top + plot_h / 2:.0f}" text-anchor="middle" '
        f'transform="rotate(-90 12 {top + plot_h / 2:.0f})">'
        "p99 latency (ms)</text>"
    )
    return (
        '<div class="card"><h2>Latency timeline</h2>'
        '<div class="legend"><span><span class="key" '
        'style="background:var(--s1)"></span>bucket p99</span>'
        '<span><span class="key" style="background:var(--s2);'
        'opacity:0.4"></span>degraded interval</span></div>'
        f'<svg viewBox="0 0 {width} {height}" width="{width}" '
        f'height="{height}" role="img">{"".join(parts)}</svg></div>'
    )


def _chaos_outcomes_table(report) -> str:
    body = "".join(
        f"<tr><td>{_esc(row['network'])}</td>"
        f"<td>{row['offered']}</td><td>{row['completed']}</td>"
        f"<td>{row['shed']}</td><td>{row['timed_out']}</td>"
        f"<td>{row['failed']}</td>"
        f"<td>{row['availability']:.2%}</td>"
        f"<td>{row['retries']}</td><td>{row['hedges']}</td>"
        f"<td>{_fmt(row['healthy_p99_ms'], 6)}</td>"
        f"<td>{_fmt(row['degraded_p99_ms'], 6)}</td>"
        f"<td>{_fmt(row['down_s'], 4)}</td></tr>"
        for row in report.rows()
    )
    return (
        '<div class="card"><h2>Request outcomes</h2>'
        "<table><thead><tr><th>network</th><th>offered</th>"
        "<th>completed</th><th>shed</th><th>timed out</th>"
        "<th>failed</th><th>avail</th><th>retries</th><th>hedges</th>"
        "<th>healthy p99 ms</th><th>degraded p99 ms</th>"
        f"<th>down s</th></tr></thead><tbody>{body}</tbody></table>"
        "</div>"
    )


def _chaos_slo_table(report) -> str:
    findings = report.slo_findings()
    if not findings:
        return ""
    body = "".join(
        f"<tr><td>{_esc(f.scope)}</td><td>{_esc(f.objective)}</td>"
        f"<td>{f.target:g}</td><td>{f.actual:g}</td>"
        f"<td>{'ok' if f.ok else 'VIOLATED'}</td></tr>"
        for f in findings
    )
    return (
        '<div class="card"><h2>SLO findings</h2>'
        "<table><thead><tr><th>scope</th><th>objective</th>"
        "<th>target</th><th>actual</th><th>verdict</th></tr></thead>"
        f"<tbody>{body}</tbody></table></div>"
    )


def _chaos_events_table(report) -> str:
    if not report.fault_events:
        return ""
    body = "".join(
        f"<tr><td>{e.time_s:.4f}</td><td>{_esc(e.action)}</td>"
        f"<td>{e.fault.fault_id}</td><td>{_esc(e.fault.kind.value)}</td>"
        f"<td>{_esc(e.fault.site)}</td>"
        f"<td>{e.fault.magnitude:g}</td></tr>"
        for e in report.fault_events
    )
    return (
        '<div class="card"><h2>Fault/repair log</h2>'
        "<table><thead><tr><th>time s</th><th>action</th><th>id</th>"
        "<th>kind</th><th>site</th><th>magnitude</th></tr></thead>"
        f"<tbody>{body}</tbody></table></div>"
    )


def chaos_html(report) -> str:
    """Render a failure-aware :class:`~repro.serve.report.ServeReport`
    as the chaos dashboard document."""
    networks = ", ".join(t.network for t in report.tenants)
    failures = report.failures
    sub = (
        f"{_esc(report.node)} - {_esc(report.arrivals)} arrivals, "
        f"seed {report.seed} - {_esc(report.policy.kind)} batching - "
        f"{report.offered_qps:,.0f} offered QPS over "
        f"{report.duration_s:g}s"
    )
    if failures is not None:
        sub += f" - {_esc(failures.describe())}"
    body = (
        f"<h1>ScaleDeep chaos serving - {_esc(networks)}</h1>"
        f'<p class="sub">{sub}</p>'
        + _chaos_kpis(report)
        + _chaos_timeline_svg(report)
        + _chaos_outcomes_table(report)
        + _chaos_slo_table(report)
        + _chaos_events_table(report)
    )
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">\n'
        f"<title>repro chaos - {_esc(networks)}</title>\n"
        f"<style>{_CSS}</style></head>\n"
        f'<body>{body}<div id="tip" role="status"></div>\n'
        f"<script>{_JS}</script></body></html>\n"
    )


def write_chaos_html(report, path: Union[str, Path]) -> Path:
    """Write the chaos dashboard (same contract as
    :func:`write_stats_html`)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(chaos_html(report), encoding="utf-8")
    return path


def stats_html(report: StatsReport) -> str:
    """Render the full dashboard document."""
    engine_note = (
        "functional engine + analytical model"
        if report.engine_ran
        else f"analytical model only ({_esc(report.engine_skipped)})"
    )
    body = (
        f"<h1>ScaleDeep performance - {_esc(report.network)}</h1>"
        f'<p class="sub">{_esc(report.node)} - minibatch '
        f"{report.minibatch} - {engine_note} - fingerprint "
        f"<code>{_esc(report.fingerprint[:16])}</code></p>"
        + _kpi_row(report)
        + _heatmap(
            report.analytical_profile,
            "Utilization heatmap - analytical tile groups "
            "(unit/step, one pipeline beat)",
        )
        + _heatmap(
            report.engine_profile,
            "Utilization heatmap - engine CompHeavy tiles",
        )
        + _roofline_svg(report)
        + _attribution_bars(report)
        + _percentile_tables(report)
    )
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">\n'
        f"<title>repro stats - {_esc(report.network)}</title>\n"
        f"<style>{_CSS}</style></head>\n"
        f'<body>{body}<div id="tip" role="status"></div>\n'
        f"<script>{_JS}</script></body></html>\n"
    )


def write_stats_html(
    report: StatsReport, path: Union[str, Path]
) -> Path:
    """Write the dashboard beside the other export writers' contract:
    parent directories created, the resolved path returned."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(stats_html(report), encoding="utf-8")
    return path


def write_stats_json(
    report: StatsReport, path: Union[str, Path]
) -> Path:
    """The snapshot as deterministic JSON (sorted keys, trailing
    newline) — the same payload ``--baseline`` persists."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(report.snapshot(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
