"""Exception hierarchy for the ScaleDeep reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch one type to handle any library failure.
"""


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ShapeError(ReproError):
    """A layer was connected to inputs whose shapes it cannot consume."""


class TopologyError(ReproError):
    """A network graph is malformed (cycles, dangling inputs, bad names)."""


class ConfigError(ReproError):
    """An architecture configuration is inconsistent or out of range."""


class AnalysisError(ReproError):
    """A workload-analysis query was asked of data that cannot answer it."""


class MappingError(ReproError):
    """The compiler could not map a network onto the given architecture."""


class UnmappableError(MappingError):
    """Fault-degraded capacity genuinely cannot host the network.

    Raised only when remapping around dead tiles has been attempted and
    the surviving columns still cannot satisfy the STEP3a memory
    constraint — i.e. capacity is truly exhausted, not merely degraded.
    """


class IRError(ReproError):
    """A compiler IR is malformed (duplicate ops, unknown references,
    unsupported schema version)."""


class IRVerificationError(IRError):
    """The IR verifier pass found diagnostics: placements or dataflow
    edges that no lowering could realise.  ``issues`` carries the typed
    findings (one :class:`repro.compiler.verifier.IRIssue` each)."""

    def __init__(self, message: str, issues=()) -> None:
        super().__init__(message)
        self.issues = tuple(issues)


class ProgramError(ReproError):
    """An ISA program is malformed or uses an unknown instruction."""


class SimulationError(ReproError):
    """The simulator reached an invalid state (deadlock, bad access)."""


class SimulationTimeout(SimulationError):
    """The engine watchdog killed a run that exceeded its wall-clock or
    cycle budget.

    ``snapshot`` carries the per-tile tracker state at the moment of the
    kill: a tuple of dicts with ``tile``, ``pc``, ``cycles``,
    ``instructions``, ``halted``, ``blocked`` and ``reason`` (the
    obstructing tracker access, or ``None``), sorted by tile id.
    """

    def __init__(self, message: str, snapshot=()) -> None:
        super().__init__(message)
        self.snapshot = tuple(snapshot)


class ValidationError(ReproError):
    """The differential validation gate failed: engine-vs-analytical
    cycle ratios left their tolerance bands, the models disagree on
    workload ranking, or engine outputs diverged from the numpy
    reference.  ``violations`` carries one human-readable finding per
    failure."""

    def __init__(self, message: str, violations=()) -> None:
        super().__init__(message)
        self.violations = tuple(violations)


class SweepError(ReproError):
    """A sweep aborted (a job failed while ``fail_fast`` was set, or the
    runner itself could not proceed)."""


class SLOViolation(ReproError):
    """A serving run missed its service-level objective: a tenant's (or
    the node's) p99 latency exceeded the target, or availability fell
    below it.  ``violations`` carries one human-readable finding per
    missed objective — the run itself completed and its artifacts were
    written before this was raised."""

    def __init__(self, message: str, violations=()) -> None:
        super().__init__(message)
        self.violations = tuple(violations)


class SynchronizationError(SimulationError):
    """A data-flow tracker observed an access sequence that violates its
    MEMTRACK specification."""
