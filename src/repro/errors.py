"""Exception hierarchy for the ScaleDeep reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch one type to handle any library failure.
"""


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ShapeError(ReproError):
    """A layer was connected to inputs whose shapes it cannot consume."""


class TopologyError(ReproError):
    """A network graph is malformed (cycles, dangling inputs, bad names)."""


class ConfigError(ReproError):
    """An architecture configuration is inconsistent or out of range."""


class MappingError(ReproError):
    """The compiler could not map a network onto the given architecture."""


class ProgramError(ReproError):
    """An ISA program is malformed or uses an unknown instruction."""


class SimulationError(ReproError):
    """The simulator reached an invalid state (deadlock, bad access)."""


class SynchronizationError(SimulationError):
    """A data-flow tracker observed an access sequence that violates its
    MEMTRACK specification."""
