"""Workload analysis: FLOPs, bytes and Bytes/FLOP per layer and step.

This module reproduces the accounting behind the paper's Sec 2.3 workload
analysis: Figure 1 (FLOPs per network evaluation), Figure 4 (per-layer-
class compute/data breakdown for OverFeat) and Figure 5 (kernel-level
FLOPs share and Bytes/FLOP across the benchmark suite).

Conventions (validated against the paper's published numbers):

* A multiply-accumulate counts as 2 FLOPs.  "Connections" in Fig 15 equal
  the MACs of one forward pass.
* Convolution FLOPs are split, as the hardware splits them, into the
  ND_CONV dot products (2 FLOPs per MAC), the ND_ACCUM accumulation of
  per-input-feature partial outputs (1 FLOP per partial element) and the
  ACT_FN activation (1 FLOP per output element).
* SAMP layers cost 1 FLOP per input element (comparison or add), which
  yields the paper's B/F of 5 for single-precision pooling.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Tuple

from repro.dnn.layers import ConvSpec, FCSpec, LayerKind, PoolSpec
from repro.errors import AnalysisError
from repro.dnn.network import LayerNode, Network


class Step(enum.Enum):
    """The three phases of a training iteration (paper Sec 2.2)."""

    FP = "fp"
    BP = "bp"
    WG = "wg"


TRAINING_STEPS: Tuple[Step, ...] = (Step.FP, Step.BP, Step.WG)


class Kernel(enum.Enum):
    """Computational kernels of DNN training (paper Fig 5 rows)."""

    ND_CONV = "nD-convolution"
    MATMUL = "matrix-multiply"
    ND_ACCUM = "nD-accumulate"
    VEC_ELT_MUL = "vector-eltwise-multiply"
    SAMPLING = "sampling"
    ACT_FN = "activation-fn"


#: Which processing tile executes each kernel (paper Sec 3.1): kernels
#: with low Bytes/FLOP go to CompHeavy tiles, the rest to MemHeavy SFUs.
COMPUTE_DOMINANT_KERNELS = frozenset({Kernel.ND_CONV, Kernel.MATMUL})
MEMORY_DOMINANT_KERNELS = frozenset(
    {Kernel.ND_ACCUM, Kernel.VEC_ELT_MUL, Kernel.SAMPLING, Kernel.ACT_FN}
)


def layer_macs(node: LayerNode) -> int:
    """Multiply-accumulates for one forward pass through the layer."""
    spec = node.spec
    if isinstance(spec, ConvSpec):
        fan = spec.total_fan_in(node.input_shapes[0].count)
        return node.output_shape.feature_size * fan * spec.kernel ** 2
    if isinstance(spec, FCSpec):
        return node.input_shapes[0].elements * spec.out_features
    return 0


@dataclass(frozen=True)
class LayerStepProfile:
    """FLOPs and data traffic of one layer during one training step."""

    layer: str
    kind: LayerKind
    step: Step
    flops_by_kernel: Mapping[Kernel, int]
    feature_bytes: int
    weight_bytes: int

    @property
    def flops(self) -> int:
        return sum(self.flops_by_kernel.values())

    @property
    def bytes_total(self) -> int:
        return self.feature_bytes + self.weight_bytes

    @property
    def bytes_per_flop(self) -> float:
        return self.bytes_total / self.flops if self.flops else 0.0


def _conv_profile(
    node: LayerNode, step: Step, dtype_bytes: int
) -> LayerStepProfile:
    spec = node.spec
    assert isinstance(spec, ConvSpec)
    in_shape = node.input_shapes[0]
    out_shape = node.output_shape
    in_per_group = in_shape.count // spec.groups
    macs = layer_macs(node)

    fan_total = spec.total_fan_in(in_shape.count)
    flops: Dict[Kernel, int] = {}
    if step is Step.FP:
        # Dot products for every connected (input, output element) pair,
        # accumulation of the per-input-feature partials, then activation.
        flops[Kernel.ND_CONV] = 2 * macs
        flops[Kernel.ND_ACCUM] = out_shape.feature_size * fan_total
        flops[Kernel.ACT_FN] = out_shape.elements
        feature_bytes = (in_shape.elements + out_shape.elements) * dtype_bytes
    elif step is Step.BP:
        # Errors are convolved with rotated kernels back to the inputs;
        # one partial accumulates per connection on the input side.
        flops[Kernel.ND_CONV] = 2 * macs
        flops[Kernel.ND_ACCUM] = in_shape.feature_size * fan_total
        flops[Kernel.ACT_FN] = in_shape.elements  # derivative masking
        feature_bytes = (in_shape.elements + out_shape.elements) * dtype_bytes
    else:  # WG
        # Gradient of each weight: correlate FP inputs with BP errors,
        # then accumulate the per-image gradient into the running sum.
        flops[Kernel.ND_CONV] = 2 * macs
        flops[Kernel.ND_ACCUM] = node.weights
        feature_bytes = (in_shape.elements + out_shape.elements) * dtype_bytes
    weight_bytes = node.weights * dtype_bytes
    return LayerStepProfile(
        node.name, node.kind, step, flops, feature_bytes, weight_bytes
    )


def _fc_profile(
    node: LayerNode, step: Step, dtype_bytes: int
) -> LayerStepProfile:
    spec = node.spec
    assert isinstance(spec, FCSpec)
    in_elems = node.input_shapes[0].elements
    out_elems = node.output_shape.elements
    macs = layer_macs(node)

    flops: Dict[Kernel, int] = {}
    if step is Step.FP:
        flops[Kernel.MATMUL] = 2 * macs
        flops[Kernel.ND_ACCUM] = out_elems  # bias / partial-sum reduction
        flops[Kernel.ACT_FN] = out_elems
        feature_bytes = (in_elems + out_elems) * dtype_bytes
    elif step is Step.BP:
        flops[Kernel.MATMUL] = 2 * macs
        flops[Kernel.ND_ACCUM] = in_elems
        flops[Kernel.ACT_FN] = in_elems
        feature_bytes = (in_elems + out_elems) * dtype_bytes
    else:  # WG: outer product of FP input and BP error, plus accumulation
        flops[Kernel.VEC_ELT_MUL] = macs
        flops[Kernel.ND_ACCUM] = node.weights
        feature_bytes = (in_elems + out_elems) * dtype_bytes
    weight_bytes = node.weights * dtype_bytes
    return LayerStepProfile(
        node.name, node.kind, step, flops, feature_bytes, weight_bytes
    )


def _samp_profile(
    node: LayerNode, step: Step, dtype_bytes: int
) -> LayerStepProfile:
    in_elems = node.input_shapes[0].elements
    out_elems = node.output_shape.elements
    flops: Dict[Kernel, int] = {}
    feature_bytes = 0
    if step in (Step.FP, Step.BP):
        flops[Kernel.SAMPLING] = in_elems
        feature_bytes = (in_elems + out_elems) * dtype_bytes
    # SAMP layers carry no weights: WG contributes nothing.
    return LayerStepProfile(
        node.name, node.kind, step, flops, feature_bytes, weight_bytes=0
    )


def _join_profile(
    node: LayerNode, step: Step, dtype_bytes: int
) -> LayerStepProfile:
    """Concat moves data only; eltwise-add performs one add per element."""
    in_elems = sum(s.elements for s in node.input_shapes)
    out_elems = node.output_shape.elements
    flops: Dict[Kernel, int] = {}
    feature_bytes = 0
    if step in (Step.FP, Step.BP):
        if node.kind is LayerKind.ELTWISE:
            flops[Kernel.ND_ACCUM] = in_elems
        feature_bytes = (in_elems + out_elems) * dtype_bytes
    return LayerStepProfile(
        node.name, node.kind, step, flops, feature_bytes, weight_bytes=0
    )


def profile(
    node: LayerNode, step: Step, dtype_bytes: int = 4
) -> LayerStepProfile:
    """Compute the FLOPs/bytes profile of ``node`` for one training step."""
    if node.kind is LayerKind.CONV:
        return _conv_profile(node, step, dtype_bytes)
    if node.kind is LayerKind.FC:
        return _fc_profile(node, step, dtype_bytes)
    if node.kind is LayerKind.SAMP:
        return _samp_profile(node, step, dtype_bytes)
    if node.kind in (LayerKind.CONCAT, LayerKind.ELTWISE,
                     LayerKind.SLICE):
        return _join_profile(node, step, dtype_bytes)
    return LayerStepProfile(node.name, node.kind, step, {}, 0, 0)


@dataclass(frozen=True)
class NetworkProfile:
    """Aggregated profile of one network over all training steps."""

    network: str
    per_layer: Mapping[str, Mapping[Step, LayerStepProfile]]

    def step_flops(self, step: Step) -> int:
        return sum(p[step].flops for p in self.per_layer.values())

    @property
    def evaluation_flops(self) -> int:
        """FLOPs of one network evaluation (FP only; paper Fig 1)."""
        return self.step_flops(Step.FP)

    @property
    def training_flops(self) -> int:
        """FLOPs of one training iteration on one image (FP + BP + WG)."""
        return sum(self.step_flops(s) for s in TRAINING_STEPS)

    def kernel_flops(self) -> Dict[Kernel, int]:
        """Total training FLOPs by kernel (Fig 5 'FLOPs %' column)."""
        totals: Dict[Kernel, int] = {k: 0 for k in Kernel}
        for per_step in self.per_layer.values():
            for prof in per_step.values():
                for kernel, fl in prof.flops_by_kernel.items():
                    totals[kernel] += fl
        return totals

    def kernel_bytes_per_flop(self, dtype_bytes: int = 4) -> Dict[Kernel, float]:
        """B/F per kernel (Fig 5 'Bytes/FLOP' column).

        Compute-dominant kernels (ND_CONV, MATMUL) get the traffic of
        the layer steps they dominate; memory-dominant kernels use their
        intrinsic scratchpad access patterns (see
        :func:`intrinsic_bytes_per_flop`)."""
        flops: Dict[Kernel, int] = {k: 0 for k in Kernel}
        traffic: Dict[Kernel, int] = {k: 0 for k in Kernel}
        for per_step in self.per_layer.values():
            for prof in per_step.values():
                candidates = [
                    k for k in prof.flops_by_kernel
                    if k in COMPUTE_DOMINANT_KERNELS
                ]
                for kernel, fl in prof.flops_by_kernel.items():
                    flops[kernel] += fl
                if candidates:
                    dominant = max(
                        candidates, key=lambda k: prof.flops_by_kernel[k]
                    )
                    traffic[dominant] += prof.bytes_total
        out: Dict[Kernel, float] = {}
        for k in Kernel:
            if k in COMPUTE_DOMINANT_KERNELS:
                out[k] = (traffic[k] / flops[k]) if flops[k] else 0.0
            else:
                out[k] = intrinsic_bytes_per_flop(k, dtype_bytes)
        return out


def profile_network(net: Network, dtype_bytes: int = 4) -> NetworkProfile:
    """Profile every layer of ``net`` for FP, BP and WG."""
    per_layer: Dict[str, Dict[Step, LayerStepProfile]] = {}
    for node in net:
        per_layer[node.name] = {
            step: profile(node, step, dtype_bytes) for step in TRAINING_STEPS
        }
    return NetworkProfile(net.name, per_layer)


def evaluation_flops(net: Network) -> int:
    """Scalar FLOPs for one forward evaluation (paper Fig 1)."""
    return profile_network(net).evaluation_flops


def training_flops(net: Network) -> int:
    """Scalar FLOPs for one training iteration on one image."""
    return profile_network(net).training_flops


# ---------------------------------------------------------------------------
# Layer-class decomposition (paper Fig 4)
# ---------------------------------------------------------------------------
class LayerClass(enum.Enum):
    """The paper's four workload classes (Fig 4 columns)."""

    INITIAL_CONV = "initial-conv"
    MID_CONV = "mid-conv"
    FC = "fully-connected"
    SAMP = "sub-sampling"
    OTHER = "other"


#: Input features at or above this spatial extent mark an "initial" CONV
#: layer (the paper's initial CONV layers see 24x24 - 231x231 inputs while
#: mid CONV layers see ~12x12).
INITIAL_CONV_MIN_EXTENT = 24


def classify_layer(node: LayerNode) -> LayerClass:
    """Assign a layer to a Fig 4 workload class."""
    if node.kind is LayerKind.CONV:
        if node.input_shapes[0].height >= INITIAL_CONV_MIN_EXTENT:
            return LayerClass.INITIAL_CONV
        return LayerClass.MID_CONV
    if node.kind is LayerKind.FC:
        return LayerClass.FC
    if node.kind is LayerKind.SAMP:
        return LayerClass.SAMP
    return LayerClass.OTHER


@dataclass(frozen=True)
class ClassSummary:
    """Aggregate compute/data statistics for one workload class."""

    layer_class: LayerClass
    layers: Tuple[str, ...]
    flops_fp_bp: int
    flops_wg: int
    feature_bytes: int
    weight_bytes: int
    bytes_per_flop_fp_bp: float

    @property
    def flops_total(self) -> int:
        return self.flops_fp_bp + self.flops_wg


def layer_class_summary(
    net: Network, dtype_bytes: int = 4
) -> Dict[LayerClass, ClassSummary]:
    """Reproduce the Fig 4 table for an arbitrary network."""
    members: Dict[LayerClass, List[LayerNode]] = {c: [] for c in LayerClass}
    for node in net:
        members[classify_layer(node)].append(node)

    prof = profile_network(net, dtype_bytes)
    out: Dict[LayerClass, ClassSummary] = {}
    for cls, nodes in members.items():
        if not nodes:
            continue
        fp_bp = sum(
            prof.per_layer[n.name][s].flops
            for n in nodes
            for s in (Step.FP, Step.BP)
        )
        wg = sum(prof.per_layer[n.name][Step.WG].flops for n in nodes)
        feat = sum(
            n.output_shape.bytes(dtype_bytes) for n in nodes
        )
        wt = sum(n.weights for n in nodes) * dtype_bytes
        traffic = sum(
            prof.per_layer[n.name][s].bytes_total
            for n in nodes
            for s in (Step.FP, Step.BP)
        )
        out[cls] = ClassSummary(
            layer_class=cls,
            layers=tuple(n.name for n in nodes),
            flops_fp_bp=fp_bp,
            flops_wg=wg,
            feature_bytes=feat,
            weight_bytes=wt,
            bytes_per_flop_fp_bp=traffic / fp_bp if fp_bp else 0.0,
        )
    return out


def intrinsic_bytes_per_flop(kernel: Kernel, dtype_bytes: int = 4) -> float:
    """Scratchpad bytes moved per FLOP for the memory-dominant kernels.

    These match the paper's Fig 5 values at single precision:
    nD-accumulate streams its source operand (4 B/F, the destination
    stays in the SFU-adjacent row buffer), vector multiply streams one
    operand per multiply (4), sampling reads each input element and
    writes one output per window (5 for 2x2), activation reads and
    writes every element (8)."""
    if kernel is Kernel.ND_ACCUM:
        return float(dtype_bytes)
    if kernel is Kernel.VEC_ELT_MUL:
        return float(dtype_bytes)
    if kernel is Kernel.SAMPLING:
        return dtype_bytes * 1.25
    if kernel is Kernel.ACT_FN:
        return dtype_bytes * 2.0
    raise AnalysisError(
        f"{kernel} is compute-dominant; use layer traffic"
    )


def kernel_summary(
    networks: Iterable[Network], dtype_bytes: int = 4
) -> Dict[Kernel, Tuple[float, float]]:
    """Suite-wide (FLOPs fraction, Bytes/FLOP) per kernel — paper Fig 5."""
    networks = list(networks)
    total_flops: Dict[Kernel, int] = {k: 0 for k in Kernel}
    total_bytes: Dict[Kernel, int] = {k: 0 for k in Kernel}
    for net in networks:
        prof = profile_network(net, dtype_bytes)
        for per_step in prof.per_layer.values():
            for p in per_step.values():
                candidates = [
                    k for k in p.flops_by_kernel
                    if k in COMPUTE_DOMINANT_KERNELS
                ]
                for kernel, fl in p.flops_by_kernel.items():
                    total_flops[kernel] += fl
                if candidates:
                    dominant = max(
                        candidates, key=lambda k: p.flops_by_kernel[k]
                    )
                    total_bytes[dominant] += p.bytes_total
    grand_total = sum(total_flops.values()) or 1
    out: Dict[Kernel, Tuple[float, float]] = {}
    for k in Kernel:
        frac = total_flops[k] / grand_total
        if k in COMPUTE_DOMINANT_KERNELS:
            bf = (total_bytes[k] / total_flops[k]) if total_flops[k] else 0.0
        else:
            bf = intrinsic_bytes_per_flop(k, dtype_bytes)
        out[k] = (frac, bf)
    return out
