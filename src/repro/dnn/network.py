"""Network graph: a DAG of layer specs with shape inference.

A :class:`Network` is an immutable, topologically-ordered DAG.  Chains
cover most of the benchmark suite; GoogLeNet (inception branches joined by
concat) and ResNet (shortcut adds) need the general DAG form.

The network caches the inferred output shape and weight count of every
layer, which the analysis, compiler and simulator all consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.dnn.layers import (
    FeatureShape,
    InputSpec,
    LayerKind,
    LayerSpec,
    is_weighted,
)
from repro.errors import TopologyError


@dataclass(frozen=True)
class LayerNode:
    """A placed layer: its spec, resolved inputs, and inferred shapes."""

    spec: LayerSpec
    input_names: Tuple[str, ...]
    input_shapes: Tuple[FeatureShape, ...]
    output_shape: FeatureShape
    weights: int

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def kind(self) -> LayerKind:
        return self.spec.kind


class Network:
    """An immutable DNN topology.

    Parameters
    ----------
    name:
        Human-readable network name (e.g. ``"AlexNet"``).
    layers:
        Layer specs in any order that respects dependencies.
    wiring:
        Maps each non-input layer name to the names of its input layers.
        Layers missing from the mapping are chained to the previous layer
        in ``layers`` order (the common sequential case).
    """

    def __init__(
        self,
        name: str,
        layers: Sequence[LayerSpec],
        wiring: Optional[Mapping[str, Sequence[str]]] = None,
    ) -> None:
        self.name = name
        wiring = dict(wiring or {})
        if not layers:
            raise TopologyError(f"network {name!r} has no layers")

        seen: Dict[str, LayerNode] = {}
        nodes: List[LayerNode] = []
        prev_name: Optional[str] = None
        for spec in layers:
            if spec.name in seen:
                raise TopologyError(
                    f"network {name!r}: duplicate layer name {spec.name!r}"
                )
            if isinstance(spec, InputSpec):
                input_names: Tuple[str, ...] = ()
            elif spec.name in wiring:
                input_names = tuple(wiring.pop(spec.name))
            elif prev_name is not None:
                input_names = (prev_name,)
            else:
                raise TopologyError(
                    f"network {name!r}: first layer {spec.name!r} must be an "
                    "input layer"
                )
            input_shapes = []
            for src in input_names:
                if src not in seen:
                    raise TopologyError(
                        f"network {name!r}: layer {spec.name!r} consumes "
                        f"{src!r} which is not defined earlier"
                    )
                input_shapes.append(seen[src].output_shape)
            shape = spec.infer_shape(tuple(input_shapes))
            node = LayerNode(
                spec=spec,
                input_names=input_names,
                input_shapes=tuple(input_shapes),
                output_shape=shape,
                weights=spec.weight_count(tuple(input_shapes)),
            )
            seen[spec.name] = node
            nodes.append(node)
            prev_name = spec.name

        if wiring:
            raise TopologyError(
                f"network {name!r}: wiring refers to unknown layers "
                f"{sorted(wiring)}"
            )
        self._nodes: Tuple[LayerNode, ...] = tuple(nodes)
        self._by_name: Dict[str, LayerNode] = seen
        self._consumers: Dict[str, Tuple[str, ...]] = self._build_consumers()

    def _build_consumers(self) -> Dict[str, Tuple[str, ...]]:
        consumers: Dict[str, List[str]] = {n.name: [] for n in self._nodes}
        for node in self._nodes:
            for src in node.input_names:
                consumers[src].append(node.name)
        return {k: tuple(v) for k, v in consumers.items()}

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[LayerNode]:
        return iter(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __getitem__(self, name: str) -> LayerNode:
        try:
            return self._by_name[name]
        except KeyError:
            raise TopologyError(
                f"network {self.name!r} has no layer {name!r}"
            ) from None

    @property
    def nodes(self) -> Tuple[LayerNode, ...]:
        return self._nodes

    @property
    def input(self) -> LayerNode:
        return self._nodes[0]

    @property
    def output(self) -> LayerNode:
        return self._nodes[-1]

    def consumers(self, name: str) -> Tuple[str, ...]:
        """Names of the layers that consume ``name``'s output."""
        return self._consumers[name]

    def layers_of_kind(self, *kinds: LayerKind) -> Tuple[LayerNode, ...]:
        return tuple(n for n in self._nodes if n.kind in kinds)

    # ------------------------------------------------------------------
    # Summary statistics (paper Fig 15 columns)
    # ------------------------------------------------------------------
    def layer_counts(self) -> Dict[LayerKind, int]:
        """Number of layers of each kind."""
        counts: Dict[LayerKind, int] = {}
        for node in self._nodes:
            counts[node.kind] = counts.get(node.kind, 0) + 1
        return counts

    @property
    def neuron_count(self) -> int:
        """Total neurons: output elements of all CONV and FC layers."""
        return sum(
            n.output_shape.elements
            for n in self._nodes
            if n.kind in (LayerKind.CONV, LayerKind.FC)
        )

    @property
    def weight_count(self) -> int:
        """Total learnable parameters."""
        return sum(n.weights for n in self._nodes)

    @property
    def connection_count(self) -> int:
        """Total connections == MACs for one forward pass (paper Fig 15)."""
        # Local import avoids a cycle: analysis imports network types.
        from repro.dnn.analysis import layer_macs

        return sum(layer_macs(n) for n in self._nodes)

    def weighted_layers(self) -> Tuple[LayerNode, ...]:
        return tuple(n for n in self._nodes if is_weighted(n.spec))

    def describe(self) -> str:
        """A human-readable multi-line summary of the topology."""
        lines = [f"Network {self.name}: {len(self)} layers"]
        for node in self._nodes:
            srcs = ",".join(node.input_names) or "-"
            lines.append(
                f"  {node.name:<14} {node.kind.value:<7} "
                f"out={str(node.output_shape):<14} weights={node.weights:>12,} "
                f"<- {srcs}"
            )
        lines.append(
            f"  totals: neurons={self.neuron_count:,} "
            f"weights={self.weight_count:,} "
            f"connections={self.connection_count:,}"
        )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Network({self.name!r}, layers={len(self)})"
