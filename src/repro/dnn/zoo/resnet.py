"""ResNet-18 and ResNet-34 (He et al., 2015) — ILSVRC-2015 winner family.

Fig 15 rows:
  ResNet18: 23 layers (17/1/5), 2.31M neurons, 11.5M weights, 1.79B conn.
  ResNet34: 39 layers (33/1/5), 3.56M neurons, 21.1M weights, 3.64B conn.

Both use basic (two-3x3) residual blocks with 1x1 projection shortcuts at
stage transitions.  Batch normalisation folds into the convolution
weights for the purposes of FLOP/weight accounting and is not modelled
separately (its FLOPs are absorbed in the activation-function term).
"""

from __future__ import annotations

from typing import Sequence

from repro.dnn.builder import NetworkBuilder
from repro.dnn.layers import Activation, PoolMode
from repro.dnn.network import Network

#: Blocks per stage for each depth.
_STAGES = {18: (2, 2, 2, 2), 34: (3, 4, 6, 3)}
_WIDTHS = (64, 128, 256, 512)


def _basic_block(
    b: NetworkBuilder, tag: str, source: str, width: int, stride: int
) -> str:
    """Add one basic residual block; returns the join layer's name."""
    c1 = b.conv(
        width, kernel=3, stride=stride, pad=1, name=f"{tag}_conv1",
        inputs=[source],
    )
    c2 = b.conv(
        width, kernel=3, pad=1, activation=Activation.NONE,
        name=f"{tag}_conv2", inputs=[c1],
    )
    if stride != 1:
        shortcut = b.conv(
            width, kernel=1, stride=stride, activation=Activation.NONE,
            name=f"{tag}_proj", inputs=[source],
        )
    else:
        shortcut = source
    return b.add([c2, shortcut], name=f"{tag}_add")


def _resnet(depth: int, num_classes: int) -> Network:
    blocks: Sequence[int] = _STAGES[depth]
    b = NetworkBuilder(f"ResNet{depth}")
    b.input(3, 224)
    b.conv(64, kernel=7, stride=2, pad=3, name="conv1")  # -> 112x112
    cur = b.pool(3, stride=2, pad=1, name="pool1")  # -> 56x56
    for stage, (count, width) in enumerate(zip(blocks, _WIDTHS), start=1):
        for block in range(count):
            stride = 2 if (stage > 1 and block == 0) else 1
            cur = _basic_block(b, f"s{stage}b{block}", cur, width, stride)
    cur = b.global_pool(mode=PoolMode.AVG, name="gpool", inputs=[cur])
    b.fc(num_classes, activation=Activation.SOFTMAX, name="fc", inputs=[cur])
    return b.build()


def resnet18(num_classes: int = 1000) -> Network:
    """Build ResNet-18 for 224x224 RGB inputs."""
    return _resnet(18, num_classes)


def resnet34(num_classes: int = 1000) -> Network:
    """Build ResNet-34 for 224x224 RGB inputs."""
    return _resnet(34, num_classes)
