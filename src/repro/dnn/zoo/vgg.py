"""VGG configurations A, D and E (Simonyan & Zisserman, 2014).

ILSVRC-2014 runner-up family; the deepest and most weight-heavy networks
of the benchmark suite.

Fig 15 rows:
  VGG-A: 16 layers (8/3/5),  7.43M neurons, 132.8M weights,  7.46B conn.
  VGG-D: 21 layers (13/3/5), 13.5M neurons, 138.3M weights, 15.3B conn.
  VGG-E: 24 layers (16/3/5), 14.9M neurons, 143.6M weights, 19.4B conn.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.dnn.builder import NetworkBuilder
from repro.dnn.layers import Activation
from repro.dnn.network import Network

#: Convolution widths per stage, one tuple per pooling stage.
_VGG_STAGES = {
    "A": ((64,), (128,), (256, 256), (512, 512), (512, 512)),
    "D": ((64, 64), (128, 128), (256, 256, 256), (512, 512, 512),
          (512, 512, 512)),
    "E": ((64, 64), (128, 128), (256, 256, 256, 256), (512, 512, 512, 512),
          (512, 512, 512, 512)),
}


def _vgg(config: str, num_classes: int) -> Network:
    """Build a VGG variant from its per-stage convolution widths."""
    stages: Sequence[Tuple[int, ...]] = _VGG_STAGES[config]
    b = NetworkBuilder(f"VGG-{config}")
    b.input(3, 224)
    layer_idx = 0
    for stage_idx, widths in enumerate(stages, start=1):
        for width in widths:
            layer_idx += 1
            b.conv(width, kernel=3, pad=1, name=f"conv{layer_idx}")
        b.pool(2, stride=2, name=f"pool{stage_idx}")
    b.fc(4096, name="fc1")
    b.fc(4096, name="fc2")
    b.fc(num_classes, activation=Activation.SOFTMAX, name="fc3")
    return b.build()


def vgg_a(num_classes: int = 1000) -> Network:
    """VGG configuration A (11 weight layers)."""
    return _vgg("A", num_classes)


def vgg_d(num_classes: int = 1000) -> Network:
    """VGG configuration D (16 weight layers)."""
    return _vgg("D", num_classes)


def vgg_e(num_classes: int = 1000) -> Network:
    """VGG configuration E (19 weight layers)."""
    return _vgg("E", num_classes)
