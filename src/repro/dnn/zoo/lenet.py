"""LeNet-5 (LeCun et al., 1998) with its classic C3 connection table.

Not part of the paper's benchmark suite, but the canonical example of
the "connection table denoting which input and output features are
connected" that Sec 2.2 mentions: C3's 16 outputs each connect to a
specific subset of S2's 6 features.
"""

from __future__ import annotations

from repro.dnn.builder import NetworkBuilder
from repro.dnn.layers import Activation, PoolMode
from repro.dnn.network import Network

#: The original C3 table (LeCun et al. 1998, Table 1): outputs 0-5 see
#: three contiguous inputs, 6-11 see four contiguous, 12-14 see four
#: split, and 15 sees all six.
LENET_C3_TABLE = (
    (0, 1, 2), (1, 2, 3), (2, 3, 4), (3, 4, 5), (0, 4, 5), (0, 1, 5),
    (0, 1, 2, 3), (1, 2, 3, 4), (2, 3, 4, 5), (0, 3, 4, 5),
    (0, 1, 4, 5), (0, 1, 2, 5),
    (0, 1, 3, 4), (1, 2, 4, 5), (0, 2, 3, 5),
    (0, 1, 2, 3, 4, 5),
)


def lenet5(num_classes: int = 10) -> Network:
    """Build LeNet-5 for 32x32 single-channel inputs."""
    b = NetworkBuilder("LeNet-5")
    b.input(1, 32)
    b.conv(6, kernel=5, activation=Activation.TANH, name="c1")
    b.pool(2, mode=PoolMode.AVG, name="s2")
    b.table_conv(
        LENET_C3_TABLE, kernel=5, activation=Activation.TANH, name="c3"
    )
    b.pool(2, mode=PoolMode.AVG, name="s4")
    b.conv(120, kernel=5, activation=Activation.TANH, name="c5")
    b.fc(84, activation=Activation.TANH, name="f6")
    b.fc(num_classes, activation=Activation.SOFTMAX, name="output")
    return b.build()
