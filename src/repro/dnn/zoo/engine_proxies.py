"""Engine-scale proxies for the Fig 15 benchmark suite.

The functional engine executes one tile's scratchpad-resident state at a
time, and the full-size ILSVRC networks do not fit: AlexNet's conv1
alone produces 145,200 output words against a 131,072-word scratchpad.
Historically ``validate_zoo`` simply skipped everything above
``ENGINE_WEIGHT_LIMIT``, leaving most of the suite functionally
unvalidated.

This module shrinks each benchmark into an *engine proxy*: the same
topology — every branch, join, grouped convolution, padded pool and
activation of the original, in the original wiring — with channel
counts divided by a per-net factor and a smaller input plane, chosen so
the whole network fits on the engine mesh.  Functional validation is a
topology/lowering property, not a capacity property: a proxy exercises
exactly the same instruction templates, tracker plans and superop
fusion spans as its parent, so an engine-vs-reference match on the
proxy validates the lowering for the full network.

``engine_proxy(name)`` returns the proxy for a canonical benchmark
name; networks that already fit the engine validate as themselves.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Tuple

from repro.dnn.layers import ConvSpec, FCSpec, FeatureShape, LayerKind, SliceSpec
from repro.dnn.network import Network
from repro.errors import MappingError

#: Per-benchmark (channel divisor, input edge) — tuned so every proxy
#: compiles under the DAG dialect and engine-executes in well under a
#: second.  Input edges respect each family's stride/pool chain (e.g.
#: AlexNet's 11x11/4 stem followed by three 3x3/2 pools needs >= 75 px
#: to keep every pool window inside its input).
PROXY_PARAMS: Dict[str, Tuple[int, int]] = {
    "AlexNet": (16, 79),
    "ZF": (16, 80),
    "CNN-S": (16, 80),
    "OF-Fast": (8, 75),
    "OF-Acc": (16, 78),
    "GoogLeNet": (8, 64),
    "ResNet18": (8, 64),
    "ResNet34": (8, 64),
    "VGG-A": (16, 64),
    "VGG-D": (16, 64),
    "VGG-E": (16, 64),
    "NiN": (8, 79),
}


def shrink_for_engine(
    net: Network, channel_div: int, input_size: int
) -> Network:
    """Rebuild ``net`` with channels divided by ``channel_div`` and an
    ``input_size``-pixel input plane, preserving the topology exactly.

    Channel counts round up to a multiple of the largest group count in
    the network, so grouped convolutions stay divisible on both sides;
    branches with equal widths shrink to equal widths (element-wise
    joins stay shape-consistent).  Connection-table convolutions and
    feature slices have channel-indexed semantics that do not survive
    rescaling and are rejected.
    """
    group_mult = 1
    for node in net:
        if isinstance(node.spec, ConvSpec):
            group_mult = max(group_mult, node.spec.groups)

    def scale(channels: int) -> int:
        s = max(1, round(channels / channel_div))
        return ((s + group_mult - 1) // group_mult) * group_mult

    layers = []
    wiring = {}
    for node in net:
        spec = node.spec
        if node.kind is LayerKind.INPUT:
            shape = spec.shape
            layers.append(replace(
                spec,
                shape=FeatureShape(shape.count, input_size, input_size),
            ))
            continue
        wiring[spec.name] = list(node.input_names)
        if isinstance(spec, ConvSpec):
            if spec.connection_table is not None:
                raise MappingError(
                    f"{spec.name}: connection-table convolutions cannot "
                    "be channel-rescaled"
                )
            layers.append(
                replace(spec, out_features=scale(spec.out_features))
            )
        elif isinstance(spec, FCSpec):
            layers.append(
                replace(spec, out_features=scale(spec.out_features))
            )
        elif isinstance(spec, SliceSpec):
            raise MappingError(
                f"{spec.name}: feature slices cannot be channel-rescaled"
            )
        else:
            layers.append(spec)
    return Network(f"{net.name}/proxy", layers, wiring)


def engine_scale(net: Network, limit: int):
    """``(run_net, note)``: the network the engine should execute under
    a ``limit``-weight budget.

    Returns ``net`` itself (note ``None``) when it fits, its registered
    proxy plus a descriptive note when oversize, and ``(None, note)``
    when oversize with no proxy registered."""
    if net.weight_count <= limit:
        return net, None
    if net.name not in PROXY_PARAMS:
        return None, (
            f"{net.weight_count:,} weights exceed the engine limit "
            f"({limit:,}) and no engine proxy is registered"
        )
    div, size = PROXY_PARAMS[net.name]
    proxy = shrink_for_engine(net, div, size)
    note = (
        f"engine ran the {net.name} proxy (channels/{div}, {size}px "
        f"input, {proxy.weight_count:,} of {net.weight_count:,} weights)"
    )
    return proxy, note


def engine_proxy(name: str) -> Network:
    """The engine-scale proxy for canonical benchmark ``name``.

    Raises ``KeyError`` for networks without a registered proxy (the
    small nets that already fit the engine validate as themselves).
    """
    from repro.dnn import zoo

    div, size = PROXY_PARAMS[name]
    return shrink_for_engine(zoo.load(name), div, size)


__all__ = [
    "PROXY_PARAMS", "engine_proxy", "engine_scale", "shrink_for_engine",
]
