"""GoogLeNet / Inception-v1 (Szegedy et al., 2014) — ILSVRC-2014 winner.

Fig 15 row: 17 layers (11/1/5), 2.64M neurons, 6.8M weights,
2.44B connections.  The paper counts each inception module as one CONV
layer; this model expands the nine modules into their full branch
structure (1x1 / 3x3-reduce+3x3 / 5x5-reduce+5x5 / pool-proj, concat),
which is what the compiler actually needs to map.
"""

from __future__ import annotations

from repro.dnn.builder import NetworkBuilder
from repro.dnn.layers import Activation, PoolMode
from repro.dnn.network import Network

#: Inception module widths: (1x1, 3x3 reduce, 3x3, 5x5 reduce, 5x5, pool
#: projection), in network order.
_INCEPTION = {
    "3a": (64, 96, 128, 16, 32, 32),
    "3b": (128, 128, 192, 32, 96, 64),
    "4a": (192, 96, 208, 16, 48, 64),
    "4b": (160, 112, 224, 24, 64, 64),
    "4c": (128, 128, 256, 24, 64, 64),
    "4d": (112, 144, 288, 32, 64, 64),
    "4e": (256, 160, 320, 32, 128, 128),
    "5a": (256, 160, 320, 32, 128, 128),
    "5b": (384, 192, 384, 48, 128, 128),
}


def _inception(b: NetworkBuilder, tag: str, source: str) -> str:
    """Add one inception module reading from ``source``; returns the
    concat layer name."""
    p1, p3r, p3, p5r, p5, pp = _INCEPTION[tag]
    b1 = b.conv(p1, kernel=1, name=f"inc{tag}_1x1", inputs=[source])
    r3 = b.conv(p3r, kernel=1, name=f"inc{tag}_3x3r", inputs=[source])
    b3 = b.conv(p3, kernel=3, pad=1, name=f"inc{tag}_3x3", inputs=[r3])
    r5 = b.conv(p5r, kernel=1, name=f"inc{tag}_5x5r", inputs=[source])
    b5 = b.conv(p5, kernel=5, pad=2, name=f"inc{tag}_5x5", inputs=[r5])
    pool = b.pool(3, stride=1, pad=1, name=f"inc{tag}_pool", inputs=[source])
    bp = b.conv(pp, kernel=1, name=f"inc{tag}_poolproj", inputs=[pool])
    return b.concat([b1, b3, b5, bp], name=f"inc{tag}_out")


def googlenet(num_classes: int = 1000) -> Network:
    """Build GoogLeNet (main classifier path; auxiliary heads omitted,
    as they are dropped at inference and negligible in training FLOPs)."""
    b = NetworkBuilder("GoogLeNet")
    b.input(3, 224)
    b.conv(64, kernel=7, stride=2, pad=3, name="conv1")  # -> 112x112
    b.pool(3, stride=2, pad=1, name="pool1")  # -> 56x56
    b.conv(64, kernel=1, name="conv2_reduce")
    b.conv(192, kernel=3, pad=1, name="conv2")
    b.pool(3, stride=2, pad=1, name="pool2")  # -> 28x28
    cur = b.cursor
    cur = _inception(b, "3a", cur)
    cur = _inception(b, "3b", cur)
    cur = b.pool(3, stride=2, pad=1, name="pool3", inputs=[cur])  # -> 14x14
    for tag in ("4a", "4b", "4c", "4d", "4e"):
        cur = _inception(b, tag, cur)
    cur = b.pool(3, stride=2, pad=1, name="pool4", inputs=[cur])  # -> 7x7
    cur = _inception(b, "5a", cur)
    cur = _inception(b, "5b", cur)
    cur = b.global_pool(mode=PoolMode.AVG, name="gpool", inputs=[cur])
    b.fc(num_classes, activation=Activation.SOFTMAX, name="fc", inputs=[cur])
    return b.build()
