"""CNN-S (Chatfield et al., 2014, "Return of the Devil in the Details").

Fig 15 row: 11 layers (5/3/3), 1.70M neurons, 80.4M weights,
2.57B connections.  The "slow" variant: 7x7 stride-2 conv1 and 512-wide
mid CONV layers, with an aggressive 3x3 stride-3 final pool that keeps
the first FC layer to ~52M weights.
"""

from __future__ import annotations

from repro.dnn.builder import NetworkBuilder
from repro.dnn.layers import Activation
from repro.dnn.network import Network


def cnn_s(num_classes: int = 1000) -> Network:
    """Build CNN-S for 224x224 RGB inputs."""
    b = NetworkBuilder("CNN-S")
    b.input(3, 224)
    b.conv(96, kernel=7, stride=2, name="conv1")  # -> 109x109
    b.pool(3, stride=3, pad=1, name="pool1")  # -> 37x37
    b.conv(256, kernel=5, pad=1, name="conv2")  # -> 35x35
    b.pool(2, stride=2, name="pool2")  # -> 17x17
    b.conv(512, kernel=3, pad=1, name="conv3")
    b.conv(512, kernel=3, pad=1, name="conv4")
    b.conv(512, kernel=3, pad=1, name="conv5")
    b.pool(3, stride=3, name="pool3")  # -> 5x5
    b.fc(4096, name="fc6")
    b.fc(4096, name="fc7")
    b.fc(num_classes, activation=Activation.SOFTMAX, name="fc8")
    return b.build()
