"""The benchmark suite: 11 DNNs from the paper's Fig 15, plus test nets.

Each factory returns a freshly-built :class:`~repro.dnn.network.Network`.
``BENCHMARKS`` preserves the paper's ordering (smallest to largest, as in
Fig 16), and ``PAPER_FIG15`` records the published layer/neuron/weight/
connection counts used by the reproduction tests and benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from repro.dnn.network import Network
from repro.dnn.zoo.alexnet import alexnet
from repro.dnn.zoo.zf import zf
from repro.dnn.zoo.cnn_s import cnn_s
from repro.dnn.zoo.overfeat import overfeat_accurate, overfeat_fast
from repro.dnn.zoo.googlenet import googlenet
from repro.dnn.zoo.vgg import vgg_a, vgg_d, vgg_e
from repro.dnn.zoo.resnet import resnet18, resnet34
from repro.dnn.zoo.tiny import tiny_cnn, tiny_mlp
from repro.dnn.zoo.lenet import LENET_C3_TABLE, lenet5
from repro.dnn.zoo.nin import nin

#: Benchmark factories in the paper's Fig 16 presentation order.
BENCHMARKS: Dict[str, Callable[[], Network]] = {
    "AlexNet": alexnet,
    "ZF": zf,
    "ResNet18": resnet18,
    "GoogLeNet": googlenet,
    "CNN-S": cnn_s,
    "OF-Fast": overfeat_fast,
    "ResNet34": resnet34,
    "OF-Acc": overfeat_accurate,
    "VGG-A": vgg_a,
    "VGG-D": vgg_d,
    "VGG-E": vgg_e,
}


@dataclass(frozen=True)
class Fig15Row:
    """One row of the paper's benchmark table (Fig 15)."""

    layers: int
    conv_layers: int
    fc_layers: int
    samp_layers: int
    neurons_m: float  # millions
    weights_m: float  # millions
    connections_b: float  # billions


#: Published Fig 15 values.  Layer *counts* follow the paper's own
#: bookkeeping (inception modules / residual blocks are counted as single
#: CONV layers there), so tests compare neurons/weights/connections —
#: the quantities that actually drive the evaluation — and treat layer
#: counts as informational.
PAPER_FIG15: Dict[str, Fig15Row] = {
    "AlexNet": Fig15Row(11, 5, 3, 3, 0.65, 60.9, 0.66),
    "ZF": Fig15Row(11, 5, 3, 3, 1.51, 62.3, 1.10),
    "CNN-S": Fig15Row(11, 5, 3, 3, 1.70, 80.4, 2.57),
    "OF-Fast": Fig15Row(11, 5, 3, 3, 0.82, 145.9, 2.66),
    "OF-Acc": Fig15Row(12, 6, 3, 3, 2.05, 144.6, 5.22),
    "GoogLeNet": Fig15Row(17, 11, 1, 5, 2.64, 6.8, 2.44),
    "VGG-A": Fig15Row(16, 8, 3, 5, 7.43, 132.8, 7.46),
    "VGG-D": Fig15Row(21, 13, 3, 5, 13.5, 138.3, 15.3),
    "VGG-E": Fig15Row(24, 16, 3, 5, 14.9, 143.6, 19.4),
    "ResNet18": Fig15Row(23, 17, 1, 5, 2.31, 11.5, 1.79),
    "ResNet34": Fig15Row(39, 33, 1, 5, 3.56, 21.1, 3.64),
}


#: Additional loadable networks beyond the Fig 15 suite.
EXTRAS: Dict[str, Callable[[], Network]] = {
    "LeNet-5": lenet5,
    "NiN": nin,
    "TinyCNN": tiny_cnn,
    "TinyMLP": tiny_mlp,
}


#: Shorthand spellings accepted by :func:`resolve` (keys are already in
#: normalised form: lowercase with punctuation stripped).
ALIASES: Dict[str, str] = {
    "tiny": "TinyCNN",
    "mlp": "TinyMLP",
    "lenet": "LeNet-5",
    "lenet5": "LeNet-5",
    "overfeatfast": "OF-Fast",
    "overfeataccurate": "OF-Acc",
    "vgg16": "VGG-D",
    "vgg19": "VGG-E",
}


def _normalize(name: str) -> str:
    return "".join(ch for ch in name.lower() if ch.isalnum())


def available() -> list:
    """All loadable network names (suite + extras), sorted."""
    return sorted(BENCHMARKS) + sorted(EXTRAS)


def resolve(name: str) -> str:
    """Canonical network name for ``name``, accepting case-insensitive
    spellings (``alexnet``) and shorthand aliases (``tiny``).  Raises
    ``KeyError`` when nothing matches."""
    if name in BENCHMARKS or name in EXTRAS:
        return name
    key = _normalize(name)
    if key in ALIASES:
        return ALIASES[key]
    for candidate in available():
        if _normalize(candidate) == key:
            return candidate
    raise KeyError(
        f"unknown network {name!r}; available: {available()}"
    )


def load(name: str) -> Network:
    """Build a network by name: the Fig 15 suite plus the extras.

    Accepts canonical names, case-insensitive spellings and the
    :data:`ALIASES` shorthands."""
    canonical = resolve(name)
    factory = BENCHMARKS.get(canonical) or EXTRAS[canonical]
    return factory()


def all_benchmarks() -> Dict[str, Network]:
    """Build the full suite keyed by benchmark name."""
    return {name: factory() for name, factory in BENCHMARKS.items()}


__all__ = [
    "ALIASES",
    "BENCHMARKS",
    "EXTRAS",
    "PAPER_FIG15",
    "Fig15Row",
    "all_benchmarks",
    "available",
    "resolve",
    "alexnet",
    "cnn_s",
    "googlenet",
    "lenet5",
    "LENET_C3_TABLE",
    "nin",
    "load",
    "overfeat_accurate",
    "overfeat_fast",
    "resnet18",
    "resnet34",
    "tiny_cnn",
    "tiny_mlp",
    "vgg_a",
    "vgg_d",
    "vgg_e",
    "zf",
]
