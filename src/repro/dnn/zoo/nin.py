"""Network-in-Network (Lin et al., 2013) — an extra beyond Fig 15.

NiN's "mlpconv" stacks (a spatial convolution followed by 1x1
cross-feature convolutions) and its global-average-pooling classifier
head are patterns GoogLeNet later adopted; as an extra zoo member it
exercises 1x1-heavy mappings without any FC layer at all — an edge case
for the compiler's FC-side split (the FcLayer chips sit idle).
"""

from __future__ import annotations

from repro.dnn.builder import NetworkBuilder
from repro.dnn.layers import Activation, PoolMode
from repro.dnn.network import Network


def _mlpconv(b: NetworkBuilder, tag: str, width: int, kernel: int,
             stride: int, pad: int) -> None:
    b.conv(width, kernel=kernel, stride=stride, pad=pad,
           name=f"{tag}_conv")
    b.conv(width, kernel=1, name=f"{tag}_cccp1")
    b.conv(width, kernel=1, name=f"{tag}_cccp2")


def nin(num_classes: int = 1000) -> Network:
    """Build Network-in-Network for 224x224 RGB inputs."""
    b = NetworkBuilder("NiN")
    b.input(3, 224)
    _mlpconv(b, "m1", 96, kernel=11, stride=4, pad=0)
    b.pool(3, stride=2, name="pool1")
    _mlpconv(b, "m2", 256, kernel=5, stride=1, pad=2)
    b.pool(3, stride=2, name="pool2")
    _mlpconv(b, "m3", 384, kernel=3, stride=1, pad=1)
    b.pool(3, stride=2, name="pool3")
    # The final mlpconv maps straight to the class count; global
    # average pooling replaces the FC classifier entirely.
    b.conv(1024, kernel=3, pad=1, name="m4_conv")
    b.conv(1024, kernel=1, name="m4_cccp1")
    b.conv(num_classes, kernel=1, activation=Activation.NONE,
           name="m4_cccp2")
    b.global_pool(mode=PoolMode.AVG, name="gpool")
    return b.build()
