"""Small networks for tests, examples and the functional engine.

These are not part of the paper's benchmark suite; they exist so the
instruction-level simulator and the numpy trainer can run end-to-end in
seconds.
"""

from __future__ import annotations

from repro.dnn.builder import NetworkBuilder
from repro.dnn.layers import Activation
from repro.dnn.network import Network


def tiny_cnn(
    num_classes: int = 10,
    in_size: int = 16,
    in_features: int = 3,
) -> Network:
    """A LeNet-scale CNN: two CONV+SAMP stages and two FC layers."""
    b = NetworkBuilder("TinyCNN")
    b.input(in_features, in_size)
    b.conv(8, kernel=3, pad=1, name="conv1")
    b.pool(2, name="pool1")
    b.conv(16, kernel=3, pad=1, name="conv2")
    b.pool(2, name="pool2")
    b.fc(32, name="fc1")
    b.fc(num_classes, activation=Activation.SOFTMAX, name="fc2")
    return b.build()


def tiny_mlp(
    num_classes: int = 4, in_features: int = 16, hidden: int = 24
) -> Network:
    """A two-layer perceptron exercising only the FC path."""
    b = NetworkBuilder("TinyMLP")
    b.input(in_features, 1)
    b.fc(hidden, name="fc1")
    b.fc(num_classes, activation=Activation.SOFTMAX, name="fc2")
    return b.build()
