"""ZF / Clarifai network (Zeiler & Fergus, 2013) — ILSVRC-2013 winner.

Fig 15 row: 11 layers (5/3/3), 1.51M neurons, 62.3M weights,
1.10B connections.  Relative to AlexNet it shrinks conv1 to 7x7 stride 2,
which is what inflates the early feature maps (and the neuron count).
"""

from __future__ import annotations

from repro.dnn.builder import NetworkBuilder
from repro.dnn.layers import Activation
from repro.dnn.network import Network


def zf(num_classes: int = 1000) -> Network:
    """Build the ZF network for 225x225 RGB inputs."""
    b = NetworkBuilder("ZF")
    b.input(3, 225)
    b.conv(96, kernel=7, stride=2, name="conv1")  # -> 110x110
    b.pool(3, stride=2, name="pool1")  # -> 54x54
    b.conv(256, kernel=5, stride=2, name="conv2")  # -> 25x25
    b.pool(3, stride=2, name="pool2")  # -> 12x12
    b.conv(384, kernel=3, pad=1, name="conv3")
    b.conv(384, kernel=3, pad=1, name="conv4")
    b.conv(256, kernel=3, pad=1, name="conv5")
    b.pool(3, stride=2, pad=1, name="pool3")  # -> 6x6
    b.fc(4096, name="fc6")
    b.fc(4096, name="fc7")
    b.fc(num_classes, activation=Activation.SOFTMAX, name="fc8")
    return b.build()
