"""OverFeat fast and accurate models (Sermanet et al., 2013).

OverFeat won the ILSVRC-2013 localization task and is the paper's running
workload-analysis example (Sec 2.3, Fig 4).

Fig 15 rows:
  OF-Fast:  11 layers (5/3/3), 0.82M neurons, 145.9M weights, 2.66B conn.
  OF-Acc:   12 layers (6/3/3), 2.05M neurons, 144.6M weights, 5.22B conn.
"""

from __future__ import annotations

from repro.dnn.builder import NetworkBuilder
from repro.dnn.layers import Activation
from repro.dnn.network import Network


def overfeat_fast(num_classes: int = 1000) -> Network:
    """Build the OverFeat fast model for 231x231 RGB inputs."""
    b = NetworkBuilder("OF-Fast")
    b.input(3, 231)
    b.conv(96, kernel=11, stride=4, name="conv1")  # -> 56x56
    b.pool(2, stride=2, name="pool1")  # -> 28x28
    b.conv(256, kernel=5, name="conv2")  # -> 24x24
    b.pool(2, stride=2, name="pool2")  # -> 12x12
    b.conv(512, kernel=3, pad=1, name="conv3")
    b.conv(1024, kernel=3, pad=1, name="conv4")
    b.conv(1024, kernel=3, pad=1, name="conv5")
    b.pool(2, stride=2, name="pool3")  # -> 6x6
    b.fc(3072, name="fc6")
    b.fc(4096, name="fc7")
    b.fc(num_classes, activation=Activation.SOFTMAX, name="fc8")
    return b.build()


def overfeat_accurate(num_classes: int = 1000) -> Network:
    """Build the OverFeat accurate model for 221x221 RGB inputs."""
    b = NetworkBuilder("OF-Acc")
    b.input(3, 221)
    b.conv(96, kernel=7, stride=2, name="conv1")  # -> 108x108
    b.pool(3, stride=3, name="pool1")  # -> 36x36
    b.conv(256, kernel=7, name="conv2")  # -> 30x30
    b.pool(2, stride=2, name="pool2")  # -> 15x15
    b.conv(512, kernel=3, pad=1, name="conv3")
    b.conv(512, kernel=3, pad=1, name="conv4")
    b.conv(1024, kernel=3, pad=1, name="conv5")
    b.conv(1024, kernel=3, pad=1, name="conv6")
    b.pool(3, stride=3, name="pool3")  # -> 5x5
    b.fc(4096, name="fc7")
    b.fc(4096, name="fc8")
    b.fc(num_classes, activation=Activation.SOFTMAX, name="fc9")
    return b.build()
