"""AlexNet (Krizhevsky et al., 2012) — ILSVRC-2012 winner.

Fig 15 row: 11 layers (5 CONV / 3 FC / 3 SAMP), 0.65M neurons,
60.9M weights, 0.66B connections.  Grouped convolutions in conv2/4/5
model the original two-GPU split, which is what brings the weight count
to 60.9M.
"""

from __future__ import annotations

from repro.dnn.builder import NetworkBuilder
from repro.dnn.layers import Activation
from repro.dnn.network import Network


def alexnet(num_classes: int = 1000) -> Network:
    """Build AlexNet for 227x227 RGB inputs."""
    b = NetworkBuilder("AlexNet")
    b.input(3, 227)
    b.conv(96, kernel=11, stride=4, name="conv1")
    b.pool(3, stride=2, name="pool1")
    b.conv(256, kernel=5, pad=2, groups=2, name="conv2")
    b.pool(3, stride=2, name="pool2")
    b.conv(384, kernel=3, pad=1, name="conv3")
    b.conv(384, kernel=3, pad=1, groups=2, name="conv4")
    b.conv(256, kernel=3, pad=1, groups=2, name="conv5")
    b.pool(3, stride=2, name="pool3")
    b.fc(4096, name="fc6")
    b.fc(4096, name="fc7")
    b.fc(num_classes, activation=Activation.SOFTMAX, name="fc8")
    return b.build()
