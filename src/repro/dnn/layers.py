"""Layer definitions for the DNN workload model.

The paper (Sec 2.2) classifies DNN layers into three key types —
convolutional (CONV), sampling (SAMP) and fully-connected (FC) — plus the
network input.  GoogLeNet and ResNet additionally need feature
concatenation and element-wise addition, which carry (almost) no FLOPs but
shape the dataflow, so they are modelled explicitly.

Each layer knows how to infer its output shape from its input shapes and
how to count its parameters.  FLOP/byte accounting lives in
:mod:`repro.dnn.analysis` so the layer classes stay purely structural.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.errors import ShapeError


class LayerKind(enum.Enum):
    """Coarse layer classification used throughout the compiler/simulator."""

    INPUT = "input"
    CONV = "conv"
    SAMP = "samp"
    FC = "fc"
    CONCAT = "concat"
    ELTWISE = "eltwise"
    SLICE = "slice"


class Activation(enum.Enum):
    """Non-linear activation functions supported by the MemHeavy SFUs."""

    NONE = "none"
    RELU = "relu"
    TANH = "tanh"
    SIGMOID = "sigmoid"
    SOFTMAX = "softmax"


class PoolMode(enum.Enum):
    """Down-sampling modes for SAMP layers."""

    MAX = "max"
    AVG = "avg"


@dataclass(frozen=True)
class FeatureShape:
    """Shape of a feature volume: ``count`` features of ``height x width``.

    FC layer outputs are represented as ``count`` features of size 1x1,
    matching the paper's observation (Fig 4) that FC feature size is 1.
    """

    count: int
    height: int
    width: int

    def __post_init__(self) -> None:
        if self.count <= 0 or self.height <= 0 or self.width <= 0:
            raise ShapeError(f"feature shape must be positive, got {self}")

    @property
    def feature_size(self) -> int:
        """Number of elements in a single feature (height * width)."""
        return self.height * self.width

    @property
    def elements(self) -> int:
        """Total number of elements across all features."""
        return self.count * self.feature_size

    def bytes(self, dtype_bytes: int = 4) -> int:
        """Storage for the whole volume at the given element width."""
        return self.elements * dtype_bytes

    def __str__(self) -> str:
        return f"{self.count}x{self.height}x{self.width}"


def _conv_output_extent(extent: int, kernel: int, stride: int, pad: int) -> int:
    """Output spatial extent of a convolution / pooling window sweep."""
    out = (extent + 2 * pad - kernel) // stride + 1
    if out <= 0:
        raise ShapeError(
            f"window (k={kernel}, s={stride}, p={pad}) does not fit in "
            f"extent {extent}"
        )
    return out


@dataclass(frozen=True)
class LayerSpec:
    """Base class for all layer specifications.

    ``name`` uniquely identifies the layer inside a :class:`~repro.dnn.
    network.Network`.  Subclasses implement :meth:`infer_shape` and
    :meth:`weight_count`.
    """

    name: str

    @property
    def kind(self) -> LayerKind:
        raise NotImplementedError

    def infer_shape(self, inputs: Tuple[FeatureShape, ...]) -> FeatureShape:
        """Compute the output feature shape from the input shapes."""
        raise NotImplementedError

    def weight_count(self, inputs: Tuple[FeatureShape, ...]) -> int:
        """Number of learnable parameters (weights + biases)."""
        raise NotImplementedError

    def _expect_single_input(
        self, inputs: Tuple[FeatureShape, ...]
    ) -> FeatureShape:
        if len(inputs) != 1:
            raise ShapeError(
                f"layer {self.name!r} ({self.kind.value}) expects exactly "
                f"one input, got {len(inputs)}"
            )
        return inputs[0]


@dataclass(frozen=True)
class InputSpec(LayerSpec):
    """The network input: a fixed feature volume (e.g. 3x224x224 image)."""

    shape: FeatureShape = field(default_factory=lambda: FeatureShape(3, 224, 224))

    @property
    def kind(self) -> LayerKind:
        return LayerKind.INPUT

    def infer_shape(self, inputs: Tuple[FeatureShape, ...]) -> FeatureShape:
        if inputs:
            raise ShapeError(f"input layer {self.name!r} takes no inputs")
        return self.shape

    def weight_count(self, inputs: Tuple[FeatureShape, ...]) -> int:
        return 0


@dataclass(frozen=True)
class ConvSpec(LayerSpec):
    """A convolutional layer.

    ``groups`` models grouped convolution (AlexNet's two-GPU split); a
    connection table restricting input/output feature pairs is the general
    mechanism the paper mentions, of which uniform groups are the only
    instance our benchmark suite needs.
    """

    out_features: int = 1
    kernel: int = 3
    stride: int = 1
    pad: int = 0
    groups: int = 1
    bias: bool = True
    activation: Activation = Activation.RELU
    #: Optional connection table (paper Sec 2.2): per output feature, the
    #: tuple of input feature indices it connects to.  Mutually exclusive
    #: with grouped convolution.
    connection_table: Optional[Tuple[Tuple[int, ...], ...]] = None

    @property
    def kind(self) -> LayerKind:
        return LayerKind.CONV

    def _validate_table(self, in_count: int) -> None:
        table = self.connection_table
        assert table is not None
        if self.groups != 1:
            raise ShapeError(
                f"conv {self.name!r}: a connection table cannot combine "
                "with grouped convolution"
            )
        if len(table) != self.out_features:
            raise ShapeError(
                f"conv {self.name!r}: table has {len(table)} rows for "
                f"{self.out_features} output features"
            )
        for f, sources in enumerate(table):
            if not sources:
                raise ShapeError(
                    f"conv {self.name!r}: output {f} connects to nothing"
                )
            if len(set(sources)) != len(sources):
                raise ShapeError(
                    f"conv {self.name!r}: output {f} lists duplicates"
                )
            for g in sources:
                if not 0 <= g < in_count:
                    raise ShapeError(
                        f"conv {self.name!r}: output {f} references input "
                        f"{g} of {in_count}"
                    )

    def infer_shape(self, inputs: Tuple[FeatureShape, ...]) -> FeatureShape:
        src = self._expect_single_input(inputs)
        if self.connection_table is not None:
            self._validate_table(src.count)
        elif src.count % self.groups or self.out_features % self.groups:
            raise ShapeError(
                f"conv {self.name!r}: groups={self.groups} must divide both "
                f"in features ({src.count}) and out features "
                f"({self.out_features})"
            )
        out_h = _conv_output_extent(src.height, self.kernel, self.stride, self.pad)
        out_w = _conv_output_extent(src.width, self.kernel, self.stride, self.pad)
        return FeatureShape(self.out_features, out_h, out_w)

    def weight_count(self, inputs: Tuple[FeatureShape, ...]) -> int:
        src = self._expect_single_input(inputs)
        if self.connection_table is not None:
            self._validate_table(src.count)
            weights = sum(
                len(sources) for sources in self.connection_table
            ) * self.kernel * self.kernel
        else:
            in_per_group = src.count // self.groups
            weights = (
                self.out_features * in_per_group * self.kernel * self.kernel
            )
        return weights + (self.out_features if self.bias else 0)

    def fan_in_of(self, feature: int, in_features: int) -> int:
        """Input features feeding one output feature."""
        if self.connection_table is not None:
            return len(self.connection_table[feature])
        return in_features // self.groups

    def total_fan_in(self, in_features: int) -> int:
        """Sum of per-output fan-ins (drives MAC/accumulation counts)."""
        if self.connection_table is not None:
            return sum(len(s) for s in self.connection_table)
        return self.out_features * (in_features // self.groups)

    def macs_per_output_element(self, in_features: int) -> int:
        """Average multiply-accumulates to produce one output element."""
        return (
            self.total_fan_in(in_features)
            * self.kernel * self.kernel
            // self.out_features
        )


@dataclass(frozen=True)
class PoolSpec(LayerSpec):
    """A sampling (SAMP) layer: max or average pooling.

    SAMP layers carry no weights (paper Sec 2.2) and operate on each
    feature independently.
    """

    window: int = 2
    stride: int = 0  # 0 means "same as window"
    pad: int = 0
    mode: PoolMode = PoolMode.MAX

    @property
    def kind(self) -> LayerKind:
        return LayerKind.SAMP

    @property
    def effective_stride(self) -> int:
        return self.stride if self.stride else self.window

    def infer_shape(self, inputs: Tuple[FeatureShape, ...]) -> FeatureShape:
        src = self._expect_single_input(inputs)
        out_h = _conv_output_extent(
            src.height, self.window, self.effective_stride, self.pad
        )
        out_w = _conv_output_extent(
            src.width, self.window, self.effective_stride, self.pad
        )
        return FeatureShape(src.count, out_h, out_w)

    def weight_count(self, inputs: Tuple[FeatureShape, ...]) -> int:
        return 0


@dataclass(frozen=True)
class GlobalPoolSpec(LayerSpec):
    """Global average pooling (GoogLeNet / ResNet heads).

    Reduces each feature to a single element; classified as a SAMP layer.
    """

    mode: PoolMode = PoolMode.AVG

    @property
    def kind(self) -> LayerKind:
        return LayerKind.SAMP

    def infer_shape(self, inputs: Tuple[FeatureShape, ...]) -> FeatureShape:
        src = self._expect_single_input(inputs)
        return FeatureShape(src.count, 1, 1)

    def weight_count(self, inputs: Tuple[FeatureShape, ...]) -> int:
        return 0


@dataclass(frozen=True)
class FCSpec(LayerSpec):
    """A fully-connected layer: vector-matrix multiply + activation."""

    out_features: int = 1
    bias: bool = True
    activation: Activation = Activation.RELU

    @property
    def kind(self) -> LayerKind:
        return LayerKind.FC

    def infer_shape(self, inputs: Tuple[FeatureShape, ...]) -> FeatureShape:
        self._expect_single_input(inputs)
        return FeatureShape(self.out_features, 1, 1)

    def weight_count(self, inputs: Tuple[FeatureShape, ...]) -> int:
        src = self._expect_single_input(inputs)
        return src.elements * self.out_features + (
            self.out_features if self.bias else 0
        )


@dataclass(frozen=True)
class ConcatSpec(LayerSpec):
    """Feature-wise concatenation (GoogLeNet inception join).

    All inputs must share spatial dimensions; feature counts add.
    """

    @property
    def kind(self) -> LayerKind:
        return LayerKind.CONCAT

    def infer_shape(self, inputs: Tuple[FeatureShape, ...]) -> FeatureShape:
        if len(inputs) < 2:
            raise ShapeError(f"concat {self.name!r} needs >= 2 inputs")
        h, w = inputs[0].height, inputs[0].width
        for shp in inputs[1:]:
            if (shp.height, shp.width) != (h, w):
                raise ShapeError(
                    f"concat {self.name!r}: spatial mismatch {inputs[0]} vs {shp}"
                )
        return FeatureShape(sum(s.count for s in inputs), h, w)

    def weight_count(self, inputs: Tuple[FeatureShape, ...]) -> int:
        return 0


@dataclass(frozen=True)
class EltwiseAddSpec(LayerSpec):
    """Element-wise addition (ResNet shortcut join), optionally activated."""

    activation: Activation = Activation.RELU

    @property
    def kind(self) -> LayerKind:
        return LayerKind.ELTWISE

    def infer_shape(self, inputs: Tuple[FeatureShape, ...]) -> FeatureShape:
        if len(inputs) < 2:
            raise ShapeError(f"eltwise {self.name!r} needs >= 2 inputs")
        first = inputs[0]
        for shp in inputs[1:]:
            if shp != first:
                raise ShapeError(
                    f"eltwise {self.name!r}: shape mismatch {first} vs {shp}"
                )
        return first

    def weight_count(self, inputs: Tuple[FeatureShape, ...]) -> int:
        return 0


def is_weighted(spec: LayerSpec) -> bool:
    """True for layer kinds that carry learnable parameters."""
    return spec.kind in (LayerKind.CONV, LayerKind.FC)


def conv_padding_same(kernel: int) -> int:
    """Padding that preserves spatial extent for stride-1 odd kernels."""
    if kernel % 2 == 0:
        raise ShapeError(f"'same' padding undefined for even kernel {kernel}")
    return kernel // 2


def fan_in(spec: LayerSpec, inputs: Tuple[FeatureShape, ...]) -> int:
    """Connections feeding one output neuron — used for weight init."""
    if spec.kind is LayerKind.CONV:
        assert isinstance(spec, ConvSpec)
        return spec.macs_per_output_element(inputs[0].count)
    if spec.kind is LayerKind.FC:
        return inputs[0].elements
    return 1


def he_init_scale(spec: LayerSpec, inputs: Tuple[FeatureShape, ...]) -> float:
    """He-initialization standard deviation for a weighted layer."""
    return math.sqrt(2.0 / max(1, fan_in(spec, inputs)))


@dataclass(frozen=True)
class SliceSpec(LayerSpec):
    """Select a contiguous range of features from the input.

    Needed to carve per-timestep inputs out of an unrolled sequence
    (the recurrent topologies of Sec 1's closing remark).  Carries no
    weights and no FLOPs — it is pure data routing.
    """

    start: int = 0
    stop: int = 1

    @property
    def kind(self) -> LayerKind:
        return LayerKind.SLICE

    def infer_shape(self, inputs: Tuple[FeatureShape, ...]) -> FeatureShape:
        src = self._expect_single_input(inputs)
        if not 0 <= self.start < self.stop <= src.count:
            raise ShapeError(
                f"slice {self.name!r}: [{self.start}, {self.stop}) outside "
                f"{src.count} features"
            )
        return FeatureShape(self.stop - self.start, src.height, src.width)

    def weight_count(self, inputs: Tuple[FeatureShape, ...]) -> int:
        return 0


@dataclass(frozen=True)
class EltwiseMulSpec(LayerSpec):
    """Element-wise (Hadamard) product of two or more inputs.

    The gating operation of LSTM cells; executes on the MemHeavy SFUs
    like the other element-wise kernels (VECMUL).
    """

    @property
    def kind(self) -> LayerKind:
        return LayerKind.ELTWISE

    def infer_shape(self, inputs: Tuple[FeatureShape, ...]) -> FeatureShape:
        if len(inputs) < 2:
            raise ShapeError(f"eltwise-mul {self.name!r} needs >= 2 inputs")
        first = inputs[0]
        for shp in inputs[1:]:
            if shp != first:
                raise ShapeError(
                    f"eltwise-mul {self.name!r}: shape mismatch "
                    f"{first} vs {shp}"
                )
        return first

    def weight_count(self, inputs: Tuple[FeatureShape, ...]) -> int:
        return 0


@dataclass(frozen=True)
class ActivationSpec(LayerSpec):
    """A standalone activation over one input (e.g. tanh of an LSTM
    cell state), executed on the MemHeavy SFUs."""

    activation: Activation = Activation.TANH

    @property
    def kind(self) -> LayerKind:
        return LayerKind.ELTWISE

    def infer_shape(self, inputs: Tuple[FeatureShape, ...]) -> FeatureShape:
        return self._expect_single_input(inputs)

    def weight_count(self, inputs: Tuple[FeatureShape, ...]) -> int:
        return 0
