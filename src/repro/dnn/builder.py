"""Fluent builder for constructing networks.

The zoo modules use this to describe the 11 benchmark topologies tersely
while still producing fully-wired :class:`~repro.dnn.network.Network`
objects.  The builder keeps a "cursor" at the most recently added layer;
``conv``/``pool``/``fc`` chain from the cursor unless ``inputs`` is given.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.dnn.layers import (
    Activation,
    ActivationSpec,
    ConcatSpec,
    ConvSpec,
    EltwiseAddSpec,
    EltwiseMulSpec,
    FCSpec,
    FeatureShape,
    GlobalPoolSpec,
    InputSpec,
    LayerSpec,
    PoolMode,
    PoolSpec,
    SliceSpec,
    conv_padding_same,
)
from repro.dnn.network import Network
from repro.errors import TopologyError


class NetworkBuilder:
    """Incrementally build a :class:`Network`.

    Every method returns the name of the layer it created, so branches can
    be wired up explicitly::

        b = NetworkBuilder("tiny")
        b.input(3, 32, 32)
        trunk = b.conv(16, kernel=3, pad=1)
        left = b.conv(8, kernel=1, inputs=[trunk])
        right = b.conv(8, kernel=3, pad=1, inputs=[trunk])
        b.concat([left, right])
        net = b.build()
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._layers: List[LayerSpec] = []
        self._wiring: Dict[str, Sequence[str]] = {}
        self._cursor: Optional[str] = None
        self._auto_index: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def _auto_name(self, prefix: str) -> str:
        idx = self._auto_index.get(prefix, 0) + 1
        self._auto_index[prefix] = idx
        return f"{prefix}{idx}"

    def _add(
        self,
        spec: LayerSpec,
        inputs: Optional[Sequence[str]],
    ) -> str:
        if any(layer.name == spec.name for layer in self._layers):
            raise TopologyError(
                f"builder {self.name!r}: duplicate layer name {spec.name!r}"
            )
        if inputs is not None:
            self._wiring[spec.name] = list(inputs)
        self._layers.append(spec)
        self._cursor = spec.name
        return spec.name

    # ------------------------------------------------------------------
    def input(
        self, features: int, height: int, width: Optional[int] = None,
        name: str = "input",
    ) -> str:
        """Add the network input volume (width defaults to height)."""
        shape = FeatureShape(features, height, width if width else height)
        return self._add(InputSpec(name=name, shape=shape), inputs=None)

    def conv(
        self,
        out_features: int,
        kernel: int,
        stride: int = 1,
        pad: int = 0,
        groups: int = 1,
        activation: Activation = Activation.RELU,
        same_pad: bool = False,
        name: Optional[str] = None,
        inputs: Optional[Sequence[str]] = None,
    ) -> str:
        """Add a CONV layer; ``same_pad=True`` derives padding from kernel."""
        if same_pad:
            pad = conv_padding_same(kernel)
        spec = ConvSpec(
            name=name or self._auto_name("conv"),
            out_features=out_features,
            kernel=kernel,
            stride=stride,
            pad=pad,
            groups=groups,
            activation=activation,
        )
        return self._add(spec, inputs)

    def table_conv(
        self,
        connection_table: Sequence[Sequence[int]],
        kernel: int,
        stride: int = 1,
        pad: int = 0,
        activation: Activation = Activation.RELU,
        name: Optional[str] = None,
        inputs: Optional[Sequence[str]] = None,
    ) -> str:
        """Add a CONV layer with an explicit connection table
        (paper Sec 2.2): row ``f`` lists the input features that feed
        output feature ``f``."""
        spec = ConvSpec(
            name=name or self._auto_name("conv"),
            out_features=len(connection_table),
            kernel=kernel,
            stride=stride,
            pad=pad,
            activation=activation,
            connection_table=tuple(
                tuple(row) for row in connection_table
            ),
        )
        return self._add(spec, inputs)

    def pool(
        self,
        window: int,
        stride: int = 0,
        pad: int = 0,
        mode: PoolMode = PoolMode.MAX,
        name: Optional[str] = None,
        inputs: Optional[Sequence[str]] = None,
    ) -> str:
        """Add a SAMP layer (stride defaults to the window size)."""
        spec = PoolSpec(
            name=name or self._auto_name("pool"),
            window=window,
            stride=stride,
            pad=pad,
            mode=mode,
        )
        return self._add(spec, inputs)

    def global_pool(
        self,
        mode: PoolMode = PoolMode.AVG,
        name: Optional[str] = None,
        inputs: Optional[Sequence[str]] = None,
    ) -> str:
        spec = GlobalPoolSpec(name=name or self._auto_name("gpool"), mode=mode)
        return self._add(spec, inputs)

    def fc(
        self,
        out_features: int,
        activation: Activation = Activation.RELU,
        name: Optional[str] = None,
        inputs: Optional[Sequence[str]] = None,
    ) -> str:
        spec = FCSpec(
            name=name or self._auto_name("fc"),
            out_features=out_features,
            activation=activation,
        )
        return self._add(spec, inputs)

    def concat(
        self, inputs: Sequence[str], name: Optional[str] = None
    ) -> str:
        spec = ConcatSpec(name=name or self._auto_name("concat"))
        return self._add(spec, inputs)

    def add(
        self,
        inputs: Sequence[str],
        activation: Activation = Activation.RELU,
        name: Optional[str] = None,
    ) -> str:
        """Element-wise residual addition of two or more branches."""
        spec = EltwiseAddSpec(
            name=name or self._auto_name("add"), activation=activation
        )
        return self._add(spec, inputs)

    def multiply(
        self, inputs: Sequence[str], name: Optional[str] = None
    ) -> str:
        """Element-wise (Hadamard) product — LSTM-style gating."""
        spec = EltwiseMulSpec(name=name or self._auto_name("mul"))
        return self._add(spec, inputs)

    def activation(
        self,
        fn: Activation,
        name: Optional[str] = None,
        inputs: Optional[Sequence[str]] = None,
    ) -> str:
        """A standalone activation layer (e.g. tanh of a cell state)."""
        spec = ActivationSpec(
            name=name or self._auto_name("act"), activation=fn
        )
        return self._add(spec, inputs)

    def slice(
        self,
        start: int,
        stop: int,
        name: Optional[str] = None,
        inputs: Optional[Sequence[str]] = None,
    ) -> str:
        """Select features [start, stop) from the source layer."""
        spec = SliceSpec(
            name=name or self._auto_name("slice"), start=start, stop=stop
        )
        return self._add(spec, inputs)

    # ------------------------------------------------------------------
    @property
    def cursor(self) -> str:
        """Name of the most recently added layer."""
        if self._cursor is None:
            raise TopologyError(f"builder {self.name!r} is empty")
        return self._cursor

    def build(self) -> Network:
        return Network(self.name, self._layers, self._wiring)
