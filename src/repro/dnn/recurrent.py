"""Recurrent and autoencoder topologies (paper Sec 1, closing remark).

"While we have extensively benchmarked SCALEDEEP on convolutional neural
networks, we note that SCALEDEEP can be programmed to execute other DNN
topologies for supervised and unsupervised learning, such as Recurrent
Neural Networks (RNNs), Long Short Term Memory (LSTM) networks and
autoencoders."

These builders substantiate that claim: an unrolled RNN / LSTM is a DAG
of FC layers, slices, element-wise gates, and activations — all
primitives of the workload model — so it maps, profiles and simulates
through the same compiler and simulator as the CNN suite.  Timesteps
unroll at build time (the data flow must be static for the MEMTRACK
scheme, Sec 3.2.4), with weights counted per step (the architecture has
no weight tying; the mapper treats each step's weights as distinct
layer state).
"""

from __future__ import annotations

from repro.dnn.builder import NetworkBuilder
from repro.dnn.layers import Activation
from repro.dnn.network import Network
from repro.errors import TopologyError


def unrolled_rnn(
    input_size: int = 16,
    hidden_size: int = 32,
    timesteps: int = 4,
    num_classes: int = 4,
) -> Network:
    """A vanilla tanh RNN unrolled over ``timesteps``.

    Per step: ``h_t = tanh(W [x_t ; h_{t-1}])``, realised as a concat
    followed by an FC layer; the sequence input arrives as one
    ``timesteps * input_size`` feature vector and is sliced per step.
    """
    if timesteps < 1:
        raise TopologyError("an RNN needs at least one timestep")
    b = NetworkBuilder(f"RNN-{hidden_size}x{timesteps}")
    seq = b.input(timesteps * input_size, 1, name="input")
    # h_0: a learned projection of the first slice stands in for the
    # zero state so every step has identical structure.
    hidden = b.fc(
        hidden_size, activation=Activation.TANH, name="h0",
        inputs=[b.slice(0, input_size, name="x0", inputs=[seq])],
    )
    for t in range(1, timesteps):
        x_t = b.slice(
            t * input_size, (t + 1) * input_size, name=f"x{t}",
            inputs=[seq],
        )
        joined = b.concat([x_t, hidden], name=f"join{t}")
        hidden = b.fc(
            hidden_size, activation=Activation.TANH, name=f"h{t}",
            inputs=[joined],
        )
    b.fc(
        num_classes, activation=Activation.SOFTMAX, name="head",
        inputs=[hidden],
    )
    return b.build()


def _lstm_cell(
    b: NetworkBuilder,
    tag: str,
    x_t: str,
    h_prev: str,
    c_prev: str,
    hidden_size: int,
) -> tuple:
    """One unrolled LSTM cell; returns (h_t, c_t) layer names."""
    joined = b.concat([x_t, h_prev], name=f"{tag}_in")
    i = b.fc(hidden_size, activation=Activation.SIGMOID,
             name=f"{tag}_i", inputs=[joined])
    f = b.fc(hidden_size, activation=Activation.SIGMOID,
             name=f"{tag}_f", inputs=[joined])
    o = b.fc(hidden_size, activation=Activation.SIGMOID,
             name=f"{tag}_o", inputs=[joined])
    g = b.fc(hidden_size, activation=Activation.TANH,
             name=f"{tag}_g", inputs=[joined])
    keep = b.multiply([f, c_prev], name=f"{tag}_keep")
    write = b.multiply([i, g], name=f"{tag}_write")
    c_t = b.add([keep, write], activation=Activation.NONE,
                name=f"{tag}_c")
    c_act = b.activation(Activation.TANH, name=f"{tag}_ctanh",
                         inputs=[c_t])
    h_t = b.multiply([o, c_act], name=f"{tag}_h")
    return h_t, c_t


def unrolled_lstm(
    input_size: int = 16,
    hidden_size: int = 32,
    timesteps: int = 4,
    num_classes: int = 4,
) -> Network:
    """A single-layer LSTM unrolled over ``timesteps``.

    Gates are FC layers over ``[x_t ; h_{t-1}]``; the cell state flows
    through element-wise multiply/add gates — the VECMUL / nD-accumulate
    kernels of Fig 5, executed on the MemHeavy SFUs.
    """
    if timesteps < 1:
        raise TopologyError("an LSTM needs at least one timestep")
    b = NetworkBuilder(f"LSTM-{hidden_size}x{timesteps}")
    seq = b.input(timesteps * input_size, 1, name="input")
    # Initial state: learned projections of x_0 (keeps every cell's
    # structure identical without zero-state special cases).
    x0 = b.slice(0, input_size, name="x0", inputs=[seq])
    h = b.fc(hidden_size, activation=Activation.TANH, name="h_init",
             inputs=[x0])
    c = b.fc(hidden_size, activation=Activation.TANH, name="c_init",
             inputs=[x0])
    for t in range(1, timesteps):
        x_t = b.slice(
            t * input_size, (t + 1) * input_size, name=f"x{t}",
            inputs=[seq],
        )
        h, c = _lstm_cell(b, f"t{t}", x_t, h, c, hidden_size)
    b.fc(num_classes, activation=Activation.SOFTMAX, name="head",
         inputs=[h])
    return b.build()


def autoencoder(
    input_size: int = 64,
    bottleneck: int = 8,
    depth: int = 2,
) -> Network:
    """A symmetric fully-connected autoencoder (unsupervised learning).

    The encoder halves the width ``depth`` times down to the bottleneck;
    the decoder mirrors it back to the input size (sigmoid output for
    reconstruction).
    """
    if depth < 1 or bottleneck >= input_size:
        raise TopologyError(
            "autoencoder needs depth >= 1 and bottleneck < input_size"
        )
    widths = []
    size = input_size
    for _ in range(depth - 1):
        size = max(bottleneck, size // 2)
        widths.append(size)
    b = NetworkBuilder(f"AE-{input_size}-{bottleneck}")
    b.input(input_size, 1, name="input")
    for i, width in enumerate(widths):
        b.fc(width, name=f"enc{i + 1}")
    b.fc(bottleneck, name="bottleneck")
    for i, width in enumerate(reversed(widths)):
        b.fc(width, name=f"dec{i + 1}")
    b.fc(input_size, activation=Activation.SIGMOID, name="reconstruction")
    return b.build()
