"""Reduced-precision execution of the reference model.

Sec 6.1's half-precision design rests on the premise that "DNNs achieve
state-of-the-art classification accuracy even at lower precisions"
(citing Gupta et al. and AxNN).  This module makes that premise testable
in the reproduction: it casts a reference model's parameters and
activations to a reduced format after every operation and measures the
deviation from the float32 golden model.

Supported formats: IEEE float16 (the paper's FP16 design point) and a
simulated bfloat16 (float32 with the mantissa truncated to 7 bits).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.dnn.network import Network
from repro.errors import ConfigError
from repro.functional.reference import ReferenceModel


class NumericFormat(enum.Enum):
    """Reduced-precision storage formats."""

    FP32 = "fp32"
    FP16 = "fp16"
    BF16 = "bf16"


def quantize(x: np.ndarray, fmt: NumericFormat) -> np.ndarray:
    """Round ``x`` to the storage precision of ``fmt`` (kept in float32
    so downstream numpy kernels run unchanged)."""
    if fmt is NumericFormat.FP32:
        return x.astype(np.float32)
    if fmt is NumericFormat.FP16:
        return x.astype(np.float16).astype(np.float32)
    if fmt is NumericFormat.BF16:
        # Truncate the low 16 bits of the float32 representation.
        as_int = x.astype(np.float32).view(np.uint32)
        return (as_int & np.uint32(0xFFFF0000)).view(np.float32).copy()
    raise ConfigError(f"unsupported numeric format {fmt}")


class ReducedPrecisionModel(ReferenceModel):
    """A reference model whose state quantizes after every operation.

    Weights quantize at construction; activations quantize after each
    layer's forward computation — the storage behaviour of the paper's
    FP16 MemHeavy scratchpads (arithmetic stays wider, as FMA datapaths
    typically accumulate at higher precision).
    """

    def __init__(
        self,
        net: Network,
        fmt: NumericFormat = NumericFormat.FP16,
        seed: int = 0,
    ) -> None:
        super().__init__(net, seed)
        self.fmt = fmt
        for st in self.state.values():
            if st.weights is not None:
                st.weights = quantize(st.weights, fmt)
                st.bias = quantize(st.bias, fmt)

    def forward(self, image: np.ndarray) -> np.ndarray:
        out = super().forward(quantize(image, self.fmt))
        for st in self.state.values():
            if st.output is not None:
                st.output = quantize(st.output, self.fmt)
        return quantize(out, self.fmt)

    def apply_gradients(self, learning_rate: float, scale: float = 1.0) -> None:
        super().apply_gradients(learning_rate, scale)
        for st in self.state.values():
            if st.weights is not None:
                st.weights = quantize(st.weights, self.fmt)
                st.bias = quantize(st.bias, self.fmt)


@dataclass(frozen=True)
class PrecisionComparison:
    """Output deviation of a reduced-precision model vs float32."""

    fmt: NumericFormat
    max_abs_error: float
    mean_abs_error: float
    top1_agreement: float  # fraction of inputs with the same argmax


def compare_precision(
    net: Network,
    fmt: NumericFormat,
    images: np.ndarray,
    seed: int = 0,
) -> PrecisionComparison:
    """Run the same inputs through float32 and reduced-precision copies
    of a network (identical initial weights) and compare outputs."""
    golden = ReferenceModel(net, seed=seed)
    reduced = ReducedPrecisionModel(net, fmt, seed=seed)
    max_err = 0.0
    sum_err = 0.0
    agree = 0
    count = 0
    for image in images:
        a = golden.forward(image.astype(np.float32))
        b = reduced.forward(image.astype(np.float32))
        err = np.abs(a - b)
        max_err = max(max_err, float(err.max()))
        sum_err += float(err.mean())
        agree += int(a.argmax() == b.argmax())
        count += 1
    return PrecisionComparison(
        fmt=fmt,
        max_abs_error=max_err,
        mean_abs_error=sum_err / count,
        top1_agreement=agree / count,
    )
