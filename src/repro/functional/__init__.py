"""Golden-model numpy execution: kernels, reference model, SGD."""

from repro.functional.precision import (
    NumericFormat,
    PrecisionComparison,
    ReducedPrecisionModel,
    compare_precision,
    quantize,
)
from repro.functional.reference import LayerState, ReferenceModel
from repro.functional.sgd import (
    EpochStats,
    SGDTrainer,
    iterate_minibatches,
    make_synthetic_dataset,
)

__all__ = [
    "EpochStats",
    "LayerState",
    "NumericFormat",
    "PrecisionComparison",
    "ReducedPrecisionModel",
    "compare_precision",
    "quantize",
    "ReferenceModel",
    "SGDTrainer",
    "iterate_minibatches",
    "make_synthetic_dataset",
]
