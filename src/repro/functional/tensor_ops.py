"""Numpy implementations of the DNN kernels (forward and backward).

These are the golden-model counterparts of the hardware kernels in
Fig 5: nD-convolution, matrix multiply, accumulation, sampling,
activation functions and the element-wise products of the WG step.
Layout convention: feature volumes are ``(count, height, width)`` arrays
(single image; the trainer loops or vectorises over the batch axis).

Convolutions are computed via im2col so that forward, input-gradient and
weight-gradient all reduce to matrix multiplies — the same decomposition
the CompHeavy tile realises with its 2D-PE array.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.dnn.layers import Activation, PoolMode
from repro.errors import ShapeError


def _check_3d(x: np.ndarray, name: str) -> None:
    if x.ndim != 3:
        raise ShapeError(f"{name} must be 3-D (count, h, w), got {x.shape}")


def pad_spatial(x: np.ndarray, pad: int) -> np.ndarray:
    """Zero-pad the two spatial dimensions of a feature volume."""
    if pad == 0:
        return x
    return np.pad(x, ((0, 0), (pad, pad), (pad, pad)))


def im2col(
    x: np.ndarray, kernel: int, stride: int, pad: int
) -> Tuple[np.ndarray, int, int]:
    """Unfold ``x`` (C,H,W) into columns of shape (C*k*k, out_h*out_w)."""
    _check_3d(x, "im2col input")
    c, h, w = x.shape
    xp = pad_spatial(x, pad)
    out_h = (h + 2 * pad - kernel) // stride + 1
    out_w = (w + 2 * pad - kernel) // stride + 1
    if out_h <= 0 or out_w <= 0:
        raise ShapeError(
            f"kernel {kernel} stride {stride} pad {pad} does not fit "
            f"{x.shape}"
        )
    # Gather all kernel-window offsets with stride tricks.
    shape = (c, kernel, kernel, out_h, out_w)
    strides = (
        xp.strides[0],
        xp.strides[1],
        xp.strides[2],
        xp.strides[1] * stride,
        xp.strides[2] * stride,
    )
    windows = np.lib.stride_tricks.as_strided(xp, shape, strides)
    return windows.reshape(c * kernel * kernel, out_h * out_w), out_h, out_w


def col2im(
    cols: np.ndarray,
    x_shape: Tuple[int, int, int],
    kernel: int,
    stride: int,
    pad: int,
) -> np.ndarray:
    """Fold columns back into a (C,H,W) volume, accumulating overlaps —
    the adjoint of :func:`im2col`."""
    c, h, w = x_shape
    out_h = (h + 2 * pad - kernel) // stride + 1
    out_w = (w + 2 * pad - kernel) // stride + 1
    xp = np.zeros((c, h + 2 * pad, w + 2 * pad), dtype=cols.dtype)
    cols = cols.reshape(c, kernel, kernel, out_h, out_w)
    for ki in range(kernel):
        for kj in range(kernel):
            xp[
                :,
                ki : ki + out_h * stride : stride,
                kj : kj + out_w * stride : stride,
            ] += cols[:, ki, kj]
    if pad:
        return xp[:, pad:-pad, pad:-pad]
    return xp


# ---------------------------------------------------------------------------
# Convolution
# ---------------------------------------------------------------------------
def conv2d_forward(
    x: np.ndarray,
    weights: np.ndarray,
    bias: np.ndarray,
    stride: int = 1,
    pad: int = 0,
    groups: int = 1,
) -> np.ndarray:
    """2-D convolution.  ``weights`` is (out_c, in_c//groups, k, k)."""
    _check_3d(x, "conv input")
    out_c, in_cg, k, _ = weights.shape
    in_c = x.shape[0]
    if in_c % groups or out_c % groups or in_cg != in_c // groups:
        raise ShapeError(
            f"conv groups mismatch: x={x.shape}, w={weights.shape}, "
            f"groups={groups}"
        )
    out_per_group = out_c // groups
    outputs = []
    for g in range(groups):
        xg = x[g * in_cg : (g + 1) * in_cg]
        wg = weights[g * out_per_group : (g + 1) * out_per_group]
        cols, out_h, out_w = im2col(xg, k, stride, pad)
        res = wg.reshape(out_per_group, -1) @ cols
        outputs.append(res.reshape(out_per_group, out_h, out_w))
    out = np.concatenate(outputs, axis=0)
    return out + bias[:, None, None]


def conv2d_backward(
    x: np.ndarray,
    weights: np.ndarray,
    grad_out: np.ndarray,
    stride: int = 1,
    pad: int = 0,
    groups: int = 1,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Gradients of a 2-D convolution.

    Returns ``(grad_x, grad_w, grad_b)`` — the BP and WG steps of the
    paper's Fig 3 in one call.
    """
    out_c, in_cg, k, _ = weights.shape
    in_c = x.shape[0]
    out_per_group = out_c // groups
    grad_x = np.zeros_like(x)
    grad_w = np.zeros_like(weights)
    for g in range(groups):
        xg = x[g * in_cg : (g + 1) * in_cg]
        wg = weights[g * out_per_group : (g + 1) * out_per_group]
        gg = grad_out[g * out_per_group : (g + 1) * out_per_group]
        cols, out_h, out_w = im2col(xg, k, stride, pad)
        gflat = gg.reshape(out_per_group, -1)
        grad_w[g * out_per_group : (g + 1) * out_per_group] = (
            gflat @ cols.T
        ).reshape(out_per_group, in_cg, k, k)
        gcols = wg.reshape(out_per_group, -1).T @ gflat
        grad_x[g * in_cg : (g + 1) * in_cg] = col2im(
            gcols, xg.shape, k, stride, pad
        )
    grad_b = grad_out.sum(axis=(1, 2))
    return grad_x, grad_w, grad_b


def conv2d_plane_batched(
    x: np.ndarray, kernels: np.ndarray, stride: int = 1, pad: int = 0
) -> np.ndarray:
    """Batched single-plane convolution: ``x`` is (B, H, W) — one plane
    per image — and ``kernels`` is (B, k, k), one (usually identical)
    kernel per image.  Returns (B, out_h, out_w).

    This is the engine's NDCONV vectorised across a minibatch: each
    image convolves independently, so the batch axis rides along the
    im2col window gather and one einsum contracts every image at once.
    """
    _check_3d(x, "batched conv input")
    b, h, w = x.shape
    k = kernels.shape[-1]
    if kernels.shape != (b, k, k):
        raise ShapeError(
            f"batched conv kernels {kernels.shape} != ({b}, {k}, {k})"
        )
    xp = pad_spatial(np.ascontiguousarray(x), pad)
    out_h = (h + 2 * pad - k) // stride + 1
    out_w = (w + 2 * pad - k) // stride + 1
    if out_h <= 0 or out_w <= 0:
        raise ShapeError(
            f"kernel {k} stride {stride} pad {pad} does not fit {x.shape}"
        )
    shape = (b, k, k, out_h, out_w)
    strides = (
        xp.strides[0],
        xp.strides[1],
        xp.strides[2],
        xp.strides[1] * stride,
        xp.strides[2] * stride,
    )
    windows = np.lib.stride_tricks.as_strided(xp, shape, strides)
    return np.einsum("bijhw,bij->bhw", windows, kernels)


def conv_rowgroup(weights: np.ndarray, cols: np.ndarray) -> np.ndarray:
    """One fused convolution step over a group of output features.

    ``weights`` is (F, k*k) — one single-plane kernel per feature — and
    ``cols`` is (F, k*k, N), each feature's im2col'd source plane.
    Returns the (F, N) partial sums.

    This is the superop fast path's replacement for F separate NDCONV
    dispatches.  Bit-exactness matters: numpy's batched ``matmul`` of
    (F, 1, k*k) @ (F, k*k, N) produces bitwise-identical results to the
    per-slice (1, k*k) @ (k*k, N) products that
    :func:`conv2d_forward` computes (property-checked in the tests —
    note a plain (F, k*k) @ (k*k, N) GEMM does *not* have this
    property), and the trailing ``+ 0.0`` reproduces the zero-bias add
    in :func:`conv2d_forward` so signed zeros match too.
    """
    return np.matmul(weights[:, None, :], cols)[:, 0, :] + np.float32(0.0)


def conv_block_forward(
    src_words: np.ndarray,
    steps,
    kernel: int,
    stride: int,
    pad: int,
    in_shape: Tuple[int, int],
    out_size: int,
    n_features: int,
    bias_block: np.ndarray,
    fn: Activation,
) -> Tuple[np.ndarray, np.ndarray]:
    """Whole-layer fused convolution: every NDCONV/NDACCUM/NDACTFN of
    one conv program slice collapsed into a handful of numpy calls.

    ``steps`` lists one entry per input-source *step* ``i`` — the
    ``i``-th source of every output feature that has at least ``i+1``
    sources — as ``(feature_indices, in_addrs, kernel_addrs)`` over
    ``src_words`` (the staging scratchpad).  Step 0 must cover all
    ``n_features`` features in order (the code generator emits each
    feature's first source with ``is_accum=0``).

    Returns ``(pre, out)``: the pre-activation block (the values the
    per-instruction path leaves in the accumulation scratchpad) and the
    activated output block, both bitwise identical to per-instruction
    execution.
    """
    h, w = in_shape
    in_words = h * w
    kk = kernel * kernel
    cols_cache: dict = {}
    acc = np.empty((n_features, out_size), dtype=np.float32)
    for i, (feats, in_addrs, kernel_addrs) in enumerate(steps):
        stacked = []
        for addr in in_addrs:
            cols = cols_cache.get(addr)
            if cols is None:
                plane = src_words[addr : addr + in_words].reshape(1, h, w)
                cols, _, _ = im2col(plane, kernel, stride, pad)
                cols_cache[addr] = cols
            stacked.append(cols)
        weights = np.stack(
            [src_words[a : a + kk] for a in kernel_addrs]
        )
        contrib = conv_rowgroup(weights, np.stack(stacked))
        if i == 0:
            acc[...] = contrib
        else:
            acc[list(feats)] += contrib
    acc += bias_block.reshape(n_features, out_size)
    pre = acc.reshape(-1)
    return pre, activate(pre.copy(), fn)


def fc_block_forward(
    mat: np.ndarray,
    vec: np.ndarray,
    bias: np.ndarray,
    fn: Activation,
) -> Tuple[np.ndarray, np.ndarray]:
    """Fused MATMUL + bias NDACCUM + NDACTFN of one FC program slice.

    Returns ``(pre, out)`` — see :func:`conv_block_forward`; the same
    ``@`` / ``+=`` / :func:`activate` calls the per-instruction path
    makes, in the same order, so results are bitwise identical.
    """
    pre = mat @ vec
    pre += bias
    return pre, activate(pre.copy(), fn)


def matmul_rows(mats: np.ndarray, vecs: np.ndarray) -> np.ndarray:
    """Batched matrix-vector multiply: ``mats`` (B, rows, cols) @
    ``vecs`` (B, cols) -> (B, rows) — the engine's MATMUL vectorised
    across a minibatch (the matrix is usually identical per image)."""
    return np.matmul(mats, vecs[:, :, None])[:, :, 0]


def activate_rows(x: np.ndarray, fn: Activation) -> np.ndarray:
    """Row-wise activation over a (B, n) batch.  Elementwise functions
    delegate to :func:`activate`; softmax normalises each row
    independently (the single-image path flattens, which would couple
    the batch)."""
    if fn is Activation.SOFTMAX:
        e = np.exp(x - x.max(axis=-1, keepdims=True))
        return e / e.sum(axis=-1, keepdims=True)
    return activate(x, fn)


# ---------------------------------------------------------------------------
# Pooling (SAMP layers)
# ---------------------------------------------------------------------------
def pool_forward(
    x: np.ndarray,
    window: int,
    stride: int,
    pad: int = 0,
    mode: PoolMode = PoolMode.MAX,
) -> Tuple[np.ndarray, np.ndarray]:
    """Down-sampling.  Returns ``(out, argmax)``; ``argmax`` (flat window
    indices) is empty for average pooling."""
    _check_3d(x, "pool input")
    c = x.shape[0]
    fill = -np.inf if mode is PoolMode.MAX else 0.0
    xp = (
        np.pad(x, ((0, 0), (pad, pad), (pad, pad)), constant_values=fill)
        if pad
        else x
    )
    h, w = xp.shape[1:]
    out_h = (h - window) // stride + 1
    out_w = (w - window) // stride + 1
    shape = (c, out_h, out_w, window, window)
    strides = (
        xp.strides[0],
        xp.strides[1] * stride,
        xp.strides[2] * stride,
        xp.strides[1],
        xp.strides[2],
    )
    windows = np.lib.stride_tricks.as_strided(xp, shape, strides)
    flat = windows.reshape(c, out_h, out_w, window * window)
    if mode is PoolMode.MAX:
        arg = flat.argmax(axis=3)
        out = np.take_along_axis(flat, arg[..., None], axis=3)[..., 0]
        return out, arg
    return flat.mean(axis=3), np.empty(0, dtype=np.int64)


def pool_backward(
    grad_out: np.ndarray,
    x_shape: Tuple[int, int, int],
    window: int,
    stride: int,
    pad: int,
    mode: PoolMode,
    argmax: np.ndarray,
) -> np.ndarray:
    """Error up-sampling (the paper's BP step for SAMP layers)."""
    c, h, w = x_shape
    out_h, out_w = grad_out.shape[1:]
    gxp = np.zeros((c, h + 2 * pad, w + 2 * pad), dtype=grad_out.dtype)
    for i in range(out_h):
        for j in range(out_w):
            hi, wj = i * stride, j * stride
            if mode is PoolMode.MAX:
                idx = argmax[:, i, j]
                di, dj = idx // window, idx % window
                gxp[np.arange(c), hi + di, wj + dj] += grad_out[:, i, j]
            else:
                gxp[:, hi : hi + window, wj : wj + window] += (
                    grad_out[:, i, j][:, None, None] / (window * window)
                )
    if pad:
        return gxp[:, pad:-pad, pad:-pad]
    return gxp


def global_pool_forward(x: np.ndarray) -> np.ndarray:
    """Global average pooling to (C, 1, 1)."""
    _check_3d(x, "global pool input")
    return x.mean(axis=(1, 2), keepdims=True)


def global_pool_backward(
    grad_out: np.ndarray, x_shape: Tuple[int, int, int]
) -> np.ndarray:
    c, h, w = x_shape
    return np.broadcast_to(grad_out / (h * w), x_shape).copy()


# ---------------------------------------------------------------------------
# Fully connected
# ---------------------------------------------------------------------------
def fc_forward(
    x: np.ndarray, weights: np.ndarray, bias: np.ndarray
) -> np.ndarray:
    """Vector-matrix multiply: ``weights`` is (out, in); ``x`` flattens."""
    return weights @ x.reshape(-1) + bias


def fc_backward(
    x: np.ndarray, weights: np.ndarray, grad_out: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Gradients of the FC layer.  The weight gradient is the outer
    product of the BP error and FP input — the paper's VECMUL kernel."""
    flat = x.reshape(-1)
    grad_w = np.outer(grad_out, flat)
    grad_x = (weights.T @ grad_out).reshape(x.shape)
    return grad_x, grad_w, grad_out.copy()


# ---------------------------------------------------------------------------
# Activation functions (MemHeavy SFU repertoire: ReLU, tanh, sigmoid)
# ---------------------------------------------------------------------------
def activate(x: np.ndarray, fn: Activation) -> np.ndarray:
    if fn is Activation.NONE:
        return x
    if fn is Activation.RELU:
        return np.maximum(x, 0.0)
    if fn is Activation.TANH:
        return np.tanh(x)
    if fn is Activation.SIGMOID:
        return 1.0 / (1.0 + np.exp(-x))
    if fn is Activation.SOFTMAX:
        flat = x.reshape(-1)
        e = np.exp(flat - flat.max())
        return (e / e.sum()).reshape(x.shape)
    raise ShapeError(f"unsupported activation {fn}")


def activate_backward(
    grad_out: np.ndarray, activated: np.ndarray, fn: Activation
) -> np.ndarray:
    """Chain the activation derivative using the *activated* output."""
    if fn is Activation.NONE:
        return grad_out
    if fn is Activation.RELU:
        return grad_out * (activated > 0)
    if fn is Activation.TANH:
        return grad_out * (1.0 - activated**2)
    if fn is Activation.SIGMOID:
        return grad_out * activated * (1.0 - activated)
    if fn is Activation.SOFTMAX:
        # Softmax + cross-entropy is fused in the loss; the pass-through
        # here expects the loss to have produced (p - y) already.
        return grad_out
    raise ShapeError(f"unsupported activation {fn}")


def softmax_cross_entropy(
    logits_softmaxed: np.ndarray, target: int
) -> Tuple[float, np.ndarray]:
    """Loss and gradient w.r.t. the pre-softmax logits, given softmax
    outputs and a golden class index."""
    p = logits_softmaxed.reshape(-1)
    loss = -float(np.log(max(p[target], 1e-12)))
    grad = p.copy()
    grad[target] -= 1.0
    return loss, grad.reshape(logits_softmaxed.shape)
