"""Reference (golden-model) execution of a network graph.

:class:`ReferenceModel` holds the parameters of a
:class:`~repro.dnn.network.Network` and runs the three training steps of
the paper's Fig 3 — forward propagation, backpropagation, and weight
gradient — exactly, in numpy.  It validates the functional engine and
demonstrates that the mapped computation is the real DNN computation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.dnn.layers import (
    Activation,
    ActivationSpec,
    ConvSpec,
    EltwiseMulSpec,
    FCSpec,
    GlobalPoolSpec,
    LayerKind,
    PoolSpec,
    SliceSpec,
    he_init_scale,
)
from repro.dnn.network import Network
from repro.errors import ShapeError
from repro.functional import tensor_ops as ops


@dataclass
class LayerState:
    """Parameters and cached activations of one layer."""

    weights: Optional[np.ndarray] = None
    bias: Optional[np.ndarray] = None
    grad_weights: Optional[np.ndarray] = None
    grad_bias: Optional[np.ndarray] = None
    output: Optional[np.ndarray] = None  # post-activation
    pre_act: Optional[np.ndarray] = None
    pool_argmax: Optional[np.ndarray] = None
    #: For connection-table convolutions: 1 where a kernel exists, 0 for
    #: disconnected (output, input) pairs.  Dense storage with a mask is
    #: numerically identical to the ragged layout the hardware would use.
    weight_mask: Optional[np.ndarray] = None


class ReferenceModel:
    """Executable parameterised instance of a network graph."""

    def __init__(self, net: Network, seed: int = 0) -> None:
        self.net = net
        self.rng = np.random.default_rng(seed)
        self.state: Dict[str, LayerState] = {}
        for node in net:
            st = LayerState()
            spec = node.spec
            if isinstance(spec, ConvSpec):
                in_cg = node.input_shapes[0].count // spec.groups
                scale = he_init_scale(spec, node.input_shapes)
                st.weights = self.rng.normal(
                    0.0, scale,
                    (spec.out_features, in_cg, spec.kernel, spec.kernel),
                ).astype(np.float32)
                st.bias = np.zeros(spec.out_features, dtype=np.float32)
                if spec.connection_table is not None:
                    mask = np.zeros_like(st.weights)
                    for f, sources in enumerate(spec.connection_table):
                        for g in sources:
                            mask[f, g] = 1.0
                    st.weight_mask = mask
                    st.weights *= mask
            elif isinstance(spec, FCSpec):
                scale = he_init_scale(spec, node.input_shapes)
                st.weights = self.rng.normal(
                    0.0, scale,
                    (spec.out_features, node.input_shapes[0].elements),
                ).astype(np.float32)
                st.bias = np.zeros(spec.out_features, dtype=np.float32)
            self.state[node.name] = st
        self.zero_gradients()

    # ------------------------------------------------------------------
    def zero_gradients(self) -> None:
        for node in self.net:
            st = self.state[node.name]
            if st.weights is not None:
                st.grad_weights = np.zeros_like(st.weights)
                st.grad_bias = np.zeros_like(st.bias)

    def parameter_count(self) -> int:
        total = 0
        for st in self.state.values():
            if st.weights is None:
                continue
            if st.weight_mask is not None:
                total += int(st.weight_mask.sum()) + st.bias.size
            else:
                total += st.weights.size + st.bias.size
        return total

    # ------------------------------------------------------------------
    # Forward propagation (FP)
    # ------------------------------------------------------------------
    def forward(self, image: np.ndarray) -> np.ndarray:
        """Evaluate the network on one image (C,H,W); returns the output
        vector and caches every layer's activations for BP/WG."""
        expected = self.net.input.output_shape
        if image.shape != (expected.count, expected.height, expected.width):
            raise ShapeError(
                f"input shape {image.shape} != network input {expected}"
            )
        for node in self.net:
            st = self.state[node.name]
            spec = node.spec
            if node.kind is LayerKind.INPUT:
                st.output = image.astype(np.float32)
                continue
            inputs = [self.state[src].output for src in node.input_names]
            if isinstance(spec, ConvSpec):
                pre = ops.conv2d_forward(
                    inputs[0], st.weights, st.bias, spec.stride, spec.pad,
                    spec.groups,
                )
                st.pre_act = pre
                st.output = ops.activate(pre, spec.activation)
            elif isinstance(spec, FCSpec):
                pre = ops.fc_forward(inputs[0], st.weights, st.bias)
                st.pre_act = pre
                st.output = ops.activate(pre, spec.activation).reshape(
                    -1, 1, 1
                )
            elif isinstance(spec, PoolSpec):
                st.output, st.pool_argmax = ops.pool_forward(
                    inputs[0], spec.window, spec.effective_stride, spec.pad,
                    spec.mode,
                )
            elif isinstance(spec, GlobalPoolSpec):
                st.output = ops.global_pool_forward(inputs[0])
            elif node.kind is LayerKind.CONCAT:
                st.output = np.concatenate(inputs, axis=0)
            elif isinstance(spec, SliceSpec):
                st.output = inputs[0][spec.start : spec.stop].copy()
            elif isinstance(spec, EltwiseMulSpec):
                prod = inputs[0].copy()
                for extra in inputs[1:]:
                    prod = prod * extra
                st.output = prod
            elif isinstance(spec, ActivationSpec):
                st.pre_act = inputs[0]
                st.output = ops.activate(inputs[0].copy(), spec.activation)
            elif node.kind is LayerKind.ELTWISE:
                st.pre_act = np.sum(inputs, axis=0)
                st.output = ops.activate(st.pre_act, spec.activation)
            else:
                raise ShapeError(f"cannot execute layer kind {node.kind}")
        return self.state[self.net.output.name].output.reshape(-1)

    # ------------------------------------------------------------------
    # Backpropagation (BP) + weight gradients (WG)
    # ------------------------------------------------------------------
    def backward(self, target: int) -> float:
        """Backpropagate from a golden class; accumulates weight
        gradients (the WG step) and returns the cross-entropy loss."""
        out_node = self.net.output
        out_st = self.state[out_node.name]
        loss, grad = ops.softmax_cross_entropy(
            out_st.output.reshape(-1), target
        )
        return self._backpropagate(
            loss, grad.reshape(out_st.output.shape)
        )

    def backward_mse(self, target: np.ndarray) -> float:
        """Backpropagate a mean-squared-error reconstruction loss — the
        unsupervised-learning path (autoencoders, Sec 1).  ``target`` is
        the golden output vector (for an autoencoder, the input)."""
        out_node = self.net.output
        out_st = self.state[out_node.name]
        out = out_st.output.reshape(-1)
        flat_target = np.asarray(target, dtype=np.float32).reshape(-1)
        if flat_target.shape != out.shape:
            raise ShapeError(
                f"MSE target shape {flat_target.shape} != output "
                f"{out.shape}"
            )
        diff = out - flat_target
        loss = float((diff**2).mean())
        activation = getattr(out_node.spec, "activation", Activation.NONE)
        if activation is Activation.SOFTMAX:
            raise ShapeError("MSE through a softmax head is unsupported")
        # dLoss/d out; the standard backward sweep applies the head's
        # activation derivative itself.
        grad = (2.0 / diff.size) * diff
        return self._backpropagate(
            loss, grad.reshape(out_st.output.shape)
        )

    def _backpropagate(
        self, loss: float, output_error: np.ndarray
    ) -> float:
        """Common BP/WG sweep from an error at the network output."""
        out_node = self.net.output
        errors: Dict[str, np.ndarray] = {out_node.name: output_error}
        for node in reversed(self.net.nodes):
            if node.kind is LayerKind.INPUT:
                continue
            st = self.state[node.name]
            err = errors.pop(node.name, None)
            if err is None:
                continue  # dead branch (no consumers reached it)
            spec = node.spec
            inputs = [self.state[src].output for src in node.input_names]

            if isinstance(spec, ConvSpec):
                err = ops.activate_backward(err, st.output, spec.activation)
                gx, gw, gb = ops.conv2d_backward(
                    inputs[0], st.weights, err, spec.stride, spec.pad,
                    spec.groups,
                )
                if st.weight_mask is not None:
                    gw = gw * st.weight_mask
                st.grad_weights += gw
                st.grad_bias += gb
                self._send(errors, node.input_names[0], gx)
            elif isinstance(spec, FCSpec):
                flat = err.reshape(-1)
                if spec.activation is not Activation.SOFTMAX:
                    flat = ops.activate_backward(
                        flat, st.output.reshape(-1), spec.activation
                    )
                gx, gw, gb = ops.fc_backward(inputs[0], st.weights, flat)
                st.grad_weights += gw
                st.grad_bias += gb
                self._send(errors, node.input_names[0], gx)
            elif isinstance(spec, PoolSpec):
                gx = ops.pool_backward(
                    err, inputs[0].shape, spec.window,
                    spec.effective_stride, spec.pad, spec.mode,
                    st.pool_argmax,
                )
                self._send(errors, node.input_names[0], gx)
            elif isinstance(spec, GlobalPoolSpec):
                gx = ops.global_pool_backward(err, inputs[0].shape)
                self._send(errors, node.input_names[0], gx)
            elif node.kind is LayerKind.CONCAT:
                offset = 0
                for src, shape in zip(node.input_names, inputs):
                    count = shape.shape[0]
                    self._send(errors, src, err[offset : offset + count])
                    offset += count
            elif isinstance(spec, SliceSpec):
                full = np.zeros(inputs[0].shape, dtype=err.dtype)
                full[spec.start : spec.stop] = err
                self._send(errors, node.input_names[0], full)
            elif isinstance(spec, EltwiseMulSpec):
                for i, src in enumerate(node.input_names):
                    others = err.copy()
                    for j, other in enumerate(inputs):
                        if j != i:
                            others = others * other
                    self._send(errors, src, others)
            elif isinstance(spec, ActivationSpec):
                err = ops.activate_backward(err, st.output, spec.activation)
                self._send(errors, node.input_names[0], err)
            elif node.kind is LayerKind.ELTWISE:
                err = ops.activate_backward(err, st.output, spec.activation)
                for src in node.input_names:
                    self._send(errors, src, err)
        return loss

    @staticmethod
    def _send(
        errors: Dict[str, np.ndarray], layer: str, grad: np.ndarray
    ) -> None:
        """Accumulate an error contribution for a producer layer."""
        if layer in errors:
            errors[layer] = errors[layer] + grad
        else:
            errors[layer] = grad

    # ------------------------------------------------------------------
    def apply_gradients(self, learning_rate: float, scale: float = 1.0) -> None:
        """SGD update: w -= lr * scale * accumulated gradient."""
        for st in self.state.values():
            if st.weights is not None:
                st.weights -= learning_rate * scale * st.grad_weights
                st.bias -= learning_rate * scale * st.grad_bias
        self.zero_gradients()
