"""Minibatch SGD training loop over the reference model.

This reproduces the training procedure of the paper's Sec 2.2: per
minibatch, the FP/BP/WG steps run for every input and the accumulated
gradients update the weights once — the commutative accumulation the
data-flow trackers rely on (Sec 3.2.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

import numpy as np

from repro.dnn.network import Network
from repro.errors import ShapeError
from repro.functional.reference import ReferenceModel


@dataclass(frozen=True)
class EpochStats:
    """Loss/accuracy summary of one training epoch."""

    epoch: int
    mean_loss: float
    accuracy: float


def make_synthetic_dataset(
    net: Network,
    samples: int,
    num_classes: int,
    seed: int = 0,
    template_seed: int = 1234,
) -> Tuple[np.ndarray, np.ndarray]:
    """A learnable synthetic classification dataset for a network.

    Each class gets a random template; samples are noisy templates, so a
    working training loop must drive the loss down.  The class templates
    derive from ``template_seed`` alone, so datasets generated with
    different ``seed`` values (e.g. train and test splits) share the
    same underlying classes.
    """
    if samples < 1 or num_classes < 1:
        raise ShapeError("samples and num_classes must be positive")
    shape = net.input.output_shape
    template_rng = np.random.default_rng(template_seed)
    templates = template_rng.normal(
        0.0, 1.0, (num_classes, shape.count, shape.height, shape.width)
    )
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, num_classes, samples)
    images = templates[labels] + rng.normal(
        0.0, 0.25, (samples,) + templates.shape[1:]
    )
    return images.astype(np.float32), labels.astype(np.int64)


def iterate_minibatches(
    images: np.ndarray,
    labels: np.ndarray,
    batch_size: int,
    rng: np.random.Generator,
) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Shuffled minibatch iterator."""
    order = rng.permutation(len(images))
    for start in range(0, len(images), batch_size):
        idx = order[start : start + batch_size]
        yield images[idx], labels[idx]


class SGDTrainer:
    """Plain minibatch SGD on a :class:`ReferenceModel`."""

    def __init__(
        self,
        model: ReferenceModel,
        learning_rate: float = 0.01,
        batch_size: int = 8,
        seed: int = 0,
    ) -> None:
        if learning_rate <= 0 or batch_size < 1:
            raise ShapeError("learning_rate and batch_size must be positive")
        self.model = model
        self.learning_rate = learning_rate
        self.batch_size = batch_size
        self.rng = np.random.default_rng(seed)

    def train_epoch(
        self, images: np.ndarray, labels: np.ndarray, epoch: int = 0
    ) -> EpochStats:
        """One pass over the dataset; returns mean loss and accuracy."""
        losses: List[float] = []
        correct = 0
        for batch_x, batch_y in iterate_minibatches(
            images, labels, self.batch_size, self.rng
        ):
            for image, label in zip(batch_x, batch_y):
                out = self.model.forward(image)
                if int(out.argmax()) == int(label):
                    correct += 1
                losses.append(self.model.backward(int(label)))
            # Gradients accumulated over the minibatch update once.
            self.model.apply_gradients(
                self.learning_rate, scale=1.0 / len(batch_x)
            )
        return EpochStats(
            epoch=epoch,
            mean_loss=float(np.mean(losses)),
            accuracy=correct / len(images),
        )

    def evaluate(self, images: np.ndarray, labels: np.ndarray) -> float:
        """Classification accuracy (the paper's testing phase: FP only)."""
        correct = sum(
            int(self.model.forward(img).argmax()) == int(lbl)
            for img, lbl in zip(images, labels)
        )
        return correct / len(images)
