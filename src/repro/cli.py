"""Command-line interface: ``python -m repro <command>``.

Subcommands:

* ``list`` — the benchmark zoo with Fig 15 statistics;
* ``analyze NET`` — workload analysis (Fig 4/5 style);
* ``map NET`` — the compiler's column allocation (Fig 13 / STEP1-6);
* ``lower NET`` — compile to the unified IR through the verified pass
  pipeline and dump it (``--json`` for the full serialised form,
  ``--phase fp|bp|wg`` to restrict to one phase);
* ``simulate NET`` — throughput / utilization / power (Figs 16/20/21);
* ``energy NET`` — per-image energy and ImageNet-epoch cost;
* ``compare-gpu NET`` — speedup over the TitanX stacks (Fig 18);
* ``stages NET`` — per-stage pipeline latencies and binding subsystem;
* ``report NET`` — the full simulation report (mapping, throughput,
  pipeline, links, power, energy, gradient sync);
* ``trace NET`` — record a telemetry capture and write a Chrome
  trace-event JSON (open in Perfetto / ``chrome://tracing``);
* ``profile NET`` — per-tile busy/stalled/blocked cycle accounting and
  the counter registry;
* ``sweep [NET...]`` — fan (network x preset x minibatch) jobs across
  worker processes with content-keyed compile caching; writes JSON
  (and optionally CSV) results;
* ``faults NET`` — inject a deterministic fault mask and report
  baseline vs degraded throughput / energy after remapping;
* ``serve NET[,NET...]`` — datacenter inference serving simulation:
  seeded open-loop arrivals drive dynamic batchers over a multi-tenant
  placement; reports p50/p95/p99 latency, sustained QPS and shed rate
  (``--curve`` sweeps offered load into the latency–throughput curve,
  ``--json/--out/--csv/--html`` export it);
* ``export DIR`` — write every figure's data series as CSV.

Network names are resolved case-insensitively with shorthand aliases
(``alexnet``, ``tiny``); unknown names exit with status 2 and a hint.
Exit codes: 0 on success, 1 for domain failures (:class:`ReproError`
— unmappable networks, partitioned topologies, failed sweep jobs), 2
for usage errors (unknown names, malformed specs).  No public failure
path surfaces a traceback.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.arch import half_precision_node, single_precision_node
from repro.baselines.gpu import GpuFramework, all_framework_rates
from repro.bench import Table, fmt_count
from repro.compiler import compile_network
from repro.dnn import zoo
from repro.dnn.analysis import (
    Kernel,
    LayerClass,
    evaluation_flops,
    kernel_summary,
    layer_class_summary,
    training_flops,
)
from repro.errors import ReproError
from repro.sim import simulate
from repro.sim.energy import energy_report


def _node(args: argparse.Namespace):
    return half_precision_node() if args.hp else single_precision_node()


def _load(name: str):
    try:
        return zoo.load(name)
    except KeyError:
        choices = ", ".join(zoo.available())
        print(
            f"repro: unknown network {name!r} (choose from: {choices})",
            file=sys.stderr,
        )
        raise SystemExit(2)


def cmd_list(args: argparse.Namespace) -> None:
    table = Table(
        "Benchmark zoo (paper Fig 15)",
        ["network", "neurons", "weights", "connections", "GFLOPs/eval"],
    )
    for name in zoo.BENCHMARKS:
        net = zoo.load(name)
        table.add(
            name,
            fmt_count(net.neuron_count),
            fmt_count(net.weight_count),
            fmt_count(net.connection_count),
            f"{evaluation_flops(net) / 1e9:.2f}",
        )
    table.show()


def cmd_analyze(args: argparse.Namespace) -> None:
    net = _load(args.network)
    print(net.describe())
    print(
        f"\n{evaluation_flops(net) / 1e9:.2f} GFLOPs/evaluation, "
        f"{training_flops(net) / 1e9:.2f} GFLOPs/training iteration"
    )
    classes = layer_class_summary(net)
    total = sum(s.flops_total for s in classes.values()) or 1
    table = Table("Layer classes (Fig 4 style)",
                  ["class", "layers", "FLOPs %", "B/F"])
    for cls in LayerClass:
        if cls in classes:
            s = classes[cls]
            table.add(cls.value, len(s.layers),
                      f"{100 * s.flops_total / total:.1f}",
                      f"{s.bytes_per_flop_fp_bp:.4f}")
    table.show()
    kernels = kernel_summary([net])
    table = Table("Kernels (Fig 5 style)", ["kernel", "FLOPs %", "B/F"])
    for kernel in Kernel:
        frac, bf = kernels[kernel]
        table.add(kernel.value, f"{100 * frac:.2f}", f"{bf:.3f}")
    table.show()


def cmd_map(args: argparse.Namespace) -> None:
    net = _load(args.network)
    compiled = compile_network(net, _node(args))
    print(compiled.mapping.describe())


def cmd_lower(args: argparse.Namespace) -> None:
    from repro.compiler.ir import Phase

    net = _load(args.network)
    compiled = compile_network(net, _node(args))
    ir = compiled.ir
    if args.phase:
        ir = ir.filtered(Phase.parse(args.phase))
    if args.json:
        print(ir.to_json(indent=2))
        return
    phase = f", phase {args.phase}" if args.phase else ""
    print(
        f"lowered {net.name} on {compiled.node.name} to "
        f"{ir.level}-level IR (schema {ir.schema_version}{phase})"
    )
    table = Table("IR statistics", ["metric", "value"])
    for metric, value in ir.stats().items():
        table.add(metric, f"{value:,}")
    table.show()
    print("passes:")
    for stats in compiled.pass_stats:
        print(f"  {stats.describe()}")


def cmd_simulate(args: argparse.Namespace) -> None:
    net = _load(args.network)
    node = _node(args)
    result = simulate(net, node, minibatch=args.minibatch)
    print(result.mapping.describe())
    print()
    print(result.describe())
    print("\nLink utilization:")
    for link, value in result.link_utilization.as_dict().items():
        print(f"  {link:<10} {value:.2f}")
    if args.nodes != 1 or args.strategy != "data":
        from repro.arch.system import make_system
        from repro.sim.perf import simulate_system
        from repro.sim.tco import tco_report

        system = make_system(node, args.nodes, args.strategy)
        sysres = simulate_system(
            net, system, minibatch=args.minibatch, node_result=result
        )
        print()
        print(system.describe())
        print(sysres.describe())
        print(tco_report(sysres).describe())


def cmd_energy(args: argparse.Namespace) -> None:
    net = _load(args.network)
    node = _node(args)
    result = simulate(net, node)
    print(energy_report(result).describe())
    if args.nodes != 1 or args.strategy != "data":
        from repro.arch.system import make_system
        from repro.sim.energy import system_energy_report
        from repro.sim.perf import simulate_system

        system = make_system(node, args.nodes, args.strategy)
        sysres = simulate_system(net, system, node_result=result)
        print(system_energy_report(sysres).describe())


def cmd_compare_gpu(args: argparse.Namespace) -> None:
    net = _load(args.network)
    node = _node(args)
    result = simulate(net, node)
    cluster_rate = result.training_images_per_s / node.cluster_count
    table = Table(
        f"ScaleDeep chip cluster vs TitanX on {net.name} (training)",
        ["stack", "GPU img/s", "cluster img/s", "speedup"],
    )
    for fw, rate in all_framework_rates(net).items():
        table.add(fw.value, f"{rate:,.0f}", f"{cluster_rate:,.0f}",
                  f"{cluster_rate / rate:.1f}x")
    table.show()


def cmd_stages(args: argparse.Namespace) -> None:
    net = _load(args.network)
    result = simulate(net, _node(args))
    table = Table(
        f"Pipeline stages of {net.name} (training)",
        ["unit", "step", "chip", "cols", "cycles", "bound by",
         "achieved util"],
    )
    for stage in sorted(result.stages, key=lambda s: -s.cycles):
        table.add(
            stage.unit, stage.step.value, stage.chip,
            stage.cost.columns, f"{stage.cycles:,.0f}",
            stage.cost.bound_by,
            f"{stage.cost.utilization.achieved:.2f}",
        )
    table.show()
    b = result.bottleneck
    print(
        f"\nbottleneck: {b.unit}/{b.step.value} "
        f"({b.cost.bound_by}, {b.cycles:,.0f} cycles)"
    )


def cmd_report(args: argparse.Namespace) -> None:
    from repro.sim.report import full_report

    net = _load(args.network)
    print(full_report(net, _node(args)).render())


def _engine_forward(net):
    """Compile ``net``'s forward pass for the functional engine and run
    one random image through it (telemetry flows to the active handle).

    Compilation routes through the content-keyed compile cache, so a
    second trace/profile of the same network skips codegen; ``run``
    builds a fresh machine each time, so the artifact is reusable.
    Uses the DAG scheduler — the path the validation harness vouches
    for, which also covers connection-table networks (LeNet-5) that the
    linear schedule cannot run."""
    import numpy as np

    from repro.sweep.cache import cached_dag_forward_codegen

    compiled = cached_dag_forward_codegen(net, seed=0)
    shape = net.input.output_shape
    rng = np.random.default_rng(0)
    image = rng.normal(
        0, 1, (shape.count, shape.height, shape.width)
    ).astype(np.float32)
    return compiled.run(image)


#: Above this weight count the functional engine runs a network's
#: registered proxy (same topology, rescaled channels) instead of the
#: full-size model.  Canonically defined beside the validation harness,
#: which shares it.
from repro.dnn.zoo.engine_proxies import engine_scale as _engine_scale
from repro.sim.validation import ENGINE_WEIGHT_LIMIT as _ENGINE_WEIGHT_LIMIT


def cmd_trace(args: argparse.Namespace) -> None:
    from repro.errors import ReproError
    from repro.telemetry import capture, summarize, write_chrome_trace

    net = _load(args.network)
    tel = None
    run_net, proxy_note = _engine_scale(net, _ENGINE_WEIGHT_LIMIT)
    if run_net is not None:
        with capture() as attempt:
            try:
                _, report = _engine_forward(run_net)
                source = f"functional engine: {report.describe()}"
                if proxy_note:
                    source += f" [{proxy_note}]"
                tel = attempt
            except ReproError:
                pass  # engine scope excludes this network; fall back
    if tel is None:
        # Engine scope excludes this network: trace the analytical
        # pipeline (stage spans + mapping decisions) instead.
        with capture() as tel:
            result = simulate(net, _node(args))
        source = f"analytical model: {result.describe()}"
    path = write_chrome_trace(tel, args.out)
    print(f"traced {net.name} [{source}]")
    print(f"{summarize(tel)}")
    print(f"wrote Chrome trace to {path}")


def cmd_profile(args: argparse.Namespace) -> None:
    from repro.errors import ReproError
    from repro.telemetry import (
        analytical_tile_profile,
        capture,
        counter_table,
        engine_tile_profile,
        profile_table,
        write_counters_csv,
    )

    net = _load(args.network)
    run_net, proxy_note = _engine_scale(net, _ENGINE_WEIGHT_LIMIT)
    with capture() as tel:
        result = simulate(net, _node(args))
        engine_report = None
        if run_net is not None:
            try:
                _, engine_report = _engine_forward(run_net)
            except ReproError:
                pass  # engine scope excludes this network

    beat = result.bottleneck.cycles
    rows = analytical_tile_profile(result)
    profile_table(
        rows, f"Per-tile-group cycles of {net.name} (one pipeline beat)"
    ).show()
    busy_total = sum(r.busy_cycles for r in rows)
    print(
        f"\npipeline beat {beat:,.0f} cycles "
        f"({len(rows)} tile groups, {busy_total:,.0f} busy cycles/beat); "
        f"train {result.training_images_per_s:,.0f} img/s, "
        f"eval {result.evaluation_images_per_s:,.0f} img/s"
    )
    if engine_report is not None:
        print(f"\nfunctional engine: {engine_report.describe()}")
        if proxy_note:
            print(f"  ({proxy_note})")
        profile_table(
            engine_tile_profile(tel),
            f"Engine per-tile cycles ({run_net.name}, one image)",
        ).show()
    if args.counters:
        counter_table(tel, f"Telemetry counters for {net.name}").show()
    if args.csv:
        print(f"wrote counters to {write_counters_csv(tel, args.csv)}")


def cmd_stats(args: argparse.Namespace) -> None:
    import json

    from repro.bench.baselines import (
        compare_to_baseline,
        write_baseline_file,
    )
    from repro.bench.dashboard import write_stats_html
    from repro.bench.stats import collect_stats
    from repro.telemetry import attribution_table, percentile_table

    net = _load(args.network)
    report = collect_stats(net, _node(args), args.minibatch)
    snapshot = report.snapshot()

    if args.json:
        print(json.dumps(snapshot, indent=2, sort_keys=True))
    else:
        percentile_table(
            report.metrics,
            f"Metric distributions of {net.name} "
            f"(cycles / bytes per observation)",
        ).show()
        print()
        attribution_table(
            report.attributions(),
            f"Bottleneck attribution of {net.name} (both simulators)",
        ).show()
        print(f"\n{report.result.describe()}")
        if report.engine_ran:
            print("functional engine: profiled alongside")
            if report.engine_note:
                print(f"  ({report.engine_note})")
        else:
            print(f"functional engine: skipped ({report.engine_skipped})")
        print(f"fingerprint: {report.fingerprint}")

    if args.html:
        print(f"wrote dashboard to {write_stats_html(report, args.html)}")
    if args.baseline:
        path = write_baseline_file(snapshot, args.baseline)
        print(
            f"recorded baseline entry {report.fingerprint[:12]} in {path}"
        )
    if args.compare:
        comparison = compare_to_baseline(snapshot, args.compare)
        print(comparison.describe())
        if not comparison.ok:
            raise SystemExit(2)


def _fault_spec(args: argparse.Namespace):
    """Build a :class:`FaultSpec` from CLI flags; malformed specs are
    usage errors (exit 2)."""
    from repro.errors import ConfigError
    from repro.faults import ALL_KINDS, FaultSpec, parse_kinds

    try:
        kind = args.kind.strip()
        kinds = ALL_KINDS if kind == "all" else parse_kinds(kind)
        return FaultSpec(
            rate=args.rate, seed=args.seed, kinds=kinds,
            slow_factor=args.slow_factor,
        )
    except ConfigError as exc:
        print(f"repro: {exc}", file=sys.stderr)
        raise SystemExit(2)


def cmd_faults(args: argparse.Namespace) -> None:
    from repro.sweep.cache import CompileCache, cached_simulation, set_cache

    net = _load(args.network)
    node = _node(args)
    spec = _fault_spec(args)
    if args.cache_dir:
        set_cache(CompileCache(args.cache_dir))

    # Both runs route through the content-keyed cache: the fault spec is
    # folded into the fingerprint digest, so baseline and degraded
    # artifacts never collide and reruns are byte-identical.
    baseline = cached_simulation(net, node, args.minibatch)
    degraded = cached_simulation(net, node, args.minibatch, faults=spec)

    mask = degraded.mapping.faults
    print(f"fault what-if: {net.name} on {node.name}")
    if mask is not None:
        print(mask.describe())
    if degraded.mapping.degraded:
        print(
            f"remapped {degraded.mapping.remapped_columns} column(s) "
            f"around faulty tiles"
        )
    print()

    base_energy = energy_report(baseline)
    hurt_energy = energy_report(degraded)
    table = Table(
        f"Baseline vs degraded ({spec.describe()})",
        ["metric", "baseline", "degraded", "ratio"],
    )

    def row(label: str, b: float, d: float, fmt: str) -> None:
        ratio = d / b if b else 0.0
        table.add(label, fmt.format(b), fmt.format(d), f"{ratio:.3f}x")

    row("train img/s", baseline.training_images_per_s,
        degraded.training_images_per_s, "{:,.0f}")
    row("eval img/s", baseline.evaluation_images_per_s,
        degraded.evaluation_images_per_s, "{:,.0f}")
    row("PE utilization", baseline.pe_utilization,
        degraded.pe_utilization, "{:.3f}")
    row("achieved TFLOPs", baseline.achieved_tflops,
        degraded.achieved_tflops, "{:.2f}")
    row("total power W", baseline.average_power.total_w,
        degraded.average_power.total_w, "{:,.1f}")
    row("mJ/training image",
        base_energy.joules_per_training_image * 1e3,
        hurt_energy.joules_per_training_image * 1e3, "{:.1f}")
    row("mJ/evaluation",
        base_energy.joules_per_evaluation_image * 1e3,
        hurt_energy.joules_per_evaluation_image * 1e3, "{:.2f}")
    table.show()


def cmd_validate(args: argparse.Namespace) -> None:
    import json as json_mod

    from repro.bench.export import write_validation_json
    from repro.sim.validation import (
        DEFAULT_SPEEDUP_BATCH,
        MIN_RANK_AGREEMENT,
        validate_zoo,
    )

    names = None
    if args.networks:
        from repro.sim.validation import VALIDATION_VARIANTS

        names = []
        for name in args.networks:
            if name in VALIDATION_VARIANTS:
                names.append(name)
                continue
            try:
                names.append(zoo.resolve(name))
            except KeyError:
                choices = ", ".join(
                    list(zoo.available()) + sorted(VALIDATION_VARIANTS)
                )
                print(
                    f"repro: unknown network {name!r} "
                    f"(choose from: {choices})",
                    file=sys.stderr,
                )
                raise SystemExit(2)

    report = validate_zoo(
        names=names,
        rows=args.rows,
        seed=args.seed,
        min_rank_agreement=(
            args.min_rank if args.min_rank is not None
            else MIN_RANK_AGREEMENT
        ),
        speedup=not args.no_speedup,
        speedup_batch=args.batch or DEFAULT_SPEEDUP_BATCH,
    )

    if args.json:
        print(json_mod.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        table = Table(
            "Differential validation: engine vs analytical vs reference",
            ["network", "status", "engine cyc", "fused cyc",
             "analytical cyc", "ratio", "band", "max |err|"],
        )
        for r in report.rows:
            if r.status == "ok":
                table.add(
                    r.network, r.status, f"{r.engine_cycles:,}",
                    f"{r.fused_cycles:,}",
                    f"{r.analytical_cycles:,.0f}", f"{r.ratio:.3f}",
                    r.band.describe(), f"{r.max_abs_error:.1e}",
                )
            else:
                table.add(
                    r.network, r.status, "-", "-", "-", "-", "-", "-"
                )
        table.show()
        proxied = [
            r for r in report.rows if r.status == "ok" and r.reason
        ]
        if proxied:
            print(f"{len(proxied)} network(s) ran as engine proxies:")
            for r in proxied:
                print(f"  {r.network}: {r.reason}")
        skipped = [r for r in report.rows if r.status != "ok"]
        if skipped:
            print(f"{len(skipped)} network(s) beyond engine scope:")
            for r in skipped:
                print(f"  {r.network}: {r.reason}")
        print(
            f"rank agreement {report.rank:.2f} "
            f"(threshold {report.min_rank_agreement:.2f})"
        )
        if report.speedup is not None:
            print(f"speedup: {report.speedup.describe()}")

    if args.out:
        path = write_validation_json(report, args.out)
        if not args.json:
            print(f"wrote {path}")

    # Gate last, so the artifact exists even on failure (CI uploads it).
    report.raise_on_failure()
    if not args.json:
        print("validation gate passed")


def cmd_sweep(args: argparse.Namespace) -> None:
    from repro.bench.export import write_sweep_csv, write_sweep_json
    from repro.errors import ConfigError, SweepError
    from repro.faults import FaultSpec, parse_kinds
    from repro.sweep import (
        CompileCache,
        expand_jobs,
        get_cache,
        run_sweep,
        set_cache,
    )

    if args.cache_dir:
        set_cache(CompileCache(args.cache_dir))
    if args.clear_cache:
        removed = get_cache().clear()
        print(f"cleared {removed} cached artifacts")
        if not args.networks:
            return  # clear-only invocation: don't launch the full suite

    try:
        faults = None
        if args.fault_rate is not None:
            faults = FaultSpec(
                rate=args.fault_rate, seed=args.fault_seed,
                kinds=parse_kinds(args.fault_kind),
            )
        jobs = expand_jobs(
            networks=args.networks or None,
            presets=args.presets.split(","),
            minibatches=args.minibatch or None,
            faults=faults,
            nodes=[int(n) for n in str(args.nodes).split(",")],
            strategies=args.strategy.split(","),
        )
    except (KeyError, ValueError, ConfigError, SweepError) as exc:
        message = exc.args[0] if exc.args else str(exc)
        print(f"repro: {message}", file=sys.stderr)
        raise SystemExit(2)

    report = run_sweep(
        jobs,
        workers=args.workers,
        use_cache=not args.no_cache,
        cache_dir=args.cache_dir,
        retries=args.retries,
        fail_fast=args.fail_fast,
    )

    scaled_out = any(
        r.nodes != 1 or r.strategy != "data/ring" for r in report.results
    )
    if scaled_out:
        table = Table(
            "Sweep results",
            ["network", "preset", "mb", "nodes", "strategy",
             "sys train img/s", "efficiency", "$/run", "$/1M inf"],
        )
        for r in report.results:
            table.add(
                r.network, r.preset, r.minibatch, r.nodes, r.strategy,
                f"{r.system_train_images_per_s:,.0f}",
                f"{r.scaling_efficiency:.0%}",
                f"{r.dollars_per_training_run:,.2f}",
                "FAILED" if r.failed
                else f"{r.dollars_per_1m_inferences:,.2f}",
            )
    else:
        table = Table(
            "Sweep results",
            ["network", "preset", "mb", "train img/s", "eval img/s",
             "PE util", "GFLOPs/W", "bound by"],
        )
        for r in report.results:
            table.add(
                r.network, r.preset, r.minibatch,
                f"{r.train_images_per_s:,.0f}",
                f"{r.eval_images_per_s:,.0f}",
                f"{r.pe_utilization:.2f}",
                f"{r.gflops_per_watt:.0f}",
                "FAILED" if r.failed else r.bound_by,
            )
    table.show()
    print(report.describe())
    print(f"wrote {write_sweep_json(report.results, args.out)}")
    if args.csv:
        print(f"wrote {write_sweep_csv(report.results, args.csv)}")
    if args.html:
        from repro.bench.dashboard import write_sweep_html

        print(f"wrote {write_sweep_html(report.results, args.html)}")
    if report.failures:
        for r in report.failures:
            print(
                f"repro: job {r.network}/{r.preset}/mb{r.minibatch} "
                f"failed:\n{r.error}",
                file=sys.stderr,
            )
        raise SystemExit(1)


def _serve_networks(args: argparse.Namespace):
    """Split/load the serving network list (usage errors exit 2)."""
    names = [
        part
        for spec in args.networks
        for part in spec.split(",")
        if part
    ]
    if not names:
        print(
            f"repro: {args.command} needs at least one network",
            file=sys.stderr,
        )
        raise SystemExit(2)
    return [_load(name) for name in names]


def _slo_policy(args: argparse.Namespace):
    """An :class:`SLOPolicy` from ``--slo-p99``/``--slo-availability``,
    or ``None`` when neither objective was given."""
    from repro.serve import SLOPolicy

    if args.slo_p99 is None and args.slo_availability is None:
        return None
    return SLOPolicy(
        p99_ms=args.slo_p99, availability=args.slo_availability
    )


def _serve_config(args: argparse.Namespace, failures=None):
    """A :class:`ServeConfig` from the shared serve/chaos flags.
    Raises :class:`ConfigError` on bad knobs (callers map to exit 2)."""
    from repro.serve import BatchPolicy, ServeConfig

    policy = BatchPolicy(
        kind=args.policy,
        max_batch=args.max_batch,
        max_wait_s=args.max_wait / 1e3,
        queue_depth=args.queue_depth,
    )
    return ServeConfig(
        qps=args.qps,
        duration_s=args.duration,
        arrivals=args.arrivals,
        seed=args.seed,
        policy=policy,
        max_requests=args.max_requests,
        minibatch=args.minibatch,
        timeout_s=(
            args.timeout / 1e3 if args.timeout is not None else None
        ),
        retries=args.retries,
        backoff_s=args.backoff / 1e3,
        hedge_s=args.hedge / 1e3 if args.hedge is not None else None,
        failures=failures,
        slo=_slo_policy(args),
    )


def _enforce_slo(report) -> None:
    """Raise :class:`SLOViolation` (exit 1) when a single-run report
    misses an objective — called *after* artifacts are written, so a
    violating run still leaves its JSON/CSV behind."""
    violations = report.slo_violations()
    if violations:
        from repro.errors import SLOViolation

        detail = "; ".join(f.describe() for f in violations)
        raise SLOViolation(
            f"{len(violations)} SLO violation(s): {detail}", violations
        )


def cmd_serve(args: argparse.Namespace) -> None:
    import json as json_mod

    from repro.bench.export import write_serve_csv, write_serve_json
    from repro.errors import ConfigError
    from repro.serve import (
        place_networks,
        run_curve,
        simulate_serving,
    )

    networks = _serve_networks(args)
    node = _node(args)
    if args.faults is not None and args.curve:
        print(
            "repro: serve --faults is a static degraded run; use "
            "chaos --curve for load sweeps under a fault lifecycle",
            file=sys.stderr,
        )
        raise SystemExit(2)

    try:
        config = _serve_config(args)
        placement = None
        if args.faults is not None:
            # Static degraded serving: sample one fault mask, compile
            # every tenant against it, and place on what survives.
            from repro.faults import ALL_KINDS, FaultSpec, parse_kinds
            from repro.sweep.cache import cached_simulation

            kind = args.fault_kind.strip()
            spec = FaultSpec(
                rate=args.faults,
                seed=(
                    args.fault_seed if args.fault_seed is not None
                    else args.seed
                ),
                kinds=(
                    ALL_KINDS if kind == "all" else parse_kinds(kind)
                ),
                slow_factor=args.slow_factor,
            )
            results = [
                cached_simulation(
                    net, node, args.minibatch, faults=spec
                )
                for net in networks
            ]
            placement = place_networks(
                networks, node, minibatch=args.minibatch,
                results=results,
            )
        if args.curve:
            report = run_curve(
                [net.name for net in networks], node, config,
                workers=args.workers,
            )
        else:
            report = simulate_serving(
                networks, node, config, placement=placement
            )
    except ConfigError as exc:
        # Every knob here came off the command line: usage error.
        message = exc.args[0] if exc.args else str(exc)
        print(f"repro: {message}", file=sys.stderr)
        raise SystemExit(2)

    if args.json:
        print(
            json_mod.dumps(report.to_dict(), indent=2, sort_keys=True)
        )
    elif args.curve:
        table = Table(
            f"Latency-throughput curve ({node.name})",
            ["network", "load", "offered QPS", "sustained QPS",
             "p50 ms", "p95 ms", "p99 ms", "shed", "batch"],
        )
        for row in report.rows():
            table.add(
                row["network"], f'{row["fraction"]:g}x',
                f'{row["offered_net_qps"]:,.0f}',
                f'{row["sustained_qps"]:,.0f}',
                f'{row["p50_ms"]:.3f}', f'{row["p95_ms"]:.3f}',
                f'{row["p99_ms"]:.3f}', f'{row["shed_rate"]:.1%}',
                f'{row["mean_batch"]:.1f}',
            )
        table.show()
        print(report.describe())
    else:
        table = Table(
            f"Serving report ({node.name})",
            ["network", "share", "offered", "completed", "shed",
             "t/o", "fail", "avail", "p50 ms", "p95 ms", "p99 ms",
             "sustained QPS", "batch"],
        )
        for row in report.rows():
            table.add(
                row["network"], f'{row["share"]:.1%}',
                row["offered"], row["completed"], row["shed"],
                row["timed_out"], row["failed"],
                f'{row["availability"]:.1%}',
                f'{row["p50_ms"]:.3f}', f'{row["p95_ms"]:.3f}',
                f'{row["p99_ms"]:.3f}',
                f'{row["sustained_qps"]:,.0f}',
                f'{row["mean_batch"]:.1f}',
            )
        table.show()
        print(report.describe())
        for finding in report.slo_findings():
            print(f"  slo {finding.describe()}")

    if args.out:
        path = write_serve_json(report, args.out)
        if not args.json:
            print(f"wrote {path}")
    if args.csv:
        path = write_serve_csv(report, args.csv)
        if not args.json:
            print(f"wrote {path}")
    if args.html:
        if not args.curve:
            print(
                "repro: --html renders the latency-throughput curve; "
                "add --curve",
                file=sys.stderr,
            )
            raise SystemExit(2)
        from repro.bench.dashboard import write_serve_html

        path = write_serve_html(report, args.html)
        if not args.json:
            print(f"wrote dashboard to {path}")
    if not args.curve:
        _enforce_slo(report)


def cmd_chaos(args: argparse.Namespace) -> None:
    """Failure-aware serving: a seeded MTBF/MTTR fault/repair lifecycle
    over the serving loop, with deadlines/retries/hedging and SLO
    error budgets."""
    import json as json_mod

    from repro.bench.export import write_serve_csv, write_serve_json
    from repro.errors import ConfigError
    from repro.serve import (
        FailureConfig,
        parse_chaos_kinds,
        run_curve,
        simulate_serving,
    )

    networks = _serve_networks(args)
    node = _node(args)

    try:
        failures = FailureConfig(
            mtbf_s=args.mtbf,
            mttr_s=args.mttr,
            kinds=parse_chaos_kinds(args.fault_kind),
            seed=(
                args.fault_seed if args.fault_seed is not None
                else args.seed
            ),
            slow_factor=args.slow_factor,
            max_faults=args.max_faults,
        )
        config = _serve_config(args, failures=failures)
        if args.curve:
            report = run_curve(
                [net.name for net in networks], node, config,
                workers=args.workers,
            )
        else:
            report = simulate_serving(networks, node, config)
    except ConfigError as exc:
        message = exc.args[0] if exc.args else str(exc)
        print(f"repro: {message}", file=sys.stderr)
        raise SystemExit(2)

    if args.json:
        print(
            json_mod.dumps(report.to_dict(), indent=2, sort_keys=True)
        )
    elif args.curve:
        table = Table(
            f"Latency-throughput curve under faults ({node.name})",
            ["network", "load", "offered QPS", "sustained QPS",
             "p99 ms", "shed", "t/o", "fail", "avail"],
        )
        for row in report.rows():
            table.add(
                row["network"], f'{row["fraction"]:g}x',
                f'{row["offered_net_qps"]:,.0f}',
                f'{row["sustained_qps"]:,.0f}',
                f'{row["p99_ms"]:.4f}',
                row["shed"], row["timed_out"], row["failed"],
                f'{row["availability"]:.1%}',
            )
        table.show()
        print(report.describe())
    else:
        table = Table(
            f"Chaos serving report ({node.name}, "
            f"{failures.describe()})",
            ["network", "offered", "done", "shed", "t/o", "fail",
             "avail", "retry", "hedge", "p99 ms", "healthy p99",
             "degraded p99"],
        )
        for row in report.rows():
            table.add(
                row["network"], row["offered"], row["completed"],
                row["shed"], row["timed_out"], row["failed"],
                f'{row["availability"]:.1%}',
                row["retries"], row["hedges"],
                f'{row["p99_ms"]:.6f}',
                f'{row["healthy_p99_ms"]:.6f}',
                f'{row["degraded_p99_ms"]:.6f}',
            )
        table.show()
        print(report.describe())
        for interval in report.degraded_intervals:
            print(f"  {interval.describe()}")
        for finding in report.slo_findings():
            print(f"  slo {finding.describe()}")

    if args.out:
        path = write_serve_json(report, args.out)
        if not args.json:
            print(f"wrote {path}")
    if args.csv:
        path = write_serve_csv(report, args.csv)
        if not args.json:
            print(f"wrote {path}")
    if args.html:
        from repro.bench.dashboard import (
            write_chaos_html,
            write_serve_html,
        )

        if args.curve:
            path = write_serve_html(report, args.html)
        else:
            path = write_chaos_html(report, args.html)
        if not args.json:
            print(f"wrote dashboard to {path}")
    if not args.curve:
        _enforce_slo(report)


def cmd_export(args: argparse.Namespace) -> None:
    from repro.bench.export import export_all

    paths = export_all(args.directory)
    for path in paths:
        print(path)
    print(f"wrote {len(paths)} figure data files")


def _robustness_flags(p: argparse.ArgumentParser) -> None:
    """Request-robustness and SLO flags shared by serve and chaos."""
    p.add_argument(
        "--timeout", type=float, default=None, metavar="MS",
        help="end-to-end request deadline in ms: requests past it "
        "count as timed out (default: none)",
    )
    p.add_argument(
        "--retries", type=int, default=0,
        help="extra attempts after a shed/failed/expired copy "
        "(default: 0)",
    )
    p.add_argument(
        "--backoff", type=float, default=5.0, metavar="MS",
        help="retry backoff base in ms; attempt n re-arrives after "
        "backoff * 2^(n-1) (default: 5.0)",
    )
    p.add_argument(
        "--hedge", type=float, default=None, metavar="MS",
        help="spawn a duplicate request after this much queue wait; "
        "first copy to finish wins (default: off)",
    )
    p.add_argument(
        "--slo-p99", type=float, default=None, metavar="MS",
        help="p99 latency objective per tenant and node; a violating "
        "run exits 1 after writing artifacts",
    )
    p.add_argument(
        "--slo-availability", type=float, default=None, metavar="FRAC",
        help="minimum fraction of offered requests that must complete "
        "(0, 1]; violations exit 1",
    )


def build_parser() -> argparse.ArgumentParser:
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description="ScaleDeep (ISCA 2017) reproduction toolkit",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the benchmark zoo").set_defaults(
        func=cmd_list
    )

    def with_net(name: str, help_text: str) -> argparse.ArgumentParser:
        p = sub.add_parser(name, help=help_text)
        p.add_argument("network", help="benchmark name, e.g. AlexNet")
        p.add_argument(
            "--hp", action="store_true",
            help="use the half-precision node (Fig 17)",
        )
        return p

    with_net("analyze", "workload analysis").set_defaults(func=cmd_analyze)
    with_net("map", "compiler column allocation").set_defaults(func=cmd_map)
    p = with_net("lower", "compile to the unified IR and dump it")
    p.add_argument(
        "--phase", choices=["fp", "bp", "wg"], default=None,
        help="restrict the dump to one training phase",
    )
    p.add_argument(
        "--json", action="store_true",
        help="dump the full IR as JSON instead of a summary",
    )
    p.set_defaults(func=cmd_lower)
    def with_system(p: argparse.ArgumentParser) -> argparse.ArgumentParser:
        p.add_argument(
            "--nodes", type=int, default=1,
            help="scale out to an N-node system (default: 1)",
        )
        p.add_argument(
            "--strategy", default="data",
            help="parallelism strategy kind[:group][/sync] "
            "(default: data)",
        )
        return p

    p = with_system(with_net("simulate", "throughput / power simulation"))
    p.add_argument("--minibatch", type=int, default=256)
    p.set_defaults(func=cmd_simulate)
    with_system(with_net("energy", "per-image energy")).set_defaults(
        func=cmd_energy
    )
    with_net("compare-gpu", "Fig 18 speedups").set_defaults(
        func=cmd_compare_gpu
    )
    with_net("stages", "pipeline-stage report").set_defaults(
        func=cmd_stages
    )
    with_net("report", "full simulation report").set_defaults(
        func=cmd_report
    )
    p = with_net("trace", "write a Chrome trace-event JSON capture")
    p.add_argument(
        "--out", default="trace.json",
        help="output path for the trace (default: trace.json)",
    )
    p.set_defaults(func=cmd_trace)
    p = with_net("profile", "per-tile cycle counters and telemetry")
    p.add_argument(
        "--counters", action="store_true",
        help="also print the full counter registry",
    )
    p.add_argument(
        "--csv", metavar="PATH", default=None,
        help="write the counter registry as CSV to PATH",
    )
    p.set_defaults(func=cmd_profile)
    p = with_net(
        "stats",
        "metric distributions + bottleneck attribution for both "
        "simulators, with baselines and an HTML dashboard",
    )
    p.add_argument("--minibatch", type=int, default=256)
    p.add_argument(
        "--json", action="store_true",
        help="print the deterministic metric snapshot as JSON",
    )
    p.add_argument(
        "--html", metavar="PATH", default=None,
        help="write a self-contained HTML dashboard to PATH",
    )
    p.add_argument(
        "--baseline", metavar="PATH", default=None,
        help="record this run's snapshot in the baseline file at PATH",
    )
    p.add_argument(
        "--compare", metavar="PATH", default=None,
        help="compare against the baseline file at PATH; exits 2 on "
        "any metric outside its tolerance band",
    )
    p.set_defaults(func=cmd_stats)
    p = sub.add_parser(
        "sweep",
        help="parallel (network x preset x minibatch) sweep with "
        "compile caching",
    )
    p.add_argument(
        "networks", nargs="*",
        help="networks to sweep (default: the full Fig 15 suite)",
    )
    p.add_argument(
        "--presets", default="sp",
        help="comma-separated chip presets (default: sp)",
    )
    p.add_argument(
        "--minibatch", type=int, action="append", metavar="N",
        help="minibatch size; repeatable (default: 256)",
    )
    p.add_argument(
        "--workers", type=int, default=1,
        help="worker processes (default: 1 = serial)",
    )
    p.add_argument(
        "--nodes", default="1", metavar="N[,N...]",
        help="comma-separated system node counts (default: 1)",
    )
    p.add_argument(
        "--strategy", default="data", metavar="S[,S...]",
        help="comma-separated parallelism strategies, each "
        "kind[:group][/sync] — e.g. data, model/tree, hybrid:2 "
        "(default: data)",
    )
    p.add_argument(
        "--out", default="sweep_results.json",
        help="JSON results path (default: sweep_results.json)",
    )
    p.add_argument(
        "--csv", metavar="PATH", default=None,
        help="also write results as CSV to PATH",
    )
    p.add_argument(
        "--html", metavar="PATH", default=None,
        help="write the scale-out dashboard (scaling curve + TCO "
        "KPIs) to PATH",
    )
    p.add_argument(
        "--no-cache", action="store_true",
        help="bypass the compile cache for this run",
    )
    p.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="disk-backed cache directory "
        "(default: memory only, or $REPRO_CACHE_DIR)",
    )
    p.add_argument(
        "--clear-cache", action="store_true",
        help="drop cached artifacts first (alone: clear and exit)",
    )
    p.add_argument(
        "--retries", type=int, default=1,
        help="re-attempts per failing job before quarantine (default: 1)",
    )
    p.add_argument(
        "--fail-fast", action="store_true",
        help="abort the sweep on the first failed job instead of "
        "quarantining it as a failed row",
    )
    p.add_argument(
        "--fault-rate", type=float, default=None, metavar="R",
        help="inject faults at per-site rate R into every job",
    )
    p.add_argument(
        "--fault-seed", type=int, default=0,
        help="fault RNG seed (default: 0)",
    )
    p.add_argument(
        "--fault-kind", default="tile-dead",
        help="comma-separated fault kinds (default: tile-dead)",
    )
    p.set_defaults(func=cmd_sweep)
    p = sub.add_parser(
        "validate",
        help="differential gate: engine vs analytical vs numpy reference",
    )
    p.add_argument(
        "networks", nargs="*",
        help="networks to validate (default: every zoo network the "
        "engine can compile, plus the built-in validation variants)",
    )
    p.add_argument(
        "--rows", type=int, default=2,
        help="MemHeavy rows per column for the engine layout (default: 2)",
    )
    p.add_argument(
        "--seed", type=int, default=0,
        help="image / weight RNG seed (default: 0)",
    )
    p.add_argument(
        "--min-rank", type=float, default=None,
        help="rank-agreement threshold override",
    )
    p.add_argument(
        "--batch", type=int, default=None,
        help="minibatch size for the speedup measurement",
    )
    p.add_argument(
        "--no-speedup", action="store_true",
        help="skip the wall-clock speedup measurement",
    )
    p.add_argument(
        "--json", action="store_true",
        help="print the full report as JSON instead of a table",
    )
    p.add_argument(
        "--out", metavar="PATH", default=None,
        help="also write the report as a JSON artifact "
        "(e.g. BENCH_validate.json)",
    )
    p.set_defaults(func=cmd_validate)
    p = with_net("faults", "fault-injection what-if: baseline vs degraded")
    p.add_argument(
        "--rate", type=float, default=0.02,
        help="per-site fault probability (default: 0.02)",
    )
    p.add_argument(
        "--seed", type=int, default=0,
        help="fault RNG seed (default: 0)",
    )
    p.add_argument(
        "--kind", default="tile-dead",
        help="comma-separated fault kinds: tile-dead, tile-slow, "
        "link-down, dma-bitflip, or 'all' (default: tile-dead)",
    )
    p.add_argument(
        "--slow-factor", type=float, default=0.5,
        help="throughput fraction a tile-slow column retains "
        "(default: 0.5)",
    )
    p.add_argument("--minibatch", type=int, default=256)
    p.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="disk-backed compile cache directory",
    )
    p.set_defaults(func=cmd_faults)
    p = sub.add_parser(
        "serve",
        help="datacenter inference serving simulation "
        "(latency/QPS, --curve for the latency-throughput sweep)",
    )
    p.add_argument(
        "networks", nargs="+",
        help="networks to co-serve on one node (comma- or "
        "space-separated, e.g. lenet5,alexnet)",
    )
    p.add_argument(
        "--hp", action="store_true",
        help="use the half-precision node (Fig 17)",
    )
    p.add_argument(
        "--qps", type=float, default=2_000.0,
        help="aggregate offered load in requests/s "
        "(default: 2000; ignored with --curve)",
    )
    p.add_argument(
        "--duration", type=float, default=0.25, metavar="S",
        help="offered-arrival window in seconds (default: 0.25)",
    )
    p.add_argument(
        "--arrivals", choices=["poisson", "uniform"], default="poisson",
        help="arrival process (default: poisson)",
    )
    p.add_argument(
        "--seed", type=int, default=0,
        help="arrival RNG seed (default: 0)",
    )
    p.add_argument(
        "--policy", choices=["wait", "greedy"], default="wait",
        help="batching policy: hold for max-batch/max-wait, or "
        "dispatch whenever the server is idle (default: wait)",
    )
    p.add_argument(
        "--max-batch", type=int, default=8,
        help="largest batch the batcher forms (default: 8)",
    )
    p.add_argument(
        "--max-wait", type=float, default=2.0, metavar="MS",
        help="longest a request waits for batchmates, in ms "
        "(default: 2.0)",
    )
    p.add_argument(
        "--queue-depth", type=int, default=64,
        help="admission bound: arrivals past this queue depth are "
        "shed (default: 64)",
    )
    p.add_argument(
        "--max-requests", type=int, default=200_000,
        help="hard cap on generated requests per run (default: 200000)",
    )
    p.add_argument("--minibatch", type=int, default=256)
    p.add_argument(
        "--curve", action="store_true",
        help="sweep offered load over fractions of the analytical "
        "saturation rate and report the latency-throughput curve",
    )
    p.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for --curve points (default: 1)",
    )
    p.add_argument(
        "--json", action="store_true",
        help="print the deterministic report as JSON",
    )
    p.add_argument(
        "--out", metavar="PATH", default=None,
        help="also write the report as a JSON artifact "
        "(e.g. BENCH_serve.json)",
    )
    p.add_argument(
        "--csv", metavar="PATH", default=None,
        help="also write the per-row results as CSV",
    )
    p.add_argument(
        "--html", metavar="PATH", default=None,
        help="write the serving dashboard (requires --curve)",
    )
    _robustness_flags(p)
    p.add_argument(
        "--faults", type=float, default=None, metavar="RATE",
        help="serve on a statically degraded node: sample one fault "
        "mask at this per-site rate, compile every tenant against it "
        "and place on what survives (not with --curve)",
    )
    p.add_argument(
        "--fault-seed", type=int, default=None,
        help="fault-sampling seed (default: --seed)",
    )
    p.add_argument(
        "--fault-kind", default="tile-slow", metavar="KINDS",
        help="comma-separated fault kinds for --faults, or 'all' "
        "(default: tile-slow)",
    )
    p.add_argument(
        "--slow-factor", type=float, default=0.5,
        help="throughput a tile-slow column retains (default: 0.5)",
    )
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "chaos",
        help="failure-aware serving: seeded MTBF/MTTR fault/repair "
        "lifecycle with retries, hedging and SLO error budgets",
    )
    p.add_argument(
        "networks", nargs="+",
        help="networks to co-serve under faults (comma- or "
        "space-separated)",
    )
    p.add_argument(
        "--hp", action="store_true",
        help="use the half-precision node (Fig 17)",
    )
    p.add_argument(
        "--mtbf", type=float, required=True, metavar="S",
        help="mean time between fault arrivals in seconds",
    )
    p.add_argument(
        "--mttr", type=float, required=True, metavar="S",
        help="mean time to repair one fault in seconds",
    )
    p.add_argument(
        "--fault-kind", default="tile-slow", metavar="KINDS",
        help="comma-separated fault kinds to inject "
        "(tile-slow, tile-dead, link-down; default: tile-slow)",
    )
    p.add_argument(
        "--slow-factor", type=float, default=0.5,
        help="throughput a tile-slow column retains (default: 0.5)",
    )
    p.add_argument(
        "--fault-seed", type=int, default=None,
        help="failure-process seed (default: --seed)",
    )
    p.add_argument(
        "--max-faults", type=int, default=64,
        help="cap on injected faults per run (default: 64)",
    )
    p.add_argument("--qps", type=float, default=2_000.0)
    p.add_argument(
        "--duration", type=float, default=0.25, metavar="S",
        help="offered-arrival window in seconds (default: 0.25)",
    )
    p.add_argument(
        "--arrivals", choices=["poisson", "uniform"], default="poisson",
    )
    p.add_argument(
        "--seed", type=int, default=0,
        help="arrival RNG seed (default: 0)",
    )
    p.add_argument(
        "--policy", choices=["wait", "greedy"], default="greedy",
        help="batching policy (default: greedy — latency tracks the "
        "degraded service rate instead of the max-wait floor)",
    )
    p.add_argument("--max-batch", type=int, default=8)
    p.add_argument(
        "--max-wait", type=float, default=2.0, metavar="MS",
        help="longest wait for batchmates under --policy wait, in ms",
    )
    p.add_argument("--queue-depth", type=int, default=64)
    p.add_argument("--max-requests", type=int, default=200_000)
    p.add_argument("--minibatch", type=int, default=256)
    _robustness_flags(p)
    p.add_argument(
        "--curve", action="store_true",
        help="sweep offered load under the fault lifecycle",
    )
    p.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for --curve points (default: 1)",
    )
    p.add_argument(
        "--json", action="store_true",
        help="print the deterministic report as JSON",
    )
    p.add_argument(
        "--out", metavar="PATH", default=None,
        help="also write the report as a JSON artifact "
        "(e.g. BENCH_chaos.json)",
    )
    p.add_argument(
        "--csv", metavar="PATH", default=None,
        help="also write the per-row results as CSV",
    )
    p.add_argument(
        "--html", metavar="PATH", default=None,
        help="write the chaos dashboard",
    )
    p.set_defaults(func=cmd_chaos)
    p = sub.add_parser("export", help="write figure data as CSV")
    p.add_argument("directory", help="output directory")
    p.set_defaults(func=cmd_export)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        args.func(args)
    except ReproError as exc:
        # Domain failures (unmappable networks, partitioned topologies,
        # simulation timeouts, fail-fast sweeps) exit 1 with a one-line
        # message — never a traceback.
        message = exc.args[0] if exc.args else str(exc)
        print(f"repro: {message}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
