"""DaDianNao-style homogeneous baseline (paper Sec 7).

DaDianNao is the closest prior work: a supercomputer of *homogeneous*
node chips, each with identical compute-to-memory/interconnect ratios.
The paper's quantitative claim is that ScaleDeep delivers ~5x as many
FLOPs at iso-power, because a homogeneous design must provision every
tile for the worst-case Bytes/FLOP while DNN layers vary by ~3 orders
of magnitude (Fig 4), leaving either memory over-provisioned or compute
under-utilised.

This module models that effect: a homogeneous node has a single design
Bytes/FLOP ratio; any layer demanding more is bandwidth-bound in
proportion to the mismatch, and the uniform tile's lower compute
density costs a further iso-power peak-FLOPs factor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.dnn.analysis import Step, TRAINING_STEPS, profile
from repro.dnn.network import Network

#: Iso-power peak FLOPs of the homogeneous design relative to ScaleDeep.
#: The homogeneous tile carries the memory/interconnect provisioning of
#: the most demanding layer class, which the paper quantifies as a 5x
#: FLOPs deficit at equal power.
HOMOGENEOUS_PEAK_RATIO = 0.2

#: Design-point Bytes/FLOP of the homogeneous tile: provisioned at the
#: suite-average operating point (between the CONV layers' ~0.01 and the
#: FC layers' ~2).
HOMOGENEOUS_DESIGN_BF = 0.05

#: Fraction of peak the homogeneous array sustains on compute-bound
#: layers (no array reconfigurability, fixed feature distribution).
HOMOGENEOUS_COMPUTE_UTILIZATION = 0.45


@dataclass(frozen=True)
class DaDianNaoModel:
    """A homogeneous accelerator node at a given power envelope."""

    peak_flops: float
    design_bytes_per_flop: float = HOMOGENEOUS_DESIGN_BF
    compute_utilization: float = HOMOGENEOUS_COMPUTE_UTILIZATION

    @classmethod
    def iso_power(cls, scaledeep_peak_flops: float) -> "DaDianNaoModel":
        """The homogeneous node matching ScaleDeep's power envelope."""
        return cls(peak_flops=scaledeep_peak_flops * HOMOGENEOUS_PEAK_RATIO)

    def layer_seconds(self, net: Network, layer: str, step: Step) -> float:
        """Time for one layer step: compute-bound at the homogeneous
        utilization, or bandwidth-bound when the layer's Bytes/FLOP
        exceeds the design ratio."""
        prof = profile(net[layer], step, dtype_bytes=4)
        if not prof.flops:
            return 0.0
        compute_s = prof.flops / (self.peak_flops * self.compute_utilization)
        # Aggregate bandwidth implied by the design B/F at peak FLOPs.
        bandwidth = self.peak_flops * self.design_bytes_per_flop
        memory_s = prof.bytes_total / bandwidth
        return max(compute_s, memory_s)

    def images_per_second(self, net: Network, training: bool = True) -> float:
        steps = TRAINING_STEPS if training else (Step.FP,)
        seconds = sum(
            self.layer_seconds(net, node.name, step)
            for node in net
            for step in steps
        )
        return 1.0 / seconds

    def sustained_flops(self, net: Network, training: bool = True) -> float:
        """Achieved FLOP/s on a workload (for the iso-power comparison)."""
        steps = TRAINING_STEPS if training else (Step.FP,)
        total_flops = sum(
            profile(node, step, 4).flops for node in net for step in steps
        )
        return total_flops * self.images_per_second(net, training)
