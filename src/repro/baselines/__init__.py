"""Baselines the paper compares against: TitanX stacks and DaDianNao."""

from repro.baselines.gpu import (
    FRAMEWORK_MODELS,
    GPU_BATCH,
    GpuFramework,
    TITANX_PEAK_FLOPS,
    TITANX_POWER_W,
    all_framework_rates,
    gpu_images_per_second,
)
from repro.baselines.dadiannao import (
    DaDianNaoModel,
    HOMOGENEOUS_PEAK_RATIO,
)

__all__ = [
    "DaDianNaoModel",
    "FRAMEWORK_MODELS",
    "GPU_BATCH",
    "GpuFramework",
    "HOMOGENEOUS_PEAK_RATIO",
    "TITANX_PEAK_FLOPS",
    "TITANX_POWER_W",
    "all_framework_rates",
    "gpu_images_per_second",
]
