"""GPU baseline models for the Fig 18 comparison.

The paper compares a ScaleDeep chip cluster (~325 W) against an NVIDIA
TitanX (Maxwell, ~320 W — hence "iso-power") running five software
stacks: cuDNN-R2, Nervana Neon, TensorFlow, and the Winograd variants
of cuDNN and Neon.  The public data it cites (convnet-benchmarks, the
Nervana zoo) is not available offline, so this module substitutes a
roofline model of the TitanX: each layer step costs
``max(flops / (peak * framework_efficiency), bytes / mem_bandwidth)``,
with per-framework achieved-FLOP efficiencies calibrated to the
published era measurements, and Winograd reducing the arithmetic of
3x3 stride-1 convolutions by its algorithmic factor.

The reproduction target is the *shape* of Fig 18 — cuDNN-R2 slowest
(ScaleDeep 22-28x faster), Nervana fastest among baselines (6-15x),
TensorFlow in between (7-11x), Winograd closing part of the gap
(5-11x) — not the absolute milliseconds.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable

from repro.dnn.analysis import Kernel, Step, TRAINING_STEPS, profile
from repro.dnn.layers import ConvSpec, LayerKind
from repro.dnn.network import Network

#: TitanX (Maxwell) card parameters.
TITANX_PEAK_FLOPS = 6.7e12  # single precision
TITANX_MEM_BANDWIDTH = 336e9  # bytes/s
TITANX_POWER_W = 320.0

#: Training batch the public benchmarks used; weights stream once per
#: batch, so their traffic amortises by this factor.
GPU_BATCH = 128

#: Winograd F(2x2, 3x3) reduces 3x3 convolution multiplies by 2.25x.
WINOGRAD_FACTOR = 2.25


class GpuFramework(enum.Enum):
    """The five GPU software stacks of Fig 18."""

    CUDNN_R2 = "TitanX-cuDNN-R2"
    NERVANA = "TitanX-Nervana"
    TENSORFLOW = "TensorFlow"
    CUDNN_WINOGRAD = "TitanX-cuDNN-Winograd"
    NERVANA_WINOGRAD = "TitanX-Nervana-Winograd"


@dataclass(frozen=True)
class FrameworkModel:
    """Achieved-efficiency parameters of one software stack."""

    framework: GpuFramework
    conv_efficiency: float  # achieved / peak FLOPs on convolutions
    fc_efficiency: float  # achieved / peak on GEMM (FC layers)
    winograd: bool  # apply the 3x3 arithmetic reduction
    overhead: float  # framework launch/sync overhead multiplier


#: Calibrated framework models.  Efficiencies are in the range published
#: for Maxwell-era stacks: cuDNN R2 achieved ~20-25% of peak on
#: convolutions, Nervana's SASS kernels ~55-60%, early TensorFlow ~40%.
FRAMEWORK_MODELS: Dict[GpuFramework, FrameworkModel] = {
    GpuFramework.CUDNN_R2: FrameworkModel(
        GpuFramework.CUDNN_R2, 0.26, 0.45, winograd=False, overhead=1.10
    ),
    GpuFramework.NERVANA: FrameworkModel(
        GpuFramework.NERVANA, 0.58, 0.60, winograd=False, overhead=1.02
    ),
    GpuFramework.TENSORFLOW: FrameworkModel(
        GpuFramework.TENSORFLOW, 0.50, 0.55, winograd=False, overhead=1.08
    ),
    GpuFramework.CUDNN_WINOGRAD: FrameworkModel(
        GpuFramework.CUDNN_WINOGRAD, 0.40, 0.50, winograd=True,
        overhead=1.10,
    ),
    GpuFramework.NERVANA_WINOGRAD: FrameworkModel(
        GpuFramework.NERVANA_WINOGRAD, 0.55, 0.60, winograd=True,
        overhead=1.02,
    ),
}


def _layer_seconds(
    net: Network,
    layer_name: str,
    step: Step,
    model: FrameworkModel,
    batch: int,
) -> float:
    """Roofline time for one layer step on one image."""
    node = net[layer_name]
    prof = profile(node, step, dtype_bytes=4)
    if not prof.flops:
        return 0.0

    flops = float(prof.flops)
    if node.kind is LayerKind.CONV:
        efficiency = model.conv_efficiency
        spec = node.spec
        assert isinstance(spec, ConvSpec)
        if model.winograd and spec.kernel == 3 and spec.stride == 1:
            conv_flops = prof.flops_by_kernel.get(Kernel.ND_CONV, 0)
            flops -= conv_flops * (1.0 - 1.0 / WINOGRAD_FACTOR)
    elif node.kind is LayerKind.FC:
        efficiency = model.fc_efficiency
    else:
        efficiency = model.fc_efficiency  # element-wise: bandwidth bound

    compute_s = flops / (TITANX_PEAK_FLOPS * efficiency)
    bytes_touched = prof.feature_bytes + prof.weight_bytes / batch
    memory_s = bytes_touched / TITANX_MEM_BANDWIDTH
    return max(compute_s, memory_s)


def gpu_images_per_second(
    net: Network,
    framework: GpuFramework,
    training: bool = True,
    batch: int = GPU_BATCH,
) -> float:
    """Throughput of one TitanX running ``net`` under ``framework``."""
    model = FRAMEWORK_MODELS[framework]
    steps: Iterable[Step] = TRAINING_STEPS if training else (Step.FP,)
    seconds = sum(
        _layer_seconds(net, node.name, step, model, batch)
        for node in net
        for step in steps
    )
    return 1.0 / (seconds * model.overhead)


def all_framework_rates(
    net: Network, training: bool = True
) -> Dict[GpuFramework, float]:
    """images/s for every modelled framework."""
    return {
        fw: gpu_images_per_second(net, fw, training) for fw in GpuFramework
    }
