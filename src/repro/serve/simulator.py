"""The deterministic discrete-event serving loop for one node.

One run: a seeded open-loop request stream
(:mod:`repro.serve.request`) drives per-tenant dynamic batchers
(:mod:`repro.serve.batcher`) over a multi-tenant placement
(:mod:`repro.serve.placement`).  Each tenant's slice of the node acts
as a single batch server: when it is idle and its batcher releases a
batch, the batch occupies the server for the analytical batch latency
(:func:`repro.sim.perf.evaluation_batch_latency_s` via the tenant's
service model) and every member request completes when the batch does.

Layered on top is the request-robustness machinery the chaos verb
exercises.  Every generated request is a **root**; retries and hedged
duplicates are *copies* that share the root's id and submit time.  A
root resolves exactly once, into one of four outcomes:

* ``completed`` — a copy's batch departed before the root's deadline;
* ``shed`` — the last live copy was refused admission (queue full);
* ``timed-out`` — the end-to-end deadline passed (purged from a queue,
  or the batch departed too late);
* ``failed`` — the last live copy arrived while its tenant was down
  (fault-degraded capacity could not host it).

A copy death only finalises the root once no other copy is live and
the retry budget is spent; otherwise a retry re-enters the stream as a
future arrival after deterministic exponential backoff.  Hedges arm a
timer at admission: if the root is still unresolved when it fires, a
duplicate copy is enqueued and the first copy to complete wins (losers
are lazily cancelled when the batcher next touches them).

When a :class:`~repro.serve.failures.FailureConfig` is set, the
sampled fault/repair lifecycle rides the same heap as ``_FAULT``
events: each transition swaps in the rebuilt (degraded) service model,
so in-flight batches finish at the rate they started with and the next
dispatch pays the degraded one; a tenant whose degraded capacity
cannot host it goes down — its queue flushes as ``failed`` and new
arrivals fail until repair.

The event heap orders by ``(time, kind, sequence)`` with departures
before arrivals before wait-timers before fault transitions at equal
timestamps, so simultaneous events resolve identically on every run —
together with the seeded generator and pure float arithmetic this
makes reruns bit-identical, which the serve/chaos CI smokes pin with a
byte compare.

Trading event fidelity for request-level analytical speed (the
SCALE-Sim trade) keeps a run at "millions of users" rates tractable:
the loop costs O(requests log batches), not O(cycles).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.arch.node import NodeConfig
from repro.dnn.network import Network
from repro.errors import ConfigError
from repro.serve.batcher import BatchPolicy, DynamicBatcher
from repro.serve.failures import (
    DegradedInterval,
    FailureConfig,
    FailureLifecycle,
    SLOPolicy,
)
from repro.serve.placement import NodePlacement, Tenant, place_networks
from repro.serve.report import ServeReport, TenantServeStats
from repro.serve.request import (
    ARRIVAL_KINDS,
    DEFAULT_MAX_REQUESTS,
    Request,
    generate_requests,
)
from repro.sim.perf import DEFAULT_MINIBATCH
from repro.telemetry.core import get_telemetry
from repro.telemetry.metrics import Histogram

#: Event kinds in tie-break order: free the server, then admit new
#: work, then fire wait-expiry/hedge timers, then fault transitions.
_DEPART, _ARRIVAL, _TIMER, _FAULT = 0, 1, 2, 3

#: Final request outcomes, in report order.
OUTCOMES = ("completed", "shed", "timed_out", "failed")


@dataclass(frozen=True)
class ServeConfig:
    """Everything one serving run depends on (all deterministic).

    The robustness knobs default off, reproducing the plain PR-7 run:
    no deadline (``timeout_s``), no retries, no hedging
    (``hedge_s``), a permanently healthy node (``failures``) and no
    objectives (``slo``).
    """

    qps: float = 2_000.0
    duration_s: float = 0.25
    arrivals: str = "poisson"
    seed: int = 0
    policy: BatchPolicy = field(default_factory=BatchPolicy)
    weights: Optional[Tuple[float, ...]] = None
    max_requests: int = DEFAULT_MAX_REQUESTS
    minibatch: int = DEFAULT_MINIBATCH
    timeout_s: Optional[float] = None  # end-to-end request deadline
    retries: int = 0  # extra attempts after the first
    backoff_s: float = 0.005  # retry n re-arrives after backoff*2^(n-1)
    hedge_s: Optional[float] = None  # duplicate after this queue wait
    failures: Optional[FailureConfig] = None
    slo: Optional[SLOPolicy] = None

    def __post_init__(self) -> None:
        if self.qps <= 0:
            raise ConfigError(f"offered qps must be > 0, got {self.qps}")
        if self.duration_s <= 0:
            raise ConfigError(
                f"duration must be > 0, got {self.duration_s}"
            )
        if self.arrivals not in ARRIVAL_KINDS:
            raise ConfigError(
                f"unknown arrival process {self.arrivals!r} "
                f"(choose from: {', '.join(ARRIVAL_KINDS)})"
            )
        if self.weights is not None and (
            any(w < 0 for w in self.weights) or sum(self.weights) <= 0
        ):
            raise ConfigError(
                "request weights must be >= 0 and sum > 0, got "
                f"{self.weights}"
            )
        if self.max_requests < 1:
            raise ConfigError(
                f"max_requests must be >= 1, got {self.max_requests}"
            )
        if self.minibatch < 1:
            raise ConfigError(
                f"minibatch must be >= 1, got {self.minibatch}"
            )
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ConfigError(
                f"timeout must be > 0 s, got {self.timeout_s}"
            )
        if self.retries < 0:
            raise ConfigError(f"retries must be >= 0, got {self.retries}")
        if self.backoff_s < 0:
            raise ConfigError(
                f"backoff must be >= 0 s, got {self.backoff_s}"
            )
        if self.hedge_s is not None and self.hedge_s < 0:
            raise ConfigError(
                f"hedge delay must be >= 0 s, got {self.hedge_s}"
            )

    def with_qps(self, qps: float) -> "ServeConfig":
        return replace(self, qps=qps)


class _Root:
    """One logical request's resolution state, shared by every copy."""

    __slots__ = ("rid", "network", "submitted_s", "deadline", "live",
                 "attempts", "resolved", "hedged", "failure")

    def __init__(
        self, rid: int, network: str, submitted_s: float,
        deadline: Optional[float],
    ) -> None:
        self.rid = rid
        self.network = network
        self.submitted_s = submitted_s
        self.deadline = deadline  # absolute, None = never times out
        self.live = 0  # copies queued, scheduled or in flight
        self.attempts = 0  # retries consumed
        self.resolved = False
        self.hedged = False  # a hedge timer has been armed
        self.failure = "failed"  # last copy-death reason


class _TenantState:
    """Mutable per-tenant simulation state."""

    __slots__ = ("tenant", "batcher", "busy", "armed_deadline",
                 "latency_ms", "healthy_ms", "degraded_ms",
                 "batch_sizes", "offered", "completed", "shed",
                 "timed_out", "failed", "retries", "hedges", "batches",
                 "down", "down_since", "down_s")

    def __init__(self, tenant: Tenant, policy: BatchPolicy) -> None:
        self.tenant = tenant
        self.batcher = DynamicBatcher(policy)
        self.busy = False
        self.armed_deadline: Optional[float] = None
        self.latency_ms = Histogram()
        self.healthy_ms = Histogram()  # completions, no fault active
        self.degraded_ms = Histogram()  # completions under >= 1 fault
        self.batch_sizes = Histogram()
        self.offered = 0  # roots only (copies are not new demand)
        self.completed = 0
        self.shed = 0  # roots finalised as shed (vs batcher.shed, which
        # counts every refused admission, hedge/retry copies included)
        self.timed_out = 0
        self.failed = 0
        self.retries = 0  # retry copies scheduled
        self.hedges = 0  # hedge copies spawned
        self.batches = 0
        self.down = False
        self.down_since = 0.0
        self.down_s = 0.0


def simulate_serving(
    networks: Sequence[Network],
    node: NodeConfig,
    config: ServeConfig,
    placement: Optional[NodePlacement] = None,
    lifecycle: Optional[FailureLifecycle] = None,
) -> ServeReport:
    """Run one open-loop serving simulation and report it.

    ``placement`` short-circuits the multi-tenant placer for callers
    sweeping offered load over a fixed placement (the latency curve) or
    serving a statically degraded one (``serve --faults``).
    ``lifecycle`` short-circuits rebuilding the fault lifecycle when
    ``config.failures`` is set and the caller already built one.
    """
    if lifecycle is None and config.failures is not None:
        lifecycle = FailureLifecycle(
            config.failures, networks, node,
            minibatch=config.minibatch, duration_s=config.duration_s,
        )
    if placement is None:
        placement = (
            lifecycle.placement if lifecycle is not None
            else place_networks(networks, node, minibatch=config.minibatch)
        )
    names = [net.name for net in networks]
    requests = generate_requests(
        names,
        qps=config.qps,
        duration_s=config.duration_s,
        arrivals=config.arrivals,
        seed=config.seed,
        weights=config.weights,
        max_requests=config.max_requests,
    )

    states: Dict[str, _TenantState] = {
        name: _TenantState(placement.tenant(name), config.policy)
        for name in names
    }
    roots: Dict[int, _Root] = {}
    tel = get_telemetry()
    timeout_s = config.timeout_s
    robust = (
        timeout_s is not None
        or config.hedge_s is not None
        or lifecycle is not None
    )

    # (time, kind, sequence, payload): payload is a request for
    # arrivals, a (tenant, batch) pair for departures, a ("wait",
    # tenant, deadline) or ("hedge", request) tuple for timers, and a
    # FailureEvent for fault transitions.  The sequence keeps heap
    # comparisons off payloads.
    heap: List[Tuple[float, int, int, object]] = [
        (req.arrival_s, _ARRIVAL, req.index, req) for req in requests
    ]
    if lifecycle is not None:
        heap.extend(
            (event.time_s, _FAULT, -len(lifecycle.events) + i, event)
            for i, event in enumerate(lifecycle.events)
        )
    heapq.heapify(heap)
    sequence = len(requests)
    copy_index = len(requests)  # distinct indices for retry/hedge copies
    last_completion_s = 0.0

    # Fault-lifecycle state: the ids of currently-active faults, plus
    # accounting for contiguous degraded windows.
    active_faults: Dict[int, str] = {}  # fault_id -> site
    intervals: List[DegradedInterval] = []
    interval_start = 0.0
    interval_sites: List[str] = []
    interval_peak = 0
    # (time, latency_ms, degraded) samples for the report timeline.
    completions: List[Tuple[float, float, bool]] = []
    failure_samples: List[Tuple[float, str]] = []  # non-completed roots

    def push(time_s: float, kind: int, payload: object) -> None:
        nonlocal sequence
        heapq.heappush(heap, (time_s, kind, sequence, payload))
        sequence += 1

    def outcome(state: _TenantState, name: str, now_s: float) -> None:
        if tel.enabled:
            tel.count(
                f"serve/{state.tenant.network}", name, 1.0,
                ts=now_s * 1e6,
            )

    def finalize(root: _Root, reason: str, now_s: float) -> None:
        """Resolve a root into its failure outcome."""
        root.resolved = True
        state = states[root.network]
        if reason == "shed":
            state.shed += 1
        elif reason == "timed_out":
            state.timed_out += 1
        else:
            state.failed += 1
        failure_samples.append((now_s, reason))
        outcome(state, f"outcome_{reason}", now_s)

    def copy_death(root: _Root, reason: str, now_s: float) -> None:
        """One copy died (shed / expired / tenant down).  The root
        retries, waits on a surviving copy, or finalises."""
        root.failure = reason
        if root.resolved or root.live > 0:
            return
        if root.attempts < config.retries:
            delay = config.backoff_s * (2.0 ** root.attempts)
            at = now_s + delay
            if root.deadline is None or at < root.deadline:
                root.attempts += 1
                root.live += 1
                state = states[root.network]
                state.retries += 1
                outcome(state, "retry", now_s)
                nonlocal copy_index
                push(at, _ARRIVAL, Request(
                    index=copy_index, network=root.network,
                    arrival_s=at, rid=root.rid,
                    submitted_s=root.submitted_s,
                    attempt=root.attempts,
                ))
                copy_index += 1
                return
            reason = "timed_out"  # the backoff itself blows the budget
        finalize(root, reason, now_s)

    def expired(req: Request) -> bool:
        root = roots[req.rid]
        return root.resolved or (
            root.deadline is not None and root.deadline <= now_s
        )

    def queue_drop(req: Request) -> None:
        root = roots[req.rid]
        root.live -= 1
        if not root.resolved:
            copy_death(root, "timed_out", now_s)

    def try_dispatch(name: str, now_s: float) -> None:
        state = states[name]
        if state.busy or state.down:
            return
        batch = (
            state.batcher.take(now_s, drop=expired, on_drop=queue_drop)
            if robust else state.batcher.take(now_s)
        )
        if batch:
            state.busy = True
            state.batches += 1
            state.batch_sizes.observe(float(len(batch)))
            latency = state.tenant.batch_latency_s(len(batch))
            push(now_s + latency, _DEPART, (name, batch))
            return
        deadline = state.batcher.deadline()
        if deadline is not None and deadline != state.armed_deadline:
            # Queue head changed since the last timer: arm its expiry.
            # (``take`` dispatches at ``now_s >= deadline``, so an
            # unarmed deadline is always in the future here.)
            state.armed_deadline = deadline
            push(deadline, _TIMER, ("wait", name, deadline))

    def apply_transition(now_s: float) -> None:
        """Swap every tenant onto the rebuilt (degraded) service."""
        service = lifecycle.rebuild(frozenset(active_faults))
        for name in names:
            state = states[name]
            tenant = service.tenant(name)
            if tenant is None:
                if not state.down:
                    state.down = True
                    state.down_since = now_s
                    state.armed_deadline = None
                    # Queued copies cannot be served until repair:
                    # flush them as failures (their roots may retry).
                    for req in state.batcher.drain():
                        root = roots[req.rid]
                        root.live -= 1
                        if not root.resolved:
                            copy_death(root, "failed", now_s)
                continue
            if state.down:
                state.down = False
                state.down_s += now_s - state.down_since
            if state.tenant is not tenant:
                # In-flight batches keep the rate they dispatched at
                # (their departures are already on the heap); the next
                # dispatch pays this one.
                state.tenant = tenant
            try_dispatch(name, now_s)

    while heap:
        now_s, kind, _, payload = heapq.heappop(heap)
        if kind == _ARRIVAL:
            request: Request = payload  # type: ignore[assignment]
            state = states[request.network]
            root = roots.get(request.rid)
            if root is None:
                root = _Root(
                    request.rid, request.network, request.submitted_s,
                    request.deadline_s(timeout_s),
                )
                roots[request.rid] = root
                root.live = 1
                state.offered += 1
            if root.resolved:
                root.live -= 1  # cancelled copy (sibling already won)
                continue
            if root.deadline is not None and root.deadline <= now_s:
                root.live -= 1
                copy_death(root, "timed_out", now_s)
                continue
            if state.down:
                root.live -= 1
                copy_death(root, "failed", now_s)
                continue
            if state.batcher.offer(request):
                if (
                    config.hedge_s is not None
                    and not request.hedge
                    and not root.hedged
                ):
                    root.hedged = True
                    push(
                        now_s + config.hedge_s, _TIMER,
                        ("hedge", request),
                    )
                try_dispatch(request.network, now_s)
            else:
                root.live -= 1
                outcome(state, "shed", now_s)
                if not root.resolved:
                    copy_death(root, "shed", now_s)
        elif kind == _DEPART:
            name, batch = payload  # type: ignore[misc]
            state = states[name]
            for request in batch:
                root = roots[request.rid]
                root.live -= 1
                if root.resolved:
                    continue  # hedge loser: sibling already completed
                if root.deadline is not None and root.deadline <= now_s:
                    copy_death(root, "timed_out", now_s)
                    continue
                root.resolved = True
                latency_ms = (now_s - root.submitted_s) * 1e3
                state.latency_ms.observe(latency_ms)
                degraded = bool(active_faults)
                (state.degraded_ms if degraded
                 else state.healthy_ms).observe(latency_ms)
                state.completed += 1
                completions.append((now_s, latency_ms, degraded))
                outcome(state, "completed", now_s)
            last_completion_s = max(last_completion_s, now_s)
            state.busy = False
            try_dispatch(name, now_s)
        elif kind == _TIMER:
            tag = payload[0]  # type: ignore[index]
            if tag == "wait":
                _, name, deadline = payload  # type: ignore[misc]
                state = states[name]
                if state.armed_deadline == deadline:
                    # This timer is current: clear so a future head at
                    # the same instant (retry re-arrival) can re-arm.
                    state.armed_deadline = None
                try_dispatch(name, now_s)
            else:  # "hedge"
                request = payload[1]  # type: ignore[index]
                root = roots[request.rid]
                state = states[request.network]
                if root.resolved or root.live < 1 or state.down:
                    continue
                root.live += 1
                state.hedges += 1
                outcome(state, "hedge", now_s)
                push(now_s, _ARRIVAL, Request(
                    index=copy_index, network=request.network,
                    arrival_s=now_s, rid=request.rid,
                    submitted_s=root.submitted_s,
                    attempt=root.attempts, hedge=True,
                ))
                copy_index += 1
        else:  # _FAULT
            event = payload  # type: ignore[assignment]
            if event.action == "fault":
                if not active_faults:
                    interval_start = now_s
                    interval_sites = []
                    interval_peak = 0
                active_faults[event.fault.fault_id] = event.fault.site
                interval_sites.append(event.fault.site)
                interval_peak = max(interval_peak, len(active_faults))
                if tel.enabled:
                    tel.count(
                        "serve/faults", "fault", 1.0, ts=now_s * 1e6
                    )
            else:
                active_faults.pop(event.fault.fault_id, None)
                if not active_faults:
                    intervals.append(DegradedInterval(
                        interval_start, now_s, interval_peak,
                        tuple(interval_sites),
                    ))
                if tel.enabled:
                    tel.count(
                        "serve/faults", "repair", 1.0, ts=now_s * 1e6
                    )
            apply_transition(now_s)

    # The sustained rate divides by the full horizon: the offered
    # window stretched to the last completion, so a backlogged run
    # cannot report more than the node actually kept up with.
    horizon_s = max(config.duration_s, last_completion_s, 1e-12)
    if active_faults:  # never repaired within the drained heap
        intervals.append(DegradedInterval(
            interval_start, horizon_s, interval_peak,
            tuple(interval_sites),
        ))
    for state in states.values():
        if state.down:  # close out open down-time at the horizon
            state.down_s += max(0.0, horizon_s - state.down_since)
            state.down = False

    tenants = tuple(
        TenantServeStats(
            network=name,
            share=states[name].tenant.share,
            offered=states[name].offered,
            admitted=states[name].batcher.admitted,
            shed=states[name].shed,
            completed=states[name].completed,
            batches=states[name].batches,
            offered_qps=states[name].offered / horizon_s,
            sustained_qps=states[name].completed / horizon_s,
            latency_ms=states[name].latency_ms,
            batch_sizes=states[name].batch_sizes,
            timed_out=states[name].timed_out,
            failed=states[name].failed,
            retries=states[name].retries,
            hedges=states[name].hedges,
            shed_copies=states[name].batcher.shed,
            down_s=states[name].down_s,
            healthy_ms=states[name].healthy_ms,
            degraded_ms=states[name].degraded_ms,
        )
        for name in names
    )
    report = ServeReport(
        node=node.name,
        policy=config.policy,
        arrivals=config.arrivals,
        seed=config.seed,
        offered_qps=config.qps,
        duration_s=config.duration_s,
        horizon_s=horizon_s,
        placement=placement,
        tenants=tenants,
        timeout_s=config.timeout_s,
        retries=config.retries,
        backoff_s=config.backoff_s,
        hedge_s=config.hedge_s,
        failures=config.failures,
        slo=config.slo,
        fault_events=(
            lifecycle.events if lifecycle is not None else ()
        ),
        degraded_intervals=tuple(intervals),
        timeline=_timeline(completions, failure_samples, horizon_s),
    )

    if tel.enabled:
        for stats in tenants:
            group = f"serve/{stats.network}"
            tel.count(group, "offered", stats.offered)
            # "completed"/"shed" accumulated in-loop as timestamped
            # samples (Chrome-trace counter series), not re-added here.
            tel.gauge(group, "sustained_qps", stats.sustained_qps)
            tel.gauge(group, "p99_ms", stats.latency_percentile_ms(99))
            tel.gauge(group, "availability", stats.availability)
            tel.metrics.adopt(
                "serve.latency_ms", stats.network, stats.latency_ms
            )
            tel.metrics.adopt(
                "serve.batch_size", stats.network, stats.batch_sizes
            )
    return report


#: Buckets in the report timeline (coarse by design: it feeds one SVG).
TIMELINE_BINS = 40


def _timeline(
    completions: Sequence[Tuple[float, float, bool]],
    failures: Sequence[Tuple[float, str]],
    horizon_s: float,
) -> Tuple[Dict[str, float], ...]:
    """Bucket per-request samples into the dashboard's time axis."""
    if not completions and not failures:
        return ()
    width = horizon_s / TIMELINE_BINS
    hists = [Histogram() for _ in range(TIMELINE_BINS)]
    degraded = [0] * TIMELINE_BINS
    failed = [0] * TIMELINE_BINS

    def bucket(t: float) -> int:
        return min(int(t / width), TIMELINE_BINS - 1)

    for t, latency_ms, was_degraded in completions:
        hists[bucket(t)].observe(latency_ms)
        if was_degraded:
            degraded[bucket(t)] += 1
    for t, _reason in failures:
        failed[bucket(t)] += 1
    bins: List[Dict[str, float]] = []
    for i, hist in enumerate(hists):
        bins.append({
            "start_s": i * width,
            "end_s": (i + 1) * width,
            "completed": float(hist.count),
            "degraded": float(degraded[i]),
            "failed": float(failed[i]),
            "p99_ms": hist.percentile(99) if hist.count else 0.0,
            "mean_ms": hist.mean if hist.count else 0.0,
        })
    return tuple(bins)
