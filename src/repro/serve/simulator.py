"""The deterministic discrete-event serving loop for one node.

One run: a seeded open-loop request stream
(:mod:`repro.serve.request`) drives per-tenant dynamic batchers
(:mod:`repro.serve.batcher`) over a multi-tenant placement
(:mod:`repro.serve.placement`).  Each tenant's slice of the node acts
as a single batch server: when it is idle and its batcher releases a
batch, the batch occupies the server for the analytical batch latency
(:func:`repro.sim.perf.evaluation_batch_latency_s` via the tenant's
service model) and every member request completes when the batch does.

The event heap orders by ``(time, kind, sequence)`` with departures
before arrivals before wait-timers at equal timestamps, so simultaneous
events resolve identically on every run — together with the seeded
generator and pure float arithmetic this makes reruns bit-identical,
which ``serve``'s CI smoke pins with a byte compare.

Trading event fidelity for request-level analytical speed (the
SCALE-Sim trade) keeps a run at "millions of users" rates tractable:
the loop costs O(requests log batches), not O(cycles).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.arch.node import NodeConfig
from repro.dnn.network import Network
from repro.serve.batcher import BatchPolicy, DynamicBatcher
from repro.serve.placement import NodePlacement, Tenant, place_networks
from repro.serve.report import ServeReport, TenantServeStats
from repro.serve.request import (
    DEFAULT_MAX_REQUESTS,
    Request,
    generate_requests,
)
from repro.sim.perf import DEFAULT_MINIBATCH
from repro.telemetry.core import get_telemetry
from repro.telemetry.metrics import Histogram

#: Event kinds in tie-break order: free the server, then admit new
#: work, then fire wait-expiry timers.
_DEPART, _ARRIVAL, _TIMER = 0, 1, 2


@dataclass(frozen=True)
class ServeConfig:
    """Everything one serving run depends on (all deterministic)."""

    qps: float = 2_000.0
    duration_s: float = 0.25
    arrivals: str = "poisson"
    seed: int = 0
    policy: BatchPolicy = field(default_factory=BatchPolicy)
    weights: Optional[Tuple[float, ...]] = None
    max_requests: int = DEFAULT_MAX_REQUESTS
    minibatch: int = DEFAULT_MINIBATCH

    def with_qps(self, qps: float) -> "ServeConfig":
        return replace(self, qps=qps)


class _TenantState:
    """Mutable per-tenant simulation state."""

    __slots__ = ("tenant", "batcher", "busy", "armed_deadline",
                 "latency_ms", "batch_sizes", "offered", "completed",
                 "batches")

    def __init__(self, tenant: Tenant, policy: BatchPolicy) -> None:
        self.tenant = tenant
        self.batcher = DynamicBatcher(policy)
        self.busy = False
        self.armed_deadline: Optional[float] = None
        self.latency_ms = Histogram()
        self.batch_sizes = Histogram()
        self.offered = 0
        self.completed = 0
        self.batches = 0


def simulate_serving(
    networks: Sequence[Network],
    node: NodeConfig,
    config: ServeConfig,
    placement: Optional[NodePlacement] = None,
) -> ServeReport:
    """Run one open-loop serving simulation and report it.

    ``placement`` short-circuits the multi-tenant placer for callers
    sweeping offered load over a fixed placement (the latency curve).
    """
    if placement is None:
        placement = place_networks(
            networks, node, minibatch=config.minibatch
        )
    names = [net.name for net in networks]
    requests = generate_requests(
        names,
        qps=config.qps,
        duration_s=config.duration_s,
        arrivals=config.arrivals,
        seed=config.seed,
        weights=config.weights,
        max_requests=config.max_requests,
    )

    states: Dict[str, _TenantState] = {
        name: _TenantState(placement.tenant(name), config.policy)
        for name in names
    }

    # (time, kind, sequence, payload): payload is a request for
    # arrivals, a (tenant, batch) pair for departures, a tenant name
    # for timers.  The sequence keeps heap comparisons off payloads.
    heap: List[Tuple[float, int, int, object]] = [
        (req.arrival_s, _ARRIVAL, req.index, req) for req in requests
    ]
    heapq.heapify(heap)
    sequence = len(requests)
    last_completion_s = 0.0

    def push(time_s: float, kind: int, payload: object) -> None:
        nonlocal sequence
        heapq.heappush(heap, (time_s, kind, sequence, payload))
        sequence += 1

    def try_dispatch(name: str, now_s: float) -> None:
        state = states[name]
        if state.busy:
            return
        batch = state.batcher.take(now_s)
        if batch:
            state.busy = True
            state.batches += 1
            state.batch_sizes.observe(float(len(batch)))
            latency = state.tenant.batch_latency_s(len(batch))
            push(now_s + latency, _DEPART, (name, batch))
            return
        deadline = state.batcher.deadline()
        if deadline is not None and deadline != state.armed_deadline:
            # Queue head changed since the last timer: arm its expiry.
            # (``take`` dispatches at ``now_s >= deadline``, so an
            # unarmed deadline is always in the future here.)
            state.armed_deadline = deadline
            push(deadline, _TIMER, name)

    while heap:
        now_s, kind, _, payload = heapq.heappop(heap)
        if kind == _ARRIVAL:
            request: Request = payload  # type: ignore[assignment]
            state = states[request.network]
            state.offered += 1
            if state.batcher.offer(request):
                try_dispatch(request.network, now_s)
        elif kind == _DEPART:
            name, batch = payload  # type: ignore[misc]
            state = states[name]
            for request in batch:
                state.latency_ms.observe(
                    (now_s - request.arrival_s) * 1e3
                )
                state.completed += 1
            last_completion_s = max(last_completion_s, now_s)
            state.busy = False
            try_dispatch(name, now_s)
        else:  # _TIMER
            try_dispatch(payload, now_s)  # type: ignore[arg-type]

    # The sustained rate divides by the full horizon: the offered
    # window stretched to the last completion, so a backlogged run
    # cannot report more than the node actually kept up with.
    horizon_s = max(config.duration_s, last_completion_s, 1e-12)
    tenants = tuple(
        TenantServeStats(
            network=name,
            share=states[name].tenant.share,
            offered=states[name].offered,
            admitted=states[name].batcher.admitted,
            shed=states[name].batcher.shed,
            completed=states[name].completed,
            batches=states[name].batches,
            offered_qps=states[name].offered / horizon_s,
            sustained_qps=states[name].completed / horizon_s,
            latency_ms=states[name].latency_ms,
            batch_sizes=states[name].batch_sizes,
        )
        for name in names
    )
    report = ServeReport(
        node=node.name,
        policy=config.policy,
        arrivals=config.arrivals,
        seed=config.seed,
        offered_qps=config.qps,
        duration_s=config.duration_s,
        horizon_s=horizon_s,
        placement=placement,
        tenants=tenants,
    )

    tel = get_telemetry()
    if tel.enabled:
        for stats in tenants:
            group = f"serve/{stats.network}"
            tel.count(group, "offered", stats.offered)
            tel.count(group, "completed", stats.completed)
            tel.count(group, "shed", stats.shed)
            tel.gauge(group, "sustained_qps", stats.sustained_qps)
            tel.gauge(group, "p99_ms", stats.latency_percentile_ms(99))
            tel.metrics.adopt(
                "serve.latency_ms", stats.network, stats.latency_ms
            )
            tel.metrics.adopt(
                "serve.batch_size", stats.network, stats.batch_sizes
            )
    return report
