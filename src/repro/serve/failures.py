"""Failure/repair lifecycle and SLO policy for failure-aware serving.

ScaleDeep's scale argument cuts both ways: a 7,032-tile node built from
thousands of chips sees faults as the steady state, so a serving
simulation that assumes a permanently healthy node measures the wrong
tail.  This module supplies the two pieces the chaos verb layers onto
the serving loop:

* **fault lifecycle** — :class:`FailureConfig` describes seeded
  MTBF/MTTR processes; :func:`sample_failure_events` turns one into a
  deterministic timeline of fault/repair :class:`FailureEvent` pairs
  (exponential inter-fault gaps at ``1/mtbf_s``, exponential repair
  durations at ``1/mttr_s``, both from one named ``random.Random``
  stream, so the same config always yields the same timeline);
* **degraded service models** — :class:`FailureLifecycle` replays that
  timeline against the multi-tenant placement: every distinct set of
  concurrently-active faults becomes a concrete
  :class:`~repro.faults.model.FaultMask`, each tenant is re-compiled
  and re-simulated against it (fault-masked compile cost → derated
  ``batch_latency_s``), and the node's clusters are re-partitioned by
  the same largest-remainder placer — so capacity loss can shift
  shares, and a tenant whose degraded capacity is truly exhausted goes
  *down* (new requests fail until repair).  Rebuilds are memoized per
  active set, so a fault that strikes and repairs repeatedly costs one
  compile.

Fault sites are sampled over the tenants' **occupied footprint** (the
column span the compiled copies actually use, plus the wheel/ring
links), not the whole node: a fault on an idle spare column is absorbed
by the remapper at zero cost and would be invisible to the service
model — chaos that can't hurt anything isn't chaos.  ``tile-slow`` is
the default kind for the same reason: a dead column remaps onto spare
capacity invisibly unless the node is capacity-starved, while a slow
column paces every stage whose allocation includes it.

:class:`SLOPolicy` (p99 target, availability target) rides along here:
:mod:`repro.serve.report` evaluates it per tenant and whole-node and
reports error-budget burn.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.arch.node import NodeConfig
from repro.dnn.network import Network
from repro.errors import ConfigError, MappingError
from repro.faults.model import (
    Fault,
    FaultKind,
    FaultMask,
    FaultSpec,
    arc_site,
    conv_column_site,
    fc_column_site,
    parse_kinds,
    ring_site,
)
from repro.serve.placement import NodePlacement, place_networks
from repro.sim.perf import DEFAULT_MINIBATCH, PerfResult

#: Fault kinds the serving lifecycle can draw.  ``dma-bitflip`` is
#: excluded: it perturbs functional-engine data, which the analytical
#: service model never observes, so it cannot degrade a serving run.
CHAOS_KINDS: Tuple[FaultKind, ...] = (
    FaultKind.TILE_DEAD,
    FaultKind.TILE_SLOW,
    FaultKind.LINK_DOWN,
)

#: Default cap on sampled fault events per run (a backstop against a
#: pathological mtbf, not a tuning knob).
DEFAULT_MAX_FAULTS = 64

#: Error-budget burn reported when the budget is zero (availability
#: target 1.0) but failures occurred — a finite stand-in for "infinite
#: burn" that keeps JSON artifacts strict.
BURN_CAP = 1e9


def parse_chaos_kinds(text: str) -> Tuple[FaultKind, ...]:
    """Parse a comma-separated kind list, restricted to the kinds that
    can actually degrade a serving run."""
    kinds = parse_kinds(text)
    bad = [k.value for k in kinds if k not in CHAOS_KINDS]
    if bad:
        raise ConfigError(
            f"fault kind(s) {', '.join(bad)} cannot degrade the serving "
            f"model (choose from: {', '.join(k.value for k in CHAOS_KINDS)})"
        )
    return kinds


@dataclass(frozen=True)
class FailureConfig:
    """The seeded failure/repair process one chaos run draws from."""

    mtbf_s: float  # mean time between fault arrivals (seconds)
    mttr_s: float  # mean time to repair one fault (seconds)
    kinds: Tuple[FaultKind, ...] = (FaultKind.TILE_SLOW,)
    seed: int = 0
    slow_factor: float = 0.5  # throughput a tile-slow column retains
    max_faults: int = DEFAULT_MAX_FAULTS

    def __post_init__(self) -> None:
        if self.mtbf_s <= 0:
            raise ConfigError(f"mtbf must be > 0 s, got {self.mtbf_s}")
        if self.mttr_s <= 0:
            raise ConfigError(f"mttr must be > 0 s, got {self.mttr_s}")
        if not self.kinds:
            raise ConfigError("failure config needs at least one kind")
        bad = [k.value for k in self.kinds if k not in CHAOS_KINDS]
        if bad:
            raise ConfigError(
                f"fault kind(s) {', '.join(bad)} cannot degrade the "
                "serving model (choose from: "
                f"{', '.join(k.value for k in CHAOS_KINDS)})"
            )
        if not 0.0 < self.slow_factor <= 1.0:
            raise ConfigError(
                f"slow_factor must be in (0, 1], got {self.slow_factor}"
            )
        if self.max_faults < 1:
            raise ConfigError(
                f"max_faults must be >= 1, got {self.max_faults}"
            )

    @property
    def rng_name(self) -> str:
        return f"scaledeep-chaos:{self.seed}"

    def describe(self) -> str:
        kinds = ",".join(k.value for k in self.kinds)
        return (
            f"mtbf {self.mtbf_s:g}s, mttr {self.mttr_s:g}s, "
            f"seed {self.seed}, kinds [{kinds}]"
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "mtbf_s": self.mtbf_s,
            "mttr_s": self.mttr_s,
            "kinds": [k.value for k in self.kinds],
            "seed": self.seed,
            "slow_factor": self.slow_factor,
            "max_faults": self.max_faults,
        }


@dataclass(frozen=True)
class SLOPolicy:
    """Service-level objectives for one serving run.

    ``p99_ms`` bounds per-tenant (and whole-node) p99 request latency;
    ``availability`` is the minimum fraction of offered root requests
    that must complete (shed, timed-out and failed requests all burn
    the error budget).  Either target may be ``None`` (not enforced).
    """

    p99_ms: Optional[float] = None
    availability: Optional[float] = None

    def __post_init__(self) -> None:
        if self.p99_ms is not None and self.p99_ms <= 0:
            raise ConfigError(
                f"slo p99 target must be > 0 ms, got {self.p99_ms}"
            )
        if self.availability is not None and not (
            0.0 < self.availability <= 1.0
        ):
            raise ConfigError(
                "slo availability target must be in (0, 1], got "
                f"{self.availability}"
            )

    @property
    def enforced(self) -> bool:
        return self.p99_ms is not None or self.availability is not None

    def error_budget_burn(self, availability: float) -> float:
        """Fraction of the error budget consumed: unavailability over
        the budget (``1 - target``).  1.0 = budget exactly spent; above
        1.0 the SLO is violated.  A zero budget (target 1.0) burns
        :data:`BURN_CAP` on any failure."""
        if self.availability is None:
            return 0.0
        unavailable = max(0.0, 1.0 - availability)
        budget = 1.0 - self.availability
        if budget <= 0.0:
            return 0.0 if unavailable <= 0.0 else BURN_CAP
        return min(unavailable / budget, BURN_CAP)

    def describe(self) -> str:
        parts = []
        if self.p99_ms is not None:
            parts.append(f"p99 <= {self.p99_ms:g}ms")
        if self.availability is not None:
            parts.append(f"availability >= {self.availability:g}")
        return ", ".join(parts) if parts else "no objectives"

    def to_dict(self) -> Dict[str, object]:
        return {"p99_ms": self.p99_ms, "availability": self.availability}


@dataclass(frozen=True)
class SiteFault:
    """One sampled fault instance: the kind, the concrete site it hit
    (structured, so the mask builder never parses site strings), and
    the lifetime identity used to correlate its repair."""

    fault_id: int
    kind: FaultKind
    domain: str  # "conv" | "fc" | "arc" | "ring"
    index: int  # global column / arc index / ring index
    cluster: int  # arc faults only (-1 otherwise)
    site: str
    magnitude: float  # slow factor for tile-slow, else 0.0

    def describe(self) -> str:
        mag = f" ({self.magnitude:g})" if self.magnitude else ""
        return f"{self.kind.value} @ {self.site}{mag}"


@dataclass(frozen=True)
class FailureEvent:
    """One lifecycle transition on the serving event heap."""

    time_s: float
    action: str  # "fault" | "repair"
    fault: SiteFault


@dataclass(frozen=True)
class _Footprint:
    """The fault-site domain: the column span the tenants' compiled
    copies occupy plus the node's wheel/ring links.

    ``slow_conv``/``slow_fc`` are the *observable* columns for
    tile-slow draws: the columns of pipeline stages whose derated rate
    would actually fall below the healthy bottleneck.  A slow column
    under a stage with more than ``1/slow_factor`` slack changes
    nothing the analytical service model can see (like a fault on an
    idle spare), so sampling there would be chaos in name only.
    Tile-dead draws keep the full occupied span — whether a dead
    column is absorbed depends on spare capacity at strike time, which
    the remapper decides."""

    conv_columns: int
    fc_columns: int
    clusters: int
    wheel: int
    conv_chip_cols: int
    fc_chip_cols: int
    slow_conv: Tuple[int, ...] = ()
    slow_fc: Tuple[int, ...] = ()

    @property
    def tile_sites(self) -> int:
        return self.conv_columns + self.fc_columns

    @property
    def slow_sites(self) -> int:
        return len(self.slow_conv) + len(self.slow_fc)

    @property
    def arc_sites(self) -> int:
        return self.clusters * self.wheel if self.wheel > 1 else 0

    @property
    def ring_sites(self) -> int:
        return self.clusters if self.clusters > 1 else 0

    @property
    def link_sites(self) -> int:
        return self.arc_sites + self.ring_sites


def _observable_slow_columns(
    results: Sequence[PerfResult], slow_factor: float
) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    """The per-copy conv/fc columns where a tile-slow fault at
    ``slow_factor`` would lower some tenant's evaluation rate.

    Column spans are assigned sequentially per allocation (the same
    layout the fault-remap pass realises), and a derated stage only
    paces the pipeline when its FP cost stretched by ``1/slow_factor``
    exceeds the healthy evaluation bottleneck."""
    from repro.dnn.analysis import Step

    conv: set = set()
    fc: set = set()
    for result in results:
        fp = {
            s.unit: s.cycles for s in result.stages
            if s.step is Step.FP
        }
        if not fp:
            continue
        bottleneck = max(fp.values())
        for table, out in (
            (result.mapping.conv_allocations, conv),
            (result.mapping.fc_allocations, fc),
        ):
            position = 0
            for name, alloc in table.items():
                span = range(position, position + alloc.columns)
                position += alloc.columns
                if fp.get(name, 0.0) > slow_factor * bottleneck:
                    out.update(span)
    return tuple(sorted(conv)), tuple(sorted(fc))


def _footprint(
    node: NodeConfig,
    results: Sequence[PerfResult],
    slow_factor: float = 0.5,
) -> _Footprint:
    cluster = node.cluster
    conv = max(
        (r.mapping.conv_columns_per_copy for r in results), default=1
    )
    fc = max(
        (
            sum(a.columns for a in r.mapping.fc_allocations.values())
            for r in results
        ),
        default=1,
    )
    slow_conv, slow_fc = _observable_slow_columns(results, slow_factor)
    return _Footprint(
        conv_columns=max(conv, 1),
        fc_columns=max(fc, 1),
        clusters=node.cluster_count,
        wheel=cluster.conv_chip_count,
        conv_chip_cols=cluster.conv_chip.cols,
        fc_chip_cols=cluster.fc_chip.cols,
        slow_conv=slow_conv,
        slow_fc=slow_fc,
    )


def _draw_site(
    rng: random.Random,
    config: FailureConfig,
    footprint: _Footprint,
    fault_id: int,
) -> Optional[SiteFault]:
    """One fault draw: pick a kind uniformly, then a site uniformly
    within that kind's domain.  Returns ``None`` when the drawn kind
    has no sites on this node (single-cluster ring, say) — the draw is
    still consumed, so the RNG stream stays aligned."""
    kind = config.kinds[rng.randrange(len(config.kinds))]
    if kind is FaultKind.TILE_SLOW and footprint.slow_sites:
        # Draw over the observable columns (see :class:`_Footprint`).
        index = rng.randrange(footprint.slow_sites)
        if index < len(footprint.slow_conv):
            column = footprint.slow_conv[index]
            site = conv_column_site(
                footprint.conv_chip_cols, footprint.wheel, column
            )
            return SiteFault(
                fault_id, kind, "conv", column, -1, site,
                config.slow_factor,
            )
        column = footprint.slow_fc[index - len(footprint.slow_conv)]
        site = fc_column_site(footprint.fc_chip_cols, column)
        return SiteFault(
            fault_id, kind, "fc", column, -1, site, config.slow_factor
        )
    if kind in (FaultKind.TILE_DEAD, FaultKind.TILE_SLOW):
        column = rng.randrange(footprint.tile_sites)
        magnitude = (
            config.slow_factor if kind is FaultKind.TILE_SLOW else 0.0
        )
        if column < footprint.conv_columns:
            site = conv_column_site(
                footprint.conv_chip_cols, footprint.wheel, column
            )
            return SiteFault(
                fault_id, kind, "conv", column, -1, site, magnitude
            )
        column -= footprint.conv_columns
        site = fc_column_site(footprint.fc_chip_cols, column)
        return SiteFault(fault_id, kind, "fc", column, -1, site, magnitude)
    # link-down
    if footprint.link_sites == 0:
        rng.randrange(1)  # consume the site draw regardless
        return None
    index = rng.randrange(footprint.link_sites)
    if index < footprint.arc_sites:
        cluster, arc = divmod(index, footprint.wheel)
        site = arc_site(cluster, arc, footprint.wheel)
        return SiteFault(
            fault_id, FaultKind.LINK_DOWN, "arc", arc, cluster, site, 0.0
        )
    index -= footprint.arc_sites
    site = ring_site(index, footprint.clusters)
    return SiteFault(
        fault_id, FaultKind.LINK_DOWN, "ring", index, -1, site, 0.0
    )


def sample_failure_events(
    config: FailureConfig,
    duration_s: float,
    footprint: _Footprint,
) -> Tuple[FailureEvent, ...]:
    """The deterministic fault/repair timeline for one run.

    Fault arrivals are a Poisson process at rate ``1/mtbf_s`` over the
    offered window; each fault's repair completes an exponential
    ``Exp(1/mttr_s)`` later (possibly past the window — the run keeps
    draining, so late repairs still fire).  Each fault's repair
    duration is drawn immediately after its site, so inserting or
    removing one event never shifts the rest of the stream.
    """
    if duration_s <= 0:
        raise ConfigError(f"duration must be > 0, got {duration_s}")
    rng = random.Random(config.rng_name)
    events: List[FailureEvent] = []
    now = 0.0
    for fault_id in range(config.max_faults):
        now += rng.expovariate(1.0 / config.mtbf_s)
        if now >= duration_s:
            break
        site = _draw_site(rng, config, footprint, fault_id)
        repair_after = rng.expovariate(1.0 / config.mttr_s)
        if site is None:
            continue
        events.append(FailureEvent(now, "fault", site))
        events.append(FailureEvent(now + repair_after, "repair", site))
    events.sort(key=lambda e: (e.time_s, e.fault.fault_id, e.action))
    return tuple(events)


@dataclass(frozen=True)
class RebuiltService:
    """The service state after one lifecycle transition: the placement
    over the tenants that still fit (``None`` when nothing fits) and
    the tenants that are down until the next repair."""

    placement: Optional[NodePlacement]
    down: FrozenSet[str]

    def tenant(self, network: str):
        if self.placement is None or network in self.down:
            return None
        return self.placement.tenant(network)


class FailureLifecycle:
    """Replays a :class:`FailureConfig` against a multi-tenant serving
    placement, producing per-transition degraded service models.

    Construction compiles the healthy baseline (through the
    content-keyed cache) and samples the event timeline; the serving
    loop then calls :meth:`rebuild` at each transition with the set of
    currently-active faults.  Rebuilds are pure functions of the active
    set and are memoized, so repeated strike/repair cycles of the same
    fault cost one compile.
    """

    def __init__(
        self,
        config: FailureConfig,
        networks: Sequence[Network],
        node: NodeConfig,
        minibatch: int = DEFAULT_MINIBATCH,
        duration_s: float = 1.0,
    ) -> None:
        from repro.sweep.cache import cached_simulation

        self.config = config
        self.networks = list(networks)
        self.node = node
        self.minibatch = minibatch
        healthy = [
            cached_simulation(net, node, minibatch) for net in networks
        ]
        self.placement = place_networks(networks, node, results=healthy)
        self.footprint = _footprint(node, healthy, config.slow_factor)
        self.events = sample_failure_events(
            config, duration_s, self.footprint
        )
        self._rebuilt: Dict[FrozenSet[int], RebuiltService] = {
            frozenset(): RebuiltService(self.placement, frozenset())
        }
        self._by_id = {
            e.fault.fault_id: e.fault for e in self.events
        }

    def fault(self, fault_id: int) -> SiteFault:
        return self._by_id[fault_id]

    def _mask(self, active: Sequence[SiteFault]) -> FaultMask:
        dead_conv: List[int] = []
        slow_conv: List[Tuple[int, float]] = []
        dead_fc: List[int] = []
        slow_fc: List[Tuple[int, float]] = []
        down_arcs: List[Tuple[int, int]] = []
        down_ring: List[int] = []
        faults: List[Fault] = []
        for site in active:
            faults.append(Fault(site.kind, site.site, site.magnitude))
            if site.kind is FaultKind.TILE_DEAD:
                (dead_conv if site.domain == "conv" else dead_fc).append(
                    site.index
                )
            elif site.kind is FaultKind.TILE_SLOW:
                slot = (site.index, site.magnitude)
                (slow_conv if site.domain == "conv" else slow_fc).append(
                    slot
                )
            elif site.domain == "arc":
                down_arcs.append((site.cluster, site.index))
            else:
                down_ring.append(site.index)
        spec = FaultSpec(
            rate=0.0,
            seed=self.config.seed,
            kinds=self.config.kinds,
            slow_factor=self.config.slow_factor,
        )
        return FaultMask(
            spec=spec,
            faults=tuple(faults),
            conv_chip_cols=self.footprint.conv_chip_cols,
            fc_chip_cols=self.footprint.fc_chip_cols,
            dead_conv_columns=frozenset(dead_conv),
            slow_conv_columns=tuple(sorted(set(slow_conv))),
            dead_fc_columns=frozenset(dead_fc),
            slow_fc_columns=tuple(sorted(set(slow_fc))),
            down_arcs=frozenset(down_arcs),
            down_ring=frozenset(down_ring),
        )

    def rebuild(self, active_ids: FrozenSet[int]) -> RebuiltService:
        """The service state with ``active_ids`` faults live: degraded
        placement plus the set of down tenants (memoized)."""
        cached = self._rebuilt.get(active_ids)
        if cached is not None:
            return cached
        from repro.compiler.pipeline import compile_network
        from repro.sim.perf import simulate

        active = [self.fault(i) for i in sorted(active_ids)]
        mask = self._mask(active)
        alive: List[Network] = []
        results: List[PerfResult] = []
        down: List[str] = []
        for net in self.networks:
            try:
                mapping = compile_network(
                    net, self.node, faults=mask
                ).mapping
                results.append(
                    simulate(net, self.node, self.minibatch, mapping=mapping)
                )
                alive.append(net)
            except MappingError:
                # Degraded capacity genuinely cannot host this tenant:
                # it is down until a repair shrinks the active set.
                down.append(net.name)
        service: RebuiltService
        if not alive:
            service = RebuiltService(None, frozenset(down))
        else:
            try:
                placement = place_networks(
                    alive, self.node, results=results
                )
                service = RebuiltService(placement, frozenset(down))
            except ConfigError:
                # The survivors' minimum spans no longer co-fit.
                service = RebuiltService(
                    None, frozenset(n.name for n in self.networks)
                )
        self._rebuilt[active_ids] = service
        return service


@dataclass(frozen=True)
class DegradedInterval:
    """One contiguous window with at least one fault active."""

    start_s: float
    end_s: float
    max_active: int  # most concurrently-active faults in the window
    sites: Tuple[str, ...]  # every site that was live during it

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    def to_dict(self) -> Dict[str, object]:
        return {
            "start_s": self.start_s,
            "end_s": self.end_s,
            "duration_s": self.duration_s,
            "max_active": self.max_active,
            "sites": list(self.sites),
        }

    def describe(self) -> str:
        return (
            f"degraded {self.start_s:.4f}s-{self.end_s:.4f}s "
            f"({self.duration_s:.4f}s, up to {self.max_active} "
            f"fault(s): {', '.join(self.sites)})"
        )
