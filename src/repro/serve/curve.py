"""Latency–throughput curves: serving runs swept over offered load.

The headline serving artefact, TPU-paper style: fix the placement and
batching policy, sweep the offered aggregate QPS over fractions of the
placement's analytical saturation rate, and record p50/p95/p99 latency,
sustained QPS and shed rate at every point.  Points fan out over worker
processes through the sweep runner's :func:`repro.sweep.runner.fan_out`
(order-preserving, serial fallback), and each point is seeded
identically, so the whole curve is byte-identical across reruns *and*
worker counts.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.arch.node import NodeConfig
from repro.dnn import zoo
from repro.serve.placement import NodePlacement, place_networks
from repro.serve.report import LATENCY_PERCENTILES, ServeReport
from repro.serve.simulator import ServeConfig, simulate_serving
from repro.sweep.runner import fan_out

#: Offered load as fractions of the placement's saturation QPS: dense
#: near the knee (0.8-1.0), with one overload point past it.
CURVE_FRACTIONS = (0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 0.9, 1.0, 1.1, 1.25)

#: Flat export row order (shared by the CSV writer and the dashboard).
#: The per-outcome columns (completed/shed/timed_out/failed) partition
#: each tenant's offered count at every load point.
CURVE_FIELDS = (
    "network", "fraction", "offered_qps", "offered_net_qps",
    "sustained_qps", "p50_ms", "p95_ms", "p99_ms", "mean_ms",
    "shed_rate", "mean_batch", "offered", "completed", "shed",
    "timed_out", "failed", "availability",
)


@dataclass(frozen=True)
class CurvePoint:
    """One swept load point: the fraction, the aggregate offered QPS it
    maps to, and the full serving report measured there."""

    fraction: float
    offered_qps: float
    report: ServeReport


@dataclass
class CurveReport:
    """The full latency–throughput curve for one placement."""

    node: str
    networks: Tuple[str, ...]
    capacity_qps: float  # analytical saturation at max_batch
    config: ServeConfig
    placement: NodePlacement
    points: Tuple[CurvePoint, ...]

    def rows(self) -> List[Dict[str, object]]:
        """Flat per-(network, load-point) rows in curve order."""
        rows: List[Dict[str, object]] = []
        for point in self.points:
            for stats in point.report.tenants:
                row: Dict[str, object] = {
                    "network": stats.network,
                    "fraction": point.fraction,
                    "offered_qps": point.offered_qps,
                    "offered_net_qps": stats.offered_qps,
                    "sustained_qps": stats.sustained_qps,
                    "mean_ms": stats.latency_ms.mean,
                    "shed_rate": stats.shed_rate,
                    "mean_batch": stats.mean_batch,
                    "offered": stats.offered,
                    "completed": stats.completed,
                    "shed": stats.shed,
                    "timed_out": stats.timed_out,
                    "failed": stats.failed,
                    "availability": stats.availability,
                }
                for q in LATENCY_PERCENTILES:
                    row[f"p{q:g}_ms"] = stats.latency_percentile_ms(q)
                rows.append(row)
        return rows

    def to_dict(self) -> Dict[str, object]:
        return {
            "node": self.node,
            "networks": list(self.networks),
            "capacity_qps": self.capacity_qps,
            "config": {
                "arrivals": self.config.arrivals,
                "seed": self.config.seed,
                "duration_s": self.config.duration_s,
                "policy": self.config.policy.kind,
                "max_batch": self.config.policy.max_batch,
                "max_wait_ms": self.config.policy.max_wait_s * 1e3,
                "queue_depth": self.config.policy.queue_depth,
                "timeout_ms": (
                    self.config.timeout_s * 1e3
                    if self.config.timeout_s is not None else None
                ),
                "retries": self.config.retries,
                "hedge_ms": (
                    self.config.hedge_s * 1e3
                    if self.config.hedge_s is not None else None
                ),
                "failures": (
                    self.config.failures.to_dict()
                    if self.config.failures is not None else None
                ),
            },
            "placement": {
                t.network: {"clusters": t.clusters, "share": t.share}
                for t in self.placement.tenants
            },
            "points": [
                {
                    "fraction": p.fraction,
                    "offered_qps": p.offered_qps,
                    "report": p.report.to_dict(),
                }
                for p in self.points
            ],
            "rows": self.rows(),
        }

    def describe(self) -> str:
        worst = max(
            (
                stats.latency_percentile_ms(99)
                for point in self.points
                for stats in point.report.tenants
            ),
            default=0.0,
        )
        return (
            f"latency-throughput curve on {self.node}: "
            f"{len(self.points)} load points x "
            f"{len(self.networks)} network(s), saturation "
            f"{self.capacity_qps:,.0f} QPS, worst p99 {worst:,.2f}ms"
        )


def _curve_point(item) -> CurvePoint:
    """One swept point (module-level: must pickle for the pool).  The
    placement is recomputed in the worker from the same cached
    simulations, so every worker sees the identical service model."""
    fraction, offered_qps, names, node, config = item
    networks = [zoo.load(name) for name in names]
    report = simulate_serving(
        networks, node, config.with_qps(offered_qps)
    )
    return CurvePoint(
        fraction=fraction, offered_qps=offered_qps, report=report
    )


def run_curve(
    names: Sequence[str],
    node: NodeConfig,
    config: ServeConfig,
    fractions: Sequence[float] = CURVE_FRACTIONS,
    workers: int = 1,
) -> CurveReport:
    """Sweep offered load over ``fractions`` of the placement's
    saturation QPS.  ``config.qps`` is ignored — each point's offered
    rate comes from the capacity estimate — and unless ``config``
    carries explicit weights, the offered load splits across tenants in
    proportion to their saturation rates, so every tenant hits its own
    knee at fraction 1.0 (an equal split would drown the slowest tenant
    long before the fastest one warms up).  Every other knob (policy,
    seed, duration, arrivals) applies to every point."""
    names = [zoo.resolve(name) for name in names]
    networks = [zoo.load(name) for name in names]
    placement = place_networks(
        networks, node, minibatch=config.minibatch
    )
    capacity = placement.saturation_qps(config.policy.max_batch)
    if config.weights is None and capacity > 0:
        config = replace(
            config,
            weights=tuple(
                t.saturation_qps(config.policy.max_batch) / capacity
                for t in placement.tenants
            ),
        )
    items = [
        (fraction, capacity * fraction, tuple(names), node, config)
        for fraction in fractions
    ]
    points = fan_out(_curve_point, items, workers=workers)
    return CurveReport(
        node=node.name,
        networks=tuple(names),
        capacity_qps=capacity,
        config=config,
        placement=placement,
        points=tuple(points),
    )
