"""Multi-tenant placement: several zoo networks on one node's clusters.

The node is a ring of clusters (4 in the paper config).  To co-host
several inference tenants, each network keeps its own
:func:`~repro.compiler.pipeline.compile_network` mapping — which fixes
the minimum cluster granularity a copy needs (``clusters_per_copy``) —
and the placer partitions the node's clusters among the tenants:

* every tenant gets at least the clusters one copy of its mapping
  spans (a network that cannot fit alongside the others raises
  :class:`~repro.errors.ConfigError`);
* leftover clusters go to the tenant with the largest deficit against
  its FLOPs-proportional ideal share (deterministic largest-remainder,
  ties to the earlier tenant in the request order).

A tenant's service model is the analytical evaluation pipeline scaled
to its cluster share: sustained rate ``share * eval_rate`` and batch
latency ``(depth + b - 1) / rate`` (see
:func:`repro.sim.perf.evaluation_batch_latency_s`) — linear scaling in
clusters, the same data-parallel-copies assumption STEP3a makes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.arch.node import NodeConfig
from repro.arch.system import SystemConfig
from repro.dnn.analysis import evaluation_flops
from repro.dnn.network import Network
from repro.errors import ConfigError
from repro.sim.perf import (
    DEFAULT_MINIBATCH,
    PerfResult,
    evaluation_pipeline_depth,
)


@dataclass(frozen=True)
class Tenant:
    """One network's slice of the node and its service model."""

    network: str
    clusters: int
    share: float  # fraction of the node's clusters
    rate_qps: float  # sustained evaluation images/s on this share
    pipeline_depth: int
    weight: float  # demand weight used by the placer (eval GFLOPs)

    def batch_latency_s(self, batch: int) -> float:
        """End-to-end latency of one batch on this tenant's slice:
        pipeline fill plus one beat per further image."""
        if batch < 1:
            raise ConfigError(f"batch must be >= 1, got {batch}")
        return (self.pipeline_depth + batch - 1) / self.rate_qps

    def saturation_qps(self, max_batch: int) -> float:
        """The highest request rate this tenant sustains when batches
        always fill to ``max_batch`` (fill amortised across the
        batch)."""
        return (
            self.rate_qps * max_batch
            / (self.pipeline_depth + max_batch - 1)
        )


@dataclass(frozen=True)
class NodePlacement:
    """The partition of one node's clusters among serving tenants."""

    node: str
    cluster_count: int  # total clusters across every node
    tenants: Tuple[Tenant, ...]
    nodes: int = 1  # > 1 when placing across a multi-node system

    def tenant(self, network: str) -> Tenant:
        for tenant in self.tenants:
            if tenant.network == network:
                return tenant
        raise KeyError(network)

    def saturation_qps(self, max_batch: int) -> float:
        """Aggregate saturation rate across every tenant."""
        return sum(t.saturation_qps(max_batch) for t in self.tenants)

    def describe(self) -> str:
        parts = [
            f"{t.network}: {t.clusters} cluster(s) "
            f"({t.share:.0%}, {t.rate_qps:,.0f} img/s, "
            f"depth {t.pipeline_depth})"
            for t in self.tenants
        ]
        scope = (
            f"({self.cluster_count} clusters)"
            if self.nodes == 1
            else f"({self.cluster_count} clusters on {self.nodes} nodes)"
        )
        return (
            f"placement on {self.node} {scope}: " + "; ".join(parts)
        )


def place_networks(
    networks: Sequence[Network],
    node: "NodeConfig | SystemConfig",
    minibatch: int = DEFAULT_MINIBATCH,
    results: Optional[Sequence[PerfResult]] = None,
    weights: Optional[Sequence[float]] = None,
) -> NodePlacement:
    """Partition ``node``'s clusters among ``networks``.

    ``node`` may be a single :class:`NodeConfig` or a multi-node
    :class:`SystemConfig` — a system simply contributes ``node_count``
    times the clusters to the same partitioning problem (the node is
    one more level above the cluster), and a 1-node system places
    identically to its bare node.

    Each network is compiled (through the content-keyed cache) to learn
    its minimum cluster span and full-node evaluation rate; ``results``
    short-circuits that for callers that already simulated.
    ``weights`` overrides the FLOPs-proportional demand weights (the
    largest-remainder ideal shares) — negative weights are rejected,
    an all-zero vector degrades to an equal split.  Raises
    :class:`ConfigError` when the tenants' minimum spans exceed the
    node, or a network name repeats.
    """
    if not networks:
        raise ConfigError("at least one network is required to serve")
    if isinstance(node, SystemConfig):
        system_name, node_count, node = node.name, node.node_count, node.node
    else:
        system_name, node_count = node.name, 1
    names = [net.name for net in networks]
    if len(set(names)) != len(names):
        raise ConfigError(f"duplicate serving networks in {names}")
    if weights is not None:
        if len(weights) != len(networks):
            raise ConfigError(
                f"{len(networks)} network(s) but {len(weights)} "
                "placement weight(s)"
            )
        if any(w < 0 for w in weights):
            raise ConfigError(
                f"placement weights must be >= 0, got {list(weights)}"
            )

    if results is None:
        from repro.sweep.cache import cached_simulation

        results = [
            cached_simulation(net, node, minibatch) for net in networks
        ]

    total_clusters = node.cluster_count * node_count
    minimums = [
        min(r.mapping.clusters_per_copy, total_clusters) for r in results
    ]
    if sum(minimums) > total_clusters:
        raise ConfigError(
            f"cannot co-host {names} on {system_name}: copies span "
            f"{sum(minimums)} cluster(s) but the system has "
            f"{total_clusters}"
        )

    if weights is None:
        weights = [evaluation_flops(net) / 1e9 for net in networks]
    else:
        weights = [float(w) for w in weights]
    total_weight = sum(weights) or float(len(networks))
    ideal = [
        total_clusters * weight / total_weight for weight in weights
    ]
    assigned = list(minimums)
    # Largest-remainder: hand the leftover clusters one at a time to
    # the tenant furthest below its ideal share (ties to the earlier
    # tenant — strict comparison keeps this deterministic).
    for _ in range(total_clusters - sum(assigned)):
        best = 0
        for i in range(len(assigned)):
            if ideal[i] - assigned[i] > ideal[best] - assigned[best]:
                best = i
        assigned[best] += 1

    tenants: List[Tenant] = []
    for net, result, clusters, weight in zip(
        networks, results, assigned, weights
    ):
        # The linear-in-clusters service model: `results` rates are per
        # full node, so scale by clusters over *one node's* clusters
        # (reduces to the plain share at node_count == 1).
        tenants.append(
            Tenant(
                network=net.name,
                clusters=clusters,
                share=clusters / total_clusters,
                rate_qps=(
                    result.evaluation_images_per_s
                    * (clusters / node.cluster_count)
                ),
                pipeline_depth=evaluation_pipeline_depth(result.mapping),
                weight=weight,
            )
        )
    return NodePlacement(
        node=system_name,
        cluster_count=total_clusters,
        tenants=tuple(tenants),
        nodes=node_count,
    )
