"""Datacenter inference serving simulation for one ScaleDeep node.

The serving layer turns the repo's per-request cost models into
latency-bounded-throughput results, the way the TPU paper evaluates
datacenter inference: an open-loop seeded request generator
(:mod:`~repro.serve.request`) drives per-tenant dynamic batchers with
admission control (:mod:`~repro.serve.batcher`) over a multi-tenant
cluster placement (:mod:`~repro.serve.placement`); the discrete-event
loop (:mod:`~repro.serve.simulator`) charges each batch its analytical
pipeline latency and reports p50/p95/p99 request latency, sustained
QPS, batch-size distribution and shed rate per network
(:mod:`~repro.serve.report`); and :mod:`~repro.serve.curve` sweeps
offered load into the latency–throughput curve.  Everything is seeded
and float-deterministic: two runs at the same seed serialise
byte-identically at any worker count.
"""

from repro.serve.batcher import (
    POLICY_KINDS,
    BatchPolicy,
    DynamicBatcher,
)
from repro.serve.curve import (
    CURVE_FIELDS,
    CURVE_FRACTIONS,
    CurvePoint,
    CurveReport,
    run_curve,
)
from repro.serve.placement import (
    NodePlacement,
    Tenant,
    place_networks,
)
from repro.serve.report import (
    LATENCY_PERCENTILES,
    ServeReport,
    TenantServeStats,
)
from repro.serve.request import (
    ARRIVAL_KINDS,
    DEFAULT_MAX_REQUESTS,
    Request,
    generate_requests,
)
from repro.serve.simulator import ServeConfig, simulate_serving

__all__ = [
    "ARRIVAL_KINDS",
    "BatchPolicy",
    "CURVE_FIELDS",
    "CURVE_FRACTIONS",
    "CurvePoint",
    "CurveReport",
    "DEFAULT_MAX_REQUESTS",
    "DynamicBatcher",
    "LATENCY_PERCENTILES",
    "NodePlacement",
    "POLICY_KINDS",
    "Request",
    "ServeConfig",
    "ServeReport",
    "Tenant",
    "TenantServeStats",
    "generate_requests",
    "place_networks",
    "run_curve",
    "simulate_serving",
]
