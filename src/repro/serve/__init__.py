"""Datacenter inference serving simulation for one ScaleDeep node.

The serving layer turns the repo's per-request cost models into
latency-bounded-throughput results, the way the TPU paper evaluates
datacenter inference: an open-loop seeded request generator
(:mod:`~repro.serve.request`) drives per-tenant dynamic batchers with
admission control (:mod:`~repro.serve.batcher`) over a multi-tenant
cluster placement (:mod:`~repro.serve.placement`); the discrete-event
loop (:mod:`~repro.serve.simulator`) charges each batch its analytical
pipeline latency and reports p50/p95/p99 request latency, sustained
QPS, batch-size distribution and shed rate per network
(:mod:`~repro.serve.report`); and :mod:`~repro.serve.curve` sweeps
offered load into the latency–throughput curve.  Failure-aware runs
(:mod:`~repro.serve.failures`) add a seeded MTBF/MTTR fault/repair
lifecycle, request deadlines/retries/hedging with a four-way outcome
taxonomy, and SLO policies with error-budget burn — the ``chaos`` CLI
verb.  Everything is seeded and float-deterministic: two runs at the
same seed serialise byte-identically at any worker count.
"""

from repro.serve.batcher import (
    POLICY_KINDS,
    BatchPolicy,
    DynamicBatcher,
)
from repro.serve.failures import (
    CHAOS_KINDS,
    DegradedInterval,
    FailureConfig,
    FailureEvent,
    FailureLifecycle,
    SiteFault,
    SLOPolicy,
    parse_chaos_kinds,
    sample_failure_events,
)
from repro.serve.curve import (
    CURVE_FIELDS,
    CURVE_FRACTIONS,
    CurvePoint,
    CurveReport,
    run_curve,
)
from repro.serve.placement import (
    NodePlacement,
    Tenant,
    place_networks,
)
from repro.serve.report import (
    LATENCY_PERCENTILES,
    OUTCOME_FIELDS,
    ServeReport,
    SLOFinding,
    TenantServeStats,
)
from repro.serve.request import (
    ARRIVAL_KINDS,
    DEFAULT_MAX_REQUESTS,
    Request,
    generate_requests,
)
from repro.serve.simulator import ServeConfig, simulate_serving

__all__ = [
    "ARRIVAL_KINDS",
    "BatchPolicy",
    "CHAOS_KINDS",
    "CURVE_FIELDS",
    "CURVE_FRACTIONS",
    "CurvePoint",
    "CurveReport",
    "DEFAULT_MAX_REQUESTS",
    "DegradedInterval",
    "DynamicBatcher",
    "FailureConfig",
    "FailureEvent",
    "FailureLifecycle",
    "LATENCY_PERCENTILES",
    "NodePlacement",
    "OUTCOME_FIELDS",
    "POLICY_KINDS",
    "Request",
    "SLOFinding",
    "SLOPolicy",
    "ServeConfig",
    "ServeReport",
    "SiteFault",
    "Tenant",
    "TenantServeStats",
    "generate_requests",
    "parse_chaos_kinds",
    "place_networks",
    "run_curve",
    "sample_failure_events",
    "simulate_serving",
]
