"""Serving results: per-tenant latency/QPS statistics and snapshots.

A :class:`ServeReport` is the deterministic product of one serving run:
per-network request latency distributions (reusing the streaming
:class:`~repro.telemetry.metrics.Histogram` — p50/p95/p99 by the same
interpolation rules every other percentile in the repo uses), sustained
QPS over the run horizon, the batch-size distribution the dynamic
batcher actually formed, and the full request-outcome taxonomy:
every offered root request resolves into exactly one of completed /
shed / timed-out / failed, so ``offered == completed + shed +
timed_out + failed`` holds per tenant by construction (the conservation
invariant the chaos CI smoke pins).

Failure-aware runs add the lifecycle view — degraded intervals, the
fault/repair event log, healthy-vs-degraded latency splits, a bucketed
timeline for the dashboard — and, when an
:class:`~repro.serve.failures.SLOPolicy` is set, per-tenant and
whole-node objective evaluation with error-budget burn.
``to_dict()`` emits only plain floats/ints with sorted keys, so two
runs at the same seed serialise byte-identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.serve.batcher import BatchPolicy
from repro.serve.failures import (
    DegradedInterval,
    FailureConfig,
    FailureEvent,
    SLOPolicy,
)
from repro.serve.placement import NodePlacement
from repro.telemetry.metrics import Histogram

#: The latency percentiles every serving row reports (milliseconds).
LATENCY_PERCENTILES = (50.0, 95.0, 99.0)

#: Final request outcomes, in report order.
OUTCOME_FIELDS = ("completed", "shed", "timed_out", "failed")


@dataclass
class TenantServeStats:
    """One tenant's measured serving behaviour over a run."""

    network: str
    share: float
    offered: int  # root requests generated for this tenant
    admitted: int
    shed: int  # roots finalised as shed
    completed: int
    batches: int
    offered_qps: float
    sustained_qps: float
    latency_ms: Histogram  # per-request end-to-end latency
    batch_sizes: Histogram  # images per dispatched batch
    timed_out: int = 0  # roots whose end-to-end deadline passed
    failed: int = 0  # roots that hit a down (fault-degraded) tenant
    retries: int = 0  # retry copies scheduled
    hedges: int = 0  # hedge copies spawned
    shed_copies: int = 0  # admission refusals incl. retry/hedge copies
    down_s: float = 0.0  # time this tenant was down (unservable)
    healthy_ms: Histogram = field(default_factory=Histogram)
    degraded_ms: Histogram = field(default_factory=Histogram)

    @property
    def shed_rate(self) -> float:
        return self.shed / self.offered if self.offered else 0.0

    @property
    def availability(self) -> float:
        """Fraction of offered roots that completed (every failure
        outcome burns the SLO error budget)."""
        return self.completed / self.offered if self.offered else 1.0

    @property
    def mean_batch(self) -> float:
        return self.batch_sizes.mean if self.batches else 0.0

    def latency_percentile_ms(self, q: float) -> float:
        return self.latency_ms.percentile(q)

    def outcomes(self) -> Dict[str, int]:
        return {
            "completed": self.completed,
            "shed": self.shed,
            "timed_out": self.timed_out,
            "failed": self.failed,
        }

    def to_row(self) -> Dict[str, object]:
        """The deterministic export payload for this tenant."""
        row: Dict[str, object] = {
            "network": self.network,
            "share": self.share,
            "offered": self.offered,
            "admitted": self.admitted,
            "shed": self.shed,
            "completed": self.completed,
            "batches": self.batches,
            "offered_qps": self.offered_qps,
            "sustained_qps": self.sustained_qps,
            "shed_rate": self.shed_rate,
            "mean_batch": self.mean_batch,
            "max_batch": (
                self.batch_sizes.max if self.batches else 0.0
            ),
        }
        for q in LATENCY_PERCENTILES:
            row[f"p{q:g}_ms"] = self.latency_percentile_ms(q)
        row["mean_ms"] = self.latency_ms.mean
        row["max_ms"] = self.latency_ms.max if self.completed else 0.0
        row["timed_out"] = self.timed_out
        row["failed"] = self.failed
        row["retries"] = self.retries
        row["hedges"] = self.hedges
        row["shed_copies"] = self.shed_copies
        row["availability"] = self.availability
        row["down_s"] = self.down_s
        row["healthy_p99_ms"] = (
            self.healthy_ms.percentile(99) if self.healthy_ms.count
            else 0.0
        )
        row["degraded_p99_ms"] = (
            self.degraded_ms.percentile(99) if self.degraded_ms.count
            else 0.0
        )
        return row


@dataclass(frozen=True)
class SLOFinding:
    """One evaluated objective for one scope (a tenant or the node)."""

    scope: str  # network name, or "node"
    objective: str  # "p99_ms" | "availability"
    target: float
    actual: float
    ok: bool

    def describe(self) -> str:
        op = "<=" if self.objective == "p99_ms" else ">="
        verdict = "ok" if self.ok else "VIOLATED"
        return (
            f"{self.scope}: {self.objective} {self.actual:g} "
            f"(target {op} {self.target:g}) {verdict}"
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "scope": self.scope,
            "objective": self.objective,
            "target": self.target,
            "actual": self.actual,
            "ok": self.ok,
        }


@dataclass
class ServeReport:
    """Everything one serving run produced."""

    node: str
    policy: BatchPolicy
    arrivals: str
    seed: int
    offered_qps: float
    duration_s: float
    horizon_s: float  # offered window stretched to the last completion
    placement: NodePlacement
    tenants: Tuple[TenantServeStats, ...]
    timeout_s: Optional[float] = None
    retries: int = 0
    backoff_s: float = 0.0
    hedge_s: Optional[float] = None
    failures: Optional[FailureConfig] = None
    slo: Optional[SLOPolicy] = None
    fault_events: Tuple[FailureEvent, ...] = ()
    degraded_intervals: Tuple[DegradedInterval, ...] = ()
    timeline: Tuple[Dict[str, float], ...] = ()

    @property
    def offered(self) -> int:
        return sum(t.offered for t in self.tenants)

    @property
    def completed(self) -> int:
        return sum(t.completed for t in self.tenants)

    @property
    def shed(self) -> int:
        return sum(t.shed for t in self.tenants)

    @property
    def timed_out(self) -> int:
        return sum(t.timed_out for t in self.tenants)

    @property
    def failed(self) -> int:
        return sum(t.failed for t in self.tenants)

    @property
    def shed_rate(self) -> float:
        return self.shed / self.offered if self.offered else 0.0

    @property
    def availability(self) -> float:
        return self.completed / self.offered if self.offered else 1.0

    @property
    def sustained_qps(self) -> float:
        return sum(t.sustained_qps for t in self.tenants)

    @property
    def degraded_s(self) -> float:
        return sum(i.duration_s for i in self.degraded_intervals)

    def node_latency_ms(self) -> Histogram:
        """Whole-node latency distribution (tenant histograms merged,
        in tenant order — merge is order-insensitive anyway)."""
        merged = Histogram()
        for t in self.tenants:
            merged.merge(t.latency_ms)
        return merged

    def tenant(self, network: str) -> TenantServeStats:
        for stats in self.tenants:
            if stats.network == network:
                return stats
        raise KeyError(network)

    def rows(self) -> List[Dict[str, object]]:
        return [t.to_row() for t in self.tenants]

    # -- SLO evaluation -------------------------------------------------
    def slo_findings(self) -> Tuple[SLOFinding, ...]:
        """Every objective evaluated per tenant and whole-node (empty
        when no policy is set)."""
        if self.slo is None or not self.slo.enforced:
            return ()
        findings: List[SLOFinding] = []
        scopes: List[Tuple[str, float, float]] = [
            (t.network, t.latency_percentile_ms(99), t.availability)
            for t in self.tenants
        ]
        node_hist = self.node_latency_ms()
        scopes.append((
            "node",
            node_hist.percentile(99) if node_hist.count else 0.0,
            self.availability,
        ))
        for scope, p99, availability in scopes:
            if self.slo.p99_ms is not None:
                findings.append(SLOFinding(
                    scope, "p99_ms", self.slo.p99_ms, p99,
                    p99 <= self.slo.p99_ms,
                ))
            if self.slo.availability is not None:
                findings.append(SLOFinding(
                    scope, "availability", self.slo.availability,
                    availability, availability >= self.slo.availability,
                ))
        return tuple(findings)

    def slo_violations(self) -> Tuple[SLOFinding, ...]:
        return tuple(f for f in self.slo_findings() if not f.ok)

    def error_budget_burn(self) -> float:
        """Whole-node error-budget burn against the availability
        target (0.0 when no availability objective is set)."""
        if self.slo is None:
            return 0.0
        return self.slo.error_budget_burn(self.availability)

    def to_dict(self) -> Dict[str, object]:
        """The deterministic snapshot (plain scalars, stable keys)."""
        snapshot: Dict[str, object] = {
            "config": {
                "node": self.node,
                "arrivals": self.arrivals,
                "seed": self.seed,
                "offered_qps": self.offered_qps,
                "duration_s": self.duration_s,
                "policy": self.policy.kind,
                "max_batch": self.policy.max_batch,
                "max_wait_ms": self.policy.max_wait_s * 1e3,
                "queue_depth": self.policy.queue_depth,
                "timeout_ms": (
                    self.timeout_s * 1e3
                    if self.timeout_s is not None else None
                ),
                "retries": self.retries,
                "backoff_ms": self.backoff_s * 1e3,
                "hedge_ms": (
                    self.hedge_s * 1e3
                    if self.hedge_s is not None else None
                ),
            },
            "placement": {
                t.network: {"clusters": t.clusters, "share": t.share}
                for t in self.placement.tenants
            },
            "tenants": {t.network: t.to_row() for t in self.tenants},
            "totals": {
                "offered": self.offered,
                "completed": self.completed,
                "shed": self.shed,
                "timed_out": self.timed_out,
                "failed": self.failed,
                "shed_rate": self.shed_rate,
                "availability": self.availability,
                "sustained_qps": self.sustained_qps,
                "horizon_s": self.horizon_s,
            },
        }
        if self.failures is not None:
            snapshot["failures"] = {
                "config": self.failures.to_dict(),
                "events": [
                    {
                        "time_s": e.time_s,
                        "action": e.action,
                        "fault_id": e.fault.fault_id,
                        "kind": e.fault.kind.value,
                        "site": e.fault.site,
                        "magnitude": e.fault.magnitude,
                    }
                    for e in self.fault_events
                ],
                "degraded_intervals": [
                    i.to_dict() for i in self.degraded_intervals
                ],
                "degraded_s": self.degraded_s,
                "timeline": [dict(b) for b in self.timeline],
            }
        if self.slo is not None and self.slo.enforced:
            snapshot["slo"] = {
                "policy": self.slo.to_dict(),
                "findings": [
                    f.to_dict() for f in self.slo_findings()
                ],
                "violations": len(self.slo_violations()),
                "error_budget_burn": self.error_budget_burn(),
            }
        return snapshot

    def describe(self) -> str:
        text = (
            f"served {self.completed}/{self.offered} requests "
            f"({self.shed} shed"
        )
        if self.timed_out or self.failed:
            text += f", {self.timed_out} timed out, {self.failed} failed"
        text += (
            f") on {self.node} at "
            f"{self.offered_qps:,.0f} offered QPS over "
            f"{self.duration_s:g}s [{self.arrivals} arrivals, "
            f"{self.policy.describe()}]; sustained "
            f"{self.sustained_qps:,.0f} QPS"
        )
        if self.failures is not None:
            text += (
                f"; {len(self.fault_events) // 2} fault(s), degraded "
                f"{self.degraded_s:g}s of {self.horizon_s:g}s"
            )
        if self.slo is not None and self.slo.enforced:
            violations = self.slo_violations()
            text += (
                f"; SLO [{self.slo.describe()}]: "
                + (f"{len(violations)} violation(s)" if violations
                   else "met")
            )
        return text
