"""Serving results: per-tenant latency/QPS statistics and snapshots.

A :class:`ServeReport` is the deterministic product of one serving run:
per-network request latency distributions (reusing the streaming
:class:`~repro.telemetry.metrics.Histogram` — p50/p95/p99 by the same
interpolation rules every other percentile in the repo uses), sustained
QPS over the run horizon, the batch-size distribution the dynamic
batcher actually formed, and shed accounting from admission control.
``to_dict()`` emits only plain floats/ints with sorted keys, so two
runs at the same seed serialise byte-identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.serve.batcher import BatchPolicy
from repro.serve.placement import NodePlacement
from repro.telemetry.metrics import Histogram

#: The latency percentiles every serving row reports (milliseconds).
LATENCY_PERCENTILES = (50.0, 95.0, 99.0)


@dataclass
class TenantServeStats:
    """One tenant's measured serving behaviour over a run."""

    network: str
    share: float
    offered: int  # requests generated for this tenant
    admitted: int
    shed: int
    completed: int
    batches: int
    offered_qps: float
    sustained_qps: float
    latency_ms: Histogram  # per-request end-to-end latency
    batch_sizes: Histogram  # images per dispatched batch

    @property
    def shed_rate(self) -> float:
        return self.shed / self.offered if self.offered else 0.0

    @property
    def mean_batch(self) -> float:
        return self.batch_sizes.mean if self.batches else 0.0

    def latency_percentile_ms(self, q: float) -> float:
        return self.latency_ms.percentile(q)

    def to_row(self) -> Dict[str, object]:
        """The deterministic export payload for this tenant."""
        row: Dict[str, object] = {
            "network": self.network,
            "share": self.share,
            "offered": self.offered,
            "admitted": self.admitted,
            "shed": self.shed,
            "completed": self.completed,
            "batches": self.batches,
            "offered_qps": self.offered_qps,
            "sustained_qps": self.sustained_qps,
            "shed_rate": self.shed_rate,
            "mean_batch": self.mean_batch,
            "max_batch": (
                self.batch_sizes.max if self.batches else 0.0
            ),
        }
        for q in LATENCY_PERCENTILES:
            row[f"p{q:g}_ms"] = self.latency_percentile_ms(q)
        row["mean_ms"] = self.latency_ms.mean
        row["max_ms"] = self.latency_ms.max if self.completed else 0.0
        return row


@dataclass
class ServeReport:
    """Everything one serving run produced."""

    node: str
    policy: BatchPolicy
    arrivals: str
    seed: int
    offered_qps: float
    duration_s: float
    horizon_s: float  # offered window stretched to the last completion
    placement: NodePlacement
    tenants: Tuple[TenantServeStats, ...]

    @property
    def offered(self) -> int:
        return sum(t.offered for t in self.tenants)

    @property
    def completed(self) -> int:
        return sum(t.completed for t in self.tenants)

    @property
    def shed(self) -> int:
        return sum(t.shed for t in self.tenants)

    @property
    def shed_rate(self) -> float:
        return self.shed / self.offered if self.offered else 0.0

    @property
    def sustained_qps(self) -> float:
        return sum(t.sustained_qps for t in self.tenants)

    def tenant(self, network: str) -> TenantServeStats:
        for stats in self.tenants:
            if stats.network == network:
                return stats
        raise KeyError(network)

    def rows(self) -> List[Dict[str, object]]:
        return [t.to_row() for t in self.tenants]

    def to_dict(self) -> Dict[str, object]:
        """The deterministic snapshot (plain scalars, stable keys)."""
        return {
            "config": {
                "node": self.node,
                "arrivals": self.arrivals,
                "seed": self.seed,
                "offered_qps": self.offered_qps,
                "duration_s": self.duration_s,
                "policy": self.policy.kind,
                "max_batch": self.policy.max_batch,
                "max_wait_ms": self.policy.max_wait_s * 1e3,
                "queue_depth": self.policy.queue_depth,
            },
            "placement": {
                t.network: {"clusters": t.clusters, "share": t.share}
                for t in self.placement.tenants
            },
            "tenants": {t.network: t.to_row() for t in self.tenants},
            "totals": {
                "offered": self.offered,
                "completed": self.completed,
                "shed": self.shed,
                "shed_rate": self.shed_rate,
                "sustained_qps": self.sustained_qps,
                "horizon_s": self.horizon_s,
            },
        }

    def describe(self) -> str:
        return (
            f"served {self.completed}/{self.offered} requests "
            f"({self.shed} shed) on {self.node} at "
            f"{self.offered_qps:,.0f} offered QPS over "
            f"{self.duration_s:g}s [{self.arrivals} arrivals, "
            f"{self.policy.describe()}]; sustained "
            f"{self.sustained_qps:,.0f} QPS"
        )
