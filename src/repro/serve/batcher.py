"""Dynamic batching and admission control for one serving tenant.

The batcher owns a tenant's request queue and makes the two decisions
the serving loop delegates:

* **admission** — :meth:`DynamicBatcher.offer` sheds a request when the
  queue already holds ``queue_depth`` waiting requests (bounding both
  memory and worst-case queueing delay; shed requests are counted, not
  retried);
* **batch forming** — :meth:`DynamicBatcher.take` releases the next
  batch.  Under the ``greedy`` policy anything queued dispatches the
  moment the server is free.  Under the ``wait`` policy the batcher
  holds until the batch fills to ``max_batch`` **or** the oldest
  request has waited ``max_wait_s`` (the classic batching-vs-tail-
  latency dial of the TPU paper); :meth:`DynamicBatcher.deadline`
  exposes the exact expiry instant so the event loop can schedule a
  timer, and expiry *exactly on* the deadline dispatches — the
  comparison uses the same float expression the deadline returns, so
  there is no epsilon to tune.

Everything is plain deterministic bookkeeping: no clocks, no RNG.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, List, Optional

from repro.errors import ConfigError
from repro.serve.request import Request

#: Supported batch-forming policies.
POLICY_KINDS = ("wait", "greedy")


@dataclass(frozen=True)
class BatchPolicy:
    """The batcher's three dials: policy kind, size cap, wait cap, and
    the admission queue bound."""

    kind: str = "wait"
    max_batch: int = 8
    max_wait_s: float = 0.002
    queue_depth: int = 64

    def __post_init__(self) -> None:
        if self.kind not in POLICY_KINDS:
            raise ConfigError(
                f"unknown batch policy {self.kind!r} "
                f"(choose from: {', '.join(POLICY_KINDS)})"
            )
        if self.max_batch < 1:
            raise ConfigError(
                f"max_batch must be >= 1, got {self.max_batch}"
            )
        if self.max_wait_s < 0:
            raise ConfigError(
                f"max_wait_s must be >= 0, got {self.max_wait_s}"
            )
        if self.queue_depth < 1:
            raise ConfigError(
                f"queue_depth must be >= 1, got {self.queue_depth}"
            )

    def describe(self) -> str:
        wait = (
            f", max-wait {self.max_wait_s * 1e3:g}ms"
            if self.kind == "wait" else ""
        )
        return (
            f"{self.kind} batching (max-batch {self.max_batch}{wait}, "
            f"queue bound {self.queue_depth})"
        )


class DynamicBatcher:
    """Admission + batch forming for one tenant's queue."""

    def __init__(self, policy: BatchPolicy) -> None:
        self.policy = policy
        self._queue: Deque[Request] = deque()
        self.admitted = 0
        self.shed = 0

    def __len__(self) -> int:
        return len(self._queue)

    def offer(self, request: Request) -> bool:
        """Admit ``request`` or shed it (queue at its depth bound)."""
        if len(self._queue) >= self.policy.queue_depth:
            self.shed += 1
            return False
        self._queue.append(request)
        self.admitted += 1
        return True

    def drain(self) -> List[Request]:
        """Remove and return everything queued (a tenant going down
        cannot serve its backlog; the serving loop fails each request
        so its root can retry or finalise)."""
        drained = list(self._queue)
        self._queue.clear()
        return drained

    def deadline(self) -> Optional[float]:
        """When the oldest queued request's wait budget expires, or
        ``None`` (empty queue, or the greedy policy never waits)."""
        if not self._queue or self.policy.kind == "greedy":
            return None
        return self._queue[0].arrival_s + self.policy.max_wait_s

    def take(
        self,
        now_s: float,
        drop: Optional[Callable[[Request], bool]] = None,
        on_drop: Optional[Callable[[Request], None]] = None,
    ) -> List[Request]:
        """The batch to dispatch at ``now_s``, or ``[]`` to keep
        waiting.  Dispatches when the queue fills a batch, the oldest
        request's deadline has arrived (``now_s`` at or past
        :meth:`deadline`), or the policy is greedy.

        ``drop`` marks queued requests that must never dispatch (past
        their request deadline, or hedge duplicates whose sibling
        already won): they are removed while the batch forms and handed
        to ``on_drop`` instead of a server.  The purge is lazy — a
        doomed request sits in the queue until the next formation
        touches it — which keeps ``offer``/``deadline`` free of
        per-event scans and the whole batcher deterministic.
        """
        queue = self._queue
        if drop is not None:
            # Purge the head first so the ready check below reasons
            # about a request that could actually dispatch.
            while queue and drop(queue[0]):
                request = queue.popleft()
                if on_drop is not None:
                    on_drop(request)
        if not queue:
            return []
        policy = self.policy
        ready = (
            policy.kind == "greedy"
            or len(queue) >= policy.max_batch
            or now_s >= queue[0].arrival_s + policy.max_wait_s
        )
        if not ready:
            return []
        batch: List[Request] = []
        while queue and len(batch) < policy.max_batch:
            request = queue.popleft()
            if drop is not None and drop(request):
                if on_drop is not None:
                    on_drop(request)
                continue
            batch.append(request)
        return batch
