"""Open-loop request generation for the serving simulator.

A request stream is generated up front, deterministically, from a seed:
the generator never observes simulator state (open-loop — offered load
does not slow down when the node saturates, which is exactly what makes
tail latency blow up past the knee, TPU-paper style).  Two arrival
processes are supported:

* ``poisson`` — memoryless arrivals at an offered aggregate rate
  (inter-arrival times drawn from ``Exp(qps)`` with a seeded
  ``random.Random``), each request routed to a network by a weighted
  seeded draw;
* ``uniform`` — a closed trace of evenly spaced arrivals at exactly
  ``1/qps`` spacing, networks interleaved by deterministic
  largest-remainder weighted round-robin (no RNG at all).

Both are plain float arithmetic over a seeded PRNG, so the same
(networks, qps, duration, seed) produce a bit-identical stream on every
run — the property the serve determinism gate pins.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import ConfigError

#: Supported arrival processes.
ARRIVAL_KINDS = ("poisson", "uniform")

#: Hard cap on generated requests per run: an open-loop generator at a
#: "millions of users" rate must not materialise an unbounded stream.
DEFAULT_MAX_REQUESTS = 200_000


@dataclass(frozen=True)
class Request:
    """One inference request: global arrival order, target network,
    arrival timestamp (seconds from the start of the run).

    The robustness fields default to the plain open-loop case — a fresh
    root request whose submit time is its arrival time.  Retries and
    hedged duplicates are *copies* that share the root's ``rid`` and
    ``submitted_s`` (end-to-end latency and the request deadline are
    measured from submission, not re-arrival) but re-enter the queue at
    a later ``arrival_s``.
    """

    index: int
    network: str
    arrival_s: float
    rid: int = -1  # root request id (-1: this request is its own root)
    submitted_s: float = -1.0  # original submit time (-1: arrival_s)
    attempt: int = 0  # 0 = first try, n = nth retry
    hedge: bool = False  # True for a hedged duplicate

    def __post_init__(self) -> None:
        if self.rid < 0:
            object.__setattr__(self, "rid", self.index)
        if self.submitted_s < 0:
            object.__setattr__(self, "submitted_s", self.arrival_s)

    def deadline_s(self, timeout_s: Optional[float]) -> Optional[float]:
        """The absolute wall deadline under ``timeout_s`` (end-to-end
        from submission, shared by every retry/hedge copy), or ``None``
        when requests never time out."""
        if timeout_s is None:
            return None
        return self.submitted_s + timeout_s


def _normalized_weights(
    networks: Sequence[str], weights: Optional[Sequence[float]]
) -> List[float]:
    if weights is None:
        weights = [1.0] * len(networks)
    if len(weights) != len(networks):
        raise ConfigError(
            f"{len(networks)} network(s) but {len(weights)} weight(s)"
        )
    if any(w < 0 for w in weights) or sum(weights) <= 0:
        raise ConfigError(f"request weights must be >= 0 and sum > 0")
    total = float(sum(weights))
    return [float(w) / total for w in weights]


def generate_requests(
    networks: Sequence[str],
    qps: float,
    duration_s: float,
    arrivals: str = "poisson",
    seed: int = 0,
    weights: Optional[Sequence[float]] = None,
    max_requests: int = DEFAULT_MAX_REQUESTS,
) -> Tuple[Request, ...]:
    """The deterministic request stream for one serving run.

    ``qps`` is the aggregate offered rate across every network;
    ``weights`` splits it (default: equally).  Generation stops at
    ``duration_s`` simulated seconds or ``max_requests`` requests,
    whichever comes first.
    """
    if not networks:
        raise ConfigError("at least one network is required to serve")
    if qps <= 0:
        raise ConfigError(f"offered qps must be > 0, got {qps}")
    if duration_s <= 0:
        raise ConfigError(f"duration must be > 0, got {duration_s}")
    if max_requests < 1:
        raise ConfigError(
            f"max_requests must be >= 1, got {max_requests}"
        )
    if arrivals not in ARRIVAL_KINDS:
        raise ConfigError(
            f"unknown arrival process {arrivals!r} "
            f"(choose from: {', '.join(ARRIVAL_KINDS)})"
        )
    shares = _normalized_weights(networks, weights)

    requests: List[Request] = []
    if arrivals == "poisson":
        rng = random.Random(seed)
        cumulative: List[float] = []
        running = 0.0
        for share in shares:
            running += share
            cumulative.append(running)
        cumulative[-1] = 1.0  # guard float residue on the last slot
        now = 0.0
        while len(requests) < max_requests:
            now += rng.expovariate(qps)
            if now >= duration_s:
                break
            draw = rng.random()
            for name, edge in zip(networks, cumulative):
                if draw < edge:
                    network = name
                    break
            else:  # pragma: no cover - cumulative[-1] == 1.0
                network = networks[-1]
            requests.append(Request(len(requests), network, now))
    else:  # uniform closed trace
        interval = 1.0 / qps
        credits = [0.0] * len(networks)
        index = 0
        while len(requests) < max_requests:
            now = (index + 1) * interval
            if now >= duration_s:
                break
            # Largest-remainder weighted round-robin: every arrival
            # credits each network its share, the most-owed network
            # (first wins ties) takes the slot.
            best = 0
            for i, share in enumerate(shares):
                credits[i] += share
                if credits[i] > credits[best]:
                    best = i
            credits[best] -= 1.0
            requests.append(Request(index, networks[best], now))
            index += 1
    return tuple(requests)
