"""Machine state for the functional engine: tiles and scratchpads.

The engine models one ScaleDeep chip as a grid of MemHeavy tiles (each a
word-addressed float32 scratchpad with a tracker file) and CompHeavy
tiles (each a scalar register file plus program counter).  Addresses in
engine programs are *word* offsets into a tile's scratchpad; sizes pack
2-D extents as ``(height << 16) | width`` so the published instruction
signatures of Fig 8 carry shapes in single operands.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.arch.chip import ChipConfig
from repro.errors import SimulationError
from repro.isa.instructions import Instruction, NUM_REGISTERS, Opcode
from repro.isa.program import Program
from repro.sim.tracker import TrackerFile

#: Packing of 2-D extents into one operand.
SHAPE_SHIFT = 16
SHAPE_MASK = (1 << SHAPE_SHIFT) - 1

#: Data-instruction operands with this bit set are register references:
#: the engine substitutes the scalar register's value at issue time —
#: how the paper's Fig 13 listings pass R-operands to NDCONV etc.
REG_OPERAND_FLAG = 1 << 30
REG_OPERAND_MASK = REG_OPERAND_FLAG - 1


def reg_operand(index: int) -> int:
    """Encode scalar register ``index`` as a data-instruction operand."""
    if not 0 <= index < 64:
        raise SimulationError(f"register index {index} out of range")
    return REG_OPERAND_FLAG | index


def is_reg_operand(value: int) -> bool:
    return bool(value & REG_OPERAND_FLAG)


def pack_shape(height: int, width: int) -> int:
    """Encode a (height, width) extent into one immediate."""
    if not (0 < height <= SHAPE_MASK and 0 < width <= SHAPE_MASK):
        raise SimulationError(f"extent {height}x{width} does not pack")
    return (height << SHAPE_SHIFT) | width


def unpack_shape(packed: int) -> Tuple[int, int]:
    """Decode a packed (height, width) extent."""
    return packed >> SHAPE_SHIFT, packed & SHAPE_MASK


@dataclass
class MemTile:
    """A MemHeavy tile: scratchpad words, tracker file, DMA statistics."""

    tile_id: int
    words: np.ndarray
    trackers: TrackerFile
    sfu_count: int

    @classmethod
    def build(
        cls, tile_id: int, capacity_bytes: int, sfu_count: int,
        tracker_capacity: int = 32,
    ) -> "MemTile":
        return cls(
            tile_id=tile_id,
            words=np.zeros(capacity_bytes // 4, dtype=np.float32),
            trackers=TrackerFile(tracker_capacity),
            sfu_count=sfu_count,
        )

    @property
    def capacity_words(self) -> int:
        return len(self.words)

    def batched_words(self, batch: int) -> np.ndarray:
        """``batch`` copies of this scratchpad's current contents, one
        row per image — the lazily-materialised state behind the
        engine's batched execution (preloaded weights/biases replicate
        to every image)."""
        return np.repeat(self.words[None, :], batch, axis=0)

    def read(self, addr: int, count: int) -> np.ndarray:
        if addr < 0 or addr + count > len(self.words):
            raise SimulationError(
                f"tile {self.tile_id}: read [{addr}, {addr + count}) out of "
                f"bounds ({len(self.words)} words)"
            )
        return self.words[addr : addr + count]

    def write(self, addr: int, data: np.ndarray, accumulate: bool) -> None:
        count = data.size
        if addr < 0 or addr + count > len(self.words):
            raise SimulationError(
                f"tile {self.tile_id}: write [{addr}, {addr + count}) out "
                f"of bounds ({len(self.words)} words)"
            )
        flat = data.reshape(-1).astype(np.float32)
        if accumulate:
            self.words[addr : addr + count] += flat
        else:
            self.words[addr : addr + count] = flat


@dataclass
class CompTile:
    """A CompHeavy tile: registers, program, program counter, clock."""

    tile_id: str
    program: Program
    registers: np.ndarray = field(
        default_factory=lambda: np.zeros(NUM_REGISTERS, dtype=np.int64)
    )
    pc: int = 0
    cycles: int = 0
    halted: bool = False
    blocked: bool = False
    instructions_executed: int = 0
    stalled_cycles: int = 0  # cycles spent retrying blocked instructions
    blocked_retries: int = 0  # retries of the *current* instruction

    @property
    def busy_cycles(self) -> int:
        """Cycles spent executing (total minus tracker-blocked stalls)."""
        return self.cycles - self.stalled_cycles

    def reg(self, index: int) -> int:
        return int(self.registers[index])

    def set_reg(self, index: int, value: int) -> None:
        self.registers[index] = value


class Machine:
    """One-chip engine state: a mesh of MemTiles plus CompTiles.

    MemHeavy tiles form a ``(cols + 1) x rows`` mesh (the fencepost
    arrangement of Sec 3.2.1); ``mem_tile_id(col, row)`` flattens the
    coordinates.  Engine DMA may move data between any two tiles; timing
    charges Manhattan-distance hops over the point-to-point links.
    """

    def __init__(self, chip: ChipConfig, mem_columns: int, rows: int) -> None:
        if mem_columns < 1 or rows < 1:
            raise SimulationError("machine mesh must be non-empty")
        self.chip = chip
        self.mem_columns = mem_columns
        self.rows = rows
        self.mem_tiles: List[MemTile] = [
            MemTile.build(
                i, chip.mem_tile.capacity_bytes, chip.mem_tile.num_sfu,
                chip.mem_tile.tracker_count,
            )
            for i in range(mem_columns * rows)
        ]
        self.comp_tiles: Dict[str, CompTile] = {}

    # ------------------------------------------------------------------
    def mem_tile_id(self, col: int, row: int) -> int:
        if not (0 <= col < self.mem_columns and 0 <= row < self.rows):
            raise SimulationError(
                f"mem tile ({col}, {row}) outside "
                f"{self.mem_columns}x{self.rows} mesh"
            )
        return col * self.rows + row

    def mem_tile(self, tile_id: int) -> MemTile:
        try:
            return self.mem_tiles[tile_id]
        except IndexError:
            raise SimulationError(f"no mem tile {tile_id}") from None

    def hops(self, src_tile: int, dst_tile: int) -> int:
        """Manhattan distance between two mem tiles on the mesh."""
        sc, sr = divmod(src_tile, self.rows)
        dc, dr = divmod(dst_tile, self.rows)
        return abs(sc - dc) + abs(sr - dr)

    def reset_programs(self) -> None:
        """Rewind every CompHeavy tile for another run of its program
        (weights and scratchpad contents persist — this is how the SGD
        loop iterates images on the same machine)."""
        for tile in self.comp_tiles.values():
            tile.pc = 0
            tile.halted = False
            tile.blocked = False
            tile.blocked_retries = 0

    def load_program(self, program: Program) -> CompTile:
        program.validate()
        if program.tile in self.comp_tiles:
            raise SimulationError(
                f"comp tile {program.tile!r} already has a program"
            )
        tile = CompTile(tile_id=program.tile, program=program)
        self.comp_tiles[program.tile] = tile
        return tile

    # ------------------------------------------------------------------
    @property
    def total_cycles(self) -> int:
        """Makespan estimate: the slowest tile's cycle count."""
        if not self.comp_tiles:
            return 0
        return max(t.cycles for t in self.comp_tiles.values())

    @property
    def total_instructions(self) -> int:
        return sum(
            t.instructions_executed for t in self.comp_tiles.values()
        )

    @property
    def total_busy_cycles(self) -> int:
        """Sum of per-tile execution cycles, excluding tracker stalls.

        Unlike the makespan (``total_cycles``), this is invariant under
        superop fusion: fused execution compresses *stall* cycles but
        charges every covered instruction its decoded cost."""
        return sum(t.busy_cycles for t in self.comp_tiles.values())


#: (port, addr, word_count) — one gated access.
Access = Tuple[int, int, int]


def _conv_out_extent_words(extent: int, kernel: int, stride: int, pad: int) -> int:
    return (extent + 2 * pad - kernel) // stride + 1


def operand_accesses(op, o):
    """Accesses from an already-resolved operand mapping (the engine
    path for register-indirect instructions)."""
    from repro.isa.instructions import Instruction as _I

    fake = _I(op, tuple(o[name] for name in _operand_names(op)))
    return instruction_accesses(fake)


def _operand_names(op):
    from repro.isa.instructions import OPERAND_NAMES

    return OPERAND_NAMES[op]


def instruction_accesses(
    instr: Instruction,
) -> Tuple[List[Access], List[Access]]:
    """The (reads, writes) a data instruction performs, as the engine
    gates them.  Scalar/control/track instructions access nothing.

    Register-indirect operands cannot be resolved statically: programs
    using them (hand-written looped templates) bypass the calibration
    pass, which is why the production code generator unrolls loops —
    the static analysis then sees every address.
    """
    op = instr.opcode
    o = instr.named_operands()
    if any(is_reg_operand(v) for v in instr.operands):
        raise SimulationError(
            f"{op.value} uses register-indirect operands; accesses are "
            "only known at execution time"
        )
    reads: List[Access] = []
    writes: List[Access] = []

    if op is Opcode.NDCONV:
        h, w = unpack_shape(o["in_size"])
        k, _ = unpack_shape(o["kernel_size"])
        out_h = _conv_out_extent_words(h, k, o["stride"], o["pad"])
        out_w = _conv_out_extent_words(w, k, o["stride"], o["pad"])
        reads.append((o["in_port"], o["in_addr"], h * w))
        reads.append((o["in_port"], o["kernel_addr"], k * k))
        writes.append((o["out_port"], o["out_addr"], out_h * out_w))
    elif op is Opcode.MATMUL:
        rows, cols = unpack_shape(o["in2_size"])
        _, n = unpack_shape(o["in1_size"])
        reads.append((o["in1_port"], o["in1_addr"], n))
        reads.append((o["in2_port"], o["in2_addr"], rows * cols))
        writes.append((o["out_port"], o["out_addr"], rows))
    elif op is Opcode.NDACTFN:
        reads.append((o["port"], o["in_addr"], o["size"]))
        writes.append((o["out_port"], o["out_addr"], o["size"]))
    elif op is Opcode.NDACTBP:
        reads.append((o["port"], o["err_addr"], o["size"]))
        reads.append((o["port"], o["err_addr"] + o["size"], o["size"]))
        writes.append((o["out_port"], o["out_addr"], o["size"]))
    elif op is Opcode.NDSUBSAMP:
        h, w = unpack_shape(o["in_size"])
        out_h = (h - o["window"]) // o["stride"] + 1
        out_w = (w - o["window"]) // o["stride"] + 1
        reads.append((o["port"], o["in_addr"], h * w))
        writes.append((o["out_port"], o["out_addr"], out_h * out_w))
    elif op is Opcode.NDUPSAMP:
        h, w = unpack_shape(o["in_size"])
        stride = o["stride"]
        reads.append((o["port"], o["in_addr"], h * w))
        if o["samp_type"] == 2:  # zero-insert dilation
            out = ((h - 1) * stride + 1) * ((w - 1) * stride + 1)
        else:
            out = h * stride * w * stride
            if o["samp_type"] == 0:  # max routing reads the original
                reads.append((o["port"], o["in_addr"] + h * w, out))
        writes.append((o["out_port"], o["out_addr"], out))
    elif op is Opcode.NDACCUM:
        reads.append((o["port"], o["src_addr"], o["size"]))
        writes.append((o["port"], o["dst_addr"], o["size"]))
    elif op is Opcode.VECMUL:
        reads.append((o["port"], o["in1_addr"], o["size"]))
        reads.append((o["port"], o["in2_addr"], o["size"]))
        writes.append((o["port"], o["out_addr"], o["size"]))
    elif op is Opcode.WUPDATE:
        reads.append((o["port"], o["grad_addr"], o["size"]))
        writes.append((o["port"], o["weight_addr"], o["size"]))
    elif op in (Opcode.DMALOAD, Opcode.DMASTORE):
        reads.append((o["src_port"], o["src_addr"], o["size"]))
        writes.append((o["dst_port"], o["dst_addr"], o["size"]))
    elif op is Opcode.PREFETCH:
        writes.append((o["dst_port"], o["dst_addr"], o["size"]))
    return reads, writes


