"""Nested-pipeline schedule: the timeline behind Fig 10.

Builds the inter-layer pipeline explicitly: each mapping unit
contributes its FP stage in dataflow order followed by the BP and WG
stages in reverse order (training doubles the pipeline depth, Sec
3.2.3), and successive images flow through under the classic pipeline
recurrence — a stage starts when both its predecessor stage (same
image) and its own previous occupancy (previous image) have finished.

The model exposes the quantities the figure illustrates: the fill
latency, the steady-state initiation interval (the bottleneck stage),
and per-stage occupancy, plus an ASCII rendering of the schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.compiler.mapping import WorkloadMapping
from repro.dnn.analysis import Step
from repro.errors import SimulationError
from repro.sim.perf import StageReport, _conv_stage_reports, _fc_stage_reports


@dataclass(frozen=True)
class PipelineStage:
    """One stage of the inter-layer pipeline."""

    name: str  # "conv2/fp"
    cycles: float


@dataclass(frozen=True)
class Timeline:
    """A scheduled run of ``images`` inputs through the pipeline."""

    stages: Tuple[PipelineStage, ...]
    start: Tuple[Tuple[float, ...], ...]  # [image][stage]
    finish: Tuple[Tuple[float, ...], ...]

    @property
    def images(self) -> int:
        return len(self.start)

    @property
    def makespan(self) -> float:
        return self.finish[-1][-1]

    @property
    def fill_latency(self) -> float:
        """Cycles until the first image completes (pipeline fill)."""
        return self.finish[0][-1]

    @property
    def initiation_interval(self) -> float:
        """Steady-state cycles between successive completions."""
        if self.images < 2:
            return self.makespan
        return self.finish[-1][-1] - self.finish[-2][-1]

    @property
    def bottleneck(self) -> PipelineStage:
        return max(self.stages, key=lambda s: s.cycles)

    def occupancy(self, stage_index: int) -> float:
        """Busy fraction of one stage over the whole run."""
        busy = sum(
            self.finish[i][stage_index] - self.start[i][stage_index]
            for i in range(self.images)
        )
        return busy / self.makespan if self.makespan else 0.0

    def speedup_vs_serial(self) -> float:
        """Pipeline speedup over running each image to completion."""
        serial = self.images * sum(s.cycles for s in self.stages)
        return serial / self.makespan if self.makespan else 1.0

    def render(self, width: int = 64) -> str:
        """Coarse ASCII Gantt chart (one row per stage)."""
        scale = self.makespan / width if self.makespan else 1.0
        lines = [
            f"Nested pipeline: {self.images} images x "
            f"{len(self.stages)} stages, makespan "
            f"{self.makespan:,.0f} cycles, II "
            f"{self.initiation_interval:,.0f}"
        ]
        label_w = max(len(s.name) for s in self.stages)
        for j, stage in enumerate(self.stages):
            row = [" "] * width
            for i in range(self.images):
                a = int(self.start[i][j] / scale)
                b = max(a + 1, int(self.finish[i][j] / scale))
                glyph = str(i % 10)
                for x in range(a, min(b, width)):
                    row[x] = glyph
            lines.append(f"{stage.name:<{label_w}} |{''.join(row)}|")
        return "\n".join(lines)


def pipeline_stages(
    mapping: WorkloadMapping, training: bool = True
) -> List[PipelineStage]:
    """The inter-layer pipeline in traversal order: FP stages forward,
    then (for training) BP and WG stages in reverse dataflow order."""
    conv = _conv_stage_reports(mapping, training=training, tile_multiplier=1)
    fc = _fc_stage_reports(mapping, training=training, tile_multiplier=1)
    by_key: Dict[Tuple[str, Step], StageReport] = {
        (s.unit, s.step): s for s in conv + fc
    }
    conv_units = list(mapping.conv_allocations)
    fc_units = list(mapping.fc_allocations)
    forward_order = conv_units + fc_units

    ordered: List[PipelineStage] = []
    for unit in forward_order:
        stage = by_key[(unit, Step.FP)]
        ordered.append(PipelineStage(f"{unit}/fp", stage.cycles))
    if training:
        for unit in reversed(forward_order):
            bp = by_key[(unit, Step.BP)]
            wg = by_key[(unit, Step.WG)]
            # BP and WG of a unit run concurrently on their own tiles;
            # as a pipeline stage the image occupies them together.
            ordered.append(
                PipelineStage(f"{unit}/bp+wg", max(bp.cycles, wg.cycles))
            )
    return ordered


def schedule(
    stages: Sequence[PipelineStage], images: int
) -> Timeline:
    """Schedule ``images`` inputs through ``stages`` (pipeline
    recurrence: start[i][j] = max(finish[i][j-1], finish[i-1][j]))."""
    if images < 1:
        raise SimulationError("need at least one image to schedule")
    if not stages:
        raise SimulationError("need at least one pipeline stage")
    start = [[0.0] * len(stages) for _ in range(images)]
    finish = [[0.0] * len(stages) for _ in range(images)]
    for i in range(images):
        for j, stage in enumerate(stages):
            ready_dataflow = finish[i][j - 1] if j else 0.0
            ready_resource = finish[i - 1][j] if i else 0.0
            start[i][j] = max(ready_dataflow, ready_resource)
            finish[i][j] = start[i][j] + stage.cycles
    return Timeline(
        stages=tuple(stages),
        start=tuple(tuple(row) for row in start),
        finish=tuple(tuple(row) for row in finish),
    )


def nested_pipeline(
    mapping: WorkloadMapping, images: int = 8, training: bool = True
) -> Timeline:
    """Fig 10: schedule a stream of images through one copy's pipeline."""
    return schedule(pipeline_stages(mapping, training), images)
