"""Simulators: analytical pipeline model and functional ISA engine."""

from repro.sim.perf import (
    DEFAULT_MINIBATCH,
    LinkUtilization,
    PerfResult,
    StageReport,
    SystemPerfResult,
    simulate,
    simulate_suite,
    simulate_system,
)
from repro.sim.engine import (
    ACT_CODES,
    EXTERNAL_PORT,
    Engine,
    RunReport,
    SAMP_CODES,
)
from repro.sim.allreduce import (
    SyncReport,
    internode_allreduce_cycles,
    minibatch_sync,
    ring_allreduce_cycles,
    wheel_accumulate_cycles,
)
from repro.sim.energy import (
    EnergyReport,
    energy_report,
    system_energy_report,
)
from repro.sim.tco import TCOReport, TRAINING_RUN_EPOCHS, tco_report
from repro.sim.report import FullReport, full_report
from repro.sim.validation import (
    ValidationRow,
    cross_validate,
    rank_agreement,
)
from repro.sim.timeline import (
    PipelineStage,
    Timeline,
    nested_pipeline,
    pipeline_stages,
    schedule,
)
from repro.sim.machine import Machine, MemTile, pack_shape, unpack_shape
from repro.sim.tracker import (
    AccessVerdict,
    RangeTracker,
    TrackerFile,
    TrackerPhase,
)

__all__ = [
    "ACT_CODES",
    "AccessVerdict",
    "DEFAULT_MINIBATCH",
    "EXTERNAL_PORT",
    "EnergyReport",
    "Engine",
    "FullReport",
    "LinkUtilization",
    "Machine",
    "MemTile",
    "PerfResult",
    "RangeTracker",
    "RunReport",
    "PipelineStage",
    "SAMP_CODES",
    "StageReport",
    "SyncReport",
    "SystemPerfResult",
    "TCOReport",
    "TRAINING_RUN_EPOCHS",
    "Timeline",
    "ValidationRow",
    "TrackerFile",
    "TrackerPhase",
    "energy_report",
    "full_report",
    "internode_allreduce_cycles",
    "minibatch_sync",
    "nested_pipeline",
    "pack_shape",
    "pipeline_stages",
    "ring_allreduce_cycles",
    "schedule",
    "cross_validate",
    "rank_agreement",
    "system_energy_report",
    "tco_report",
    "wheel_accumulate_cycles",
    "simulate",
    "simulate_suite",
    "simulate_system",
    "unpack_shape",
]
