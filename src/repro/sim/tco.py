"""Total cost of ownership on top of the system performance model.

The TPU paper's framing: architecture results only matter in the
datacenter if they survive the translation to $/result.  This module
folds the amortized capex (:class:`~repro.arch.system.TCOModel`) with
the power model's metered energy into the two headline figures the
sweep exports and the dashboard KPI row report:

* ``$ / training run`` — a full 90-epoch ImageNet training run at the
  system's (sync-degraded) training throughput;
* ``$ / 1M inferences`` — a million evaluation images at the system's
  evaluation throughput.

Both are derived, not measured: they inherit every modeling assumption
upstream (pipeline model, power calibration, fabric constants), so use
them for *relative* comparisons across sweep points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.arch.system import TCOModel
from repro.errors import SimulationError
from repro.sim.energy import IMAGENET_IMAGES
from repro.sim.perf import SystemPerfResult

#: Epochs in the canonical training run (Sec 1: "50-100 epochs").
TRAINING_RUN_EPOCHS = 90


@dataclass(frozen=True)
class TCOReport:
    """Dollar figures for one system simulation."""

    network: str
    system: str
    node_count: int
    dollars_per_hour: float  # whole system: capex + energy
    capex_dollars_per_hour: float
    energy_dollars_per_hour: float
    training_run_hours: float
    dollars_per_training_run: float
    dollars_per_1m_inferences: float

    def describe(self) -> str:
        return (
            f"{self.network} on {self.system} ({self.node_count} "
            f"node(s)): ${self.dollars_per_hour:,.2f}/h "
            f"(${self.capex_dollars_per_hour:,.2f} capex + "
            f"${self.energy_dollars_per_hour:,.2f} energy), "
            f"{TRAINING_RUN_EPOCHS}-epoch training run "
            f"{self.training_run_hours:,.1f} h = "
            f"${self.dollars_per_training_run:,.0f}, "
            f"${self.dollars_per_1m_inferences:,.2f}/1M inferences"
        )


def tco_report(
    result: SystemPerfResult,
    model: Optional[TCOModel] = None,
    epochs: int = TRAINING_RUN_EPOCHS,
) -> TCOReport:
    """Derive $-cost figures from a :class:`SystemPerfResult`.

    The system's hourly cost is the amortized capex of its nodes plus
    the metered (PUE-scaled) energy of its average draw; dividing by
    the system throughputs prices a training run and a million
    inferences.
    """
    if model is None:
        from repro.arch.presets import DEFAULT_TCO

        model = DEFAULT_TCO
    if epochs < 1:
        raise SimulationError("a training run needs at least one epoch")
    if result.system_training_images_per_s <= 0:
        raise SimulationError("cannot price a system with zero throughput")
    if result.system_evaluation_images_per_s <= 0:
        raise SimulationError(
            "cannot price a system with zero evaluation throughput"
        )

    capex_hr = result.node_count * model.capex_usd_per_node_hour()
    energy_hr = (
        result.system_power_w / 1e3 * model.pue
        * model.electricity_usd_per_kwh
    )
    per_hour = capex_hr + energy_hr

    run_hours = (
        epochs * IMAGENET_IMAGES
        / result.system_training_images_per_s / 3600.0
    )
    inference_hours = 1e6 / result.system_evaluation_images_per_s / 3600.0

    return TCOReport(
        network=result.network,
        system=result.system,
        node_count=result.node_count,
        dollars_per_hour=per_hour,
        capex_dollars_per_hour=capex_hr,
        energy_dollars_per_hour=energy_hr,
        training_run_hours=run_hours,
        dollars_per_training_run=run_hours * per_hour,
        dollars_per_1m_inferences=inference_hours * per_hour,
    )
