"""Energy accounting on top of the performance simulator.

Turns the Fig 20 power series into per-image energy: joules per trained
or evaluated image, split by subsystem, with per-stage attribution of
the compute energy.  Also scales up to the paper's motivating workload
(Sec 1: training for 50-100 epochs over the 1.28M-image ImageNet set is
an exa-scale compute problem).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import SimulationError
from repro.sim.perf import PerfResult, SystemPerfResult

#: ImageNet ILSVRC training-set size (Sec 1).
IMAGENET_IMAGES = 1_281_167


@dataclass(frozen=True)
class EnergyReport:
    """Energy figures derived from one simulation result."""

    network: str
    joules_per_training_image: float
    joules_per_evaluation_image: float
    logic_j: float  # per training image
    memory_j: float
    interconnect_j: float
    stage_energy: Dict[Tuple[str, str], float]  # (unit, step) -> J share
    scope: str = "per-node"  # which level of the hierarchy these J cover

    @property
    def kilowatt_hours_per_epoch(self) -> float:
        """Energy for one ImageNet training epoch."""
        return self.joules_per_training_image * IMAGENET_IMAGES / 3.6e6

    def describe(self) -> str:
        if self.stage_energy:
            top = max(self.stage_energy, key=lambda k: self.stage_energy[k])
            hottest = f" (hottest stage: {top[0]}/{top[1]})"
        else:
            hottest = ""  # degrade gracefully: no stages attributed
        return (
            f"{self.network} [{self.scope}]: "
            f"{self.joules_per_training_image * 1e3:.1f} mJ/"
            f"training image ({self.logic_j * 1e3:.1f} logic / "
            f"{self.memory_j * 1e3:.1f} memory / "
            f"{self.interconnect_j * 1e3:.1f} interconnect), "
            f"{self.joules_per_evaluation_image * 1e3:.2f} mJ/evaluation, "
            f"{self.kilowatt_hours_per_epoch:.1f} kWh/ImageNet epoch"
            + hottest
        )


def energy_report(result: PerfResult) -> EnergyReport:
    """Derive per-image energy from a :class:`PerfResult`.

    The node burns ``average_power`` continuously while the pipeline
    streams ``training_images_per_s`` images, so energy/image is their
    ratio; evaluation runs at the same average power to first order (the
    same tiles are busy, just reorganised), which the paper's Fig 20
    measurement convention also assumes.
    """
    if result.training_images_per_s <= 0:
        raise SimulationError("cannot derive energy from zero throughput")
    if result.evaluation_images_per_s <= 0:
        raise SimulationError(
            "cannot derive energy from zero evaluation throughput"
        )
    power = result.average_power
    j_train = power.total_w / result.training_images_per_s
    j_eval = power.total_w / result.evaluation_images_per_s

    # Attribute the compute (logic) energy to stages by their share of
    # compute cycles — the quantity the 2D-PE arrays actually burn on.
    total_compute = sum(s.cost.compute_cycles for s in result.stages) or 1.0
    logic_j = power.logic_w / result.training_images_per_s
    stage_energy = {
        (s.unit, s.step.value): logic_j * s.cost.compute_cycles / total_compute
        for s in result.stages
    }
    return EnergyReport(
        network=result.network,
        joules_per_training_image=j_train,
        joules_per_evaluation_image=j_eval,
        logic_j=logic_j,
        memory_j=power.memory_w / result.training_images_per_s,
        interconnect_j=power.interconnect_w / result.training_images_per_s,
        stage_energy=stage_energy,
    )


def system_energy_report(result: SystemPerfResult) -> EnergyReport:
    """Per-image energy at the system level.

    All ``node_count`` nodes burn their average power while the system
    streams its (sync-degraded) throughput, so per-image joules *rise*
    as scaling efficiency falls — the energy cost of the inter-node
    all-reduce made visible.  The scope label distinguishes these
    figures from the per-node report.
    """
    if result.system_training_images_per_s <= 0:
        raise SimulationError("cannot derive energy from zero throughput")
    if result.system_evaluation_images_per_s <= 0:
        raise SimulationError(
            "cannot derive energy from zero evaluation throughput"
        )
    node = result.node_result
    power = node.average_power.scaled(result.node_count)
    train_rate = result.system_training_images_per_s
    j_train = power.total_w / train_rate
    j_eval = power.total_w / result.system_evaluation_images_per_s

    total_compute = sum(s.cost.compute_cycles for s in node.stages) or 1.0
    logic_j = power.logic_w / train_rate
    stage_energy = {
        (s.unit, s.step.value): logic_j * s.cost.compute_cycles / total_compute
        for s in node.stages
    }
    return EnergyReport(
        network=result.network,
        joules_per_training_image=j_train,
        joules_per_evaluation_image=j_eval,
        logic_j=logic_j,
        memory_j=power.memory_w / train_rate,
        interconnect_j=power.interconnect_w / train_rate,
        stage_energy=stage_energy,
        scope=f"system/{result.node_count} nodes",
    )
