"""Analytical performance simulator for the nested pipeline (Sec 3.2.3).

Given a workload mapping, this model computes the steady-state throughput
of the two-level nested pipeline: every mapping unit contributes three
concurrent stages (FP, BP, WG on their dedicated CompHeavy tiles), the
FcLayer hubs contribute the batched FC stages, and the pipeline runs at
the pace of its slowest stage.  From the same per-stage cost model it
derives 2D-PE utilization (Fig 16/19), link utilization for every level
of the grid-wheel-ring hierarchy (Fig 21), and average power /
processing efficiency (Fig 20).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.arch.node import NodeConfig
from repro.arch.power import PowerDraw, node_power_model
from repro.arch.system import Parallelism, SystemConfig
from repro.compiler.cost import StepCost, step_cost
from repro.compiler.mapping import UnitAllocation, WorkloadMapping
from repro.dnn.analysis import Step, profile_network
from repro.dnn.layers import LayerKind
from repro.dnn.network import Network
from repro.errors import SimulationError
from repro.faults.model import FaultMask
from repro.telemetry.core import get_telemetry

#: Default minibatch: the paper aggregates gradients per minibatch; 256
#: is the conventional ImageNet minibatch of its era.
DEFAULT_MINIBATCH = 256

#: Fraction of minibatch gradient-sync traffic visible as steady-state
#: arc/ring load (the rest overlaps with compute).
WEIGHT_SYNC_OVERLAP = 0.25


@dataclass(frozen=True)
class StageReport:
    """One pipeline stage: a (unit, step) pair and its cost."""

    unit: str
    step: Step
    chip: str
    cost: StepCost

    @property
    def cycles(self) -> float:
        return self.cost.cycles


@dataclass(frozen=True)
class LinkUtilization:
    """Utilization of every link class (Fig 21's three panels)."""

    comp_mem: float
    mem_mem: float
    conv_ext: float
    fc_ext: float
    spoke: float
    arc: float
    ring: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "comp_mem": self.comp_mem,
            "mem_mem": self.mem_mem,
            "conv_ext": self.conv_ext,
            "fc_ext": self.fc_ext,
            "spoke": self.spoke,
            "arc": self.arc,
            "ring": self.ring,
        }


@dataclass(frozen=True)
class PerfResult:
    """Complete simulation result for one network on one node config."""

    network: str
    node: str
    mapping: WorkloadMapping
    training_images_per_s: float
    evaluation_images_per_s: float
    pe_utilization: float
    stages: Tuple[StageReport, ...]
    link_utilization: LinkUtilization
    average_power: PowerDraw
    gflops_per_watt: float
    achieved_tflops: float
    minibatch: int

    @property
    def bottleneck(self) -> StageReport:
        return max(self.stages, key=lambda s: s.cycles)

    def describe(self) -> str:
        b = self.bottleneck
        return (
            f"{self.network} on {self.node}: "
            f"train {self.training_images_per_s:,.0f} img/s, "
            f"eval {self.evaluation_images_per_s:,.0f} img/s, "
            f"PE util {self.pe_utilization:.2f}, "
            f"{self.achieved_tflops:.1f} TFLOP/s sustained, "
            f"{self.gflops_per_watt:.0f} GFLOPs/W "
            f"(bottleneck: {b.unit}/{b.step.value}, {b.cost.bound_by})"
        )


def _derate_cost(cost: StepCost, derate: float) -> StepCost:
    """Fold a tile-slow fault into a stage cost.

    The columns of a stage advance in lockstep (features distribute
    across the columns and partial outputs merge — the STEP4/5 state
    partitioning), so a derated column paces the whole stage: every
    cycle term stretches by ``1 / derate``.
    """
    if derate >= 1.0:
        return cost
    scale = 1.0 / max(derate, 1e-9)
    return replace(
        cost,
        compute_cycles=cost.compute_cycles * scale,
        sfu_cycles=cost.sfu_cycles * scale,
        comp_mem_link_cycles=cost.comp_mem_link_cycles * scale,
        mem_mem_link_cycles=cost.mem_mem_link_cycles * scale,
        ext_mem_cycles=cost.ext_mem_cycles * scale,
    )


def _conv_stage_reports(
    mapping: WorkloadMapping,
    training: bool,
    tile_multiplier: int,
) -> List[StageReport]:
    """Per-(unit, step) costs on the ConvLayer chips."""
    node = mapping.node
    chip = node.cluster.conv_chip
    steps = tuple(Step) if training else (Step.FP,)
    reports: List[StageReport] = []
    for alloc in mapping.conv_allocations.values():
        for step in steps:
            costs = [
                step_cost(
                    node.frequency_hz, chip, mapping.network[member], step,
                    alloc.columns, node.dtype_bytes, alloc.weights_on_chip,
                    store_features_offchip=training,
                    step_tile_multiplier=tile_multiplier,
                    winograd=node.use_winograd,
                )
                for member in alloc.members
            ]
            # Members of a unit share their columns, so their latencies
            # add; attribute the merged cost to the slowest member's
            # breakdown with summed cycle terms.
            merged = _derate_cost(_merge_costs(costs, alloc), alloc.derate)
            reports.append(StageReport(alloc.unit, step, chip.kind.value, merged))
    return reports


def _merge_costs(costs: List[StepCost], alloc: UnitAllocation) -> StepCost:
    """Sum the member costs of a multi-member unit into one stage cost."""
    if len(costs) == 1:
        return costs[0]
    from repro.compiler.cost import TrafficSummary  # local: avoid cycle

    first = costs[0]
    return StepCost(
        layer=alloc.unit,
        step=first.step,
        columns=alloc.columns,
        compute_cycles=sum(c.compute_cycles for c in costs),
        sfu_cycles=sum(c.sfu_cycles for c in costs),
        comp_mem_link_cycles=sum(c.comp_mem_link_cycles for c in costs),
        mem_mem_link_cycles=sum(c.mem_mem_link_cycles for c in costs),
        ext_mem_cycles=sum(c.ext_mem_cycles for c in costs),
        utilization=max(
            (c.utilization for c in costs),
            key=lambda u: u.achieved,
        ),
        traffic=TrafficSummary(
            sum(c.traffic.comp_mem_bytes for c in costs),
            sum(c.traffic.mem_mem_bytes for c in costs),
            sum(c.traffic.ext_mem_bytes for c in costs),
        ),
        array_config=first.array_config,
    )


def _fc_stage_reports(
    mapping: WorkloadMapping,
    training: bool,
    tile_multiplier: int,
) -> List[StageReport]:
    """Per-(unit, step) costs on the FcLayer hubs.

    Weight streaming amortises over the wheel/ring batch; with model
    parallelism all hubs serving a copy group share each image's FC
    work, which is folded in by dividing the cycle terms by the hub
    count at aggregation time (see :func:`simulate`).
    """
    node = mapping.node
    chip = node.cluster.fc_chip
    steps = tuple(Step) if training else (Step.FP,)
    batch = max(1, mapping.fc_batch_size)
    reports: List[StageReport] = []
    for alloc in mapping.fc_allocations.values():
        for step in steps:
            costs = [
                step_cost(
                    node.frequency_hz, chip, mapping.network[member], step,
                    alloc.columns, node.dtype_bytes, alloc.weights_on_chip,
                    store_features_offchip=training,
                    weight_reuse_batch=batch,
                    step_tile_multiplier=tile_multiplier,
                )
                for member in alloc.members
            ]
            reports.append(
                StageReport(
                    alloc.unit, step, chip.kind.value,
                    _derate_cost(_merge_costs(costs, alloc), alloc.derate),
                )
            )
    return reports


def _throughput(
    mapping: WorkloadMapping,
    conv_stages: List[StageReport],
    fc_stages: List[StageReport],
    training: bool,
    minibatch: int,
) -> Tuple[float, StageReport]:
    """Node images/s and the limiting stage.

    Each ConvLayer stage serves one copy, so its node-level rate scales
    by the copy count.  The FcLayer hubs jointly serve every image in
    the node — with model parallelism each hub computes a weight shard
    for all images, without it each hub computes full layers for its own
    cluster's images — so either way the node-level FC rate is
    ``cluster_count * freq / stage_cycles``.
    """
    node = mapping.node
    freq = node.frequency_hz

    rates: List[Tuple[float, StageReport]] = []
    for stage in conv_stages:
        rates.append((mapping.copies * freq / stage.cycles, stage))
    for stage in fc_stages:
        rates.append((node.cluster_count * freq / stage.cycles, stage))
    if not rates:
        raise SimulationError("no pipeline stages to simulate")
    images_per_s, limiting = min(rates, key=lambda r: r[0])

    if training:
        # Pipeline drain at minibatch boundaries (Sec 3.2.3): training
        # pipeline depth is twice the unit count (FP then BP/WG); each
        # minibatch pays one drain of the pipeline.
        units = (len(conv_stages) + len(fc_stages)) / len(tuple(Step))
        depth = 2 * units
        images_per_s /= 1.0 + depth / minibatch
    return images_per_s, limiting


def _emit_stage_telemetry(
    tel,
    network: str,
    stages: List[StageReport],
    train_rate: float,
    eval_rate: float,
    pe_util: float,
) -> None:
    """Report the analytical pipeline through the telemetry schema: one
    span per (unit, step) stage — all starting at 0, since the stages
    run concurrently in steady state — plus headline counters."""
    for stage in stages:
        cost = stage.cost
        tel.span(
            f"{stage.unit}/{stage.step.value}", "perf.stage",
            ("perf", f"{stage.unit}/{stage.step.value}"), 0.0,
            stage.cycles,
            network=network, chip=stage.chip, columns=cost.columns,
            bound_by=cost.bound_by,
            compute_cycles=cost.compute_cycles,
            sfu_cycles=cost.sfu_cycles,
            achieved_util=cost.utilization.achieved,
        )
        # Distribution metrics: per-stage latency histograms, split by
        # training step so ``repro stats`` reports p50/p95/p99 per class.
        tel.observe("perf.stage_cycles", stage.step.value, stage.cycles)
        tel.observe("perf.stage_cycles", "all", stage.cycles)
    group = f"perf/{network}"
    tel.record(group, "stages", len(stages))
    bottleneck = max(s.cycles for s in stages) if stages else 0.0
    tel.record(group, "bottleneck_cycles", bottleneck)
    tel.record(group, "train_images_per_s", train_rate)
    tel.record(group, "eval_images_per_s", eval_rate)
    tel.record(group, "pe_utilization", pe_util)
    tel.gauge(group, "bottleneck_cycles", bottleneck)
    tel.gauge(group, "train_images_per_s", train_rate)
    tel.gauge(group, "eval_images_per_s", eval_rate)
    tel.gauge(group, "pe_utilization", pe_util)


# ---------------------------------------------------------------------------
# Utilization, traffic and power aggregation
# ---------------------------------------------------------------------------
def _array_flops_per_image(mapping: WorkloadMapping, training: bool) -> float:
    """FLOPs per image that execute on 2D-PE arrays (CONV/MATMUL/VEC)."""
    from repro.dnn.analysis import Kernel, profile

    steps = tuple(Step) if training else (Step.FP,)
    total = 0.0
    for node in mapping.network:
        if node.kind not in (LayerKind.CONV, LayerKind.FC):
            continue
        for step in steps:
            prof = profile(node, step, mapping.node.dtype_bytes)
            total += (
                prof.flops_by_kernel.get(Kernel.ND_CONV, 0)
                + prof.flops_by_kernel.get(Kernel.MATMUL, 0)
                + prof.flops_by_kernel.get(Kernel.VEC_ELT_MUL, 0)
            )
    return total


def _allocated_comp_flops_per_cycle(mapping: WorkloadMapping) -> float:
    """Peak FLOPs/cycle of the CompHeavy tiles allocated node-wide."""
    node = mapping.node
    conv = node.cluster.conv_chip
    fc = node.cluster.fc_chip
    conv_tiles = sum(
        a.columns * conv.rows * 3 for a in mapping.conv_allocations.values()
    ) * mapping.copies
    fc_tiles = sum(
        a.columns * fc.rows * 3 for a in mapping.fc_allocations.values()
    ) * node.cluster_count
    return (
        conv_tiles * conv.comp_tile.flops_per_cycle
        + fc_tiles * fc.comp_tile.flops_per_cycle
    )


def _span_crossings(columns: Sequence[int], span_cols: int) -> List[int]:
    """Indices of column-sequence units whose output crosses a
    ``span_cols`` boundary on the way to its consumer.

    A unit crosses when it straddles a boundary internally, or when it
    ends exactly on a boundary and a successor unit reads its output
    from the far side.  The trailing unit of the sequence never counts
    for ending on a boundary — there is no consumer beyond it.
    """
    if span_cols <= 0:
        return []
    crossings: List[int] = []
    start = 0
    for index, width in enumerate(columns):
        end = start + width
        straddles = start // span_cols != (end - 1) // span_cols
        on_edge = (
            index + 1 < len(columns)
            and (end - 1) // span_cols != end // span_cols
        )
        if straddles or on_edge:
            crossings.append(index)
        start = end
    return crossings


def _chip_boundary_bytes(mapping: WorkloadMapping, span_cols: int) -> float:
    """Feature+error bytes per image crossing every ``span_cols``-column
    boundary of the copy's column sequence (chip or cluster edges)."""
    allocs = list(mapping.conv_allocations.values())
    dtype = mapping.node.dtype_bytes
    crossed = 0.0
    for index in _span_crossings([a.columns for a in allocs], span_cols):
        # This unit's output may stay put; the *next* unit reads it
        # across the boundary.  Count its output once each way.
        out_elems = sum(
            mapping.network[m].output_shape.elements
            for m in allocs[index].members
        )
        crossed += 2.0 * out_elems * dtype
    return crossed


def _first_fc_input_bytes(mapping: WorkloadMapping) -> float:
    """Bytes of the feature vector each image ships to the FC hub."""
    if not mapping.fc_allocations:
        return 0.0
    first = next(iter(mapping.fc_allocations.values()))
    member = mapping.network[first.members[0]]
    if not member.input_shapes:
        return 0.0
    return member.input_shapes[0].elements * mapping.node.dtype_bytes


def _fc_feature_bytes(mapping: WorkloadMapping) -> float:
    """Total FC-side feature bytes per image (inputs + outputs)."""
    dtype = mapping.node.dtype_bytes
    total = 0.0
    for alloc in mapping.fc_allocations.values():
        for m in alloc.members:
            node = mapping.network[m]
            ins = node.input_shapes[0].elements if node.input_shapes else 0
            total += (ins + node.output_shape.elements) * dtype
    return total


def _link_utilization(
    mapping: WorkloadMapping,
    conv_stages: List[StageReport],
    fc_stages: List[StageReport],
    images_per_s: float,
    minibatch: int,
) -> LinkUtilization:
    node = mapping.node
    conv = node.cluster.conv_chip
    fc = node.cluster.fc_chip
    dtype = node.dtype_bytes
    per_copy_rate = images_per_s / max(1, mapping.copies)

    def clamp(x: float) -> float:
        return min(1.0, max(0.0, x))

    # --- on-chip links (per copy; identical across copies) -------------
    conv_comp_links = sum(
        a.columns * conv.rows * 3 * 2
        for a in mapping.conv_allocations.values()
    )
    conv_mem_links = sum(
        a.columns * conv.rows * 2 for a in mapping.conv_allocations.values()
    )
    comp_traffic = sum(s.cost.traffic.comp_mem_bytes for s in conv_stages)
    mem_traffic = sum(s.cost.traffic.mem_mem_bytes for s in conv_stages)
    comp_mem_util = clamp(
        per_copy_rate * comp_traffic
        / max(1.0, conv_comp_links * conv.links.comp_mem)
    )
    mem_mem_util = clamp(
        per_copy_rate * mem_traffic
        / max(1.0, conv_mem_links * conv.links.mem_mem)
    )

    # --- chip external memory ------------------------------------------
    ext_traffic = sum(s.cost.traffic.ext_mem_bytes for s in conv_stages)
    conv_ext_util = clamp(
        per_copy_rate * ext_traffic
        / max(
            1.0,
            mapping.conv_chips_per_copy * conv.links.external_memory_total,
        )
    )
    fc_ext_traffic = sum(s.cost.traffic.ext_mem_bytes for s in fc_stages)
    fc_ext_util = clamp(
        images_per_s * fc_ext_traffic
        / max(1.0, node.cluster_count * fc.links.external_memory_total)
    )

    # --- wheel spokes: FC inputs out, FC errors back --------------------
    spoke_bytes = 2.0 * _first_fc_input_bytes(mapping)
    spoke_util = clamp(
        per_copy_rate * spoke_bytes / max(1.0, node.cluster.spoke_bandwidth)
    )

    # --- wheel arcs: inter-chip CONV traffic + minibatch weight sync ----
    conv_weight_bytes = sum(
        mapping.network[m].weights
        for a in mapping.conv_allocations.values()
        for m in a.members
    ) * dtype
    arc_bytes = _chip_boundary_bytes(mapping, conv.cols)
    # Gradient accumulation pipelines around the wheel overlapped with
    # compute; only a fraction shows up as steady-state arc traffic.
    arc_bytes += WEIGHT_SYNC_OVERLAP * 2.0 * conv_weight_bytes / minibatch
    # Each chip boundary has its own arc link, so the crossings spread
    # over (chips_per_copy - 1) arcs.
    arc_links = max(1, min(mapping.conv_chips_per_copy, 4) - 1) if (
        mapping.conv_chips_per_copy > 1
    ) else 1
    if mapping.faults is not None:
        # Traffic of a down arc reroutes the long way round the rim,
        # concentrating on the surviving arcs of the worst-hit cluster.
        arc_links = max(
            1, arc_links - mapping.faults.worst_cluster_down_arcs
        )
    arc_util = clamp(
        per_copy_rate * arc_bytes
        / max(1.0, arc_links * node.cluster.arc_bandwidth)
    )

    # --- ring: model-parallel FC features, cross-cluster CONV traffic,
    #     and minibatch gradient accumulation --------------------------
    ring_bytes = 0.0
    if node.fc_model_parallel and mapping.fc_allocations:
        hubs = node.cluster_count
        ring_bytes += 2.0 * _fc_feature_bytes(mapping) * (hubs - 1) / hubs
    if mapping.clusters_per_copy > 1:
        ring_bytes += _chip_boundary_bytes(
            mapping, conv.cols * node.cluster.conv_chip_count
        )
    ring_bytes += WEIGHT_SYNC_OVERLAP * 2.0 * conv_weight_bytes / minibatch
    ring_links = node.cluster_count
    if mapping.faults is not None:
        # A cut ring degrades to a line; the traffic squeezes onto the
        # surviving links.
        ring_links = max(1, ring_links - len(mapping.faults.down_ring))
    ring_util = clamp(
        images_per_s * ring_bytes
        / max(1.0, ring_links * node.ring_bandwidth)
    )

    return LinkUtilization(
        comp_mem=comp_mem_util,
        mem_mem=mem_mem_util,
        conv_ext=conv_ext_util,
        fc_ext=fc_ext_util,
        spoke=spoke_util,
        arc=arc_util,
        ring=ring_util,
    )


def simulate(
    net: Network,
    node: NodeConfig,
    minibatch: int = DEFAULT_MINIBATCH,
    mapping: Optional[WorkloadMapping] = None,
    faults: Optional[FaultMask] = None,
) -> PerfResult:
    """Simulate training and evaluation of ``net`` on ``node``.

    Returns throughput, utilization, link utilization and power — the
    quantities behind Figs 16/17 (throughput + utilization), Fig 20
    (power/efficiency) and Fig 21 (bandwidth utilization).  With a
    ``faults`` mask (or a fault-remapped ``mapping``) the pipeline runs
    on the degraded machine: derated stages, rerouted arc/ring traffic.
    """
    if minibatch < 1:
        raise SimulationError(f"minibatch must be >= 1, got {minibatch}")
    if mapping is None:
        # Through the unified pipeline: the placement that arrives here
        # has passed IR verification (and fault remapping, when masked).
        from repro.compiler.pipeline import compile_network

        mapping = compile_network(net, node, faults=faults).mapping

    train_conv = _conv_stage_reports(mapping, training=True, tile_multiplier=1)
    train_fc = _fc_stage_reports(mapping, training=True, tile_multiplier=1)
    train_rate, _ = _throughput(
        mapping, train_conv, train_fc, training=True, minibatch=minibatch
    )

    eval_conv = _conv_stage_reports(mapping, training=False, tile_multiplier=3)
    eval_fc = _fc_stage_reports(mapping, training=False, tile_multiplier=3)
    eval_rate, _ = _throughput(
        mapping, eval_conv, eval_fc, training=False, minibatch=minibatch
    )

    # 2D-PE utilization over the allocated CompHeavy tiles.
    useful = _array_flops_per_image(mapping, training=True) * train_rate
    capacity = _allocated_comp_flops_per_cycle(mapping) * node.frequency_hz
    pe_util = min(1.0, useful / capacity) if capacity else 0.0

    links = _link_utilization(
        mapping, train_conv, train_fc, train_rate, minibatch
    )

    # Machine-level activity drives node power: compute activity relative
    # to the whole node's CompHeavy tiles, link activity from the on-chip
    # links that dominate interconnect power.
    node_comp_capacity = (
        node.comp_tile_count
        * node.cluster.conv_chip.comp_tile.flops_per_cycle  # dominant kind
        * node.frequency_hz
    )
    machine_util = min(1.0, useful / node_comp_capacity)
    link_activity = min(1.0, 0.5 * (links.comp_mem + links.mem_mem))
    draw = node_power_model().average(
        compute_utilization=machine_util,
        link_utilization=link_activity,
        memory_utilization=0.5,
    )
    training_flops = profile_network(net, node.dtype_bytes).training_flops
    achieved = training_flops * train_rate
    gflops_per_watt = achieved / draw.total_w / 1e9

    tel = get_telemetry()
    if tel.enabled:
        _emit_stage_telemetry(
            tel, net.name, train_conv + train_fc, train_rate, eval_rate,
            pe_util,
        )

    return PerfResult(
        network=net.name,
        node=node.name,
        mapping=mapping,
        training_images_per_s=train_rate,
        evaluation_images_per_s=eval_rate,
        pe_utilization=pe_util,
        stages=tuple(train_conv + train_fc),
        link_utilization=links,
        average_power=draw,
        gflops_per_watt=gflops_per_watt,
        achieved_tflops=achieved / 1e12,
        minibatch=minibatch,
    )


def evaluation_pipeline_depth(mapping: WorkloadMapping) -> int:
    """Concurrent stages an image traverses during evaluation.

    The inference pipeline is the FP slice of the nested pipeline: one
    stage per conv mapping unit plus one per FC hub unit.  The first
    image of a batch pays this fill depth before the pipeline reaches
    steady state — the quantity the serving simulator charges as batch
    startup latency.
    """
    return max(
        1, len(mapping.conv_allocations) + len(mapping.fc_allocations)
    )


def evaluation_batch_latency_s(
    result: PerfResult, batch: int = 1, share: float = 1.0
) -> float:
    """Analytical end-to-end latency of one evaluation batch (seconds).

    The nested pipeline emits one image per beat once full, so a batch
    of ``batch`` images on a node slice sustaining ``share`` of the
    node's evaluation rate takes ``(depth + batch - 1)`` beats: the fill
    (first image traverses every stage) plus one beat per further
    image.  This is the fidelity-for-speed trade the serving simulator
    makes — request-level latency from the analytical steady-state rate
    instead of cycle-level event replay.
    """
    if batch < 1:
        raise SimulationError(f"batch must be >= 1, got {batch}")
    if not 0.0 < share <= 1.0:
        raise SimulationError(f"share must be in (0, 1], got {share}")
    rate = result.evaluation_images_per_s * share
    if rate <= 0.0:
        raise SimulationError(
            f"{result.network} has no evaluation throughput to serve"
        )
    depth = evaluation_pipeline_depth(result.mapping)
    return (depth + batch - 1) / rate


def simulate_suite(
    networks: Mapping[str, Network],
    node: NodeConfig,
    minibatch: int = DEFAULT_MINIBATCH,
) -> Dict[str, PerfResult]:
    """Simulate every network in ``networks`` on the same node config."""
    return {
        name: simulate(net, node, minibatch)
        for name, net in networks.items()
    }


# ---------------------------------------------------------------------------
# Multi-node scale-out (SystemConfig)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class SystemPerfResult:
    """Scale-out overlay on a per-node :class:`PerfResult`.

    ``node_result`` is the unchanged single-node simulation; the system
    fields scale it with the strategy's communication terms.  For a
    1-node system every system quantity equals its per-node twin
    exactly (the byte-compatibility contract).
    """

    network: str
    system: str
    node_count: int
    strategy: str  # canonical ParallelismStrategy token
    node_result: PerfResult
    system_training_images_per_s: float
    system_evaluation_images_per_s: float
    internode_sync_s: float  # per minibatch, serialized
    sync_fraction: float  # of the training step time
    scaling_efficiency: float  # vs node_count perfectly-scaled nodes
    system_power_w: float
    system_gflops_per_watt: float
    minibatch: int

    @property
    def per_node_training_images_per_s(self) -> float:
        return self.system_training_images_per_s / self.node_count

    @property
    def per_node_evaluation_images_per_s(self) -> float:
        return self.system_evaluation_images_per_s / self.node_count

    @property
    def speedup(self) -> float:
        """Training speedup over one node."""
        return (
            self.system_training_images_per_s
            / self.node_result.training_images_per_s
        )

    def describe(self) -> str:
        return (
            f"{self.network} on {self.system} "
            f"({self.node_count} node(s), {self.strategy}): "
            f"system train "
            f"{self.system_training_images_per_s:,.0f} img/s "
            f"({self.per_node_training_images_per_s:,.0f} per node), "
            f"system eval "
            f"{self.system_evaluation_images_per_s:,.0f} img/s, "
            f"speedup {self.speedup:.2f}x over one node "
            f"({100 * self.scaling_efficiency:.0f}% scaling efficiency), "
            f"inter-node sync {self.internode_sync_s * 1e3:.2f} "
            f"ms/minibatch ({100 * self.sync_fraction:.0f}% of step), "
            f"system power {self.system_power_w / 1e3:.2f} kW"
        )


def _boundary_activation_bytes(mapping: WorkloadMapping) -> float:
    """Mean per-layer output bytes — the activation payload a model-
    parallel shard cut ships across the fabric for one image."""
    elems = [n.output_shape.elements for n in mapping.network]
    if not elems:
        return 0.0
    return sum(elems) / len(elems) * mapping.node.dtype_bytes


def simulate_system(
    net: Network,
    system: SystemConfig,
    minibatch: int = DEFAULT_MINIBATCH,
    node_result: Optional[PerfResult] = None,
) -> SystemPerfResult:
    """Scale a single-node simulation across ``system``'s nodes.

    The per-node pipeline model is reused untouched (``node_result``
    short-circuits it for callers that already simulated); on top sit
    the strategy's communication terms:

    * **data/hybrid**: each of the ``replicas`` groups works
      ``minibatch / replicas`` images, then the inter-node gradient
      all-reduce serializes at the minibatch boundary — throughput
      rolls off as the sync term grows against the shrinking per-
      replica compute slice;
    * **model/hybrid**: a replica spanning ``shards`` nodes pipelines
      layers across them — compute scales by the shard count until the
      fabric's activation bandwidth (features forward, errors backward)
      caps the rate;
    * evaluation has no gradient sync: replicas scale it linearly,
      shard groups are fabric-capped the same way.
    """
    from repro.sim.allreduce import internode_allreduce_cycles

    if node_result is None:
        node_result = simulate(net, system.node, minibatch)
    node = system.node
    freq = node.frequency_hz
    shards = system.model_shards
    replicas = system.replicas
    node_train = node_result.training_images_per_s
    node_eval = node_result.evaluation_images_per_s

    # One replica's rate across its shard nodes.
    if shards == 1:
        replica_train, replica_eval = node_train, node_eval
    else:
        act = _boundary_activation_bytes(node_result.mapping)
        fabric_images = (
            system.fabric_bandwidth / act if act > 0 else float("inf")
        )
        replica_train = min(shards * node_train, fabric_images / 2.0)
        replica_eval = min(shards * node_eval, fabric_images)

    # Inter-node gradient all-reduce: each replica's fabric endpoint
    # carries its 1/shards slice of the full model.
    weight_bytes = net.weight_count * node.dtype_bytes
    sync_cycles = internode_allreduce_cycles(
        weight_bytes / shards,
        replicas,
        system.fabric_bandwidth,
        freq,
        sync=system.strategy.gradient_sync,
        latency_s=system.fabric_latency_s,
    )
    sync_s = sync_cycles / freq

    if system.node_count == 1:
        # Exact identity with the single-node path (no float round
        # trips through the step-time inversion).
        system_train, system_eval = node_train, node_eval
        sync_fraction = 0.0
    else:
        compute_s = (minibatch / replicas) / replica_train
        step_s = compute_s + sync_s
        system_train = minibatch / step_s
        system_eval = replicas * replica_eval
        sync_fraction = sync_s / step_s

    efficiency = system_train / (system.node_count * node_train)
    power_w = node_result.average_power.total_w * system.node_count
    training_flops = profile_network(net, node.dtype_bytes).training_flops
    achieved = training_flops * system_train
    gflops_per_watt = achieved / power_w / 1e9

    tel = get_telemetry()
    if tel.enabled:
        group = f"system/{net.name}"
        tel.record(group, "nodes", system.node_count)
        tel.record(group, "system_train_images_per_s", system_train)
        tel.record(group, "system_eval_images_per_s", system_eval)
        tel.record(group, "scaling_efficiency", efficiency)
        tel.record(group, "internode_sync_s", sync_s)

    return SystemPerfResult(
        network=net.name,
        system=system.name,
        node_count=system.node_count,
        strategy=system.strategy.token,
        node_result=node_result,
        system_training_images_per_s=system_train,
        system_evaluation_images_per_s=system_eval,
        internode_sync_s=sync_s,
        sync_fraction=sync_fraction,
        scaling_efficiency=efficiency,
        system_power_w=power_w,
        system_gflops_per_watt=gflops_per_watt,
        minibatch=minibatch,
    )


# ---------------------------------------------------------------------------
# Fig 19: layer-wise utilization cascade
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class UnitUtilization:
    """Per-unit utilization cascade (one column group of Fig 19)."""

    unit: str
    columns: int
    pes: int
    ideal_pes: float
    column_peak_util: float  # allocated / ideal (may exceed 1)
    feature_distribution: float
    array_residue: float
    achieved: float


def utilization_report(mapping: WorkloadMapping) -> List[UnitUtilization]:
    """Reproduce Fig 19's utilization cascade for the conv-side units.

    ``column_peak_util`` is the paper's "Peak Util" row: the FLOPs-ideal
    2D-PE share divided by the allocated share (values above 1 mean the
    unit is over-provisioned and will idle; below 1 it throttles the
    pipeline).  The remaining factors multiply into the achieved 2D-PE
    utilization of each unit's FP tiles.
    """
    from repro.compiler.cost import step_cost as _step_cost

    node = mapping.node
    chip = node.cluster.conv_chip
    allocs = mapping.conv_allocations
    if not allocs:
        return []
    total_flops = sum(a.training_flops for a in allocs.values())
    total_pes = sum(
        a.columns * chip.rows * 3 * chip.comp_tile.pe_count
        for a in allocs.values()
    )
    rows: List[UnitUtilization] = []
    for alloc in allocs.values():
        pes = alloc.columns * chip.rows * 3 * chip.comp_tile.pe_count
        ideal = total_pes * alloc.training_flops / total_flops
        costs = [
            _step_cost(
                node.frequency_hz, chip, mapping.network[member], Step.FP,
                alloc.columns, node.dtype_bytes, alloc.weights_on_chip,
            )
            for member in alloc.members
        ]
        # FLOPs-weighted cascade over the unit's members.
        weights = [max(c.compute_cycles, 1.0) for c in costs]
        total_w = sum(weights)
        feat = sum(
            c.utilization.feature_distribution * w
            for c, w in zip(costs, weights)
        ) / total_w
        arr = sum(
            c.utilization.array_residue * w for c, w in zip(costs, weights)
        ) / total_w
        achieved = sum(
            c.utilization.achieved * w for c, w in zip(costs, weights)
        ) / total_w
        rows.append(
            UnitUtilization(
                unit=alloc.unit,
                columns=alloc.columns,
                pes=pes,
                ideal_pes=ideal,
                column_peak_util=pes / ideal if ideal else 1.0,
                feature_distribution=feat,
                array_residue=arr,
                achieved=achieved,
            )
        )
    return rows
