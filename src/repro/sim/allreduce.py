"""Minibatch gradient synchronization over the wheel and ring (Sec 3.3).

At every minibatch boundary ScaleDeep must (i) accumulate the weight
gradients produced by all copies of the network and (ii) distribute the
updated weights back.  The wheel arcs carry this traffic between the
ConvLayer chips of a cluster; the ring carries it between clusters
("the ring is used to accumulate weight gradients generated at each
chip cluster and distribute the updated weights").

This module models that synchronization explicitly:

* a ring all-reduce over ``n`` participants moves ``2 (n-1)/n`` of the
  gradient bytes across each link (reduce-scatter + all-gather);
* the wheel accumulates spoke-locally: each arc sees the full conv
  gradient once in each direction;
* FC gradients stay hub-local under model parallelism (each hub owns
  its weight shard — the Sec 3.3.2 argument), so the ring only carries
  conv gradients.

On a multi-node :class:`~repro.arch.system.SystemConfig` a third phase
composes on top, serialized after the intra-node wheel+ring at the
minibatch boundary: the data-parallel replicas all-reduce the full
(conv + FC) gradient across the inter-node fabric, either as a
multi-level ring (the same ``2 (n-1)/n`` bandwidth term one level up,
plus per-hop latency per step) or as a hierarchical
reduce-then-broadcast tree (``2 ceil(log2 n)`` rounds of the full
payload — latency-optimal, bandwidth-worse).

The report quantifies the overhead per image and how much of it can
overlap with compute — the calibration behind
``repro.sim.perf.WEIGHT_SYNC_OVERLAP``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.arch.system import GradientSync, SystemConfig
from repro.compiler.mapping import WorkloadMapping
from repro.errors import SimulationError
from repro.telemetry.core import get_telemetry


def ring_allreduce_cycles(
    payload_bytes: float,
    participants: int,
    link_bandwidth: float,
    frequency_hz: float,
    down_links: int = 0,
) -> float:
    """Cycles for a bandwidth-optimal ring all-reduce.

    Reduce-scatter plus all-gather: each of the ``n`` links carries
    ``2 * (n - 1) / n * payload`` bytes.  With one link down the ring
    degrades to a line — the reduce and broadcast both traverse the
    middle link with the full payload (``2 * payload`` bytes on the
    busiest link).  Two or more down links partition the ring, which is
    unrecoverable: gradients can no longer reach every participant.
    """
    if participants < 1:
        raise SimulationError("all-reduce needs at least one participant")
    if payload_bytes < 0 or link_bandwidth <= 0:
        raise SimulationError("payload must be >= 0 and bandwidth > 0")
    if participants == 1:
        return 0.0
    if down_links >= 2:
        raise SimulationError(
            f"ring partitioned: {down_links} of {participants} links "
            f"down, gradient all-reduce cannot reach every cluster"
        )
    if down_links == 1:
        bytes_per_link = 2.0 * payload_bytes
    else:
        bytes_per_link = (
            2.0 * (participants - 1) / participants * payload_bytes
        )
    bytes_per_cycle = link_bandwidth / frequency_hz
    return bytes_per_link / bytes_per_cycle


def wheel_accumulate_cycles(
    payload_bytes: float,
    conv_chips: int,
    arc_bandwidth: float,
    frequency_hz: float,
    down_arcs: int = 0,
) -> float:
    """Cycles to accumulate gradients across a wheel's ConvLayer chips
    and redistribute updated weights over the arcs.

    The chips form a line of ``conv_chips - 1`` arcs; accumulation
    daisy-chains toward the hub-adjacent chip and the updated weights
    flow back, so the busiest arc moves the payload once each way.
    Every down arc forces its traffic the long way round the rim,
    adding one full payload traversal to the busiest surviving arc.
    """
    if conv_chips < 1:
        raise SimulationError("a wheel needs at least one ConvLayer chip")
    if conv_chips == 1:
        return 0.0
    bytes_per_cycle = arc_bandwidth / frequency_hz
    reroute = 1 + max(0, down_arcs)
    return reroute * 2.0 * payload_bytes / bytes_per_cycle


def internode_allreduce_cycles(
    payload_bytes: float,
    nodes: int,
    fabric_bandwidth: float,
    frequency_hz: float,
    sync: GradientSync = GradientSync.RING,
    latency_s: float = 0.0,
) -> float:
    """Cycles for the inter-node gradient all-reduce over the fabric.

    **Ring** (multi-level): the node-internal scheme one level up —
    each fabric endpoint carries ``2 (n-1)/n * payload`` bytes over
    ``2 (n-1)`` steps, each step paying one fabric hop of latency.
    Bandwidth-optimal, latency linear in ``n``.

    **Tree** (hierarchical reduce-then-broadcast): ``ceil(log2 n)``
    pairwise reduce rounds followed by the mirror broadcast; every
    round moves the *full* payload over one link plus one hop.
    Latency logarithmic in ``n``, bandwidth worse for large payloads —
    the classic crossover the strategy axis lets sweeps explore.

    One node (or an empty payload) synchronizes for free.
    """
    if nodes < 1:
        raise SimulationError("all-reduce needs at least one node")
    if payload_bytes < 0 or fabric_bandwidth <= 0:
        raise SimulationError("payload must be >= 0 and bandwidth > 0")
    if latency_s < 0:
        raise SimulationError("fabric latency must be >= 0")
    if nodes == 1 or payload_bytes == 0:
        return 0.0
    bytes_per_cycle = fabric_bandwidth / frequency_hz
    latency_cycles = latency_s * frequency_hz
    if sync is GradientSync.RING:
        steps = 2 * (nodes - 1)
        bytes_per_link = 2.0 * (nodes - 1) / nodes * payload_bytes
        return bytes_per_link / bytes_per_cycle + steps * latency_cycles
    rounds = 2 * math.ceil(math.log2(nodes))
    return rounds * (payload_bytes / bytes_per_cycle + latency_cycles)


@dataclass(frozen=True)
class SyncReport:
    """Minibatch synchronization cost for one mapping."""

    network: str
    minibatch: int
    conv_gradient_bytes: int
    fc_gradient_bytes: int
    wheel_cycles: float
    ring_cycles: float
    compute_cycles_per_minibatch: float
    nodes: int = 1  # > 1 only for multi-node systems
    internode_cycles: float = 0.0

    @property
    def total_sync_cycles(self) -> float:
        """Wheel, ring and inter-node phases serialize at the minibatch
        boundary."""
        return self.wheel_cycles + self.ring_cycles + self.internode_cycles

    @property
    def cycles_per_image(self) -> float:
        return self.total_sync_cycles / self.minibatch

    @property
    def overhead_fraction(self) -> float:
        """Sync cycles as a fraction of the minibatch's compute time —
        the slowdown if none of the synchronization overlapped."""
        if self.compute_cycles_per_minibatch <= 0:
            return 0.0
        return self.total_sync_cycles / self.compute_cycles_per_minibatch

    def describe(self) -> str:
        phases = (
            f"{self.wheel_cycles:,.0f} wheel + "
            f"{self.ring_cycles:,.0f} ring"
        )
        if self.nodes > 1:
            phases += (
                f" + {self.internode_cycles:,.0f} inter-node "
                f"({self.nodes} nodes)"
            )
        return (
            f"{self.network} @ minibatch {self.minibatch}: "
            f"{self.total_sync_cycles:,.0f} sync cycles "
            f"({phases}), "
            f"{self.cycles_per_image:,.0f} cycles/image, "
            f"{100 * self.overhead_fraction:.1f}% of compute if "
            f"unoverlapped"
        )


def minibatch_sync(
    mapping: WorkloadMapping,
    minibatch: int = 256,
    system: Optional[SystemConfig] = None,
) -> SyncReport:
    """Model one minibatch boundary for a mapped network.

    Conv gradients all-reduce across the copies: first over each
    wheel's arcs, then over the ring between the clusters hosting
    copies.  FC gradients stay on their hubs (model parallelism) or
    all-reduce over the ring when sharding is disabled.

    With a multi-node ``system`` a third phase serializes after the
    intra-node sync: the data-parallel replicas all-reduce their full
    (conv + FC) gradient shard over the inter-node fabric.  A 1-node
    system reports exactly what the node-only path reports.
    """
    if minibatch < 1:
        raise SimulationError("minibatch must be >= 1")
    node = mapping.node
    net = mapping.network
    dtype = node.dtype_bytes

    conv_bytes = sum(
        net[m].weights
        for a in mapping.conv_allocations.values()
        for m in a.members
    ) * dtype
    fc_bytes = sum(
        net[m].weights
        for a in mapping.fc_allocations.values()
        for m in a.members
    ) * dtype

    faults = mapping.faults
    copies_per_wheel = max(
        1, node.cluster.conv_chip_count // max(1, mapping.conv_chips_per_copy)
    )
    chips_active = min(
        node.cluster.conv_chip_count,
        mapping.conv_chips_per_copy * copies_per_wheel,
    )
    wheel = wheel_accumulate_cycles(
        conv_bytes, chips_active, node.cluster.arc_bandwidth,
        node.frequency_hz,
        down_arcs=faults.worst_cluster_down_arcs if faults else 0,
    )

    clusters = max(1, node.cluster_count // mapping.clusters_per_copy)
    ring_payload = conv_bytes
    if not node.fc_model_parallel:
        # Replicated FC weights must synchronize too.
        ring_payload += fc_bytes
    ring = ring_allreduce_cycles(
        ring_payload, clusters, node.ring_bandwidth, node.frequency_hz,
        down_links=len(faults.down_ring) if faults and clusters > 1 else 0,
    )

    # Inter-node phase: every data-parallel replica owns 1/shards of
    # the model, and its fabric endpoint carries that full shard (conv
    # *and* FC — hub h of every replica holds the same FC shard, so
    # they must reduce too).
    nodes, internode = 1, 0.0
    if system is not None:
        nodes = system.node_count
        internode = internode_allreduce_cycles(
            (conv_bytes + fc_bytes) / system.model_shards,
            system.replicas,
            system.fabric_bandwidth,
            node.frequency_hz,
            sync=system.strategy.gradient_sync,
            latency_s=system.fabric_latency_s,
        )

    # Compute time for the minibatch, from the pipeline bottleneck.
    from repro.sim.perf import _conv_stage_reports, _fc_stage_reports

    stages = (
        _conv_stage_reports(mapping, training=True, tile_multiplier=1)
        + _fc_stage_reports(mapping, training=True, tile_multiplier=1)
    )
    bottleneck = max(s.cycles for s in stages) if stages else 0.0
    compute = bottleneck * minibatch / max(1, mapping.copies)

    tel = get_telemetry()
    if tel.enabled:
        # The two phases serialize: wheel accumulation, then the ring.
        tel.span(
            "sync.wheel", "sync", ("sync", net.name), 0.0, wheel,
            payload_bytes=conv_bytes, chips=chips_active,
        )
        tel.span(
            "sync.ring", "sync", ("sync", net.name), wheel, ring,
            payload_bytes=ring_payload, clusters=clusters,
        )
        if internode > 0.0:
            tel.span(
                "sync.fabric", "sync", ("sync", net.name),
                wheel + ring, internode, nodes=nodes,
            )
        group = f"sync/{net.name}"
        tel.record(group, "conv_gradient_bytes", conv_bytes)
        tel.record(group, "fc_gradient_bytes", fc_bytes)
        tel.record(group, "wheel_cycles", wheel)
        tel.record(group, "ring_cycles", ring)
        tel.record(group, "minibatch", minibatch)

    return SyncReport(
        network=net.name,
        minibatch=minibatch,
        conv_gradient_bytes=int(conv_bytes),
        fc_gradient_bytes=int(fc_bytes),
        wheel_cycles=wheel,
        ring_cycles=ring,
        compute_cycles_per_minibatch=compute,
        nodes=nodes,
        internode_cycles=internode,
    )
