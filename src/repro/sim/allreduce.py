"""Minibatch gradient synchronization over the wheel and ring (Sec 3.3).

At every minibatch boundary ScaleDeep must (i) accumulate the weight
gradients produced by all copies of the network and (ii) distribute the
updated weights back.  The wheel arcs carry this traffic between the
ConvLayer chips of a cluster; the ring carries it between clusters
("the ring is used to accumulate weight gradients generated at each
chip cluster and distribute the updated weights").

This module models that synchronization explicitly:

* a ring all-reduce over ``n`` participants moves ``2 (n-1)/n`` of the
  gradient bytes across each link (reduce-scatter + all-gather);
* the wheel accumulates spoke-locally: each arc sees the full conv
  gradient once in each direction;
* FC gradients stay hub-local under model parallelism (each hub owns
  its weight shard — the Sec 3.3.2 argument), so the ring only carries
  conv gradients.

The report quantifies the overhead per image and how much of it can
overlap with compute — the calibration behind
``repro.sim.perf.WEIGHT_SYNC_OVERLAP``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.compiler.mapping import WorkloadMapping
from repro.errors import SimulationError
from repro.telemetry.core import get_telemetry


def ring_allreduce_cycles(
    payload_bytes: float,
    participants: int,
    link_bandwidth: float,
    frequency_hz: float,
    down_links: int = 0,
) -> float:
    """Cycles for a bandwidth-optimal ring all-reduce.

    Reduce-scatter plus all-gather: each of the ``n`` links carries
    ``2 * (n - 1) / n * payload`` bytes.  With one link down the ring
    degrades to a line — the reduce and broadcast both traverse the
    middle link with the full payload (``2 * payload`` bytes on the
    busiest link).  Two or more down links partition the ring, which is
    unrecoverable: gradients can no longer reach every participant.
    """
    if participants < 1:
        raise SimulationError("all-reduce needs at least one participant")
    if payload_bytes < 0 or link_bandwidth <= 0:
        raise SimulationError("payload must be >= 0 and bandwidth > 0")
    if participants == 1:
        return 0.0
    if down_links >= 2:
        raise SimulationError(
            f"ring partitioned: {down_links} of {participants} links "
            f"down, gradient all-reduce cannot reach every cluster"
        )
    if down_links == 1:
        bytes_per_link = 2.0 * payload_bytes
    else:
        bytes_per_link = (
            2.0 * (participants - 1) / participants * payload_bytes
        )
    bytes_per_cycle = link_bandwidth / frequency_hz
    return bytes_per_link / bytes_per_cycle


def wheel_accumulate_cycles(
    payload_bytes: float,
    conv_chips: int,
    arc_bandwidth: float,
    frequency_hz: float,
    down_arcs: int = 0,
) -> float:
    """Cycles to accumulate gradients across a wheel's ConvLayer chips
    and redistribute updated weights over the arcs.

    The chips form a line of ``conv_chips - 1`` arcs; accumulation
    daisy-chains toward the hub-adjacent chip and the updated weights
    flow back, so the busiest arc moves the payload once each way.
    Every down arc forces its traffic the long way round the rim,
    adding one full payload traversal to the busiest surviving arc.
    """
    if conv_chips < 1:
        raise SimulationError("a wheel needs at least one ConvLayer chip")
    if conv_chips == 1:
        return 0.0
    bytes_per_cycle = arc_bandwidth / frequency_hz
    reroute = 1 + max(0, down_arcs)
    return reroute * 2.0 * payload_bytes / bytes_per_cycle


@dataclass(frozen=True)
class SyncReport:
    """Minibatch synchronization cost for one mapping."""

    network: str
    minibatch: int
    conv_gradient_bytes: int
    fc_gradient_bytes: int
    wheel_cycles: float
    ring_cycles: float
    compute_cycles_per_minibatch: float

    @property
    def total_sync_cycles(self) -> float:
        """Wheel and ring phases serialize at the minibatch boundary."""
        return self.wheel_cycles + self.ring_cycles

    @property
    def cycles_per_image(self) -> float:
        return self.total_sync_cycles / self.minibatch

    @property
    def overhead_fraction(self) -> float:
        """Sync cycles as a fraction of the minibatch's compute time —
        the slowdown if none of the synchronization overlapped."""
        if self.compute_cycles_per_minibatch <= 0:
            return 0.0
        return self.total_sync_cycles / self.compute_cycles_per_minibatch

    def describe(self) -> str:
        return (
            f"{self.network} @ minibatch {self.minibatch}: "
            f"{self.total_sync_cycles:,.0f} sync cycles "
            f"({self.wheel_cycles:,.0f} wheel + "
            f"{self.ring_cycles:,.0f} ring), "
            f"{self.cycles_per_image:,.0f} cycles/image, "
            f"{100 * self.overhead_fraction:.1f}% of compute if "
            f"unoverlapped"
        )


def minibatch_sync(
    mapping: WorkloadMapping, minibatch: int = 256
) -> SyncReport:
    """Model one minibatch boundary for a mapped network.

    Conv gradients all-reduce across the copies: first over each
    wheel's arcs, then over the ring between the clusters hosting
    copies.  FC gradients stay on their hubs (model parallelism) or
    all-reduce over the ring when sharding is disabled.
    """
    if minibatch < 1:
        raise SimulationError("minibatch must be >= 1")
    node = mapping.node
    net = mapping.network
    dtype = node.dtype_bytes

    conv_bytes = sum(
        net[m].weights
        for a in mapping.conv_allocations.values()
        for m in a.members
    ) * dtype
    fc_bytes = sum(
        net[m].weights
        for a in mapping.fc_allocations.values()
        for m in a.members
    ) * dtype

    faults = mapping.faults
    copies_per_wheel = max(
        1, node.cluster.conv_chip_count // max(1, mapping.conv_chips_per_copy)
    )
    chips_active = min(
        node.cluster.conv_chip_count,
        mapping.conv_chips_per_copy * copies_per_wheel,
    )
    wheel = wheel_accumulate_cycles(
        conv_bytes, chips_active, node.cluster.arc_bandwidth,
        node.frequency_hz,
        down_arcs=faults.worst_cluster_down_arcs if faults else 0,
    )

    clusters = max(1, node.cluster_count // mapping.clusters_per_copy)
    ring_payload = conv_bytes
    if not node.fc_model_parallel:
        # Replicated FC weights must synchronize too.
        ring_payload += fc_bytes
    ring = ring_allreduce_cycles(
        ring_payload, clusters, node.ring_bandwidth, node.frequency_hz,
        down_links=len(faults.down_ring) if faults and clusters > 1 else 0,
    )

    # Compute time for the minibatch, from the pipeline bottleneck.
    from repro.sim.perf import _conv_stage_reports, _fc_stage_reports

    stages = (
        _conv_stage_reports(mapping, training=True, tile_multiplier=1)
        + _fc_stage_reports(mapping, training=True, tile_multiplier=1)
    )
    bottleneck = max(s.cycles for s in stages) if stages else 0.0
    compute = bottleneck * minibatch / max(1, mapping.copies)

    tel = get_telemetry()
    if tel.enabled:
        # The two phases serialize: wheel accumulation, then the ring.
        tel.span(
            "sync.wheel", "sync", ("sync", net.name), 0.0, wheel,
            payload_bytes=conv_bytes, chips=chips_active,
        )
        tel.span(
            "sync.ring", "sync", ("sync", net.name), wheel, ring,
            payload_bytes=ring_payload, clusters=clusters,
        )
        group = f"sync/{net.name}"
        tel.record(group, "conv_gradient_bytes", conv_bytes)
        tel.record(group, "fc_gradient_bytes", fc_bytes)
        tel.record(group, "wheel_cycles", wheel)
        tel.record(group, "ring_cycles", ring)
        tel.record(group, "minibatch", minibatch)

    return SyncReport(
        network=net.name,
        minibatch=minibatch,
        conv_gradient_bytes=int(conv_bytes),
        fc_gradient_bytes=int(fc_bytes),
        wheel_cycles=wheel,
        ring_cycles=ring,
        compute_cycles_per_minibatch=compute,
    )
