"""Functional engine: executes ScaleDeep ISA programs with real data.

This is the instruction-level counterpart of the analytical model in
:mod:`repro.sim.perf`: compiled programs run on a machine of MemHeavy
scratchpads and CompHeavy tiles, with MEMTRACK data-flow trackers
enforcing the synchronization of Sec 3.2.4, and per-instruction cycle
costs derived from the tile micro-architecture.  Results are validated
against the numpy golden model.

Engine conventions (the compiler's code generator follows these):

* Data-instruction operands are immediates — the data flow of a DNN is
  static, so the generator resolves every address at compile time (the
  scalar/branch instructions still execute for handwritten programs).
* ``port`` operands carry flattened MemHeavy tile ids
  (:meth:`Machine.mem_tile_id`); port ``EXTERNAL_PORT`` addresses the
  node's external memory.
* NDCONV/MATMUL/NDSUBSAMP sizes pack 2-D extents via
  :func:`repro.sim.machine.pack_shape`; DMA/tracker/vector sizes are
  raw word counts.
* A blocked instruction (tracker not ready) retries next round; if a
  whole round passes with every live tile blocked, the engine raises a
  deadlock error naming the blocked tiles.
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.dnn.layers import Activation, PoolMode
from repro.errors import SimulationError, SimulationTimeout
from repro.functional import tensor_ops as ops
from repro.isa.instructions import Instruction, InstrGroup, Opcode
from repro.isa.program import Program
from repro.sim.machine import (
    CompTile,
    Machine,
    MemTile,
    REG_OPERAND_MASK,
    instruction_accesses,
    is_reg_operand,
    operand_accesses,
    unpack_shape,
)
from repro.sim.tracker import AccessVerdict, TrackerPhase
from repro.telemetry.core import NullTelemetry, Telemetry, get_telemetry

#: Port value addressing external memory instead of a MemHeavy tile.
EXTERNAL_PORT = 0xFFFF

#: Data-movement opcodes whose cycle costs count as DMA time in the
#: per-tile stall-cause attribution (telemetry ``dma_cycles`` counter).
_DMA_OPCODES = frozenset(
    (Opcode.DMALOAD, Opcode.DMASTORE, Opcode.PREFETCH)
)

#: Fixed per-instruction issue overheads (cycles).
_SETUP_COARSE = 8
_SETUP_OFFLOAD = 4
_SETUP_DMA = 8

#: Activation-function codes for NDACTFN's fn_type operand.
ACT_CODES = {
    Activation.RELU: 0,
    Activation.TANH: 1,
    Activation.SIGMOID: 2,
    Activation.SOFTMAX: 3,
    Activation.NONE: 4,
}
_CODE_TO_ACT = {v: k for k, v in ACT_CODES.items()}

#: Sampling codes for NDSUBSAMP's samp_type operand.
SAMP_CODES = {PoolMode.MAX: 0, PoolMode.AVG: 1}
_CODE_TO_SAMP = {v: k for k, v in SAMP_CODES.items()}

#: Extra NDUPSAMP mode: zero-insertion dilation (the error expansion
#: that turns a strided convolution's BP into a stride-1 full conv).
UPSAMP_ZERO_INSERT = 2


@dataclass
class RunReport:
    """Statistics of one engine run."""

    cycles: int
    instructions: int
    rounds: int
    blocked_reads: int
    blocked_writes: int
    #: Sum of per-tile execution cycles excluding tracker stalls.  This
    #: is the fusion-invariant cost: superop execution compresses stall
    #: cycles (so ``cycles``/``rounds`` may shrink) but charges every
    #: covered instruction its decoded per-instruction cost, keeping
    #: ``busy_cycles`` bit-identical to per-instruction execution.
    busy_cycles: int = 0

    def describe(self) -> str:
        return (
            f"{self.instructions} instructions over {self.cycles} cycles "
            f"({self.busy_cycles} busy, {self.rounds} scheduler rounds, "
            f"{self.blocked_reads}r/{self.blocked_writes}w tracker blocks)"
        )


class _Decoded:
    """One pre-decoded instruction slot of a tile's flat op table.

    The fast path resolves everything static once per program: the gated
    address quads (with the MemTile objects already bound), the cycle
    cost, and a closure executing the exact numpy calls of the legacy
    interpreter.  Instructions the decoder cannot resolve statically —
    scalar/control, register-indirect operands, or anything whose decode
    raises — keep ``fallback=True`` and run through :meth:`Engine._execute`
    so error timing and semantics are unchanged.
    """

    is_super = False

    __slots__ = (
        "instr", "fallback", "batch_safe", "fn", "fn_batch",
        "reads", "writes", "cost",
    )

    def __init__(
        self,
        instr: Instruction,
        fallback: bool = False,
        batch_safe: bool = True,
        fn=None,
        fn_batch=None,
        reads=(),
        writes=(),
        cost: int = 0,
    ) -> None:
        self.instr = instr
        self.fallback = fallback
        self.batch_safe = batch_safe
        self.fn = fn
        self.fn_batch = fn_batch
        self.reads = reads
        self.writes = writes
        self.cost = cost


class _Super:
    """One superop slot: a fused run of instructions executed at once.

    Placed at the run's first pc of a fused op table (member pcs hold
    per-instruction fallback sentinels that are skipped over).  Carries
    the *external* tracker quads to gate atomically, the pre-bound
    tracker ranges to force-expire on completion (the exact end state of
    the internal handshakes it elides), and the cycle cost pre-summed
    from the members' decoded per-instruction costs — so reports stay
    reconciled with per-instruction execution.
    """

    is_super = True
    fallback = False

    __slots__ = (
        "kind", "start", "end", "count", "cost", "fn",
        "reads", "writes", "expire", "label",
    )

    def __init__(
        self, kind, start, end, count, cost, fn, reads, writes, expire
    ) -> None:
        self.kind = kind
        self.start = start
        self.end = end
        self.count = count
        self.cost = cost
        self.fn = fn
        self.reads = reads
        self.writes = writes
        self.expire = expire
        self.label = f"superop.{kind}[{start}:{end}]"


class BatchState:
    """Per-image scratchpad mirrors behind batched execution.

    Each MemHeavy tile (and the external memory) gains a lazily
    materialised ``(batch, words)`` mirror seeded from the machine's
    current contents — so preloaded weights and biases replicate to
    every image, while inputs written through :meth:`write` stay
    per-image.  Trackers, registers and program counters remain shared:
    compiled forward programs are data-independent, so one control-flow
    trace drives the whole minibatch.
    """

    def __init__(self, engine: "Engine", batch: int) -> None:
        if batch < 1:
            raise SimulationError(f"batch size must be >= 1, got {batch}")
        self.engine = engine
        self.batch = batch
        self._mem: Dict[int, np.ndarray] = {}
        self._external: Optional[np.ndarray] = None

    def words(self, port: int) -> np.ndarray:
        """The (batch, words) mirror for ``port``, materialising it on
        first touch."""
        if port == EXTERNAL_PORT:
            if self._external is None:
                self._external = np.repeat(
                    self.engine.external[None, :], self.batch, axis=0
                )
            return self._external
        arr = self._mem.get(port)
        if arr is None:
            arr = self.engine.machine.mem_tile(port).batched_words(
                self.batch
            )
            self._mem[port] = arr
        return arr

    def read(self, port: int, addr: int, count: int) -> np.ndarray:
        words = self.words(port)
        if addr < 0 or addr + count > words.shape[1]:
            raise SimulationError(
                f"port {port}: batched read [{addr}, {addr + count}) out "
                f"of bounds ({words.shape[1]} words)"
            )
        return words[:, addr : addr + count]

    def write(
        self, port: int, addr: int, data: np.ndarray, accumulate: bool
    ) -> None:
        words = self.words(port)
        # astype always copies — mirrors MemTile.write, and keeps an
        # accumulating NDACCUM safe when source and target ranges alias.
        flat = np.asarray(data).astype(np.float32).reshape(self.batch, -1)
        count = flat.shape[1]
        if addr < 0 or addr + count > words.shape[1]:
            raise SimulationError(
                f"port {port}: batched write [{addr}, {addr + count}) out "
                f"of bounds ({words.shape[1]} words)"
            )
        if accumulate:
            words[:, addr : addr + count] += flat
        else:
            words[:, addr : addr + count] = flat


class Engine:
    """Round-robin interpreter over a :class:`Machine`."""

    def __init__(
        self,
        machine: Machine,
        external_words: int = 1 << 22,
        max_rounds: int = 10_000_000,
        trace: bool = False,
        trace_limit: int = 100_000,
        telemetry: "Telemetry | NullTelemetry | None" = None,
        wall_clock_limit: Optional[float] = None,
        faults=None,
        fast: bool = True,
        fused: bool = False,
    ) -> None:
        self.machine = machine
        self.external = np.zeros(external_words, dtype=np.float32)
        self.max_rounds = max_rounds
        #: Pre-decoded fast path: decode each tile's program once into a
        #: flat op table instead of re-parsing instruction dicts every
        #: round.  ``fast=False`` keeps the legacy interpreter — reports
        #: and outputs are identical either way (pinned by tests).
        self.fast = fast
        #: Superop execution: honour the compiler's fusion plans
        #: (``Program.superops``) by executing whole fused runs per
        #: dispatch.  Needs the fast path; silently ignored for batched
        #: runs and dma-bitflip faults (per-transfer semantics).
        #: Outputs, ``instructions`` and ``busy_cycles`` stay
        #: bit-identical to per-instruction execution.
        self.fused = fused and fast
        self._decoded: Dict[str, List[_Decoded]] = {}
        self._batch: Optional[BatchState] = None
        #: Watchdog: seconds of host wall-clock a run() may take before
        #: it is killed with a :class:`SimulationTimeout` (None = no
        #: limit; the ``max_rounds`` cycle budget always applies).
        self.wall_clock_limit = wall_clock_limit
        #: DMA bit-flip faults: a :class:`repro.faults.model.FaultMask`
        #: (duck-typed — ``dma_flip_rate`` and ``spec.seed`` suffice).
        #: Flips are drawn from a named RNG stream so a given seed
        #: corrupts the same transfers in every run.
        self._dma_flip_rate = float(
            getattr(faults, "dma_flip_rate", 0.0) or 0.0
        )
        seed = getattr(getattr(faults, "spec", None), "seed", 0)
        self._dma_rng = random.Random(f"scaledeep-dma:{seed}")
        self.dma_flips = 0
        self.rounds = 0
        #: Optional execution trace: (round, tile_id, instruction text).
        self.trace_enabled = trace
        self.trace_limit = trace_limit
        self.trace: List[Tuple[int, str, str]] = []
        #: Telemetry handle: explicit injection wins, else the process
        #: global (a null object by default — see repro.telemetry).
        self.telemetry = telemetry if telemetry is not None else (
            get_telemetry()
        )
        self._tel_on = self.telemetry.enabled
        #: Last tracker obstruction per tile: (kind, port, addr, count,
        #: phase) — feeds the deadlock diagnostic and telemetry.
        self._block_reason: Dict[str, Tuple[str, int, int, int, str]] = {}
        # (Re)wire the per-MemTile tracker hooks: enabled engines see
        # arm/block/expire events, disabled engines restore the no-op.
        for mem in machine.mem_tiles:
            mem.trackers.emit = (
                self._tracker_emitter(mem.tile_id) if self._tel_on else None
            )

    def _tracker_emitter(self, mem_tile_id: int):
        tel = self.telemetry

        def emit(event: str, start: int, size: int, phase: str) -> None:
            tel.instant(
                f"tracker.{event}", "engine.tracker",
                ("engine/trackers", f"mem {mem_tile_id}"), self.rounds,
                addr_range=[start, start + size], phase=phase,
            )
            tel.count(f"mem/{mem_tile_id}", f"tracker_{event}")

        return emit

    # ------------------------------------------------------------------
    # Host interaction
    # ------------------------------------------------------------------
    def inject(self, port: int, addr: int, data: np.ndarray) -> None:
        """Host-side tracker-counted write (used to deliver the loss
        gradient at the network output between the FP and BP phases)."""
        tile = self._tile(port)
        if tile is None:
            raise SimulationError("cannot inject into external memory")
        verdict = tile.trackers.check_write(addr, data.size)
        if verdict is not AccessVerdict.ALLOW:
            raise SimulationError(
                f"injection into tile {port} @ {addr} blocked by tracker"
            )
        tile.write(addr, data, accumulate=False)

    # ------------------------------------------------------------------
    # Memory access helpers (tracker-gated)
    # ------------------------------------------------------------------
    def _tile(self, port: int) -> Optional[MemTile]:
        if port == EXTERNAL_PORT:
            return None
        return self.machine.mem_tile(port)

    def _read_words(self, port: int, addr: int, count: int) -> np.ndarray:
        tile = self._tile(port)
        if tile is None:
            return self.external[addr : addr + count]
        return tile.read(addr, count)

    def _write_words(
        self, port: int, addr: int, data: np.ndarray, accumulate: bool
    ) -> None:
        tile = self._tile(port)
        if tile is None:
            flat = data.reshape(-1).astype(np.float32)
            if accumulate:
                self.external[addr : addr + flat.size] += flat
            else:
                self.external[addr : addr + flat.size] = flat
            return
        tile.write(addr, data, accumulate)

    def _gate(
        self,
        comp: CompTile,
        reads: List[Tuple[int, int, int]],
        writes: List[Tuple[int, int, int]],
    ) -> bool:
        """Check every (port, addr, count) access; consume tracker counts
        only if ALL are allowed.  Returns True when the instruction may
        proceed.  A refusal records *why* ``comp`` is blocked (the
        obstructing port, address range and tracker phase) for the
        deadlock diagnostic and, when enabled, telemetry."""
        # Peek first: a blocked companion access must not consume counts.
        for port, addr, count in reads:
            tile = self._tile(port)
            if tile and tile.trackers.phase_of(addr, count) is (
                TrackerPhase.UPDATING
            ):
                tile.trackers.blocked_reads += 1
                self._note_block(
                    comp, "read", port, addr, count, TrackerPhase.UPDATING
                )
                return False
        for port, addr, count in writes:
            tile = self._tile(port)
            if tile and tile.trackers.phase_of(addr, count) is (
                TrackerPhase.READABLE
            ):
                tile.trackers.blocked_writes += 1
                self._note_block(
                    comp, "write", port, addr, count, TrackerPhase.READABLE
                )
                return False
        # All clear: consume.
        for port, addr, count in reads:
            tile = self._tile(port)
            if tile:
                verdict = tile.trackers.check_read(addr, count)
                assert verdict is AccessVerdict.ALLOW
        for port, addr, count in writes:
            tile = self._tile(port)
            if tile:
                verdict = tile.trackers.check_write(addr, count)
                assert verdict is AccessVerdict.ALLOW
        return True

    def _note_block(
        self,
        comp: CompTile,
        kind: str,
        port: int,
        addr: int,
        count: int,
        phase: TrackerPhase,
    ) -> None:
        self._block_reason[comp.tile_id] = (
            kind, port, addr, count, phase.value
        )
        if self._tel_on:
            self.telemetry.instant(
                f"blocked.{kind}", "engine.block",
                ("engine", f"tile {comp.tile_id}"), comp.cycles,
                port=port, addr_range=[addr, addr + count],
                phase=phase.value,
            )

    # ------------------------------------------------------------------
    # Cycle-cost model
    # ------------------------------------------------------------------
    def _conv_cycles(self, out_elems: int, k: int) -> int:
        fma = self.machine.chip.comp_tile.fma_count
        return _SETUP_COARSE + math.ceil(out_elems * k * k / fma)

    def _matmul_cycles(self, macs: int) -> int:
        fma = self.machine.chip.comp_tile.fma_count
        return _SETUP_COARSE + math.ceil(macs / fma)

    def _offload_cycles(self, elems: int) -> int:
        sfu = self.machine.chip.mem_tile.num_sfu
        return _SETUP_OFFLOAD + math.ceil(elems / sfu)

    def _dma_payload(self, data: np.ndarray, tile_id: str) -> np.ndarray:
        """Copy a DMA transfer's words, injecting a sign-bit flip on one
        word when a dma-bitflip fault fires for this transfer."""
        out = np.array(data, dtype=np.float32)
        if (
            self._dma_flip_rate
            and out.size
            and self._dma_rng.random() < self._dma_flip_rate
        ):
            flat = out.reshape(-1)
            index = self._dma_rng.randrange(flat.size)
            flat[index] = -flat[index]
            self.dma_flips += 1
            if self._tel_on:
                self.telemetry.instant(
                    "fault.dma_flip", "faults", ("faults", "dma-bitflip"),
                    self.rounds, tile=tile_id, index=index,
                )
                self.telemetry.count("faults", "dma_flips")
        return out

    def _dma_cycles(self, words: int, src_port: int, dst_port: int) -> int:
        chip = self.machine.chip
        if EXTERNAL_PORT in (src_port, dst_port):
            bpc = chip.links.external_memory / 600e6
            hops = 1
        else:
            bpc = chip.links.mem_mem / 600e6
            hops = max(1, self.machine.hops(src_port, dst_port))
        return _SETUP_DMA + math.ceil(4 * words / bpc) * hops

    # ------------------------------------------------------------------
    # Instruction execution: returns cycle cost, or None when blocked
    # ------------------------------------------------------------------
    def _execute(self, tile: CompTile, instr: Instruction) -> Optional[int]:
        op = instr.opcode
        o = instr.named_operands()
        if instr.group is not InstrGroup.SCALAR:
            # Resolve register-indirect operands (Fig 13-style R-args).
            o = {
                name: (
                    tile.reg(value & REG_OPERAND_MASK)
                    if is_reg_operand(value)
                    else value
                )
                for name, value in o.items()
            }

        # --- scalar control -------------------------------------------
        if op is Opcode.LDRI:
            tile.set_reg(o["rd"], o["value"])
            return 1
        if op is Opcode.MOVR:
            tile.set_reg(o["rd"], tile.reg(o["rs"]))
            return 1
        if op is Opcode.ADDR:
            tile.set_reg(o["rd"], tile.reg(o["rs1"]) + tile.reg(o["rs2"]))
            return 1
        if op is Opcode.ADDRI:
            tile.set_reg(o["rd"], tile.reg(o["rs"]) + o["value"])
            return 1
        if op is Opcode.SUBR:
            tile.set_reg(o["rd"], tile.reg(o["rs1"]) - tile.reg(o["rs2"]))
            return 1
        if op is Opcode.SUBRI:
            tile.set_reg(o["rd"], tile.reg(o["rs"]) - o["value"])
            return 1
        if op is Opcode.MULR:
            tile.set_reg(o["rd"], tile.reg(o["rs1"]) * tile.reg(o["rs2"]))
            return 1
        if op in (Opcode.BEQZ, Opcode.BNEZ, Opcode.BGTZ):
            value = tile.reg(o["rs"])
            taken = (
                value == 0 if op is Opcode.BEQZ
                else value != 0 if op is Opcode.BNEZ
                else value > 0
            )
            if taken:
                tile.pc += o["offset"]
            return 1
        if op is Opcode.BRANCH:
            tile.pc += o["offset"]
            return 1
        if op is Opcode.HALT:
            tile.halted = True
            return 1

        # --- data-flow trackers ----------------------------------------
        if op in (Opcode.MEMTRACK, Opcode.DMA_MEMTRACK):
            port = o["target"] if op is Opcode.DMA_MEMTRACK else o["port"]
            target = self._tile(port)
            if target is None:
                raise SimulationError("cannot arm a tracker on external memory")
            target.trackers.arm(
                o["addr"], o["size"], o["num_updates"], o["num_reads"]
            )
            return 1

        # --- data instructions: gate via the shared access analysis
        # (the same facts the tracker calibrator counts), evaluated on
        # the resolved operands ------------------------------------------
        reads, writes = operand_accesses(op, o)
        if (reads or writes) and not self._gate(tile, reads, writes):
            return None

        # --- coarse-grained data ----------------------------------------
        if op is Opcode.NDCONV:
            h, w = unpack_shape(o["in_size"])
            k, _ = unpack_shape(o["kernel_size"])
            stride, pad = o["stride"], o["pad"]
            out_h = (h + 2 * pad - k) // stride + 1
            out_w = (w + 2 * pad - k) // stride + 1
            x = self._read_words(o["in_port"], o["in_addr"], h * w)
            kern = self._read_words(o["in_port"], o["kernel_addr"], k * k)
            out = ops.conv2d_forward(
                x.reshape(1, h, w),
                kern.reshape(1, 1, k, k),
                np.zeros(1, dtype=np.float32),
                stride,
                pad,
            )
            self._write_words(
                o["out_port"], o["out_addr"], out, bool(o["is_accum"])
            )
            return self._conv_cycles(out_h * out_w, k)

        if op is Opcode.MATMUL:
            rows, cols = unpack_shape(o["in2_size"])
            _, n = unpack_shape(o["in1_size"])
            if n != cols:
                raise SimulationError(
                    f"MATMUL shape mismatch: vector {n} vs matrix "
                    f"{rows}x{cols}"
                )
            vec = self._read_words(o["in1_port"], o["in1_addr"], n)
            mat = self._read_words(
                o["in2_port"], o["in2_addr"], rows * cols
            ).reshape(rows, cols)
            self._write_words(
                o["out_port"], o["out_addr"], mat @ vec, bool(o["is_accum"])
            )
            return self._matmul_cycles(rows * cols)

        # --- MemHeavy offload -------------------------------------------
        if op is Opcode.NDACTFN:
            size = o["size"]
            data = self._read_words(o["port"], o["in_addr"], size)
            fn = _CODE_TO_ACT[o["fn_type"]]
            self._write_words(
                o["out_port"], o["out_addr"], ops.activate(data.copy(), fn),
                False,
            )
            return self._offload_cycles(size)

        if op is Opcode.NDACTBP:
            # Mask a back-propagated error with the activation derivative:
            # reads the raw error at err_addr and the *activated outputs*
            # at act_addr (packed into the high bits of fn_type's
            # companion operand would not fit Fig 8, so the convention is
            # act values live at err_addr + size), writing the masked
            # error to out_addr.
            size = o["size"]
            act_addr = o["err_addr"] + size
            err = self._read_words(o["port"], o["err_addr"], size)
            act = self._read_words(o["port"], act_addr, size)
            fn = _CODE_TO_ACT[o["fn_type"]]
            masked = ops.activate_backward(err.copy(), act, fn)
            self._write_words(o["out_port"], o["out_addr"], masked, False)
            return self._offload_cycles(size)

        if op is Opcode.NDSUBSAMP:
            h, w = unpack_shape(o["in_size"])
            window, stride = o["window"], o["stride"]
            out_h = (h - window) // stride + 1
            out_w = (w - window) // stride + 1
            x = self._read_words(o["port"], o["in_addr"], h * w)
            mode = _CODE_TO_SAMP[o["samp_type"]]
            out, _ = ops.pool_forward(
                x.reshape(1, h, w), window, stride, 0, mode
            )
            self._write_words(o["out_port"], o["out_addr"], out, False)
            return self._offload_cycles(h * w)

        if op is Opcode.NDUPSAMP:
            h, w = unpack_shape(o["in_size"])  # error extent (small side)
            window, stride = o["window"], o["stride"]
            mode = o["samp_type"]
            err = self._read_words(
                o["port"], o["in_addr"], h * w
            ).reshape(1, h, w)
            if mode == UPSAMP_ZERO_INSERT:
                out_h = (h - 1) * stride + 1
                out_w = (w - 1) * stride + 1
                up = np.zeros((1, out_h, out_w), dtype=np.float32)
                up[0, ::stride, ::stride] = err[0]
            elif mode == SAMP_CODES[PoolMode.MAX]:
                # The original pooled feature sits next to the error
                # (NDACTBP-style adjacency): recompute the argmax and
                # route each error to its window's maximum.
                out_h, out_w = h * stride, w * stride
                original = self._read_words(
                    o["port"], o["in_addr"] + h * w, out_h * out_w
                ).reshape(1, out_h, out_w)
                _, argmax = ops.pool_forward(
                    original, window, stride, 0, PoolMode.MAX
                )
                up = ops.pool_backward(
                    err.copy(), (1, out_h, out_w), window, stride, 0,
                    PoolMode.MAX, argmax,
                )
            else:  # AVG spread
                out_h, out_w = h * stride, w * stride
                up = ops.pool_backward(
                    err.copy(), (1, out_h, out_w), window, stride, 0,
                    PoolMode.AVG, np.empty(0),
                )
            self._write_words(o["out_port"], o["out_addr"], up, False)
            return self._offload_cycles(out_h * out_w)

        if op is Opcode.NDACCUM:
            size = o["size"]
            src = self._read_words(o["port"], o["src_addr"], size)
            self._write_words(o["port"], o["dst_addr"], src, True)
            return self._offload_cycles(size)

        if op is Opcode.VECMUL:
            size = o["size"]
            a = self._read_words(o["port"], o["in1_addr"], size)
            b = self._read_words(o["port"], o["in2_addr"], size)
            self._write_words(o["port"], o["out_addr"], a * b, False)
            return self._offload_cycles(size)

        if op is Opcode.WUPDATE:
            # Apply-and-consume: the gradient region is cleared after the
            # update so the next iteration's WG accumulation starts fresh.
            size = o["size"]
            grad = self._read_words(o["port"], o["grad_addr"], size).copy()
            lr = o["lr_num"] / o["lr_denom"]
            self._write_words(o["port"], o["weight_addr"], -lr * grad, True)
            self._write_words(
                o["port"], o["grad_addr"], np.zeros(size, np.float32), False
            )
            return self._offload_cycles(size)

        # --- data transfer ----------------------------------------------
        if op in (Opcode.DMALOAD, Opcode.DMASTORE):
            size = o["size"]
            data = self._read_words(o["src_port"], o["src_addr"], size)
            self._write_words(
                o["dst_port"], o["dst_addr"],
                self._dma_payload(data, tile.tile_id),
                bool(o["is_accum"]),
            )
            if self._tel_on:
                self._observe_dma(tile.tile_id, size)
            return self._dma_cycles(size, o["src_port"], o["dst_port"])

        if op in (Opcode.PASSBUFF_RD, Opcode.PASSBUFF_WR):
            # Streaming FIFO setup: data moves with the consuming compute
            # instruction; only the handshake costs cycles here.
            return 2

        if op is Opcode.PREFETCH:
            size = o["size"]
            data = self.external[o["src_addr"] : o["src_addr"] + size]
            self._write_words(
                o["dst_port"], o["dst_addr"],
                self._dma_payload(data, tile.tile_id), False,
            )
            if self._tel_on:
                self._observe_dma(tile.tile_id, size)
            return self._dma_cycles(size, EXTERNAL_PORT, o["dst_port"])

        raise SimulationError(f"engine cannot execute {op.value}")

    # ------------------------------------------------------------------
    # Pre-decoded fast path
    # ------------------------------------------------------------------
    def make_batch(self, batch: int) -> BatchState:
        """Prepare batched multi-image execution: the next :meth:`run`
        executes every decoded data instruction across ``batch`` images
        at once (numpy ops vectorised over a leading batch axis), on
        lazily materialised scratchpad mirrors.  Returns the
        :class:`BatchState` — write per-image inputs into it before the
        run and read per-image outputs after."""
        if not self.fast:
            raise SimulationError(
                "batched execution requires the pre-decoded fast path "
                "(fast=True)"
            )
        if self._dma_flip_rate:
            raise SimulationError(
                "batched execution is incompatible with dma-bitflip "
                "faults: flips target single transfers, not minibatches"
            )
        if self.fused:
            # Fused op tables hold _Super entries that bypass the batch
            # mirrors — drop them so the next decode is per-instruction.
            self._decoded.clear()
        self._batch = BatchState(self, batch)
        return self._batch

    def _reader(self, port: int):
        """A bound ``(addr, count) -> words`` reader for ``port``."""
        tile = self._tile(port)
        if tile is None:
            ext = self.external
            return lambda addr, count: ext[addr : addr + count]
        return tile.read

    def _writer(self, port: int):
        """A bound ``(addr, data, accumulate)`` writer for ``port``."""
        tile = self._tile(port)
        if tile is None:
            ext = self.external

            def write_external(
                addr: int, data: np.ndarray, accumulate: bool
            ) -> None:
                flat = data.reshape(-1).astype(np.float32)
                if accumulate:
                    ext[addr : addr + flat.size] += flat
                else:
                    ext[addr : addr + flat.size] = flat

            return write_external
        return tile.write

    def _decode_program(self, tile: CompTile) -> List[_Decoded]:
        cached = self._decoded.get(tile.tile_id)
        if cached is not None and len(cached) == len(tile.program):
            return cached
        entries = None
        if (
            self.fused
            and self._batch is None
            and not self._dma_flip_rate
            and getattr(tile.program, "superops", ())
        ):
            entries = self._decode_fused(tile)
        if entries is None:
            entries = [
                self._decode_instr(instr, tile.tile_id)
                for instr in tile.program.instructions
            ]
        self._decoded[tile.tile_id] = entries
        return entries

    def _decode_fused(self, tile: CompTile) -> Optional[List[_Decoded]]:
        """Build the fused op table: one :class:`_Super` per superop at
        its first pc, per-instruction fallback sentinels at the member
        pcs it jumps over (never dispatched; correct if ever reached),
        and the normal full decode everywhere else.  Returns None when a
        superop doesn't validate against this program — the caller falls
        back to the per-instruction table."""
        instrs = tile.program.instructions
        n = len(instrs)
        entries: List[Optional[_Decoded]] = [None] * n
        try:
            for sup in tile.program.superops:
                if not (0 <= sup.start < sup.end <= n):
                    return None
                entries[sup.start] = self._build_super(sup, instrs, tile)
                for pc in range(sup.start + 1, sup.end):
                    entries[pc] = _Decoded(
                        instrs[pc], fallback=True, batch_safe=False
                    )
        except (SimulationError, KeyError, ZeroDivisionError):
            return None
        for pc in range(n):
            if entries[pc] is None:
                entries[pc] = self._decode_instr(instrs[pc], tile.tile_id)
        return entries

    def _instr_cost(self, instr: Instruction) -> int:
        """The decoded cycle cost of one fusable data instruction,
        computed from operands alone (no closure build) — superop costs
        are pre-summed from these so fused and per-instruction reports
        reconcile exactly."""
        op = instr.opcode
        o = instr.named_operands()
        if op in (Opcode.DMALOAD, Opcode.DMASTORE):
            return self._dma_cycles(o["size"], o["src_port"], o["dst_port"])
        if op is Opcode.NDCONV:
            h, w = unpack_shape(o["in_size"])
            k, _ = unpack_shape(o["kernel_size"])
            stride, pad = o["stride"], o["pad"]
            out_h = (h + 2 * pad - k) // stride + 1
            out_w = (w + 2 * pad - k) // stride + 1
            return self._conv_cycles(out_h * out_w, k)
        if op is Opcode.MATMUL:
            rows, cols = unpack_shape(o["in2_size"])
            return self._matmul_cycles(rows * cols)
        if op in (Opcode.NDACCUM, Opcode.NDACTFN):
            return self._offload_cycles(o["size"])
        if op is Opcode.NDSUBSAMP:
            h, w = unpack_shape(o["in_size"])
            return self._offload_cycles(h * w)
        raise SimulationError(
            f"superop member {op.value} has no fused cost"
        )

    def _build_super(
        self, sup, instrs, tile: CompTile
    ) -> "_Super":
        cost = sum(
            self._instr_cost(instrs[pc])
            for pc in range(sup.start, sup.end)
        )
        reads = tuple(
            (self._tile(port), port, addr, count)
            for port, addr, count in sup.external_reads
        )
        writes = tuple(
            (self._tile(port), port, addr, count)
            for port, addr, count in sup.external_writes
        )
        expire = tuple(
            (self.machine.mem_tile(port).trackers, addr, size)
            for port, addr, size in sup.expire
        )
        params = dict(sup.params)
        builder = {
            "load_run": self._super_load_run,
            "conv_block": self._super_conv_block,
            "fc_block": self._super_fc_block,
            "pool_run": self._super_pool_run,
        }.get(sup.kind)
        if builder is None:
            raise SimulationError(f"unknown superop kind {sup.kind!r}")
        fn = builder(params, tile.tile_id)
        return _Super(
            sup.kind, sup.start, sup.end, sup.end - sup.start, cost, fn,
            reads, writes, expire,
        )

    def _super_load_run(self, params: dict, tile_id: str):
        moves = tuple(
            (
                self._reader(src_port), src_addr,
                self._writer(dst_port), dst_addr, size, bool(accum),
            )
            for src_port, src_addr, dst_port, dst_addr, size, accum
            in params["dmas"]
        )

        def load_run() -> None:
            tel = self._tel_on
            for rd, src_addr, wr, dst_addr, size, accum in moves:
                # No _dma_payload: fused decode refuses dma-flip faults,
                # and MemTile.write's astype always copies.
                wr(dst_addr, rd(src_addr, size), accum)
                if tel:
                    self._observe_dma(tile_id, size)

        return load_run

    def _super_conv_block(self, params: dict, tile_id: str):
        in_tile = self._tile(params["in_port"])
        src_words = in_tile.words if in_tile is not None else self.external
        h, w = params["h"], params["w"]
        k, stride, pad = params["k"], params["stride"], params["pad"]
        out_size = params["out_size"]
        n_features = params["n_features"]
        pre_base, bias_base = params["pre_base"], params["bias_base"]
        steps = params["steps"]
        fn_act = _CODE_TO_ACT[params["fn_type"]]
        rd_bias = self._reader(params["out_port"])
        wr_pre = self._writer(params["out_port"])
        wr_home = self._writer(params["home_port"])
        home_addr = params["home_addr"]

        def conv_block() -> None:
            bias = rd_bias(bias_base, n_features * out_size)
            pre, act = ops.conv_block_forward(
                src_words, steps, k, stride, pad, (h, w),
                out_size, n_features, bias, fn_act,
            )
            wr_pre(pre_base, pre, False)
            wr_home(home_addr, act, False)

        return conv_block

    def _super_fc_block(self, params: dict, tile_id: str):
        rd_vec = self._reader(params["vec_port"])
        rd_mat = self._reader(params["mat_port"])
        rd_bias = self._reader(params["pre_port"])
        wr_pre = self._writer(params["pre_port"])
        wr_home = self._writer(params["home_port"])
        n, rows = params["n"], params["rows"]
        vec_addr, mat_addr = params["vec_addr"], params["mat_addr"]
        pre_addr, bias_addr = params["pre_addr"], params["bias_addr"]
        home_addr = params["home_addr"]
        fn_act = _CODE_TO_ACT[params["fn_type"]]

        def fc_block() -> None:
            mat = rd_mat(mat_addr, rows * n).reshape(rows, n)
            vec = rd_vec(vec_addr, n)
            bias = rd_bias(bias_addr, rows)
            pre, act = ops.fc_block_forward(mat, vec, bias, fn_act)
            wr_pre(pre_addr, pre, False)
            wr_home(home_addr, act, False)

        return fc_block

    def _super_pool_run(self, params: dict, tile_id: str):
        calls = tuple(
            (
                self._reader(port), in_addr, count, h, w, window, stride,
                _CODE_TO_SAMP[samp], self._writer(out_port), out_addr,
            )
            for port, in_addr, count, h, w, window, stride, samp,
            out_port, out_addr in params["groups"]
        )

        def pool_run() -> None:
            for (rd, in_addr, count, h, w, window, stride, mode, wr,
                 out_addr) in calls:
                x = rd(in_addr, count * h * w)
                out, _ = ops.pool_forward(
                    x.reshape(count, h, w), window, stride, 0, mode
                )
                wr(out_addr, out, False)

        return pool_run

    def _note_fallback(self, instr: Instruction, reason: str) -> None:
        """Count one decode→interpreter fallback, keyed by opcode and
        the reason the fast path refused the instruction."""
        if self._tel_on:
            self.telemetry.count(
                "engine.fallback", f"{instr.opcode.value}:{reason}"
            )

    def _decode_instr(self, instr: Instruction, tile_id: str) -> _Decoded:
        group = instr.group
        if group is InstrGroup.SCALAR:
            # Register/branch/halt: cheap already, and inherently
            # dynamic — always interpreted.  Touches no scratchpad
            # words, so it is safe under batched execution too.
            self._note_fallback(instr, "scalar-control")
            return _Decoded(instr, fallback=True, batch_safe=True)
        if any(is_reg_operand(v) for v in instr.operands):
            # Fig 13-style R-operands resolve at issue time only.
            self._note_fallback(instr, "register-indirect")
            return _Decoded(
                instr, fallback=True,
                batch_safe=group is InstrGroup.TRACK,
            )
        if group is InstrGroup.TRACK:
            o = instr.named_operands()
            port = (
                o["target"] if instr.opcode is Opcode.DMA_MEMTRACK
                else o["port"]
            )
            if port == EXTERNAL_PORT:
                # Arming external memory raises at execution time.
                self._note_fallback(instr, "external-port")
                return _Decoded(instr, fallback=True, batch_safe=True)
            try:
                trackers = self.machine.mem_tile(port).trackers
            except SimulationError:
                # Out-of-mesh port: raise at execution, like _execute.
                self._note_fallback(instr, "out-of-mesh-port")
                return _Decoded(instr, fallback=True, batch_safe=True)
            addr, size = o["addr"], o["size"]
            num_updates, num_reads = o["num_updates"], o["num_reads"]

            def arm() -> None:
                trackers.arm(addr, size, num_updates, num_reads)

            return _Decoded(
                instr, fn=arm, fn_batch=lambda state: arm(), cost=1
            )
        try:
            return self._decode_data(instr, tile_id)
        except (SimulationError, KeyError, ZeroDivisionError) as exc:
            # The decode failures the legacy interpreter would raise at
            # *execution* time — shape mismatches and out-of-mesh ports
            # (SimulationError), bad activation/sampling codes
            # (KeyError), a zero WUPDATE lr denominator — fall back so
            # error timing and semantics are unchanged.  Anything else
            # is a genuine engine bug and surfaces here, at decode.
            self._note_fallback(
                instr, f"decode-error:{type(exc).__name__}"
            )
            return _Decoded(instr, fallback=True, batch_safe=False)

    def _decode_data(self, instr: Instruction, tile_id: str) -> _Decoded:
        """Decode one data instruction into a :class:`_Decoded` entry.

        The closures replicate the legacy :meth:`_execute` numpy calls
        verbatim — regression tests pin bit-identical outputs — with all
        operand parsing, access analysis and cost arithmetic hoisted to
        decode time.
        """
        op = instr.opcode
        o = instr.named_operands()
        raw_reads, raw_writes = instruction_accesses(instr)
        reads = tuple(
            (self._tile(port), port, addr, count)
            for port, addr, count in raw_reads
        )
        writes = tuple(
            (self._tile(port), port, addr, count)
            for port, addr, count in raw_writes
        )

        if op is Opcode.NDCONV:
            h, w = unpack_shape(o["in_size"])
            k, _ = unpack_shape(o["kernel_size"])
            stride, pad = o["stride"], o["pad"]
            out_h = (h + 2 * pad - k) // stride + 1
            out_w = (w + 2 * pad - k) // stride + 1
            in_addr, kernel_addr = o["in_addr"], o["kernel_addr"]
            in_port, out_port = o["in_port"], o["out_port"]
            out_addr, accum = o["out_addr"], bool(o["is_accum"])
            rd = self._reader(in_port)
            wr = self._writer(out_port)
            zero_bias = np.zeros(1, dtype=np.float32)

            def conv() -> None:
                x = rd(in_addr, h * w)
                kern = rd(kernel_addr, k * k)
                out = ops.conv2d_forward(
                    x.reshape(1, h, w), kern.reshape(1, 1, k, k),
                    zero_bias, stride, pad,
                )
                wr(out_addr, out, accum)

            def conv_batch(state: BatchState) -> None:
                x = state.read(in_port, in_addr, h * w)
                kern = state.read(in_port, kernel_addr, k * k)
                out = ops.conv2d_plane_batched(
                    x.reshape(-1, h, w), kern.reshape(-1, k, k),
                    stride, pad,
                )
                state.write(out_port, out_addr, out, accum)

            return _Decoded(
                instr, fn=conv, fn_batch=conv_batch, reads=reads,
                writes=writes, cost=self._conv_cycles(out_h * out_w, k),
            )

        if op is Opcode.MATMUL:
            rows, cols = unpack_shape(o["in2_size"])
            _, n = unpack_shape(o["in1_size"])
            if n != cols:
                # Raise at execution time via the fallback path, after
                # gating — identical to the legacy interpreter.
                raise SimulationError("MATMUL shape mismatch")
            in1_port, in2_port = o["in1_port"], o["in2_port"]
            in1_addr, in2_addr = o["in1_addr"], o["in2_addr"]
            out_port, out_addr = o["out_port"], o["out_addr"]
            accum = bool(o["is_accum"])
            rd_vec = self._reader(in1_port)
            rd_mat = self._reader(in2_port)
            wr = self._writer(out_port)

            def matmul() -> None:
                vec = rd_vec(in1_addr, n)
                mat = rd_mat(in2_addr, rows * cols).reshape(rows, cols)
                wr(out_addr, mat @ vec, accum)

            def matmul_batch(state: BatchState) -> None:
                vec = state.read(in1_port, in1_addr, n)
                mat = state.read(
                    in2_port, in2_addr, rows * cols
                ).reshape(-1, rows, cols)
                state.write(
                    out_port, out_addr, ops.matmul_rows(mat, vec), accum
                )

            return _Decoded(
                instr, fn=matmul, fn_batch=matmul_batch, reads=reads,
                writes=writes, cost=self._matmul_cycles(rows * cols),
            )

        if op is Opcode.NDACTFN:
            size = o["size"]
            port, in_addr = o["port"], o["in_addr"]
            out_port, out_addr = o["out_port"], o["out_addr"]
            fn_act = _CODE_TO_ACT[o["fn_type"]]
            rd = self._reader(port)
            wr = self._writer(out_port)

            def actfn() -> None:
                data = rd(in_addr, size)
                wr(out_addr, ops.activate(data.copy(), fn_act), False)

            def actfn_batch(state: BatchState) -> None:
                data = state.read(port, in_addr, size)
                state.write(
                    out_port, out_addr,
                    ops.activate_rows(data.copy(), fn_act), False,
                )

            return _Decoded(
                instr, fn=actfn, fn_batch=actfn_batch, reads=reads,
                writes=writes, cost=self._offload_cycles(size),
            )

        if op is Opcode.NDACTBP:
            size = o["size"]
            port, err_addr = o["port"], o["err_addr"]
            act_addr = err_addr + size
            out_port, out_addr = o["out_port"], o["out_addr"]
            fn_act = _CODE_TO_ACT[o["fn_type"]]
            rd = self._reader(port)
            wr = self._writer(out_port)

            def actbp() -> None:
                err = rd(err_addr, size)
                act = rd(act_addr, size)
                wr(
                    out_addr,
                    ops.activate_backward(err.copy(), act, fn_act), False,
                )

            def actbp_batch(state: BatchState) -> None:
                err = state.read(port, err_addr, size)
                act = state.read(port, act_addr, size)
                state.write(
                    out_port, out_addr,
                    ops.activate_backward(err.copy(), act, fn_act), False,
                )

            return _Decoded(
                instr, fn=actbp, fn_batch=actbp_batch, reads=reads,
                writes=writes, cost=self._offload_cycles(size),
            )

        if op is Opcode.NDSUBSAMP:
            h, w = unpack_shape(o["in_size"])
            window, stride = o["window"], o["stride"]
            port, in_addr = o["port"], o["in_addr"]
            out_port, out_addr = o["out_port"], o["out_addr"]
            mode = _CODE_TO_SAMP[o["samp_type"]]
            rd = self._reader(port)
            wr = self._writer(out_port)

            def subsamp() -> None:
                x = rd(in_addr, h * w)
                out, _ = ops.pool_forward(
                    x.reshape(1, h, w), window, stride, 0, mode
                )
                wr(out_addr, out, False)

            def subsamp_batch(state: BatchState) -> None:
                # Batch rides the channel axis: pool_forward pools each
                # leading-axis plane independently.
                x = state.read(port, in_addr, h * w)
                out, _ = ops.pool_forward(
                    x.reshape(-1, h, w), window, stride, 0, mode
                )
                state.write(out_port, out_addr, out, False)

            return _Decoded(
                instr, fn=subsamp, fn_batch=subsamp_batch, reads=reads,
                writes=writes, cost=self._offload_cycles(h * w),
            )

        if op is Opcode.NDUPSAMP:
            h, w = unpack_shape(o["in_size"])
            window, stride = o["window"], o["stride"]
            mode = o["samp_type"]
            port, in_addr = o["port"], o["in_addr"]
            out_port, out_addr = o["out_port"], o["out_addr"]
            rd = self._reader(port)
            wr = self._writer(out_port)
            if mode == UPSAMP_ZERO_INSERT:
                out_h = (h - 1) * stride + 1
                out_w = (w - 1) * stride + 1

                def upsamp() -> None:
                    err = rd(in_addr, h * w).reshape(1, h, w)
                    up = np.zeros((1, out_h, out_w), dtype=np.float32)
                    up[0, ::stride, ::stride] = err[0]
                    wr(out_addr, up, False)

                def upsamp_batch(state: BatchState) -> None:
                    err = state.read(port, in_addr, h * w)
                    err = err.reshape(-1, h, w)
                    up = np.zeros(
                        (err.shape[0], out_h, out_w), dtype=np.float32
                    )
                    up[:, ::stride, ::stride] = err
                    state.write(out_port, out_addr, up, False)

            elif mode == SAMP_CODES[PoolMode.MAX]:
                out_h, out_w = h * stride, w * stride
                orig_addr = in_addr + h * w

                def upsamp() -> None:
                    err = rd(in_addr, h * w).reshape(1, h, w)
                    original = rd(orig_addr, out_h * out_w).reshape(
                        1, out_h, out_w
                    )
                    _, argmax = ops.pool_forward(
                        original, window, stride, 0, PoolMode.MAX
                    )
                    up = ops.pool_backward(
                        err.copy(), (1, out_h, out_w), window, stride, 0,
                        PoolMode.MAX, argmax,
                    )
                    wr(out_addr, up, False)

                def upsamp_batch(state: BatchState) -> None:
                    err = state.read(port, in_addr, h * w)
                    err = err.reshape(-1, h, w)
                    original = state.read(
                        port, orig_addr, out_h * out_w
                    ).reshape(-1, out_h, out_w)
                    _, argmax = ops.pool_forward(
                        original, window, stride, 0, PoolMode.MAX
                    )
                    up = ops.pool_backward(
                        err.copy(), original.shape, window, stride, 0,
                        PoolMode.MAX, argmax,
                    )
                    state.write(out_port, out_addr, up, False)

            elif mode == SAMP_CODES[PoolMode.AVG]:
                out_h, out_w = h * stride, w * stride

                def upsamp() -> None:
                    err = rd(in_addr, h * w).reshape(1, h, w)
                    up = ops.pool_backward(
                        err.copy(), (1, out_h, out_w), window, stride, 0,
                        PoolMode.AVG, np.empty(0),
                    )
                    wr(out_addr, up, False)

                def upsamp_batch(state: BatchState) -> None:
                    err = state.read(port, in_addr, h * w)
                    err = err.reshape(-1, h, w)
                    up = ops.pool_backward(
                        err.copy(), (err.shape[0], out_h, out_w),
                        window, stride, 0, PoolMode.AVG, np.empty(0),
                    )
                    state.write(out_port, out_addr, up, False)

            else:
                raise SimulationError(f"unknown NDUPSAMP mode {mode}")

            return _Decoded(
                instr, fn=upsamp, fn_batch=upsamp_batch, reads=reads,
                writes=writes, cost=self._offload_cycles(out_h * out_w),
            )

        if op is Opcode.NDACCUM:
            size = o["size"]
            port = o["port"]
            src_addr, dst_addr = o["src_addr"], o["dst_addr"]
            rd = self._reader(port)
            wr = self._writer(port)

            def accum() -> None:
                wr(dst_addr, rd(src_addr, size), True)

            def accum_batch(state: BatchState) -> None:
                state.write(
                    port, dst_addr, state.read(port, src_addr, size), True
                )

            return _Decoded(
                instr, fn=accum, fn_batch=accum_batch, reads=reads,
                writes=writes, cost=self._offload_cycles(size),
            )

        if op is Opcode.VECMUL:
            size = o["size"]
            port = o["port"]
            in1_addr, in2_addr = o["in1_addr"], o["in2_addr"]
            out_addr = o["out_addr"]
            rd = self._reader(port)
            wr = self._writer(port)

            def vecmul() -> None:
                wr(out_addr, rd(in1_addr, size) * rd(in2_addr, size), False)

            def vecmul_batch(state: BatchState) -> None:
                a = state.read(port, in1_addr, size)
                b = state.read(port, in2_addr, size)
                state.write(port, out_addr, a * b, False)

            return _Decoded(
                instr, fn=vecmul, fn_batch=vecmul_batch, reads=reads,
                writes=writes, cost=self._offload_cycles(size),
            )

        if op is Opcode.WUPDATE:
            size = o["size"]
            port = o["port"]
            grad_addr, weight_addr = o["grad_addr"], o["weight_addr"]
            lr = o["lr_num"] / o["lr_denom"]
            rd = self._reader(port)
            wr = self._writer(port)
            zeros = np.zeros(size, dtype=np.float32)

            def wupdate() -> None:
                grad = rd(grad_addr, size).copy()
                wr(weight_addr, -lr * grad, True)
                wr(grad_addr, zeros, False)

            def wupdate_batch(state: BatchState) -> None:
                grad = state.read(port, grad_addr, size).copy()
                state.write(port, weight_addr, -lr * grad, True)
                state.write(port, grad_addr, np.zeros_like(grad), False)

            return _Decoded(
                instr, fn=wupdate, fn_batch=wupdate_batch, reads=reads,
                writes=writes, cost=self._offload_cycles(size),
            )

        if op in (Opcode.DMALOAD, Opcode.DMASTORE):
            size = o["size"]
            src_port, dst_port = o["src_port"], o["dst_port"]
            src_addr, dst_addr = o["src_addr"], o["dst_addr"]
            accum = bool(o["is_accum"])
            rd = self._reader(src_port)
            wr = self._writer(dst_port)
            cost = self._dma_cycles(size, src_port, dst_port)

            def dma() -> None:
                data = rd(src_addr, size)
                wr(dst_addr, self._dma_payload(data, tile_id), accum)
                if self._tel_on:
                    self._observe_dma(tile_id, size)

            def dma_batch(state: BatchState) -> None:
                # make_batch refuses dma-bitflip faults, so the payload
                # is a plain copy here.
                data = state.read(src_port, src_addr, size)
                state.write(
                    dst_port, dst_addr,
                    np.array(data, dtype=np.float32), accum,
                )
                if self._tel_on:
                    self._observe_dma(tile_id, size)

            return _Decoded(
                instr, fn=dma, fn_batch=dma_batch, reads=reads,
                writes=writes, cost=cost,
            )

        if op in (Opcode.PASSBUFF_RD, Opcode.PASSBUFF_WR):
            noop = lambda: None  # noqa: E731 — handshake only
            return _Decoded(
                instr, fn=noop, fn_batch=lambda state: None,
                reads=reads, writes=writes, cost=2,
            )

        if op is Opcode.PREFETCH:
            size = o["size"]
            src_addr = o["src_addr"]
            dst_port, dst_addr = o["dst_port"], o["dst_addr"]
            wr = self._writer(dst_port)
            cost = self._dma_cycles(size, EXTERNAL_PORT, dst_port)

            def prefetch() -> None:
                data = self.external[src_addr : src_addr + size]
                wr(dst_addr, self._dma_payload(data, tile_id), False)
                if self._tel_on:
                    self._observe_dma(tile_id, size)

            def prefetch_batch(state: BatchState) -> None:
                data = state.read(EXTERNAL_PORT, src_addr, size)
                state.write(
                    dst_port, dst_addr,
                    np.array(data, dtype=np.float32), False,
                )
                if self._tel_on:
                    self._observe_dma(tile_id, size)

            return _Decoded(
                instr, fn=prefetch, fn_batch=prefetch_batch, reads=reads,
                writes=writes, cost=cost,
            )

        raise SimulationError(f"engine cannot decode {op.value}")

    def _gate_quads(self, comp: CompTile, reads, writes) -> bool:
        """The fast-path twin of :meth:`_gate`, over pre-bound
        ``(mem_tile, port, addr, count)`` quads.  Identical tracker
        accounting: peek every access first (a blocked companion must
        not consume counts), then consume."""
        for mem, port, addr, count in reads:
            if mem is not None and mem.trackers.read_blocked(addr, count):
                self._note_block(
                    comp, "read", port, addr, count, TrackerPhase.UPDATING
                )
                return False
        for mem, port, addr, count in writes:
            if mem is not None and mem.trackers.write_blocked(addr, count):
                self._note_block(
                    comp, "write", port, addr, count, TrackerPhase.READABLE
                )
                return False
        for mem, _port, addr, count in reads:
            if mem is not None:
                verdict = mem.trackers.check_read(addr, count)
                assert verdict is AccessVerdict.ALLOW
        for mem, _port, addr, count in writes:
            if mem is not None:
                verdict = mem.trackers.check_write(addr, count)
                assert verdict is AccessVerdict.ALLOW
        return True

    # ------------------------------------------------------------------
    def run(
        self,
        raise_on_deadlock: bool = True,
        only_tiles: Optional[set] = None,
        exclude_tiles: Optional[set] = None,
    ) -> RunReport:
        """Run all loaded programs round-robin until every tile halts.

        With ``raise_on_deadlock=False`` the engine instead *returns*
        when no tile can make progress — the training flow uses this to
        pause at the point where backpropagation waits for the host to
        inject the loss gradient (the paper computes the output error in
        the final FP tiles; see Sec 3.2.3).

        ``only_tiles`` / ``exclude_tiles`` select which CompHeavy tiles
        participate (the minibatch flow runs the per-image programs and
        the weight-update programs in separate phases).
        """
        tiles = [
            t for t in self.machine.comp_tiles.values()
            if (only_tiles is None or t.tile_id in only_tiles)
            and (exclude_tiles is None or t.tile_id not in exclude_tiles)
        ]
        if not tiles:
            raise SimulationError("no programs loaded (or all filtered)")
        self.rounds = 0
        tel = self.telemetry
        tel_on = self._tel_on
        deadline = (
            time.monotonic() + self.wall_clock_limit
            if self.wall_clock_limit is not None else None
        )
        batch = self._batch
        if batch is not None and not self.fast:
            raise SimulationError(
                "batched execution requires the pre-decoded fast path"
            )
        # Pre-decoded fast path: one flat op table per tile, indexed by
        # pc in lockstep with the program (same list semantics).
        work: List[Tuple[CompTile, Optional[List[_Decoded]]]] = [
            (t, self._decode_program(t) if self.fast else None)
            for t in tiles
        ]
        while True:
            self.rounds += 1
            if self.rounds > self.max_rounds:
                raise SimulationTimeout(
                    f"engine exceeded {self.max_rounds} rounds; likely "
                    "livelock (watchdog cycle budget)\n"
                    + self._describe_blocked(tiles),
                    snapshot=self._snapshot(tiles),
                )
            if deadline is not None and time.monotonic() > deadline:
                raise SimulationTimeout(
                    f"engine watchdog: run exceeded wall-clock limit of "
                    f"{self.wall_clock_limit:g}s after {self.rounds} "
                    "rounds\n" + self._describe_blocked(tiles),
                    snapshot=self._snapshot(tiles),
                )
            progress = False
            live = False
            for tile, entries in work:
                if tile.halted:
                    continue
                live = True
                pc = tile.pc
                tile.pc = pc + 1
                start_cycle = tile.cycles
                if entries is None:
                    instr = tile.program[pc]
                    cost = self._execute(tile, instr)
                else:
                    entry = entries[pc]
                    if entry.is_super:
                        # One fused run: gate the external quads
                        # atomically, execute the whole-plane kernel,
                        # force-expire the internal tracker handshakes
                        # to their exact per-instruction end state, and
                        # charge the pre-summed member costs.
                        if self._gate_quads(
                            tile, entry.reads, entry.writes
                        ):
                            entry.fn()
                            for trackers, addr, size in entry.expire:
                                trackers.expire(addr, size)
                            tile.pc = entry.end
                            tile.blocked = False
                            tile.cycles += entry.cost
                            tile.instructions_executed += entry.count
                            progress = True
                            if tel_on:
                                tel.span(
                                    entry.label, "engine.instr",
                                    ("engine", f"tile {tile.tile_id}"),
                                    start_cycle, entry.cost,
                                    round=self.rounds,
                                    instructions=entry.count,
                                    blocked_retries=tile.blocked_retries,
                                )
                                tel.observe(
                                    "engine.instr_cycles",
                                    f"superop.{entry.kind}", entry.cost,
                                )
                                if entry.kind == "load_run":
                                    tel.count(
                                        f"tile/{tile.tile_id}",
                                        "dma_cycles", entry.cost,
                                    )
                                if tile.blocked_retries:
                                    tel.observe(
                                        "engine.block_cycles", "tracker",
                                        float(tile.blocked_retries),
                                    )
                            tile.blocked_retries = 0
                            if (
                                self.trace_enabled
                                and len(self.trace) < self.trace_limit
                            ):
                                self.trace.append((
                                    self.rounds, tile.tile_id,
                                    entry.label,
                                ))
                        else:
                            tile.pc = pc  # retry the blocked superop
                            tile.blocked = True
                            tile.cycles += 1  # stall cycle
                            tile.stalled_cycles += 1
                            tile.blocked_retries += 1
                        continue
                    instr = entry.instr
                    if entry.fallback:
                        if batch is not None and not entry.batch_safe:
                            raise SimulationError(
                                f"{instr.opcode.value} needs the "
                                "single-image interpreter (register-"
                                "indirect or undecodable operands) and "
                                "cannot run in a batched execution"
                            )
                        cost = self._execute(tile, instr)
                    elif not self._gate_quads(
                        tile, entry.reads, entry.writes
                    ):
                        cost = None
                    elif batch is not None:
                        entry.fn_batch(batch)
                        cost = entry.cost
                    else:
                        entry.fn()
                        cost = entry.cost
                if cost is None:
                    tile.pc -= 1  # retry the blocked instruction
                    tile.blocked = True
                    tile.cycles += 1  # stall cycle
                    tile.stalled_cycles += 1
                    tile.blocked_retries += 1
                    continue
                tile.blocked = False
                tile.cycles += cost
                tile.instructions_executed += 1
                progress = True
                if tel_on:
                    tel.span(
                        instr.opcode.value, "engine.instr",
                        ("engine", f"tile {tile.tile_id}"),
                        start_cycle, cost,
                        round=self.rounds,
                        blocked_retries=tile.blocked_retries,
                    )
                    # Distribution metrics: per-instruction-class cycle
                    # costs, and tracker-block durations (each blocked
                    # retry is one stall cycle, so the retry count at
                    # the unblocking instruction is the block duration).
                    tel.observe(
                        "engine.instr_cycles", instr.opcode.value, cost
                    )
                    if instr.opcode in _DMA_OPCODES:
                        tel.count(
                            f"tile/{tile.tile_id}", "dma_cycles", cost
                        )
                    if tile.blocked_retries:
                        tel.observe(
                            "engine.block_cycles", "tracker",
                            float(tile.blocked_retries),
                        )
                tile.blocked_retries = 0
                if self.trace_enabled and len(self.trace) < self.trace_limit:
                    self.trace.append(
                        (self.rounds, tile.tile_id, str(instr))
                    )
            if not live:
                break
            if not progress:
                if not raise_on_deadlock:
                    break
                if tel_on:
                    self._flush_counters(tiles)
                raise SimulationError(
                    "deadlock: all live tiles blocked:\n"
                    + self._describe_blocked(tiles)
                )
        if tel_on:
            self._flush_counters(tiles)
        return RunReport(
            cycles=self.machine.total_cycles,
            instructions=self.machine.total_instructions,
            rounds=self.rounds,
            blocked_reads=sum(
                t.trackers.blocked_reads for t in self.machine.mem_tiles
            ),
            blocked_writes=sum(
                t.trackers.blocked_writes for t in self.machine.mem_tiles
            ),
            busy_cycles=self.machine.total_busy_cycles,
        )

    # ------------------------------------------------------------------
    # Diagnostics and telemetry flushing
    # ------------------------------------------------------------------
    def _snapshot(self, tiles: List[CompTile]) -> List[Dict[str, object]]:
        """Per-tile tracker state for :class:`SimulationTimeout`, sorted
        by tile id for deterministic diagnostics."""
        rows: List[Dict[str, object]] = []
        for tile in sorted(tiles, key=lambda t: t.tile_id):
            reason = self._block_reason.get(tile.tile_id)
            rows.append({
                "tile": tile.tile_id,
                "pc": tile.pc,
                "cycles": tile.cycles,
                "instructions": tile.instructions_executed,
                "halted": tile.halted,
                "blocked": tile.blocked,
                "reason": (
                    {
                        "kind": reason[0],
                        "port": reason[1],
                        "addr": reason[2],
                        "count": reason[3],
                        "phase": reason[4],
                    }
                    if reason is not None and tile.blocked else None
                ),
            })
        return rows

    def _describe_blocked(self, tiles: List[CompTile]) -> str:
        """Per-tile deadlock detail: the tracker phase and address range
        each blocked tile is waiting on.

        Sorted by tile id so identical machine states produce
        byte-identical diagnostics regardless of program-load or
        scheduling order."""
        lines = []
        for tile in sorted(tiles, key=lambda t: t.tile_id):
            if tile.halted or not tile.blocked:
                continue
            reason = self._block_reason.get(tile.tile_id)
            if reason is None:
                lines.append(f"  {tile.tile_id}: blocked (reason unknown)")
                continue
            kind, port, addr, count, phase = reason
            lines.append(
                f"  {tile.tile_id}: {kind} of mem tile {port} "
                f"[{addr}, {addr + count}) blocked by tracker in "
                f"{phase} phase after {tile.blocked_retries} retries"
            )
        return "\n".join(lines)

    def _observe_dma(self, tile_id: str, size: int) -> None:
        """One DMA transfer's telemetry: the per-tile byte counter (as a
        timestamped sample, so the Chrome trace plots a series) and the
        transfer-size distribution metric."""
        comp = self.machine.comp_tiles.get(tile_id)
        self.telemetry.count(
            f"tile/{tile_id}", "dma_bytes", 4 * size,
            ts=None if comp is None else comp.cycles,
        )
        self.telemetry.observe("engine.dma", "transfer_bytes", 4 * size)

    def _flush_counters(self, tiles: List[CompTile]) -> None:
        """Snapshot per-tile cycle counters into the telemetry registry.

        Uses ``record`` (not ``add``) so repeated runs on a persistent
        machine — the streaming ForwardRunner — stay consistent with the
        tiles' cumulative clocks."""
        tel = self.telemetry
        for tile in tiles:
            group = f"tile/{tile.tile_id}"
            tel.record(group, "busy_cycles", tile.busy_cycles)
            tel.record(group, "stalled_cycles", tile.stalled_cycles)
            tel.record(group, "total_cycles", tile.cycles)
            tel.record(group, "instructions", tile.instructions_executed)
        for mem in self.machine.mem_tiles:
            group = f"mem/{mem.tile_id}"
            tel.record(group, "blocked_reads", mem.trackers.blocked_reads)
            tel.record(group, "blocked_writes", mem.trackers.blocked_writes)
        if self.dma_flips:
            tel.record("engine", "dma_flips", self.dma_flips)
        tel.record("engine", "rounds", self.rounds)
        tel.record("engine", "total_cycles", self.machine.total_cycles)
        tel.record(
            "engine", "total_instructions", self.machine.total_instructions
        )
