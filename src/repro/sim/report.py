"""One-stop simulation report for a network on a node configuration.

Combines everything a downstream user asks about a workload into one
text artifact: the mapping (Fig 13), the pipeline stages and bottleneck
(Fig 16), link utilization (Fig 21), power/efficiency (Fig 20),
per-image energy, minibatch gradient-sync cost (Sec 3.3) and the
nested-pipeline steady state (Fig 10).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.arch.node import NodeConfig
from repro.compiler.mapping import WorkloadMapping
from repro.dnn.network import Network
from repro.sim.allreduce import SyncReport, minibatch_sync
from repro.sim.energy import EnergyReport, energy_report
from repro.sim.perf import DEFAULT_MINIBATCH, PerfResult, simulate
from repro.sim.timeline import Timeline, nested_pipeline


@dataclass(frozen=True)
class FullReport:
    """Every simulation artifact for one (network, node) pair."""

    network: str
    node: str
    mapping: WorkloadMapping
    performance: PerfResult
    energy: EnergyReport
    sync: SyncReport
    timeline: Timeline

    def render(self) -> str:
        perf = self.performance
        lines: List[str] = []
        lines.append("=" * 72)
        lines.append(f"ScaleDeep simulation report: {self.network} "
                     f"on {self.node}")
        lines.append("=" * 72)

        lines.append("\n-- Mapping (compiler STEP1-6) --")
        lines.append(self.mapping.describe())

        lines.append("\n-- Throughput --")
        lines.append(perf.describe())
        bottleneck = perf.bottleneck
        lines.append(
            f"bottleneck stage: {bottleneck.unit}/{bottleneck.step.value} "
            f"({bottleneck.cost.bound_by}, {bottleneck.cycles:,.0f} cycles)"
        )

        lines.append("\n-- Nested pipeline (Fig 10) --")
        lines.append(
            f"fill latency {self.timeline.fill_latency:,.0f} cycles, "
            f"initiation interval "
            f"{self.timeline.initiation_interval:,.0f} cycles, "
            f"pipeline speedup "
            f"{self.timeline.speedup_vs_serial():.1f}x over serial"
        )

        lines.append("\n-- Link utilization (Fig 21) --")
        for link, value in perf.link_utilization.as_dict().items():
            lines.append(f"  {link:<10} {value:.2f}")

        lines.append("\n-- Power & energy (Fig 20) --")
        power = perf.average_power
        lines.append(
            f"{power.describe(scope='per-node')}, "
            f"{perf.gflops_per_watt:.0f} GFLOPs/W"
        )
        lines.append(self.energy.describe())

        lines.append("\n-- Minibatch gradient sync (Sec 3.3) --")
        lines.append(self.sync.describe())
        return "\n".join(lines)


def full_report(
    net: Network,
    node: NodeConfig,
    minibatch: int = DEFAULT_MINIBATCH,
    pipeline_images: int = 8,
    mapping: Optional[WorkloadMapping] = None,
) -> FullReport:
    """Run every analysis for one workload and bundle the results."""
    if mapping is None:
        from repro.compiler.pipeline import compile_network

        mapping = compile_network(net, node).mapping
    performance = simulate(net, node, minibatch=minibatch, mapping=mapping)
    return FullReport(
        network=net.name,
        node=node.name,
        mapping=mapping,
        performance=performance,
        energy=energy_report(performance),
        sync=minibatch_sync(mapping, minibatch),
        timeline=nested_pipeline(mapping, images=pipeline_images),
    )
