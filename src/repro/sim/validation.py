"""Cross-validation of the analytical model against the engine.

The paper validates its simulator against RTL synthesis; this
reproduction has two independent performance models of its own — the
analytical stage-cost model driving every figure, and the functional
engine's per-instruction cycle accounting — so we can validate one
against the other: compile small networks for the engine, run them, and
compare measured cycles with the analytical prediction for the same
tile resources.

Exact agreement is not expected (the engine serialises one instruction
per tile per round and charges per-instruction setup; the analytical
model assumes steady-state streaming), but the two must *rank*
workloads identically and stay within a bounded factor — the property
that makes the analytical model trustworthy for the full benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.arch.presets import FREQUENCY_HZ, conv_chip
from repro.compiler.codegen_dag import compile_dag_forward
from repro.compiler.cost import step_cost
from repro.dnn.analysis import Step
from repro.dnn.layers import LayerKind
from repro.dnn.network import Network
from repro.functional.reference import ReferenceModel


@dataclass(frozen=True)
class ValidationRow:
    """One network's engine-measured vs analytically-predicted cycles."""

    network: str
    engine_cycles: int
    analytical_cycles: float
    instructions: int

    @property
    def ratio(self) -> float:
        return self.engine_cycles / self.analytical_cycles


def analytical_forward_cycles(net: Network, rows: int) -> float:
    """Analytical FP cycles for the engine's layout: each layer owns one
    column of ``rows`` tiles and the layers execute as a pipeline whose
    makespan for a single image is the sum of stage latencies."""
    chip = conv_chip().resized(rows, conv_chip().cols)
    total = 0.0
    for node in net:
        if node.kind not in (LayerKind.CONV, LayerKind.FC, LayerKind.SAMP):
            continue
        cost = step_cost(
            FREQUENCY_HZ, chip, node, Step.FP, columns=1,
            dtype_bytes=4, weights_on_chip=True,
            store_features_offchip=False,
        )
        total += cost.cycles
    return total


def engine_forward_cycles(
    net: Network, rows: int, seed: int = 0
) -> ValidationRow:
    """Compile and run one image on the engine; returns measured cycles
    beside the analytical prediction."""
    model = ReferenceModel(net, seed=seed)
    compiled = compile_dag_forward(net, model, rows=rows)
    shape = net.input.output_shape
    image = np.random.default_rng(seed).normal(
        0, 1, (shape.count, shape.height, shape.width)
    ).astype(np.float32)
    _, report = compiled.run(image)
    return ValidationRow(
        network=net.name,
        engine_cycles=report.cycles,
        analytical_cycles=analytical_forward_cycles(net, rows),
        instructions=report.instructions,
    )


def cross_validate(
    networks: Dict[str, Network], rows: int = 2
) -> List[ValidationRow]:
    """Engine-vs-analytical comparison over a set of small networks."""
    return [
        engine_forward_cycles(net, rows) for net in networks.values()
    ]


def rank_agreement(rows: List[ValidationRow]) -> float:
    """Fraction of network pairs both models order identically
    (Kendall-style concordance; 1.0 = identical ranking)."""
    concordant = 0
    total = 0
    for i in range(len(rows)):
        for j in range(i + 1, len(rows)):
            total += 1
            engine_order = rows[i].engine_cycles <= rows[j].engine_cycles
            model_order = (
                rows[i].analytical_cycles <= rows[j].analytical_cycles
            )
            if engine_order == model_order:
                concordant += 1
    return concordant / total if total else 1.0
