"""Differential validation: engine vs analytical model vs numpy reference.

The paper validates its simulator against RTL synthesis (Sec 6.1); this
reproduction has three independent models of its own — the analytical
stage-cost model driving every figure, the functional engine's
per-instruction cycle accounting, and the numpy reference forward pass —
so we validate them against each other: compile every zoo network (the
full-size ILSVRC networks via their engine proxies — same topology,
rescaled channels), run one image, and check that

* engine outputs match the :class:`~repro.functional.reference
  .ReferenceModel` numpy forward pass to ``MAX_OUTPUT_ERROR``,
* the engine-vs-analytical cycle ratio stays inside a per-network
  tolerance band (wide for overhead-dominated toys, tight for
  compute-dominated networks), and
* the two cycle models *rank* workloads concordantly
  (``MIN_RANK_AGREEMENT``).

Exact cycle agreement is not expected (the engine serialises one
instruction per tile per round and charges per-instruction setup; the
analytical model assumes steady-state streaming), but bounded ratios and
rank concordance are the properties that make the analytical model
trustworthy for the full benchmarks.  :func:`validate_zoo` is the
programmatic entry; the ``repro validate`` CLI verb wraps it and CI
gates on it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.arch.presets import FREQUENCY_HZ, conv_chip
from repro.compiler.codegen_dag import compile_dag_forward
from repro.compiler.cost import step_cost
from repro.dnn import zoo
from repro.dnn.analysis import Step
from repro.dnn.builder import NetworkBuilder
from repro.dnn.layers import Activation, LayerKind, PoolMode
from repro.dnn.network import Network
from repro.dnn.zoo.engine_proxies import PROXY_PARAMS, engine_proxy
from repro.errors import ReproError, ValidationError
from repro.functional.reference import ReferenceModel

#: Above this weight count a network is not engine-executed directly;
#: instead its registered engine proxy (same topology, rescaled
#: channels — :mod:`repro.dnn.zoo.engine_proxies`) runs in its place,
#: so the full Fig 15 suite is functionally validated.  The CLI's
#: trace/profile verbs share this limit.
ENGINE_WEIGHT_LIMIT = 1_000_000

#: Engine outputs must match the numpy reference within this absolute
#: error (float32 accumulation-order noise is ~1e-7 on the tiny zoo).
MAX_OUTPUT_ERROR = 1e-4

#: Minimum fraction of network pairs the engine and analytical model
#: must order concordantly (ties scored symmetrically).
MIN_RANK_AGREEMENT = 0.8

#: Below this many analytical cycles a network is per-instruction-
#: overhead dominated: the engine's fixed setup costs (8 cycles per
#: coarse op) swamp the streaming estimate, so its band is wide.
OVERHEAD_CYCLE_FLOOR = 100.0

#: Images per minibatch for the fast-path speedup measurement.
DEFAULT_SPEEDUP_BATCH = 16


@dataclass(frozen=True)
class ToleranceBand:
    """Allowed engine/analytical cycle-ratio interval (inclusive)."""

    low: float
    high: float

    def contains(self, ratio: float) -> bool:
        return self.low <= ratio <= self.high

    def describe(self) -> str:
        return f"[{self.low:g}, {self.high:g}]"


#: Compute-dominated networks: the engine lands within a small factor of
#: the streaming model.
DEFAULT_BAND = ToleranceBand(0.25, 4.0)

#: Overhead-dominated toys (analytical cycles below the floor): only a
#: sanity envelope is enforced.
OVERHEAD_BAND = ToleranceBand(0.05, 50.0)

#: Per-network overrides, pinned from measured ratios; networks not
#: listed use the floor rule above.  LeNet-5 measures 3.15 (the engine
#: charges per-instruction setup on many small convolutions the
#: streaming model amortises), so its band brackets that point tighter
#: than the default.
BANDS: Dict[str, ToleranceBand] = {
    "LeNet-5": ToleranceBand(1.5, 4.5),
    # The deep VGG engine proxies measure 0.24 / 0.21: their 13-16
    # stacked small-channel 3x3 convolutions pipeline across columns
    # far better than the per-stage streaming sum predicts (each stage
    # carries fixed DMA/setup terms the engine's rounds overlap), so
    # their bands bracket the measured points below the default band.
    "VGG-D": ToleranceBand(0.1, 0.6),
    "VGG-E": ToleranceBand(0.1, 0.6),
}


def band_for(network: str, analytical_cycles: float) -> ToleranceBand:
    """The cycle-ratio tolerance band that applies to one network."""
    override = BANDS.get(network)
    if override is not None:
        return override
    if analytical_cycles <= OVERHEAD_CYCLE_FLOOR:
        return OVERHEAD_BAND
    return DEFAULT_BAND


@dataclass(frozen=True)
class ValidationRow:
    """One network's engine-measured vs analytically-predicted cycles.

    ``engine_cycles`` is the *unfused* fast-path makespan — the number
    the analytical pipeline model predicts (superop fusion compresses
    stall rounds, so the fused makespan is an execution-mode artifact,
    not a hardware estimate).  The fused path runs too: its outputs
    must be bit-identical (``fused_identical``) and its makespan is
    recorded as ``fused_cycles``."""

    network: str
    engine_cycles: int
    analytical_cycles: float
    instructions: int
    max_abs_error: float = 0.0
    engine_seconds: float = 0.0
    status: str = "ok"  # ok | skipped
    reason: str = ""
    fused_cycles: int = 0
    fused_identical: bool = True

    @property
    def ratio(self) -> float:
        """Engine cycles over analytical cycles, guarded: a zero-cycle
        analytical prediction yields ``inf`` when the engine did work
        and ``1.0`` when both models agree the workload is free."""
        if self.analytical_cycles > 0:
            return self.engine_cycles / self.analytical_cycles
        return float("inf") if self.engine_cycles > 0 else 1.0

    @property
    def band(self) -> ToleranceBand:
        return band_for(self.network, self.analytical_cycles)


def _wide_cnn() -> Network:
    b = NetworkBuilder("WideCNN")
    b.input(3, 16)
    b.conv(12, kernel=3, pad=1)
    b.pool(2, mode=PoolMode.AVG)
    b.conv(16, kernel=3, pad=1)
    b.fc(6, activation=Activation.SOFTMAX)
    return b.build()


def _deep_cnn() -> Network:
    b = NetworkBuilder("DeepCNN")
    b.input(2, 16)
    for _ in range(4):
        b.conv(8, kernel=3, pad=1)
    b.pool(2, mode=PoolMode.AVG)
    b.fc(4, activation=Activation.SOFTMAX)
    return b.build()


#: Extra engine-scale networks folded into the default validation set:
#: the compilable zoo is small, and rank agreement needs pairs.
VALIDATION_VARIANTS: Dict[str, Callable[[], Network]] = {
    "TinyCNN-8": lambda: zoo.tiny_cnn(num_classes=4, in_size=8),
    "WideCNN": _wide_cnn,
    "DeepCNN": _deep_cnn,
}


def analytical_forward_cycles(net: Network, rows: int) -> float:
    """Analytical FP cycles for the engine's layout: each layer owns one
    column of ``rows`` tiles and the layers execute as a pipeline whose
    makespan for a single image is the sum of stage latencies."""
    chip = conv_chip().resized(rows, conv_chip().cols)
    total = 0.0
    for node in net:
        if node.kind not in (LayerKind.CONV, LayerKind.FC, LayerKind.SAMP):
            continue
        cost = step_cost(
            FREQUENCY_HZ, chip, node, Step.FP, columns=1,
            dtype_bytes=4, weights_on_chip=True,
            store_features_offchip=False,
        )
        total += cost.cycles
    return total


def _random_image(net: Network, seed: int) -> np.ndarray:
    shape = net.input.output_shape
    return np.random.default_rng(seed).normal(
        0, 1, (shape.count, shape.height, shape.width)
    ).astype(np.float32)


def engine_forward_cycles(
    net: Network, rows: int, seed: int = 0
) -> ValidationRow:
    """Compile and run one image on the engine — once fused, once not.

    Returns the unfused makespan beside the analytical prediction (the
    comparable quantity), the maximum absolute output deviation from
    the numpy reference forward pass, and whether the fused path
    reproduced the unfused outputs bit-for-bit."""
    model = ReferenceModel(net, seed=seed)
    compiled = compile_dag_forward(net, model, rows=rows)
    image = _random_image(net, seed)
    start = time.perf_counter()
    fused_out, fused_report = compiled.run(image)
    elapsed = time.perf_counter() - start
    out, report = compiled.run(image, fused=False)
    expected = model.forward(image).reshape(-1)
    max_abs_error = (
        float(np.abs(out - expected).max())
        if out.size == expected.size else float("inf")
    )
    return ValidationRow(
        network=net.name,
        engine_cycles=report.cycles,
        analytical_cycles=analytical_forward_cycles(net, rows),
        instructions=report.instructions,
        max_abs_error=max_abs_error,
        engine_seconds=elapsed,
        fused_cycles=fused_report.cycles,
        fused_identical=bool(np.array_equal(fused_out, out)),
    )


def cross_validate(
    networks: Dict[str, Network], rows: int = 2
) -> List[ValidationRow]:
    """Engine-vs-analytical comparison over a set of small networks."""
    return [
        engine_forward_cycles(net, rows) for net in networks.values()
    ]


def rank_agreement(rows: Sequence[ValidationRow]) -> float:
    """Fraction of network pairs both models order identically
    (Kendall-style concordance; 1.0 = identical ranking).

    Ties are scored symmetrically: a pair is concordant only when the
    sign of the cycle difference agrees — tie-vs-tie concords, but a tie
    in one model against a strict order in the other is discordant."""
    concordant = 0
    total = 0
    for i in range(len(rows)):
        for j in range(i + 1, len(rows)):
            total += 1
            engine_sign = _sign(
                rows[i].engine_cycles - rows[j].engine_cycles
            )
            model_sign = _sign(
                rows[i].analytical_cycles - rows[j].analytical_cycles
            )
            if engine_sign == model_sign:
                concordant += 1
    return concordant / total if total else 1.0


def _sign(delta: float) -> int:
    return (delta > 0) - (delta < 0)


@dataclass(frozen=True)
class SpeedupResult:
    """Wall-clock comparison of the engine's execution paths on one
    network (per-image seconds; ``batch_seconds`` amortises one
    ``run_batch`` over its minibatch; ``fused_seconds`` is the fast
    path with superop fusion engaged)."""

    network: str
    batch: int
    legacy_seconds: float
    fast_seconds: float
    batch_seconds: float
    fused_seconds: float = 0.0

    @property
    def fast_speedup(self) -> float:
        return (
            self.legacy_seconds / self.fast_seconds
            if self.fast_seconds > 0 else float("inf")
        )

    @property
    def batch_speedup(self) -> float:
        return (
            self.legacy_seconds / self.batch_seconds
            if self.batch_seconds > 0 else float("inf")
        )

    @property
    def fused_speedup(self) -> float:
        """Fused fast path over the unfused fast path (the superop
        win on top of pre-decoding)."""
        return (
            self.fast_seconds / self.fused_seconds
            if self.fused_seconds > 0 else float("inf")
        )

    def describe(self) -> str:
        return (
            f"{self.network}: legacy {self.legacy_seconds * 1e3:.1f} "
            f"ms/image, fast {self.fast_seconds * 1e3:.1f} ms "
            f"({self.fast_speedup:.1f}x), fused "
            f"{self.fused_seconds * 1e3:.1f} ms "
            f"({self.fused_speedup:.1f}x over fast), batched "
            f"x{self.batch} {self.batch_seconds * 1e3:.1f} ms/image "
            f"({self.batch_speedup:.1f}x)"
        )


def measure_speedup(
    net: Network,
    rows: int = 2,
    seed: int = 0,
    batch: int = DEFAULT_SPEEDUP_BATCH,
    repeats: int = 2,
) -> SpeedupResult:
    """Time the legacy interpreter against the pre-decoded fast path,
    the superop-fused fast path, and batched execution on ``net`` (best
    of ``repeats`` for each path, to damp scheduler noise)."""
    model = ReferenceModel(net, seed=seed)
    compiled = compile_dag_forward(net, model, rows=rows)
    image = _random_image(net, seed)
    images = np.stack([
        _random_image(net, seed + i) for i in range(batch)
    ])

    def best(fn) -> float:
        return min(_timed(fn) for _ in range(max(1, repeats)))

    legacy = best(lambda: compiled.run(image, fast=False))
    fast = best(lambda: compiled.run(image, fast=True, fused=False))
    fused = best(lambda: compiled.run(image, fast=True, fused=True))
    batched = best(lambda: compiled.run_batch(images)) / batch
    return SpeedupResult(
        network=net.name, batch=batch, legacy_seconds=legacy,
        fast_seconds=fast, batch_seconds=batched, fused_seconds=fused,
    )


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


@dataclass
class ValidationReport:
    """Everything the ``repro validate`` gate checks, plus context."""

    rows: List[ValidationRow]
    rank: float
    min_rank_agreement: float = MIN_RANK_AGREEMENT
    max_output_error: float = MAX_OUTPUT_ERROR
    speedup: Optional[SpeedupResult] = None
    engine_rows: int = 2
    seed: int = 0
    violations_: List[str] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        self.violations_ = self._find_violations()

    @property
    def ok_rows(self) -> List[ValidationRow]:
        return [r for r in self.rows if r.status == "ok"]

    def _find_violations(self) -> List[str]:
        found: List[str] = []
        ok = self.ok_rows
        if not ok:
            found.append(
                "no network compiled for the engine — nothing validated"
            )
            return found
        for row in ok:
            band = row.band
            if not band.contains(row.ratio):
                found.append(
                    f"{row.network}: cycle ratio {row.ratio:.3f} outside "
                    f"tolerance band {band.describe()}"
                )
            if not row.max_abs_error <= self.max_output_error:
                found.append(
                    f"{row.network}: engine output deviates from the "
                    f"numpy reference by {row.max_abs_error:.3g} "
                    f"(limit {self.max_output_error:g})"
                )
            if not row.fused_identical:
                found.append(
                    f"{row.network}: superop-fused outputs are not "
                    "bit-identical to the unfused fast path"
                )
        if self.rank < self.min_rank_agreement:
            found.append(
                f"rank agreement {self.rank:.2f} below threshold "
                f"{self.min_rank_agreement:.2f}"
            )
        return found

    def violations(self) -> List[str]:
        return list(self.violations_)

    @property
    def passed(self) -> bool:
        return not self.violations_

    def raise_on_failure(self) -> None:
        if not self.passed:
            detail = "\n".join(f"  - {v}" for v in self.violations_)
            raise ValidationError(
                f"validation gate failed "
                f"({len(self.violations_)} violation(s)):\n{detail}",
                violations=self.violations_,
            )

    def to_dict(self) -> dict:
        """JSON-ready payload (the ``BENCH_validate.json`` artifact)."""
        return {
            "schema": 1,
            "engine_rows": self.engine_rows,
            "seed": self.seed,
            "rank_agreement": self.rank,
            "min_rank_agreement": self.min_rank_agreement,
            "max_output_error": self.max_output_error,
            "passed": self.passed,
            "violations": list(self.violations_),
            "rows": [
                {
                    "network": r.network,
                    "status": r.status,
                    "reason": r.reason,
                    "engine_cycles": r.engine_cycles,
                    "analytical_cycles": r.analytical_cycles,
                    "ratio": (
                        r.ratio if np.isfinite(r.ratio) else None
                    ),
                    "band_low": r.band.low if r.status == "ok" else None,
                    "band_high": r.band.high if r.status == "ok" else None,
                    "instructions": r.instructions,
                    "max_abs_error": r.max_abs_error,
                    "engine_seconds": r.engine_seconds,
                    "fused_cycles": r.fused_cycles,
                    "fused_identical": r.fused_identical,
                }
                for r in self.rows
            ],
            "speedup": (
                None if self.speedup is None else {
                    "network": self.speedup.network,
                    "batch": self.speedup.batch,
                    "legacy_seconds": self.speedup.legacy_seconds,
                    "fast_seconds": self.speedup.fast_seconds,
                    "fused_seconds": self.speedup.fused_seconds,
                    "batch_seconds": self.speedup.batch_seconds,
                    "fast_speedup": self.speedup.fast_speedup,
                    "fused_speedup": self.speedup.fused_speedup,
                    "batch_speedup": self.speedup.batch_speedup,
                }
            ),
        }


#: Longest skip reason recorded on a row (single line, op name kept).
_SKIP_REASON_LIMIT = 200


def _skip(name: str, reason: str) -> ValidationRow:
    """A skipped row with a bounded single-line reason.

    Multi-line errors (the engine's scope messages often put the
    offending op on a later line) are collapsed to one line rather than
    truncated to the first, so the op name survives into the report."""
    summary = "; ".join(
        part.strip() for part in reason.splitlines() if part.strip()
    )
    if len(summary) > _SKIP_REASON_LIMIT:
        summary = summary[:_SKIP_REASON_LIMIT - 3] + "..."
    return ValidationRow(name, 0, 0.0, 0, status="skipped", reason=summary)


def validate_zoo(
    names: Optional[Sequence[str]] = None,
    rows: int = 2,
    seed: int = 0,
    min_rank_agreement: float = MIN_RANK_AGREEMENT,
    max_output_error: float = MAX_OUTPUT_ERROR,
    speedup: bool = True,
    speedup_batch: int = DEFAULT_SPEEDUP_BATCH,
) -> ValidationReport:
    """Run the differential harness across every zoo network (plus the
    :data:`VALIDATION_VARIANTS`), or across ``names`` when given.

    Networks above :data:`ENGINE_WEIGHT_LIMIT` engine-execute their
    registered proxy (:mod:`repro.dnn.zoo.engine_proxies`) under their
    canonical name, so the whole Fig 15 suite lands in ``ok`` rows;
    only networks that are genuinely outside the engine's scope (and
    have no proxy) become ``skipped`` rows.  Requested ``names`` are
    deduplicated by canonical zoo name, so ``vgg16`` beside ``VGG-D``
    yields one row, not two.
    """
    candidates: List[tuple] = []
    seen: set = set()
    if names:
        for name in names:
            build = VALIDATION_VARIANTS.get(name)
            if build is not None:
                canonical = name
                net = build()
            else:
                canonical = zoo.resolve(name)
                net = zoo.load(canonical)
            if canonical in seen:
                continue
            seen.add(canonical)
            candidates.append((canonical, net))
    else:
        for name in zoo.available():
            candidates.append((name, zoo.load(name)))
        for name, build in VALIDATION_VARIANTS.items():
            candidates.append((name, build()))

    out_rows: List[ValidationRow] = []
    largest: Optional[Network] = None
    for name, net in candidates:
        reason = ""
        if net.weight_count > ENGINE_WEIGHT_LIMIT:
            if name not in PROXY_PARAMS:
                out_rows.append(_skip(
                    name,
                    f"{net.weight_count:,} weights exceed the engine "
                    f"limit ({ENGINE_WEIGHT_LIMIT:,}) and no engine "
                    "proxy is registered",
                ))
                continue
            full_weights = net.weight_count
            div, size = PROXY_PARAMS[name]
            net = engine_proxy(name)
            reason = (
                f"engine proxy (channels/{div}, {size}px input, "
                f"{net.weight_count:,} of {full_weights:,} weights)"
            )
        try:
            row = engine_forward_cycles(net, rows, seed=seed)
        except ReproError as exc:
            message = exc.args[0] if exc.args else str(exc)
            out_rows.append(_skip(name, f"engine scope: {message}"))
            continue
        out_rows.append(replace(row, network=name, reason=reason))
        if largest is None or net.weight_count > largest.weight_count:
            largest = net

    speedup_result: Optional[SpeedupResult] = None
    if speedup and largest is not None:
        speedup_result = measure_speedup(
            largest, rows=rows, seed=seed, batch=speedup_batch
        )

    report = ValidationReport(
        rows=out_rows,
        rank=rank_agreement(
            [r for r in out_rows if r.status == "ok"]
        ),
        min_rank_agreement=min_rank_agreement,
        max_output_error=max_output_error,
        speedup=speedup_result,
        engine_rows=rows,
        seed=seed,
    )
    return report
