"""Data-flow trackers: the MEMTRACK synchronization primitive (Sec 3.2.4).

ScaleDeep has no caches, coherence or locks.  Synchronization relies on
two insights: the access sequence to every location is known at compile
time, and accumulation is commutative.  Software arms a tracker on an
address range with ``MEMTRACK(AddRange, NumUpdates, NumReads)``; the
MemHeavy tile then enforces that the range receives exactly
``NumUpdates`` writes before it may be read, and ``NumReads`` reads
before it may be overwritten.  Early requests queue (or NACK on a full
queue); satisfied trackers expire.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import SynchronizationError

#: Tracker event hook: ``(event, start, size, phase)`` where ``event``
#: is "arm" / "block_read" / "block_write" / "expire".  Installed by the
#: engine when telemetry is enabled; ``None`` costs one identity check.
TrackerEmit = Callable[[str, int, int, str], None]


class TrackerPhase(enum.Enum):
    """Lifecycle of an armed tracker."""

    UPDATING = "updating"  # accepting writes, blocking reads
    READABLE = "readable"  # accepting reads, blocking writes
    EXPIRED = "expired"  # all reads consumed; range is free


class AccessVerdict(enum.Enum):
    """Outcome of attempting an access against a tracker."""

    ALLOW = "allow"
    BLOCK = "block"


@dataclass
class RangeTracker:
    """One armed MEMTRACK range."""

    start: int
    size: int
    num_updates: int
    num_reads: int
    updates_seen: int = 0
    reads_seen: int = 0
    expire_emitted: bool = False  # telemetry: expire reported once

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise SynchronizationError("tracked range must be non-empty")
        if self.num_updates < 0 or self.num_reads < 0:
            raise SynchronizationError(
                "update/read counts must be non-negative"
            )

    @property
    def end(self) -> int:
        return self.start + self.size

    @property
    def phase(self) -> TrackerPhase:
        if self.updates_seen < self.num_updates:
            return TrackerPhase.UPDATING
        if self.reads_seen < self.num_reads:
            return TrackerPhase.READABLE
        return TrackerPhase.EXPIRED

    def overlaps(self, start: int, size: int) -> bool:
        return start < self.end and self.start < start + size

    # ------------------------------------------------------------------
    def try_write(self) -> AccessVerdict:
        """A write against this range: allowed only while updating."""
        if self.phase is TrackerPhase.UPDATING:
            self.updates_seen += 1
            return AccessVerdict.ALLOW
        if self.phase is TrackerPhase.READABLE:
            return AccessVerdict.BLOCK
        return AccessVerdict.ALLOW  # expired: range is free again

    def try_read(self) -> AccessVerdict:
        """A read against this range: allowed only once updates are in."""
        if self.phase is TrackerPhase.UPDATING:
            return AccessVerdict.BLOCK
        if self.phase is TrackerPhase.READABLE:
            self.reads_seen += 1
            return AccessVerdict.ALLOW
        return AccessVerdict.ALLOW


class TrackerFile:
    """The set of trackers armed on one MemHeavy tile.

    ``capacity`` models the hardware counter budget; arming beyond it
    raises (the compiler must serialise reuse).
    """

    def __init__(self, capacity: int = 32) -> None:
        if capacity < 1:
            raise SynchronizationError("tracker capacity must be >= 1")
        self.capacity = capacity
        self._trackers: List[RangeTracker] = []
        self.blocked_reads = 0  # statistics
        self.blocked_writes = 0
        self.emit: Optional[TrackerEmit] = None  # telemetry hook

    def __len__(self) -> int:
        self._reap()
        return len(self._trackers)

    def _reap(self) -> None:
        if self.emit is not None:
            for t in self._trackers:
                if t.phase is TrackerPhase.EXPIRED:
                    self._emit_expire(t)
        self._trackers = [
            t for t in self._trackers if t.phase is not TrackerPhase.EXPIRED
        ]

    def _emit_expire(self, tracker: RangeTracker) -> None:
        if not tracker.expire_emitted:
            tracker.expire_emitted = True
            self.emit(
                "expire", tracker.start, tracker.size,
                TrackerPhase.EXPIRED.value,
            )

    def arm(
        self, start: int, size: int, num_updates: int, num_reads: int
    ) -> RangeTracker:
        """Arm a tracker (the MEMTRACK instruction)."""
        self._reap()
        for existing in self._trackers:
            if existing.overlaps(start, size):
                raise SynchronizationError(
                    f"tracker overlap: [{start}, {start + size}) vs "
                    f"[{existing.start}, {existing.end})"
                )
        if len(self._trackers) >= self.capacity:
            raise SynchronizationError(
                f"tracker file full ({self.capacity} ranges)"
            )
        tracker = RangeTracker(start, size, num_updates, num_reads)
        self._trackers.append(tracker)
        if self.emit is not None:
            self.emit("arm", start, size, tracker.phase.value)
        return tracker

    def _matching(self, start: int, size: int) -> Optional[RangeTracker]:
        for tracker in self._trackers:
            if tracker.overlaps(start, size):
                return tracker
        return None

    def read_blocked(self, start: int, size: int) -> bool:
        """Peek: would a read of [start, start+size) block right now?

        Counts a blocked read when it would — the engine's gate peeks
        every access of an instruction before consuming any, so a
        blocked companion access must not advance tracker counts."""
        tracker = self._matching(start, size)
        if tracker is not None and tracker.phase is TrackerPhase.UPDATING:
            self.blocked_reads += 1
            return True
        return False

    def write_blocked(self, start: int, size: int) -> bool:
        """Peek: would a write to [start, start+size) block right now?
        Counts a blocked write when it would (see :meth:`read_blocked`)."""
        tracker = self._matching(start, size)
        if tracker is not None and tracker.phase is TrackerPhase.READABLE:
            self.blocked_writes += 1
            return True
        return False

    def check_write(self, start: int, size: int) -> AccessVerdict:
        """Gate a write to [start, start+size)."""
        tracker = self._matching(start, size)
        if tracker is None:
            return AccessVerdict.ALLOW
        verdict = tracker.try_write()
        if verdict is AccessVerdict.BLOCK:
            self.blocked_writes += 1
            if self.emit is not None:
                self.emit(
                    "block_write", tracker.start, tracker.size,
                    tracker.phase.value,
                )
        elif self.emit is not None and (
            tracker.phase is TrackerPhase.EXPIRED
        ):
            self._emit_expire(tracker)
        return verdict

    def check_read(self, start: int, size: int) -> AccessVerdict:
        """Gate a read of [start, start+size)."""
        tracker = self._matching(start, size)
        if tracker is None:
            return AccessVerdict.ALLOW
        verdict = tracker.try_read()
        if verdict is AccessVerdict.BLOCK:
            self.blocked_reads += 1
            if self.emit is not None:
                self.emit(
                    "block_read", tracker.start, tracker.size,
                    tracker.phase.value,
                )
        elif self.emit is not None and (
            tracker.phase is TrackerPhase.EXPIRED
        ):
            self._emit_expire(tracker)
        return verdict

    def expire(self, start: int, size: int) -> None:
        """Force-expire every tracker overlapping [start, start+size).

        The fused-superop fast path uses this for ranges it proved are
        *internal* to one fused instruction run: instead of consuming
        the tracker update/read counts one instruction at a time, the
        superop jumps the tracker straight to its end-of-run state —
        EXPIRED, exactly where the per-instruction path leaves it — so a
        persistent machine (the streaming ForwardRunner) can re-arm the
        same range on the next image."""
        for tracker in self._trackers:
            if tracker.overlaps(start, size):
                tracker.updates_seen = tracker.num_updates
                tracker.reads_seen = tracker.num_reads
        self._reap()

    def phase_of(self, start: int, size: int) -> Optional[TrackerPhase]:
        tracker = self._matching(start, size)
        return tracker.phase if tracker else None
