"""Telemetry core: events, counters and the injectable handle.

The simulators (the functional engine, the analytical pipeline model,
and the mapping compiler) report what they do through one narrow
interface — :class:`Telemetry` — so a single capture can hold the
instruction stream of an engine run next to the stage costs of the
analytical model, in one schema:

* a **span** is a named interval on a *track* (``ts`` .. ``ts + dur``,
  both in cycles) — an executed instruction, a pipeline stage, an
  all-reduce phase;
* an **instant** is a point event — a tracker block, a compiler
  decision;
* a **counter** is a monotonically-maintained scalar in a named group —
  per-tile busy/stalled cycles, DMA bytes, tracker NACKs.

Tracks are ``(process, lane)`` string pairs; the Chrome-trace exporter
maps them onto pid/tid so Perfetto groups engine tiles under one
process and analytical stages under another.

Telemetry is **disabled by default**: the process-global handle is a
:class:`NullTelemetry` whose ``enabled`` flag is ``False``, and every
instrumented hot path guards on that flag before building any event, so
a disabled run pays one attribute read per instrumentation site.  Use
:func:`capture` to record a region, or :func:`set_telemetry` to install
a handle for the whole process; components also accept an explicit
handle for injection without global state.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

from repro.telemetry.metrics import MetricsRegistry

#: A track names the timeline an event belongs to: (process, lane).
Track = Tuple[str, str]

#: Event phases (a subset of the Chrome trace-event phases).
PHASE_SPAN = "X"  # complete event: ts + dur
PHASE_INSTANT = "i"  # point event


@dataclass(frozen=True)
class Event:
    """One recorded span or instant."""

    name: str
    category: str
    track: Track
    ts: float  # cycles
    dur: float  # cycles; 0.0 for instants
    phase: str  # PHASE_SPAN or PHASE_INSTANT
    args: Mapping[str, object] = field(default_factory=dict)

    @property
    def end(self) -> float:
        return self.ts + self.dur


class CounterRegistry:
    """Named scalar counters, organised in groups.

    Groups are free-form strings (``"tile/c0r0"``, ``"perf/AlexNet"``);
    within a group each counter has a float value.  ``add`` accumulates,
    ``record`` snapshots (idempotent across repeated flushes).
    """

    def __init__(self) -> None:
        self._groups: Dict[str, Dict[str, float]] = {}

    def __len__(self) -> int:
        return sum(len(g) for g in self._groups.values())

    def add(self, group: str, name: str, delta: float = 1.0) -> None:
        bucket = self._groups.setdefault(group, {})
        bucket[name] = bucket.get(name, 0.0) + delta

    def record(self, group: str, name: str, value: float) -> None:
        self._groups.setdefault(group, {})[name] = float(value)

    def get(self, group: str, name: str, default: float = 0.0) -> float:
        return self._groups.get(group, {}).get(name, default)

    def group(self, group: str) -> Dict[str, float]:
        return dict(self._groups.get(group, {}))

    def groups(self) -> List[str]:
        return sorted(self._groups)

    def rows(self) -> List[Tuple[str, str, float]]:
        """Flat ``(group, name, value)`` rows, sorted for stable output."""
        return [
            (group, name, values[name])
            for group in sorted(self._groups)
            for values in (self._groups[group],)
            for name in sorted(values)
        ]

    def total(self, name: str) -> float:
        """Sum of counter ``name`` across every group that defines it."""
        return sum(
            values[name]
            for values in self._groups.values()
            if name in values
        )


@dataclass(frozen=True)
class CounterSample:
    """One timestamped sample of a counter's running value.

    Instrumented code that knows *when* a counter moved passes ``ts`` to
    :meth:`Telemetry.count` / :meth:`Telemetry.record`; the Chrome-trace
    exporter renders the samples as ``"C"``-phase counter events so the
    series plots over time in Perfetto instead of collapsing to a single
    end-of-run value."""

    ts: float  # cycles
    group: str
    name: str
    value: float  # the counter's value after this update


class NullTelemetry:
    """Null object installed by default: every operation is a no-op.

    Instrumented code checks ``telemetry.enabled`` before doing any
    per-event work, so the disabled path costs one attribute read.
    """

    enabled = False
    #: Empty views so diagnostic code can read a null handle uniformly.
    events: Tuple[Event, ...] = ()
    counter_samples: Tuple[CounterSample, ...] = ()

    @property
    def counters(self) -> CounterRegistry:
        return CounterRegistry()

    @property
    def metrics(self) -> MetricsRegistry:
        return MetricsRegistry()

    def span(self, name, category, track, ts, dur, **args) -> None:
        pass

    def instant(self, name, category, track, ts, **args) -> None:
        pass

    def count(self, group, name, delta=1.0, ts=None) -> None:
        pass

    def record(self, group, name, value, ts=None) -> None:
        pass

    def observe(self, group, name, value) -> None:
        pass

    def gauge(self, group, name, value) -> None:
        pass


class Telemetry:
    """A live capture: appends events, maintains counters and metrics."""

    enabled = True

    def __init__(self) -> None:
        self.events: List[Event] = []
        self.counters = CounterRegistry()
        self.metrics = MetricsRegistry()
        self.counter_samples: List[CounterSample] = []

    def span(
        self,
        name: str,
        category: str,
        track: Track,
        ts: float,
        dur: float,
        **args: object,
    ) -> None:
        self.events.append(
            Event(name, category, track, float(ts), float(dur),
                  PHASE_SPAN, args)
        )

    def instant(
        self,
        name: str,
        category: str,
        track: Track,
        ts: float,
        **args: object,
    ) -> None:
        self.events.append(
            Event(name, category, track, float(ts), 0.0, PHASE_INSTANT, args)
        )

    def count(
        self,
        group: str,
        name: str,
        delta: float = 1.0,
        ts: Optional[float] = None,
    ) -> None:
        self.counters.add(group, name, delta)
        if ts is not None:
            self.counter_samples.append(
                CounterSample(
                    float(ts), group, name, self.counters.get(group, name)
                )
            )

    def record(
        self,
        group: str,
        name: str,
        value: float,
        ts: Optional[float] = None,
    ) -> None:
        self.counters.record(group, name, value)
        if ts is not None:
            self.counter_samples.append(
                CounterSample(float(ts), group, name, float(value))
            )

    def observe(self, group: str, name: str, value: float) -> None:
        """Add one observation to distribution metric ``group/name``."""
        self.metrics.observe(group, name, value)

    def gauge(self, group: str, name: str, value: float) -> None:
        """Set gauge metric ``group/name`` (last write wins)."""
        self.metrics.gauge(group, name, value)

    def events_in(self, category: str) -> List[Event]:
        return [e for e in self.events if e.category == category]


#: The shared null handle (safe to compare against with ``is``).
NULL_TELEMETRY = NullTelemetry()

_active: "NullTelemetry | Telemetry" = NULL_TELEMETRY


def get_telemetry() -> "NullTelemetry | Telemetry":
    """The process-global telemetry handle (null object when disabled)."""
    return _active


def set_telemetry(
    handle: "NullTelemetry | Telemetry | None",
) -> "NullTelemetry | Telemetry":
    """Install ``handle`` globally (None restores the null object);
    returns the previous handle so callers can restore it."""
    global _active
    previous = _active
    _active = NULL_TELEMETRY if handle is None else handle
    return previous


@contextmanager
def capture() -> Iterator[Telemetry]:
    """Record everything instrumented code emits inside the block::

        with capture() as tel:
            engine.run()
        write_chrome_trace(tel, "trace.json")
    """
    tel = Telemetry()
    previous = set_telemetry(tel)
    try:
        yield tel
    finally:
        set_telemetry(previous)
