"""Distribution metrics: gauges, streaming histograms, percentiles.

The counter registry answers "how much, in total"; this module answers
"how is it distributed" — the p50/p95/p99 view the TPU paper uses for
datacenter accounting.  A :class:`MetricsRegistry` lives next to the
:class:`~repro.telemetry.core.CounterRegistry` on every live telemetry
handle and holds two metric kinds:

* a **gauge** is a last-write-wins scalar (``train_images_per_s``);
* a **histogram** is a streaming distribution of observations
  (per-instruction cycle costs, DMA transfer sizes, stage latencies).

Histograms are **exact for small N**: observations are retained verbatim
up to :data:`HISTOGRAM_EXACT_CAP` and percentiles are computed by linear
interpolation over the sorted sample (cached between observations, so
repeated percentile queries — ``summary()`` asks for four — sort once),
bit-identical to ``numpy.percentile(..., method="linear")``.  Beyond the
cap the exact sample is dropped and percentiles come from log-spaced
buckets (:data:`BUCKETS_PER_OCTAVE` per power of two, maintained from
the first observation so the switch loses no history, with a mirrored
bucket family for negative observations), interpolated linearly within
the matched bucket.  Everything is plain deterministic float
arithmetic — no clocks, no randomness — so two captures of the same run
produce bit-identical registries, and merging per-job registries in job
order yields the same result regardless of how many sweep workers
produced them.

Wall-clock measurements (sweep job durations, cache hit latencies) are
real time and therefore *not* reproducible; by convention they live in
groups prefixed :data:`VOLATILE_GROUP_PREFIX` and are excluded from
deterministic snapshots and baseline comparisons.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Observations retained verbatim per histogram; beyond this the exact
#: sample is dropped and percentiles interpolate within log buckets.
HISTOGRAM_EXACT_CAP = 4096

#: Log-bucket resolution: buckets per power of two (bucket width ~19%,
#: worst-case percentile error ~9% — the SCALE-Sim fidelity-vs-speed
#: trade, applied to memory instead of time).
BUCKETS_PER_OCTAVE = 4

#: Groups whose metrics measure wall-clock time (non-reproducible).
#: Snapshots and baseline comparisons exclude them by default.
VOLATILE_GROUP_PREFIX = "wall."

#: The percentiles every summary reports.
SUMMARY_PERCENTILES = (50.0, 90.0, 95.0, 99.0)


class Histogram:
    """One streaming distribution (observations of either sign).

    Maintains count/total/min/max, a dedicated bucket for zeros, and
    log-spaced magnitude buckets on each side of zero; keeps the exact
    sample alongside until :data:`HISTOGRAM_EXACT_CAP` observations.
    """

    __slots__ = ("count", "total", "min", "max", "_zeros", "_buckets",
                 "_neg_buckets", "_exact", "_sorted", "exact_cap")

    def __init__(self, exact_cap: int = HISTOGRAM_EXACT_CAP) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._zeros = 0  # observations == 0
        self._buckets: Dict[int, int] = {}  # value > 0, by log2 magnitude
        self._neg_buckets: Dict[int, int] = {}  # value < 0, by |log2| magnitude
        self._exact: Optional[List[float]] = []
        self._sorted: Optional[List[float]] = None  # cached sorted view
        self.exact_cap = exact_cap

    # -- recording -----------------------------------------------------
    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value > 0.0:
            index = math.floor(math.log2(value) * BUCKETS_PER_OCTAVE)
            self._buckets[index] = self._buckets.get(index, 0) + 1
        elif value < 0.0:
            index = math.floor(math.log2(-value) * BUCKETS_PER_OCTAVE)
            self._neg_buckets[index] = self._neg_buckets.get(index, 0) + 1
        else:
            self._zeros += 1
        if self._exact is not None:
            self._sorted = None
            if len(self._exact) < self.exact_cap:
                self._exact.append(value)
            else:
                self._exact = None  # switch to bucket interpolation

    def merge(self, other: "Histogram") -> None:
        """Fold ``other`` into this histogram (order-insensitive for
        every derived statistic, so sweep replay is worker-count
        independent)."""
        if other.count == 0:
            return
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        self._zeros += other._zeros
        for index, n in other._buckets.items():
            self._buckets[index] = self._buckets.get(index, 0) + n
        for index, n in other._neg_buckets.items():
            self._neg_buckets[index] = (
                self._neg_buckets.get(index, 0) + n
            )
        self._sorted = None
        if (
            self._exact is not None
            and other._exact is not None
            and len(self._exact) + len(other._exact) <= self.exact_cap
        ):
            self._exact.extend(other._exact)
        else:
            self._exact = None

    # -- derived statistics --------------------------------------------
    @property
    def exact(self) -> bool:
        """Whether percentiles are exact (sample retained) or bucketed."""
        return self._exact is not None

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0..100).

        Exact (sorted-sample linear interpolation) while the sample is
        retained; log-bucket interpolation beyond the size cap, clamped
        to the observed [min, max]."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if self.count == 0:
            return 0.0
        rank = (self.count - 1) * q / 100.0
        if self._exact is not None:
            if self._sorted is None:
                self._sorted = sorted(self._exact)
            ordered = self._sorted
            lo = math.floor(rank)
            hi = math.ceil(rank)
            if lo == hi:
                return ordered[lo]
            return ordered[lo] + (ordered[hi] - ordered[lo]) * (rank - lo)
        # Bucketed path: walk ranks in value order — negatives (most
        # negative first), then zeros, then positives.
        seen = 0
        for index in sorted(self._neg_buckets, reverse=True):
            n = self._neg_buckets[index]
            if rank < seen + n:
                lo_mag = 2.0 ** (index / BUCKETS_PER_OCTAVE)
                hi_mag = 2.0 ** ((index + 1) / BUCKETS_PER_OCTAVE)
                frac = (rank - seen) / n
                value = -hi_mag + (hi_mag - lo_mag) * frac
                return min(max(value, self.min), self.max)
            seen += n
        if self._zeros:
            if rank < seen + self._zeros:
                return min(max(0.0, self.min), self.max)
            seen += self._zeros
        for index in sorted(self._buckets):
            n = self._buckets[index]
            if rank < seen + n:
                lo = 2.0 ** (index / BUCKETS_PER_OCTAVE)
                hi = 2.0 ** ((index + 1) / BUCKETS_PER_OCTAVE)
                frac = (rank - seen) / n
                value = lo + (hi - lo) * frac
                return min(max(value, self.min), self.max)
            seen += n
        return self.max

    def summary(
        self, percentiles: Sequence[float] = SUMMARY_PERCENTILES
    ) -> Dict[str, float]:
        """The deterministic scalar summary used by snapshots."""
        out: Dict[str, float] = {
            "count": float(self.count),
            "total": self.total,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
        }
        for q in percentiles:
            label = f"p{q:g}".replace(".", "_")
            out[label] = self.percentile(q)
        return out


class MetricsRegistry:
    """Named gauges and histograms, organised in groups like counters."""

    def __init__(self) -> None:
        self._gauges: Dict[str, Dict[str, float]] = {}
        self._hists: Dict[str, Dict[str, Histogram]] = {}

    def __len__(self) -> int:
        return (
            sum(len(g) for g in self._gauges.values())
            + sum(len(g) for g in self._hists.values())
        )

    # -- recording -----------------------------------------------------
    def gauge(self, group: str, name: str, value: float) -> None:
        """Set gauge ``group/name`` (last write wins)."""
        self._gauges.setdefault(group, {})[name] = float(value)

    def observe(self, group: str, name: str, value: float) -> None:
        """Add one observation to histogram ``group/name``."""
        bucket = self._hists.setdefault(group, {})
        hist = bucket.get(name)
        if hist is None:
            hist = bucket[name] = Histogram()
        hist.observe(value)

    def adopt(self, group: str, name: str, hist: Histogram) -> None:
        """Merge a pre-built histogram into ``group/name`` (the serving
        simulator builds distributions off-registry during the event
        loop and folds them in afterwards)."""
        bucket = self._hists.setdefault(group, {})
        mine = bucket.get(name)
        if mine is None:
            mine = bucket[name] = Histogram()
        mine.merge(hist)

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry in (sweep workers replay into the
        parent through this, in job order)."""
        for group, values in other._gauges.items():
            for name, value in values.items():
                self.gauge(group, name, value)
        for group, hists in other._hists.items():
            bucket = self._hists.setdefault(group, {})
            for name, hist in hists.items():
                mine = bucket.get(name)
                if mine is None:
                    mine = bucket[name] = Histogram()
                mine.merge(hist)

    # -- access --------------------------------------------------------
    def get_gauge(self, group: str, name: str, default: float = 0.0) -> float:
        return self._gauges.get(group, {}).get(name, default)

    def histogram(self, group: str, name: str) -> Optional[Histogram]:
        return self._hists.get(group, {}).get(name)

    def groups(self) -> List[str]:
        return sorted(set(self._gauges) | set(self._hists))

    def gauges(self) -> List[Tuple[str, str, float]]:
        """Flat ``(group, name, value)`` gauge rows, sorted."""
        return [
            (group, name, self._gauges[group][name])
            for group in sorted(self._gauges)
            for name in sorted(self._gauges[group])
        ]

    def histograms(self) -> List[Tuple[str, str, Histogram]]:
        """Flat ``(group, name, histogram)`` rows, sorted."""
        return [
            (group, name, self._hists[group][name])
            for group in sorted(self._hists)
            for name in sorted(self._hists[group])
        ]

    # -- snapshots -----------------------------------------------------
    def to_dict(self, include_volatile: bool = False) -> Dict[str, Dict]:
        """Deterministic nested snapshot: ``{group: {name: entry}}``
        where an entry is ``{"kind": "gauge", "value": v}`` or a
        ``{"kind": "histogram", ...summary...}``.  Volatile (wall-clock)
        groups are excluded unless requested."""
        out: Dict[str, Dict] = {}
        for group, name, value in self.gauges():
            if not include_volatile and group.startswith(
                VOLATILE_GROUP_PREFIX
            ):
                continue
            entry = {"kind": "gauge", "value": value}
            out.setdefault(group, {})[name] = entry
        for group, name, hist in self.histograms():
            if not include_volatile and group.startswith(
                VOLATILE_GROUP_PREFIX
            ):
                continue
            entry = {"kind": "histogram"}
            entry.update(hist.summary())
            out.setdefault(group, {})[name] = entry
        return out


def percentile_table(
    registry: MetricsRegistry,
    title: str,
    groups: Optional[Iterable[str]] = None,
):
    """Histogram summaries as a :class:`repro.bench.reporting.Table`."""
    from repro.bench.reporting import Table

    wanted = None if groups is None else set(groups)
    table = Table(
        title,
        ["metric", "count", "mean", "p50", "p90", "p95", "p99", "max"],
    )
    for group, name, hist in registry.histograms():
        if wanted is not None and group not in wanted:
            continue
        table.add(
            f"{group}/{name}", hist.count, f"{hist.mean:,.1f}",
            f"{hist.percentile(50):,.1f}", f"{hist.percentile(90):,.1f}",
            f"{hist.percentile(95):,.1f}", f"{hist.percentile(99):,.1f}",
            f"{hist.max:,.1f}",
        )
    return table
