"""Telemetry exporters: Chrome trace-event JSON, CSV, and tables.

The Chrome trace format (one ``traceEvents`` array of objects with
``ph``/``ts``/``dur``/``pid``/``tid`` fields) loads directly in
``chrome://tracing`` and Perfetto.  Tracks map onto the pid/tid plane:
every distinct track *process* becomes a pid, every ``(process, lane)``
pair a tid, with ``M``-phase metadata events naming both.  Timestamps
are emitted in microseconds with one simulated cycle = 1 us, so the
viewer's time axis reads directly as cycles.
"""

from __future__ import annotations

import io
import json
from typing import Dict, List, Tuple, Union

from repro.telemetry.core import (
    Event,
    NullTelemetry,
    PHASE_INSTANT,
    PHASE_SPAN,
    Telemetry,
)

AnyTelemetry = Union[Telemetry, NullTelemetry]


def _track_ids(
    events: List[Event],
) -> Tuple[Dict[str, int], Dict[Tuple[str, str], int]]:
    """Stable pid per track process and tid per (process, lane)."""
    pids: Dict[str, int] = {}
    tids: Dict[Tuple[str, str], int] = {}
    for event in events:
        process, lane = event.track
        if process not in pids:
            pids[process] = len(pids) + 1
        if (process, lane) not in tids:
            tids[(process, lane)] = len(tids) + 1
    return pids, tids


def chrome_trace(telemetry: AnyTelemetry) -> dict:
    """Render a capture as a Chrome trace-event JSON object."""
    events = list(telemetry.events)
    pids, tids = _track_ids(events)

    trace_events: List[dict] = []
    for process, pid in pids.items():
        trace_events.append({
            "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
            "args": {"name": process},
        })
    for (process, lane), tid in tids.items():
        trace_events.append({
            "ph": "M", "name": "thread_name", "pid": pids[process],
            "tid": tid, "args": {"name": lane},
        })

    for event in events:
        process, lane = event.track
        record = {
            "name": event.name,
            "cat": event.category,
            "ph": event.phase,
            "ts": event.ts,
            "pid": pids[process],
            "tid": tids[(process, lane)],
            "args": dict(event.args),
        }
        if event.phase == PHASE_SPAN:
            record["dur"] = event.dur
        elif event.phase == PHASE_INSTANT:
            record["s"] = "t"  # thread-scoped instant
        trace_events.append(record)

    # Counters ride along as "C"-phase (counter) events under a
    # dedicated process, so Perfetto plots them as series instead of
    # dropping them from the trace.  Instrumentation sites that pass a
    # timestamp contribute a full time series (one sample per update);
    # every counter additionally gets a final sample at the end of the
    # trace so last-write-only counters still render.
    counter_rows = telemetry.counters.rows() if not isinstance(
        telemetry, NullTelemetry
    ) else []
    if counter_rows:
        counter_pid = len(pids) + 1
        trace_events.append({
            "ph": "M", "name": "process_name", "pid": counter_pid,
            "tid": 0, "args": {"name": "counters"},
        })
        end_ts = max((e.end for e in events), default=0.0)
        samples = sorted(
            telemetry.counter_samples,
            key=lambda s: (s.group, s.name, s.ts),
        )
        for sample in samples:
            trace_events.append({
                "name": f"{sample.group}:{sample.name}", "cat": "counter",
                "ph": "C", "ts": sample.ts, "pid": counter_pid, "tid": 0,
                "args": {sample.name: sample.value},
            })
            end_ts = max(end_ts, sample.ts)
        for group, name, value in counter_rows:
            trace_events.append({
                "name": f"{group}:{name}", "cat": "counter", "ph": "C",
                "ts": end_ts, "pid": counter_pid, "tid": 0,
                "args": {name: value},
            })

    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(telemetry: AnyTelemetry, path: str) -> str:
    """Write the capture as Chrome trace JSON; returns ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(chrome_trace(telemetry), fh)
    return path


def counters_csv(telemetry: AnyTelemetry) -> str:
    """Flat ``group,counter,value`` CSV of every counter."""
    out = io.StringIO()
    out.write("group,counter,value\n")
    for group, name, value in telemetry.counters.rows():
        text = f"{value:.6g}" if value != int(value) else str(int(value))
        out.write(f"{group},{name},{text}\n")
    return out.getvalue()


def write_counters_csv(telemetry: AnyTelemetry, path: str) -> str:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(counters_csv(telemetry))
    return path


def counter_table(telemetry: AnyTelemetry, title: str = "Counters"):
    """The counters as a human :class:`repro.bench.reporting.Table`."""
    from repro.bench.reporting import Table

    table = Table(title, ["group", "counter", "value"])
    for group, name, value in telemetry.counters.rows():
        text = f"{value:,.6g}" if value != int(value) else f"{int(value):,}"
        table.add(group, name, text)
    return table


def summarize(telemetry: AnyTelemetry) -> str:
    """One-paragraph description of a capture's contents."""
    events = list(telemetry.events)
    spans = sum(1 for e in events if e.phase == PHASE_SPAN)
    instants = len(events) - spans
    categories = sorted({e.category for e in events})
    return (
        f"{len(events)} events ({spans} spans, {instants} instants) in "
        f"{len(categories)} categories "
        f"[{', '.join(categories) if categories else 'none'}], "
        f"{len(telemetry.counters)} counters"
    )
