"""Per-tile cycle accounting and stall-cause attribution.

Both simulators report where cycles go through the same three-way
split, so one table (and one test) covers both:

* **busy** — the tile was executing (engine: instruction cycle costs;
  analytical: the stage's 2D-PE/SFU compute term);
* **blocked** — the tile was waiting on data movement or a tracker
  (engine: blocked-retry stall cycles; analytical: the link/external
  memory portion of the stage latency);
* **stalled** — the tile was idle against the pipeline beat (analytical
  model only: the bottleneck stage sets the beat, every faster stage
  idles for the difference).

For the functional engine the numbers come from the counters the engine
flushes into the telemetry registry (``tile/<id>`` groups); for the
analytical model they are derived from the per-stage
:class:`~repro.compiler.cost.StepCost` breakdown, so
``busy + blocked + stalled == bottleneck cycles`` for every tile group
by construction.

On top of the three-way split, :func:`analytical_attribution` and
:func:`engine_attribution` refine "not busy" into a **stall-cause
taxonomy** — compute-bound, DMA-bound, tracker-blocked, link-bound,
pipeline-beat-idle — and the analytical side joins each tile group with
its layers' :class:`~repro.arch.roofline.Boundedness`, so one table
answers "where do the cycles go and what would fix it".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from repro.telemetry.core import NullTelemetry, Telemetry


@dataclass(frozen=True)
class TileGroupProfile:
    """Cycle accounting for one group of identically-scheduled tiles."""

    group: str  # "c0r1" for an engine tile; "conv1/fp" analytically
    chip: str
    tiles: int  # CompHeavy tiles covered by this row
    busy_cycles: float
    blocked_cycles: float
    stalled_cycles: float
    #: Denominator for utilization when the group paces against a
    #: pipeline beat (analytical model); 0.0 means "use total_cycles".
    beat_cycles: float = 0.0

    @property
    def total_cycles(self) -> float:
        return self.busy_cycles + self.blocked_cycles + self.stalled_cycles

    @property
    def utilization(self) -> float:
        """busy / total (or busy / beat when a beat is set), guarded: a
        trivial or skipped tile group with zero cycles renders 0.0
        instead of raising ZeroDivisionError."""
        denominator = self.beat_cycles or self.total_cycles
        return self.busy_cycles / denominator if denominator else 0.0


def engine_tile_profile(
    telemetry: "Telemetry | NullTelemetry",
) -> List[TileGroupProfile]:
    """Per-CompHeavy-tile profile from an engine capture's counters."""
    rows: List[TileGroupProfile] = []
    for group in telemetry.counters.groups():
        if not group.startswith("tile/"):
            continue
        values = telemetry.counters.group(group)
        busy = values.get("busy_cycles", 0.0)
        blocked = values.get("stalled_cycles", 0.0)
        rows.append(
            TileGroupProfile(
                group=group[len("tile/"):],
                chip="engine",
                tiles=1,
                busy_cycles=busy,
                blocked_cycles=blocked,
                stalled_cycles=0.0,
            )
        )
    return rows


def analytical_tile_profile(result) -> List[TileGroupProfile]:
    """Per-(unit, step) tile-group profile from a :class:`PerfResult`.

    Every pipeline stage owns ``columns x rows`` CompHeavy tiles; the
    slowest stage sets the pipeline beat.  A stage's compute term is its
    busy time, the remainder of its latency is blocked on data movement,
    and the gap up to the beat is pipeline stall.
    """
    node = result.mapping.node
    chips = {
        node.cluster.conv_chip.kind.value: node.cluster.conv_chip,
        node.cluster.fc_chip.kind.value: node.cluster.fc_chip,
    }
    beat = result.bottleneck.cycles
    rows: List[TileGroupProfile] = []
    for stage in result.stages:
        chip = chips[stage.chip]
        cost = stage.cost
        busy = min(max(cost.compute_cycles, cost.sfu_cycles), stage.cycles)
        blocked = stage.cycles - busy
        stalled = beat - stage.cycles
        rows.append(
            TileGroupProfile(
                group=f"{stage.unit}/{stage.step.value}",
                chip=stage.chip,
                tiles=cost.columns * chip.rows,
                busy_cycles=busy,
                blocked_cycles=blocked,
                stalled_cycles=stalled,
                beat_cycles=beat,
            )
        )
    return rows


def profile_table(rows: List[TileGroupProfile], title: str):
    """Render profiles as a :class:`repro.bench.reporting.Table`."""
    from repro.bench.reporting import Table

    table = Table(
        title,
        ["tile group", "chip", "tiles", "busy", "blocked", "stalled",
         "util"],
    )
    for row in sorted(rows, key=lambda r: -r.busy_cycles):
        table.add(
            row.group, row.chip, row.tiles,
            f"{row.busy_cycles:,.0f}", f"{row.blocked_cycles:,.0f}",
            f"{row.stalled_cycles:,.0f}", f"{row.utilization:.2f}",
        )
    return table


# ---------------------------------------------------------------------------
# Stall-cause taxonomy and bottleneck attribution
# ---------------------------------------------------------------------------
class StallCause(enum.Enum):
    """Where a tile group's cycles go, refined beyond busy/blocked."""

    COMPUTE = "compute-bound"
    DMA = "dma-bound"
    TRACKER = "tracker-blocked"
    LINK = "link-bound"
    BEAT_IDLE = "pipeline-beat-idle"


#: What would recover the cycles lost to each cause — the "what would
#: fix it" column of the attribution table.
CAUSE_REMEDIES: Dict[StallCause, str] = {
    StallCause.COMPUTE: "more columns / Winograd / wider arrays",
    StallCause.DMA: "weight batching / more external bandwidth",
    StallCause.TRACKER: "finer tracker ranges / deeper double-buffering",
    StallCause.LINK: "fewer boundary crossings / wider on-chip links",
    StallCause.BEAT_IDLE: "rebalance columns toward the bottleneck stage",
}


@dataclass(frozen=True)
class StallAttribution:
    """Per-cause cycle split for one tile group, with the roofline
    verdict of the layers it serves (analytical rows only)."""

    group: str
    simulator: str  # "engine" | "analytical"
    chip: str
    cycles: Mapping[StallCause, float] = field(default_factory=dict)
    boundedness: Optional[str] = None  # Boundedness.value, if joined

    @property
    def total_cycles(self) -> float:
        return sum(self.cycles.values())

    @property
    def dominant(self) -> StallCause:
        """The cause owning the most cycles (ties break in enum order,
        so attribution is deterministic)."""
        best = StallCause.COMPUTE
        best_cycles = -1.0
        for cause in StallCause:
            value = self.cycles.get(cause, 0.0)
            if value > best_cycles:
                best, best_cycles = cause, value
        return best

    @property
    def remedy(self) -> str:
        return CAUSE_REMEDIES[self.dominant]

    def share(self, cause: StallCause) -> float:
        total = self.total_cycles
        return self.cycles.get(cause, 0.0) / total if total else 0.0


def analytical_attribution(result) -> List[StallAttribution]:
    """Stall-cause split per (unit, step) stage, joined with the
    roofline boundedness of the stage's FLOPs-dominant member layer.

    The compute term is compute-bound time; the remainder of the stage
    latency splits between DMA (external memory) and on-chip links in
    proportion to their cycle terms; the gap to the pipeline beat is
    beat idle.
    """
    from repro.arch.roofline import chip_roofline, network_roofline
    from repro.dnn.analysis import profile as step_profile

    mapping = result.mapping
    net = mapping.network
    node = mapping.node
    chips = {
        node.cluster.conv_chip.kind.value: node.cluster.conv_chip,
        node.cluster.fc_chip.kind.value: node.cluster.fc_chip,
    }
    beat = result.bottleneck.cycles
    fc_units = set(mapping.fc_allocations)

    # Per-(chip, step, batch) roofline points, computed once each.
    point_cache: Dict[tuple, Dict[str, object]] = {}

    def boundedness_of(stage) -> Optional[str]:
        alloc = (
            mapping.conv_allocations.get(stage.unit)
            or mapping.fc_allocations.get(stage.unit)
        )
        if alloc is None:
            return None
        batch = (
            max(1, mapping.fc_batch_size)
            if stage.unit in fc_units else 1
        )
        key = (stage.chip, stage.step, batch)
        if key not in point_cache:
            roofline = chip_roofline(chips[stage.chip], node.frequency_hz)
            point_cache[key] = {
                p.layer: p
                for p in network_roofline(
                    net, roofline, stage.step, node.dtype_bytes,
                    weight_reuse_batch=batch,
                )
            }
        points = point_cache[key]
        dominant, flops = None, -1.0
        for member in alloc.members:
            point = points.get(member)
            if point is None:
                continue
            member_flops = step_profile(
                net[member], stage.step, node.dtype_bytes
            ).flops
            if member_flops > flops:
                dominant, flops = point, member_flops
        return dominant.boundedness.value if dominant else None

    rows: List[StallAttribution] = []
    for stage in result.stages:
        cost = stage.cost
        busy = min(max(cost.compute_cycles, cost.sfu_cycles), stage.cycles)
        blocked = stage.cycles - busy
        link_term = cost.comp_mem_link_cycles + cost.mem_mem_link_cycles
        dma_term = cost.ext_mem_cycles
        denominator = link_term + dma_term
        if denominator > 0.0:
            dma = blocked * dma_term / denominator
            link = blocked - dma
        else:
            dma, link = 0.0, blocked
        rows.append(
            StallAttribution(
                group=f"{stage.unit}/{stage.step.value}",
                simulator="analytical",
                chip=stage.chip,
                cycles={
                    StallCause.COMPUTE: busy,
                    StallCause.DMA: dma,
                    StallCause.LINK: link,
                    StallCause.TRACKER: 0.0,
                    StallCause.BEAT_IDLE: beat - stage.cycles,
                },
                boundedness=boundedness_of(stage),
            )
        )
    return rows


def engine_attribution(
    telemetry: "Telemetry | NullTelemetry",
) -> List[StallAttribution]:
    """Stall-cause split per engine CompHeavy tile from a capture.

    Busy cycles split between compute and DMA by the per-tile
    ``dma_cycles`` counter (cycle cost of DMALOAD/DMASTORE/PREFETCH);
    every engine stall is a tracker block by construction (the only
    blocking resource in the instruction-level model).
    """
    rows: List[StallAttribution] = []
    for group in telemetry.counters.groups():
        if not group.startswith("tile/"):
            continue
        values = telemetry.counters.group(group)
        busy = values.get("busy_cycles", 0.0)
        dma = min(values.get("dma_cycles", 0.0), busy)
        rows.append(
            StallAttribution(
                group=group[len("tile/"):],
                simulator="engine",
                chip="engine",
                cycles={
                    StallCause.COMPUTE: busy - dma,
                    StallCause.DMA: dma,
                    StallCause.TRACKER: values.get("stalled_cycles", 0.0),
                    StallCause.LINK: 0.0,
                    StallCause.BEAT_IDLE: 0.0,
                },
            )
        )
    return rows


def attribution_table(rows: List[StallAttribution], title: str):
    """Render attributions as a :class:`repro.bench.reporting.Table`:
    one row per tile group — where the cycles go and what would fix
    it."""
    from repro.bench.reporting import Table

    table = Table(
        title,
        ["tile group", "sim", "compute", "dma", "tracker", "link",
         "beat-idle", "roofline", "dominant", "what would fix it"],
    )
    for row in sorted(rows, key=lambda r: -r.total_cycles):
        table.add(
            row.group, row.simulator,
            *(f"{row.share(cause):.2f}" for cause in StallCause),
            row.boundedness or "-",
            row.dominant.value, row.remedy,
        )
    return table
