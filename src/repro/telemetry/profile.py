"""Per-tile cycle accounting, from either simulation model.

Both simulators report where cycles go through the same three-way
split, so one table (and one test) covers both:

* **busy** — the tile was executing (engine: instruction cycle costs;
  analytical: the stage's 2D-PE/SFU compute term);
* **blocked** — the tile was waiting on data movement or a tracker
  (engine: blocked-retry stall cycles; analytical: the link/external
  memory portion of the stage latency);
* **stalled** — the tile was idle against the pipeline beat (analytical
  model only: the bottleneck stage sets the beat, every faster stage
  idles for the difference).

For the functional engine the numbers come from the counters the engine
flushes into the telemetry registry (``tile/<id>`` groups); for the
analytical model they are derived from the per-stage
:class:`~repro.compiler.cost.StepCost` breakdown, so
``busy + blocked + stalled == bottleneck cycles`` for every tile group
by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.telemetry.core import NullTelemetry, Telemetry


@dataclass(frozen=True)
class TileGroupProfile:
    """Cycle accounting for one group of identically-scheduled tiles."""

    group: str  # "c0r1" for an engine tile; "conv1/fp" analytically
    chip: str
    tiles: int  # CompHeavy tiles covered by this row
    busy_cycles: float
    blocked_cycles: float
    stalled_cycles: float
    utilization: float  # busy / (busy + blocked + stalled)

    @property
    def total_cycles(self) -> float:
        return self.busy_cycles + self.blocked_cycles + self.stalled_cycles


def engine_tile_profile(
    telemetry: "Telemetry | NullTelemetry",
) -> List[TileGroupProfile]:
    """Per-CompHeavy-tile profile from an engine capture's counters."""
    rows: List[TileGroupProfile] = []
    for group in telemetry.counters.groups():
        if not group.startswith("tile/"):
            continue
        values = telemetry.counters.group(group)
        busy = values.get("busy_cycles", 0.0)
        blocked = values.get("stalled_cycles", 0.0)
        total = busy + blocked
        rows.append(
            TileGroupProfile(
                group=group[len("tile/"):],
                chip="engine",
                tiles=1,
                busy_cycles=busy,
                blocked_cycles=blocked,
                stalled_cycles=0.0,
                utilization=busy / total if total else 0.0,
            )
        )
    return rows


def analytical_tile_profile(result) -> List[TileGroupProfile]:
    """Per-(unit, step) tile-group profile from a :class:`PerfResult`.

    Every pipeline stage owns ``columns x rows`` CompHeavy tiles; the
    slowest stage sets the pipeline beat.  A stage's compute term is its
    busy time, the remainder of its latency is blocked on data movement,
    and the gap up to the beat is pipeline stall.
    """
    node = result.mapping.node
    chips = {
        node.cluster.conv_chip.kind.value: node.cluster.conv_chip,
        node.cluster.fc_chip.kind.value: node.cluster.fc_chip,
    }
    beat = result.bottleneck.cycles
    rows: List[TileGroupProfile] = []
    for stage in result.stages:
        chip = chips[stage.chip]
        cost = stage.cost
        busy = min(max(cost.compute_cycles, cost.sfu_cycles), stage.cycles)
        blocked = stage.cycles - busy
        stalled = beat - stage.cycles
        rows.append(
            TileGroupProfile(
                group=f"{stage.unit}/{stage.step.value}",
                chip=stage.chip,
                tiles=cost.columns * chip.rows,
                busy_cycles=busy,
                blocked_cycles=blocked,
                stalled_cycles=stalled,
                utilization=busy / beat if beat else 0.0,
            )
        )
    return rows


def profile_table(rows: List[TileGroupProfile], title: str):
    """Render profiles as a :class:`repro.bench.reporting.Table`."""
    from repro.bench.reporting import Table

    table = Table(
        title,
        ["tile group", "chip", "tiles", "busy", "blocked", "stalled",
         "util"],
    )
    for row in sorted(rows, key=lambda r: -r.busy_cycles):
        table.add(
            row.group, row.chip, row.tiles,
            f"{row.busy_cycles:,.0f}", f"{row.blocked_cycles:,.0f}",
            f"{row.stalled_cycles:,.0f}", f"{row.utilization:.2f}",
        )
    return table
