"""Observability layer: counters, spans and trace/profile exporters.

Zero-overhead when disabled (the default): instrumented code guards on
the null handle's ``enabled`` flag.  Typical use::

    from repro.telemetry import capture, write_chrome_trace

    with capture() as tel:
        engine.run()
    write_chrome_trace(tel, "trace.json")
"""

from repro.telemetry.core import (
    CounterRegistry,
    CounterSample,
    Event,
    NULL_TELEMETRY,
    NullTelemetry,
    PHASE_INSTANT,
    PHASE_SPAN,
    Telemetry,
    Track,
    capture,
    get_telemetry,
    set_telemetry,
)
from repro.telemetry.metrics import (
    HISTOGRAM_EXACT_CAP,
    Histogram,
    MetricsRegistry,
    SUMMARY_PERCENTILES,
    VOLATILE_GROUP_PREFIX,
    percentile_table,
)
from repro.telemetry.export import (
    chrome_trace,
    counter_table,
    counters_csv,
    summarize,
    write_chrome_trace,
    write_counters_csv,
)
from repro.telemetry.profile import (
    CAUSE_REMEDIES,
    StallAttribution,
    StallCause,
    TileGroupProfile,
    analytical_attribution,
    analytical_tile_profile,
    attribution_table,
    engine_attribution,
    engine_tile_profile,
    profile_table,
)

__all__ = [
    "CAUSE_REMEDIES",
    "CounterRegistry",
    "CounterSample",
    "Event",
    "HISTOGRAM_EXACT_CAP",
    "Histogram",
    "MetricsRegistry",
    "SUMMARY_PERCENTILES",
    "StallAttribution",
    "StallCause",
    "VOLATILE_GROUP_PREFIX",
    "NULL_TELEMETRY",
    "NullTelemetry",
    "PHASE_INSTANT",
    "PHASE_SPAN",
    "Telemetry",
    "TileGroupProfile",
    "Track",
    "analytical_attribution",
    "analytical_tile_profile",
    "attribution_table",
    "capture",
    "chrome_trace",
    "counter_table",
    "counters_csv",
    "engine_attribution",
    "engine_tile_profile",
    "get_telemetry",
    "percentile_table",
    "profile_table",
    "set_telemetry",
    "summarize",
    "write_chrome_trace",
    "write_counters_csv",
]
