"""System-level architecture: N ScaleDeep nodes on an inter-node fabric.

The paper evaluates one node (a ring of 4 chip clusters, Sec 3.3), but
its scalability argument — and any production training/serving story —
runs many of them.  This module lifts :class:`~repro.arch.node.NodeConfig`
from the implicit top of the world into a leaf of :class:`SystemConfig`:
``N`` identical nodes joined by a flat inter-node fabric (bandwidth per
node endpoint plus a per-hop latency), trained under an explicit
:class:`ParallelismStrategy`:

* **data** — every node holds a full model replica and works a slice of
  the minibatch; gradients all-reduce across the fabric each minibatch;
* **model** — one replica's layers shard across all nodes; boundary
  activations (features forward, errors backward) cross the fabric
  instead of gradients;
* **hybrid** — model-parallel groups of ``model_group`` nodes, data
  parallelism across the ``N / model_group`` groups (the gradient
  payload per group shrinks by the shard count).

Gradient synchronization is selectable: a bandwidth-optimal multi-level
**ring** over the nodes (the node-internal ring's own scheme, one level
up) or a latency-optimal hierarchical **tree** (reduce-then-broadcast).
The cycle models live in :mod:`repro.sim.allreduce`.

:class:`TCOModel` holds the capex/opex constants the $-cost layer
(:mod:`repro.sim.tco`) folds with the power model into $/training-run
and $/1M-inferences; the calibrated defaults live in
:mod:`repro.arch.presets`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.arch.chip import GB
from repro.arch.node import NodeConfig
from repro.errors import ConfigError

#: Inter-node fabric bandwidth per node endpoint: four bonded 100 Gb/s
#: EDR-class ports — the era-appropriate envelope for a 1.4 kW node.
DEFAULT_FABRIC_BANDWIDTH = 50 * GB

#: One-way inter-node hop latency (switched EDR-class fabric).
DEFAULT_FABRIC_LATENCY_S = 1.5e-6


class Parallelism(enum.Enum):
    """How the training job spreads across the system's nodes."""

    DATA = "data"
    MODEL = "model"
    HYBRID = "hybrid"


class GradientSync(enum.Enum):
    """Inter-node gradient all-reduce algorithm."""

    RING = "ring"  # multi-level ring: bandwidth-optimal, O(n) latency
    TREE = "tree"  # reduce-then-broadcast: O(log n) rounds, full payload


@dataclass(frozen=True)
class ParallelismStrategy:
    """A parallelism kind plus its gradient-sync algorithm.

    ``model_group`` only matters for hybrid parallelism: the number of
    nodes sharing one model shard group (data parallelism runs across
    the groups).  A group of 1 degenerates to pure data parallelism —
    the N=1 identity the byte-compatibility contract relies on.
    """

    kind: Parallelism = Parallelism.DATA
    gradient_sync: GradientSync = GradientSync.RING
    model_group: int = 1

    def __post_init__(self) -> None:
        if not isinstance(self.kind, Parallelism):
            raise ConfigError(f"kind must be a Parallelism, got {self.kind!r}")
        if not isinstance(self.gradient_sync, GradientSync):
            raise ConfigError(
                f"gradient_sync must be a GradientSync, got "
                f"{self.gradient_sync!r}"
            )
        if self.model_group < 1:
            raise ConfigError(
                f"model_group must be >= 1, got {self.model_group}"
            )
        if self.kind is not Parallelism.HYBRID and self.model_group != 1:
            raise ConfigError(
                f"model_group only applies to hybrid parallelism "
                f"(got {self.kind.value!r} with group {self.model_group})"
            )

    @classmethod
    def parse(cls, token: str) -> "ParallelismStrategy":
        """Parse ``kind[:group][/sync]`` — e.g. ``data``, ``model/tree``,
        ``hybrid:4``, ``hybrid:2/tree``.  Hybrid defaults to groups of 2.
        """
        spec = token.strip().lower()
        sync = GradientSync.RING
        if "/" in spec:
            spec, _, sync_token = spec.partition("/")
            try:
                sync = GradientSync(sync_token)
            except ValueError:
                raise ConfigError(
                    f"unknown gradient sync {sync_token!r} in "
                    f"{token!r} (choose from: "
                    f"{', '.join(s.value for s in GradientSync)})"
                ) from None
        group = None
        if ":" in spec:
            spec, _, group_token = spec.partition(":")
            try:
                group = int(group_token)
            except ValueError:
                raise ConfigError(
                    f"model group in {token!r} must be an integer, "
                    f"got {group_token!r}"
                ) from None
        try:
            kind = Parallelism(spec)
        except ValueError:
            raise ConfigError(
                f"unknown parallelism {spec!r} in {token!r} (choose "
                f"from: {', '.join(p.value for p in Parallelism)})"
            ) from None
        if group is None:
            group = 2 if kind is Parallelism.HYBRID else 1
        return cls(kind=kind, gradient_sync=sync, model_group=group)

    @property
    def token(self) -> str:
        """The canonical ``kind[:group]/sync`` spelling (round-trips
        through :meth:`parse`) — the sweep's exported ``strategy``
        column."""
        base = self.kind.value
        if self.kind is Parallelism.HYBRID:
            base += f":{self.model_group}"
        return f"{base}/{self.gradient_sync.value}"

    def describe(self) -> str:
        group = (
            f" (groups of {self.model_group})"
            if self.kind is Parallelism.HYBRID else ""
        )
        return (
            f"{self.kind.value} parallel{group}, "
            f"{self.gradient_sync.value} gradient sync"
        )


@dataclass(frozen=True)
class SystemConfig:
    """``node_count`` identical nodes on a flat inter-node fabric."""

    name: str
    node: NodeConfig
    node_count: int = 1
    fabric_bandwidth: float = DEFAULT_FABRIC_BANDWIDTH  # bytes/s per node
    fabric_latency_s: float = DEFAULT_FABRIC_LATENCY_S
    strategy: ParallelismStrategy = field(default_factory=ParallelismStrategy)

    def __post_init__(self) -> None:
        if self.node_count < 1:
            raise ConfigError("system needs at least one node")
        if self.fabric_bandwidth <= 0:
            raise ConfigError("fabric bandwidth must be positive")
        if self.fabric_latency_s < 0:
            raise ConfigError("fabric latency must be >= 0")
        shards = self.model_shards
        if shards > self.node_count or self.node_count % shards != 0:
            raise ConfigError(
                f"model group {shards} does not divide the "
                f"{self.node_count}-node system"
            )

    # ------------------------------------------------------------------
    @property
    def model_shards(self) -> int:
        """Nodes one model replica spans."""
        if self.strategy.kind is Parallelism.MODEL:
            return self.node_count
        if self.strategy.kind is Parallelism.HYBRID:
            return self.strategy.model_group
        return 1

    @property
    def replicas(self) -> int:
        """Data-parallel model replicas (the all-reduce participants)."""
        return self.node_count // self.model_shards

    @property
    def comp_tile_count(self) -> int:
        return self.node_count * self.node.comp_tile_count

    @property
    def mem_tile_count(self) -> int:
        return self.node_count * self.node.mem_tile_count

    @property
    def tile_count(self) -> int:
        return self.node_count * self.node.tile_count

    @property
    def peak_flops(self) -> float:
        return self.node_count * self.node.peak_flops

    def describe(self) -> str:
        """Multi-line summary labelling per-node vs system quantities."""
        lines = [
            f"ScaleDeep system {self.name!r}: {self.node_count} node(s), "
            f"{self.strategy.describe()}",
            f"  fabric: {self.fabric_bandwidth / 1e9:g} GB/s per node, "
            f"{self.fabric_latency_s * 1e6:g} us/hop",
            f"  per-node: {self.node.tile_count} tiles, "
            f"{self.node.peak_flops / 1e12:.1f} TFLOP/s peak",
            f"  system:   {self.tile_count} tiles, "
            f"{self.peak_flops / 1e12:.1f} TFLOP/s peak "
            f"({self.replicas} replica(s) x {self.model_shards} shard "
            f"node(s))",
        ]
        return "\n".join(lines)


def make_system(
    node: NodeConfig,
    node_count: int = 1,
    strategy: "ParallelismStrategy | str" = "data",
    fabric_bandwidth: float = DEFAULT_FABRIC_BANDWIDTH,
    fabric_latency_s: float = DEFAULT_FABRIC_LATENCY_S,
) -> SystemConfig:
    """A system of ``node_count`` copies of ``node``.

    ``strategy`` accepts a :class:`ParallelismStrategy` or a
    :meth:`~ParallelismStrategy.parse` token.  A hybrid group larger
    than the system clamps down to ``node_count`` (so ``hybrid`` at
    ``--nodes 1`` degenerates cleanly instead of failing validation);
    a group that does not divide the node count still raises.
    """
    if isinstance(strategy, str):
        strategy = ParallelismStrategy.parse(strategy)
    if (
        strategy.kind is Parallelism.HYBRID
        and strategy.model_group > node_count
    ):
        strategy = ParallelismStrategy(
            kind=strategy.kind,
            gradient_sync=strategy.gradient_sync,
            model_group=node_count,
        )
    return SystemConfig(
        name=f"{node.name}-x{node_count}",
        node=node,
        node_count=node_count,
        fabric_bandwidth=fabric_bandwidth,
        fabric_latency_s=fabric_latency_s,
        strategy=strategy,
    )


@dataclass(frozen=True)
class TCOModel:
    """Capex/opex constants behind the $-cost layer.

    ``node_capex_usd`` amortizes linearly over ``depreciation_years``;
    ``opex_factor`` adds hosting/staffing as a fraction on top of the
    amortized capex; energy is metered at ``electricity_usd_per_kwh``
    behind a datacenter ``pue``.
    """

    node_capex_usd: float
    fabric_capex_usd_per_node: float
    depreciation_years: float
    electricity_usd_per_kwh: float
    pue: float
    opex_factor: float

    def __post_init__(self) -> None:
        if self.node_capex_usd < 0 or self.fabric_capex_usd_per_node < 0:
            raise ConfigError("capex must be >= 0")
        if self.depreciation_years <= 0:
            raise ConfigError("depreciation_years must be positive")
        if self.electricity_usd_per_kwh < 0:
            raise ConfigError("electricity price must be >= 0")
        if self.pue < 1.0:
            raise ConfigError(f"PUE must be >= 1, got {self.pue}")
        if self.opex_factor < 0:
            raise ConfigError("opex_factor must be >= 0")

    def capex_usd_per_node_hour(self) -> float:
        """Amortized capex (plus the opex overhead) per node-hour."""
        hardware = self.node_capex_usd + self.fabric_capex_usd_per_node
        hours = self.depreciation_years * 8760.0
        return hardware / hours * (1.0 + self.opex_factor)
