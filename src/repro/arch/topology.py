"""The three-tiered grid-wheel-ring interconnect as an explicit graph.

Fig 6 and Fig 12 sketch the hierarchy; this module constructs it as a
networkx graph at chip granularity: ConvLayer chips connected by wheel
arcs, each wheel's chips connected to the FcLayer hub by spokes, hubs
connected in the node-level ring.  On top of it we compute the
structural properties the paper's topology argument rests on — path
lengths between communication partners, bisection bandwidth — and
compare against the conventional fat-tree DaDianNao uses (Sec 7: the
fat tree "does not leverage the data-flow in DNNs, and incurs
additional power and protocol overheads").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import networkx as nx

from repro.arch.node import NodeConfig
from repro.errors import ConfigError


def conv_chip_name(cluster: int, index: int) -> str:
    return f"cluster{cluster}/conv{index}"

def hub_name(cluster: int) -> str:
    return f"cluster{cluster}/hub"


def build_topology(node: NodeConfig) -> nx.Graph:
    """The wheel-and-ring graph of one node, chips as vertices.

    Edge attributes: ``kind`` ("arc" | "spoke" | "ring") and
    ``bandwidth`` (bytes/s, from the node configuration).
    """
    graph = nx.Graph()
    cluster = node.cluster
    for c in range(node.cluster_count):
        hub = hub_name(c)
        graph.add_node(hub, kind="fc")
        chips = [
            conv_chip_name(c, i) for i in range(cluster.conv_chip_count)
        ]
        for chip in chips:
            graph.add_node(chip, kind="conv")
            graph.add_edge(
                chip, hub, kind="spoke",
                bandwidth=cluster.spoke_bandwidth,
            )
        # Wheel arcs connect adjacent ConvLayer chips around the rim
        # (a single-chip wheel has no rim — guard the self-loop).
        if len(chips) > 1:
            for i, chip in enumerate(chips):
                graph.add_edge(
                    chip, chips[(i + 1) % len(chips)], kind="arc",
                    bandwidth=cluster.arc_bandwidth,
                )
    # The ring connects the hubs (one cluster: nothing to ring).
    if node.cluster_count > 1:
        for c in range(node.cluster_count):
            graph.add_edge(
                hub_name(c), hub_name((c + 1) % node.cluster_count),
                kind="ring", bandwidth=node.ring_bandwidth,
            )
    return graph


def build_system_topology(system) -> nx.Graph:
    """The scale-out graph of a multi-node system.

    Each node contributes its full wheel-and-ring graph with vertices
    prefixed ``node<i>/``; the inter-node fabric rings the nodes'
    ``cluster0`` hubs (the fabric endpoint) with ``kind="fabric"``
    edges carrying the system's fabric bandwidth.  A 1-node system is
    exactly :func:`build_topology` with the prefix.
    """
    graph = nx.Graph()
    for n in range(system.node_count):
        node_graph = build_topology(system.node)
        graph.update(
            nx.relabel_nodes(
                node_graph,
                {v: f"node{n}/{v}" for v in node_graph.nodes},
            )
        )
    if system.node_count > 1:
        for n in range(system.node_count):
            graph.add_edge(
                f"node{n}/{hub_name(0)}",
                f"node{(n + 1) % system.node_count}/{hub_name(0)}",
                kind="fabric", bandwidth=system.fabric_bandwidth,
            )
    return graph


def degraded_topology(node: NodeConfig, faults) -> nx.Graph:
    """The node graph with a fault mask's down links removed.

    ``faults`` is a :class:`repro.faults.model.FaultMask` (duck-typed:
    anything with ``down_arcs`` / ``down_ring`` works).  Raises
    :class:`ConfigError` if the surviving graph is disconnected — a
    partitioned machine cannot run a single training job.
    """
    graph = build_topology(node)
    wheel = node.cluster.conv_chip_count
    for cluster, i in faults.down_arcs:
        a = conv_chip_name(cluster, i)
        b = conv_chip_name(cluster, (i + 1) % wheel)
        if graph.has_edge(a, b):
            graph.remove_edge(a, b)
    for i in faults.down_ring:
        a = hub_name(i)
        b = hub_name((i + 1) % node.cluster_count)
        if graph.has_edge(a, b):
            graph.remove_edge(a, b)
    if not nx.is_connected(graph):
        raise ConfigError(
            f"fault mask partitions the node: "
            f"{len(faults.down_arcs)} wheel arc(s) and "
            f"{len(faults.down_ring)} ring link(s) down"
        )
    return graph


def reroute_penalties(node: NodeConfig, faults) -> Dict[str, float]:
    """Average hop inflation caused by a fault mask's down links.

    Compares producer->consumer and CONV->hub hop counts on the
    degraded graph against the healthy one — the structural cost the
    perf/sync models approximate with their reroute multipliers.
    """
    healthy = profile_topology(build_topology(node), "healthy")
    hurt = profile_topology(degraded_topology(node, faults), "degraded")
    return {
        "neighbour_hops": hurt.neighbour_hops
        / max(1.0, healthy.neighbour_hops),
        "fc_hops": hurt.fc_hops / max(1.0, healthy.fc_hops),
        "diameter": hurt.diameter / max(1, healthy.diameter),
    }


def build_fat_tree(
    leaves: int, link_bandwidth: float, arity: int = 4
) -> nx.Graph:
    """A conventional fat tree over ``leaves`` accelerator chips — the
    DaDianNao-style alternative (Sec 7)."""
    if leaves < 1 or arity < 2:
        raise ConfigError("fat tree needs leaves >= 1 and arity >= 2")
    graph = nx.Graph()
    level = [f"leaf{i}" for i in range(leaves)]
    for name in level:
        graph.add_node(name, kind="conv")
    depth = 0
    while len(level) > 1:
        depth += 1
        parents = []
        for start in range(0, len(level), arity):
            parent = f"sw{depth}.{start // arity}"
            graph.add_node(parent, kind="switch")
            parents.append(parent)
            for child in level[start:start + arity]:
                # Classic fat tree: capacity doubles toward the root.
                graph.add_edge(
                    child, parent, kind="tree",
                    bandwidth=link_bandwidth * (2 ** (depth - 1)),
                )
        level = parents
    return graph


@dataclass(frozen=True)
class TopologyProfile:
    """Structural properties of an interconnect."""

    name: str
    chips: int
    links: int
    switch_nodes: int  # dedicated routing hardware (0 for ScaleDeep)
    neighbour_hops: float  # producer->consumer (adjacent CONV chips)
    fc_hops: float  # CONV chip -> FC execution resource
    diameter: int


def _conv_nodes(graph: nx.Graph) -> List[str]:
    return [n for n, d in graph.nodes(data=True) if d["kind"] == "conv"]


def profile_topology(graph: nx.Graph, name: str) -> TopologyProfile:
    """Measure the properties the paper's argument uses."""
    conv = _conv_nodes(graph)
    switches = [
        n for n, d in graph.nodes(data=True) if d["kind"] == "switch"
    ]
    fc = [n for n, d in graph.nodes(data=True) if d["kind"] == "fc"]

    # Producer->consumer: the shortest path between distinct CONV chips
    # (layer sequences split across chips talk to a neighbour).
    neighbour = min(
        nx.shortest_path_length(graph, conv[0], other)
        for other in conv[1:]
    ) if len(conv) > 1 else 0

    # CONV -> FC resource: hops to the nearest FC-capable node (hub), or
    # to another leaf for the homogeneous fat tree (FC runs on a peer).
    if fc:
        fc_hops = sum(
            min(nx.shortest_path_length(graph, c, h) for h in fc)
            for c in conv
        ) / len(conv)
    else:
        fc_hops = sum(
            min(
                nx.shortest_path_length(graph, c, other)
                for other in conv if other != c
            )
            for c in conv
        ) / len(conv)

    return TopologyProfile(
        name=name,
        chips=len(conv) + len(fc),
        links=graph.number_of_edges(),
        switch_nodes=len(switches),
        neighbour_hops=float(neighbour),
        fc_hops=float(fc_hops),
        diameter=nx.diameter(graph),
    )


def bisection_bandwidth(graph: nx.Graph) -> float:
    """Minimum total bandwidth crossing any balanced cut (approximated
    with the weighted minimum edge cut — exact for these small graphs'
    purposes)."""
    cut_value, _ = nx.stoer_wagner(graph, weight="bandwidth")
    return float(cut_value)


def compare_with_fat_tree(node: NodeConfig) -> Dict[str, TopologyProfile]:
    """ScaleDeep's topology vs a fat tree over the same chip count."""
    ours = build_topology(node)
    chips = len(_conv_nodes(ours)) + sum(
        1 for _, d in ours.nodes(data=True) if d["kind"] == "fc"
    )
    tree = build_fat_tree(chips, node.cluster.arc_bandwidth)
    return {
        "grid-wheel-ring": profile_topology(ours, "grid-wheel-ring"),
        "fat-tree": profile_topology(tree, "fat-tree"),
    }
