"""Power and processing-efficiency model (paper Fig 14, Sec 6.2).

The paper measures component power by synthesising the tile RTL to Intel
14 nm and folding per-component power into the simulator.  We substitute
the published Fig 14 numbers as the calibrated constants: every component
has a peak power and a (logic, memory, interconnect) split.

Average power follows Sec 6.2's observations: compute (logic) and
interconnect power scale with 2D-PE and link utilization respectively,
while memory power is "largely dominated by leakage" and stays roughly
constant — modelled as a leakage floor plus a small activity-scaled
dynamic part.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

from repro.errors import ConfigError

#: Fraction of memory power that is leakage (always burned).  Sec 6.2:
#: "the memory power, which is largely dominated by leakage, remains
#: largely constant".
MEMORY_LEAKAGE_FRACTION = 0.85

#: Fraction of logic/interconnect peak power burned even when idle
#: (clock distribution, control, leakage).  Calibrated so the suite's
#: average processing efficiency lands near the paper's 331.7 GFLOPs/W.
IDLE_ACTIVITY_FLOOR = 0.25


@dataclass(frozen=True)
class ComponentPower:
    """Peak power of one component and its subsystem split."""

    name: str
    peak_w: float
    logic_frac: float
    memory_frac: float
    interconnect_frac: float

    def __post_init__(self) -> None:
        total = self.logic_frac + self.memory_frac + self.interconnect_frac
        if not 0.99 <= total <= 1.01:
            raise ConfigError(
                f"{self.name}: power fractions must sum to 1, got {total:.3f}"
            )
        if self.peak_w <= 0:
            raise ConfigError(f"{self.name}: peak power must be positive")

    @property
    def logic_w(self) -> float:
        return self.peak_w * self.logic_frac

    @property
    def memory_w(self) -> float:
        return self.peak_w * self.memory_frac

    @property
    def interconnect_w(self) -> float:
        return self.peak_w * self.interconnect_frac


@dataclass(frozen=True)
class PowerDraw:
    """An instantaneous power figure split by subsystem."""

    logic_w: float
    memory_w: float
    interconnect_w: float

    @property
    def total_w(self) -> float:
        return self.logic_w + self.memory_w + self.interconnect_w

    def fraction_of(self, peak: ComponentPower) -> float:
        return self.total_w / peak.peak_w

    def scaled(self, factor: float) -> "PowerDraw":
        """The same draw replicated ``factor`` times — e.g. per-node
        draw lifted to an N-node system."""
        return PowerDraw(
            logic_w=self.logic_w * factor,
            memory_w=self.memory_w * factor,
            interconnect_w=self.interconnect_w * factor,
        )

    def describe(self, scope: str = "per-node") -> str:
        """One-line summary with an explicit scope label, so per-node
        and system-level figures can never be confused."""
        return (
            f"{scope} average power {self.total_w:,.0f} W "
            f"({self.logic_w:,.0f} logic / {self.memory_w:,.0f} memory / "
            f"{self.interconnect_w:,.0f} interconnect)"
        )


class PowerModel:
    """Activity-scaled power for one component.

    Parameters
    ----------
    component:
        Peak power and subsystem split of the component being modelled
        (typically a node, cluster or chip from the Fig 14 table).
    memory_leakage_fraction:
        Portion of the memory subsystem's peak power burned regardless of
        activity.
    """

    def __init__(
        self,
        component: ComponentPower,
        memory_leakage_fraction: float = MEMORY_LEAKAGE_FRACTION,
        idle_activity_floor: float = IDLE_ACTIVITY_FLOOR,
    ) -> None:
        if not 0.0 <= memory_leakage_fraction <= 1.0:
            raise ConfigError("memory_leakage_fraction must be in [0, 1]")
        if not 0.0 <= idle_activity_floor <= 1.0:
            raise ConfigError("idle_activity_floor must be in [0, 1]")
        self.component = component
        self.memory_leakage_fraction = memory_leakage_fraction
        self.idle_activity_floor = idle_activity_floor

    def average(
        self,
        compute_utilization: float,
        link_utilization: float,
        memory_utilization: float = 0.5,
    ) -> PowerDraw:
        """Average power at the given activity levels (all in [0, 1])."""
        for label, value in (
            ("compute", compute_utilization),
            ("link", link_utilization),
            ("memory", memory_utilization),
        ):
            if not 0.0 <= value <= 1.0:
                raise ConfigError(
                    f"{label} utilization must be in [0, 1], got {value}"
                )
        comp = self.component
        leak = self.memory_leakage_fraction
        floor = self.idle_activity_floor

        def scaled(util: float) -> float:
            return floor + (1 - floor) * util

        return PowerDraw(
            logic_w=comp.logic_w * scaled(compute_utilization),
            memory_w=comp.memory_w * (leak + (1 - leak) * memory_utilization),
            interconnect_w=comp.interconnect_w * scaled(link_utilization),
        )

    def efficiency(
        self, achieved_flops_per_s: float, draw: PowerDraw
    ) -> float:
        """Processing efficiency in FLOP/s per watt."""
        if draw.total_w <= 0:
            raise ConfigError("power draw must be positive")
        return achieved_flops_per_s / draw.total_w


def processing_efficiency(peak_flops: float, peak_w: float) -> float:
    """Peak FLOPs/W — the Fig 14 'Processing Efficiency' column."""
    return peak_flops / peak_w


#: Published Fig 14 power rows for the single-precision design, used both
#: as the model's calibrated constants and as reproduction targets.
PAPER_POWER_TABLE: Mapping[str, ComponentPower] = {
    "node": ComponentPower("node", 1400.0, 0.5, 0.1, 0.4),
    "cluster": ComponentPower("cluster", 325.6, 0.55, 0.1, 0.35),
    "conv_chip": ComponentPower("conv_chip", 57.8, 0.7, 0.1, 0.2),
    "conv_comp_tile": ComponentPower("conv_comp_tile", 0.1438, 0.95, 0.05, 0.0),
    "conv_mem_tile": ComponentPower("conv_mem_tile", 0.047, 0.3, 0.7, 0.0),
    "fc_chip": ComponentPower("fc_chip", 15.2, 0.45, 0.25, 0.3),
    "fc_comp_tile": ComponentPower("fc_comp_tile", 0.0459, 0.95, 0.05, 0.0),
    "fc_mem_tile": ComponentPower("fc_mem_tile", 0.0786, 0.2, 0.8, 0.0),
}


def node_power_model(
    memory_leakage_fraction: float = MEMORY_LEAKAGE_FRACTION,
    idle_activity_floor: float = IDLE_ACTIVITY_FLOOR,
) -> PowerModel:
    """Power model for the full node, calibrated to Fig 14."""
    return PowerModel(
        PAPER_POWER_TABLE["node"], memory_leakage_fraction,
        idle_activity_floor,
    )


def cluster_power_model(
    memory_leakage_fraction: float = MEMORY_LEAKAGE_FRACTION,
    idle_activity_floor: float = IDLE_ACTIVITY_FLOOR,
) -> PowerModel:
    """Power model for one chip cluster, calibrated to Fig 14."""
    return PowerModel(
        PAPER_POWER_TABLE["cluster"], memory_leakage_fraction,
        idle_activity_floor,
    )


def estimate_node_power(node) -> float:
    """Estimate peak power of an arbitrary node configuration by
    composing the Fig 14 per-tile powers with the published uncore
    shares.

    Chip power = tile powers / (1 - interconnect fraction); cluster and
    node uncore (wheel links, external memory PHYs, ring) scale with
    the published design's shares.  For the Fig 14 single-precision
    preset this reproduces the 1.4 kW envelope, and it extrapolates
    smoothly as design-space exploration resizes the grids.
    """
    conv = node.cluster.conv_chip
    fc = node.cluster.fc_chip
    table = PAPER_POWER_TABLE

    def chip_power(chip, comp_key: str, mem_key: str, chip_key: str) -> float:
        tiles = (
            chip.comp_tile_count * table[comp_key].peak_w
            + chip.mem_tile_count * table[mem_key].peak_w
        )
        uncore_share = table[chip_key].interconnect_frac
        return tiles / (1.0 - uncore_share)

    conv_w = chip_power(conv, "conv_comp_tile", "conv_mem_tile", "conv_chip")
    fc_w = chip_power(fc, "fc_comp_tile", "fc_mem_tile", "fc_chip")
    chips_w = node.cluster.conv_chip_count * conv_w + fc_w

    # Cluster uncore (spokes, arcs, memory channels): the published
    # cluster burns 325.6 W around 246.4 W of chips -> 32% on top.
    published_chips = 4 * table["conv_chip"].peak_w + table["fc_chip"].peak_w
    cluster_overhead = table["cluster"].peak_w / published_chips
    cluster_w = chips_w * cluster_overhead

    # Node uncore (ring, host): 1400 W around 4 x 325.6 W -> 7.5% on top.
    node_overhead = table["node"].peak_w / (4 * table["cluster"].peak_w)
    return node.cluster_count * cluster_w * node_overhead


def estimate_system_power(system) -> float:
    """Peak power of a multi-node system: ``node_count`` identical nodes
    (the fabric NICs ride inside the node's interconnect share)."""
    return system.node_count * estimate_node_power(system.node)
