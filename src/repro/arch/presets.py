"""Baseline architecture configurations from the paper's Fig 14.

``single_precision_node()`` is the evaluated embodiment: 7032 processing
tiles, 680 TFLOP/s peak at 600 MHz and 1.4 kW.  ``half_precision_node()``
is the Sec 6.1 FP16 variant: the grids grow (ConvLayer 6x16 -> 8x24,
FcLayer 6x8 -> 8x12), while per-tile memory capacity and every link
bandwidth halve, holding power roughly constant and reaching ~1.35
PFLOP/s peak.
"""

from __future__ import annotations

from repro.arch.chip import GB, KB, MB, ChipConfig, ChipKind, LinkBandwidths
from repro.arch.cluster import ClusterConfig
from repro.arch.node import NodeConfig
from repro.arch.system import SystemConfig, TCOModel, make_system
from repro.arch.tiles import CompHeavyConfig, MemHeavyConfig

#: Operating frequency of the evaluated design (Fig 14).
FREQUENCY_HZ = 600e6


def conv_comp_tile() -> CompHeavyConfig:
    """ConvLayer-chip CompHeavy tile: 8x3 2D-PEs with 4 lanes each."""
    return CompHeavyConfig(
        rows=8,
        cols=3,
        lanes=4,
        accumulator_flops=32,
        left_mem_kb=8,
        top_mem_kb=4,
        bottom_mem_kb=4,
        scratchpad_kb=16,
    )


def fc_comp_tile() -> CompHeavyConfig:
    """FcLayer-chip CompHeavy tile: 4x8 single-lane 2D-PEs (matrix-multiply
    shaped: fewer rows, more columns — paper Sec 3.2.5)."""
    return CompHeavyConfig(
        rows=4,
        cols=8,
        lanes=1,
        accumulator_flops=0,
        left_mem_kb=8,
        top_mem_kb=12,
        bottom_mem_kb=12,
        scratchpad_kb=0,
    )


def conv_mem_tile(dtype_bytes: int = 4) -> MemHeavyConfig:
    """ConvLayer-chip MemHeavy tile: 512 KB / 32 SFUs (256 KB at FP16)."""
    tile = MemHeavyConfig(capacity_bytes=512 * KB, num_sfu=32)
    return tile if dtype_bytes == 4 else tile.halved_capacity()


def fc_mem_tile(dtype_bytes: int = 4) -> MemHeavyConfig:
    """FcLayer-chip MemHeavy tile: 1 MB / 32 SFUs (512 KB at FP16)."""
    tile = MemHeavyConfig(capacity_bytes=1 * MB, num_sfu=32)
    return tile if dtype_bytes == 4 else tile.halved_capacity()


def conv_chip(dtype_bytes: int = 4) -> ChipConfig:
    """The ConvLayer chip (Fig 14 left table)."""
    links = LinkBandwidths(
        external_memory=150 * GB, comp_mem=24 * GB, mem_mem=36 * GB,
        ext_channels=10,
    )
    rows, cols = (6, 16) if dtype_bytes == 4 else (8, 24)
    return ChipConfig(
        kind=ChipKind.CONV,
        rows=rows,
        cols=cols,
        comp_tile=conv_comp_tile(),
        mem_tile=conv_mem_tile(dtype_bytes),
        links=links if dtype_bytes == 4 else links.halved(),
    )


def fc_chip(dtype_bytes: int = 4) -> ChipConfig:
    """The FcLayer chip: fewer columns, bigger MemHeavy tiles, 2x-4x the
    bandwidth of the ConvLayer chip (Fig 14)."""
    links = LinkBandwidths(
        external_memory=300 * GB, comp_mem=48 * GB, mem_mem=144 * GB,
        ext_channels=6,
    )
    rows, cols = (6, 8) if dtype_bytes == 4 else (8, 12)
    return ChipConfig(
        kind=ChipKind.FC,
        rows=rows,
        cols=cols,
        comp_tile=fc_comp_tile(),
        mem_tile=fc_mem_tile(dtype_bytes),
        links=links if dtype_bytes == 4 else links.halved(),
    )


def chip_cluster(dtype_bytes: int = 4) -> ClusterConfig:
    """A wheel of 4 ConvLayer chips around one FcLayer hub."""
    spoke, arc = 0.5 * GB, 16 * GB
    if dtype_bytes != 4:
        spoke, arc = spoke / 2, arc / 2
    return ClusterConfig(
        conv_chip=conv_chip(dtype_bytes),
        fc_chip=fc_chip(dtype_bytes),
        conv_chip_count=4,
        spoke_bandwidth=spoke,
        arc_bandwidth=arc,
    )


def single_precision_node() -> NodeConfig:
    """The evaluated SP embodiment: 4 clusters, 7032 tiles, 680 TFLOP/s."""
    return NodeConfig(
        name="scaledeep-sp",
        cluster=chip_cluster(dtype_bytes=4),
        cluster_count=4,
        ring_bandwidth=12 * GB,
        frequency_hz=FREQUENCY_HZ,
        dtype_bytes=4,
    )


def half_precision_node() -> NodeConfig:
    """The FP16 variant of Sec 6.1: ~1.35 PFLOP/s at roughly iso-power."""
    return NodeConfig(
        name="scaledeep-hp",
        cluster=chip_cluster(dtype_bytes=2),
        cluster_count=4,
        ring_bandwidth=6 * GB,
        frequency_hz=FREQUENCY_HZ,
        dtype_bytes=2,
    )


#: Named chip presets accepted by the sweep runner and CLI.
PRESETS = {
    "sp": single_precision_node,
    "hp": half_precision_node,
}

#: Calibrated TCO constants for the $-cost layer (repro.sim.tco).
#: Node capex follows the era's accelerator-server envelope (~$12k of
#: silicon+board+host per 1.4 kW node), plus a per-node share of the
#: EDR-class fabric (NIC + switch port + cabling).  Three-year linear
#: depreciation, 35% hosting/staffing opex on top, $0.10/kWh behind a
#: PUE of 1.5 — the TPU paper's datacenter assumptions.
DEFAULT_TCO = TCOModel(
    node_capex_usd=12_000.0,
    fabric_capex_usd_per_node=1_500.0,
    depreciation_years=3.0,
    electricity_usd_per_kwh=0.10,
    pue=1.5,
    opex_factor=0.35,
)


def load_system(
    preset: str,
    node_count: int = 1,
    strategy: str = "data",
) -> SystemConfig:
    """Build an N-node system from a named chip preset."""
    return make_system(load_preset(preset), node_count, strategy)


def load_preset(name: str) -> NodeConfig:
    """Build the node configuration registered under ``name``.

    Raises :class:`~repro.errors.ConfigError` for unknown presets so
    callers fail before any sweep work starts.
    """
    from repro.errors import ConfigError

    try:
        factory = PRESETS[name]
    except KeyError:
        raise ConfigError(
            f"unknown chip preset {name!r} "
            f"(available: {', '.join(sorted(PRESETS))})"
        ) from None
    return factory()


#: Published Fig 14 peak-FLOPs targets (FLOP/s) for reproduction tests.
PAPER_PEAK_FLOPS = {
    "node": 0.68e15,
    "cluster": 169.2e12,
    "conv_chip": 40.7e12,
    "conv_comp_tile": 134e9,
    "conv_mem_tile": 19.2e9,
    "fc_chip": 6.6e12,
    "fc_comp_tile": 38.4e9,
    "fc_mem_tile": 19.2e9,
}

#: Published Fig 14 processing-efficiency targets (FLOPs/W).
PAPER_EFFICIENCY = {
    "node": 485.7e9,
    "cluster": 526.5e9,
    "conv_chip": 703.5e9,
    "conv_comp_tile": 934.6e9,
    "conv_mem_tile": 408.5e9,
    "fc_chip": 432e9,
    "fc_comp_tile": 836.6e9,
    "fc_mem_tile": 244.3e9,
}

#: Tile-count targets: the abstract's "7032 processing tiles".
PAPER_TILE_COUNTS = {
    "node_total": 7032,
    "node_comp": 5184,
    "node_mem": 1848,
    "conv_chip_comp": 288,
    "conv_chip_mem": 102,
    "fc_chip_comp": 144,
    "fc_chip_mem": 54,
}
