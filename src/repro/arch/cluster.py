"""Chip cluster: the wheel of ConvLayer chips around an FcLayer hub
(paper Sec 3.3.1).

ConvLayer chips sit on the wheel's circumference, each processing a
different network input; the FcLayer chip at the hub batches the FC-layer
work of all spokes, amortising FC weight traffic by the wheel's batch
size.  The arcs connect adjacent ConvLayer chips so CONV layers can be
split across chips and so weight gradients can be accumulated after each
minibatch.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.chip import ChipConfig, ChipKind
from repro.errors import ConfigError


@dataclass(frozen=True)
class ClusterConfig:
    """A wheel of ``conv_chip_count`` ConvLayer chips and one FcLayer chip."""

    conv_chip: ChipConfig
    fc_chip: ChipConfig
    conv_chip_count: int
    spoke_bandwidth: float  # ConvLayer -> FcLayer hub link, bytes/s
    arc_bandwidth: float  # adjacent ConvLayer <-> ConvLayer link, bytes/s

    def __post_init__(self) -> None:
        if self.conv_chip.kind is not ChipKind.CONV:
            raise ConfigError("cluster's conv_chip must be a ConvLayer chip")
        if self.fc_chip.kind is not ChipKind.FC:
            raise ConfigError("cluster's fc_chip must be an FcLayer chip")
        if self.conv_chip_count < 1:
            raise ConfigError("cluster needs at least one ConvLayer chip")

    @property
    def chip_count(self) -> int:
        return self.conv_chip_count + 1

    @property
    def comp_tile_count(self) -> int:
        return (
            self.conv_chip_count * self.conv_chip.comp_tile_count
            + self.fc_chip.comp_tile_count
        )

    @property
    def mem_tile_count(self) -> int:
        return (
            self.conv_chip_count * self.conv_chip.mem_tile_count
            + self.fc_chip.mem_tile_count
        )

    @property
    def tile_count(self) -> int:
        return self.comp_tile_count + self.mem_tile_count

    def peak_flops(self, frequency_hz: float) -> float:
        return (
            self.conv_chip_count * self.conv_chip.peak_flops(frequency_hz)
            + self.fc_chip.peak_flops(frequency_hz)
        )

    def fc_batch_size(self, conv_chips_per_copy: int = 1) -> int:
        """Inputs the FcLayer hub batches per FC pass.

        One network copy per ConvLayer chip gives a batch equal to the
        wheel's spoke count; spreading a large network over
        ``conv_chips_per_copy`` chips reduces the batch proportionally
        (paper: "doing so reduces the batch size to the FcLayer chip").
        """
        if conv_chips_per_copy < 1:
            raise ConfigError("conv_chips_per_copy must be >= 1")
        return max(1, self.conv_chip_count // conv_chips_per_copy)
