"""Chip-level architecture: the grid of processing tiles (paper Sec 3.2).

A ScaleDeep chip is a 2D grid with alternating columns of CompHeavy and
MemHeavy tiles: each *chip column* (the compiler's allocation unit)
contains ``rows`` MemHeavy tiles and ``rows`` groups of three CompHeavy
tiles (one each for FP, BP and WG).  MemHeavy columns flank the groups,
so a chip with C columns has (C + 1) * rows MemHeavy tiles — this fence-
post arrangement reproduces Fig 14's 288/102 (ConvLayer) and 144/54
(FcLayer) tile counts.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from repro.arch.tiles import CompHeavyConfig, MemHeavyConfig
from repro.errors import ConfigError

#: CompHeavy tiles per MemHeavy tile in a column group: one each for the
#: forward, backpropagation, and weight-gradient steps (paper Sec 3.2.1).
COMP_TILES_PER_GROUP = 3

GB = 1e9
KB = 1024
MB = 1024 * 1024


class ChipKind(enum.Enum):
    """The two heterogeneous chip designs (paper Sec 3.2.5)."""

    CONV = "ConvLayer"
    FC = "FcLayer"


@dataclass(frozen=True)
class LinkBandwidths:
    """Per-link bandwidths within a chip, in bytes/second (Fig 14).

    ``external_memory`` is per memory channel; Fig 7c draws multiple
    memory chips along the top and bottom chip borders, counted by
    ``ext_channels``.
    """

    external_memory: float  # chip <-> one external memory channel
    comp_mem: float  # CompHeavy <-> MemHeavy tile link
    mem_mem: float  # MemHeavy <-> MemHeavy tile link
    ext_channels: int = 10  # memory chips per ScaleDeep chip (Fig 7c)

    @property
    def external_memory_total(self) -> float:
        """Aggregate external-memory bandwidth of the whole chip."""
        return self.external_memory * self.ext_channels

    def halved(self) -> "LinkBandwidths":
        return LinkBandwidths(
            self.external_memory / 2, self.comp_mem / 2, self.mem_mem / 2,
            self.ext_channels,
        )


@dataclass(frozen=True)
class ChipConfig:
    """A ScaleDeep chip: tile grid plus link bandwidths."""

    kind: ChipKind
    rows: int
    cols: int
    comp_tile: CompHeavyConfig
    mem_tile: MemHeavyConfig
    links: LinkBandwidths

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ConfigError(f"chip grid must be non-empty: {self}")

    # ------------------------------------------------------------------
    # Tile inventory
    # ------------------------------------------------------------------
    @property
    def comp_tile_count(self) -> int:
        """Total CompHeavy tiles: 3 (FP/BP/WG) per row per column."""
        return COMP_TILES_PER_GROUP * self.rows * self.cols

    @property
    def mem_tile_count(self) -> int:
        """Total MemHeavy tiles: columns plus the fence-post column."""
        return (self.cols + 1) * self.rows

    @property
    def tile_count(self) -> int:
        return self.comp_tile_count + self.mem_tile_count

    # ------------------------------------------------------------------
    # Per-column resources (the compiler's allocation unit)
    # ------------------------------------------------------------------
    @property
    def comp_tiles_per_column(self) -> int:
        return COMP_TILES_PER_GROUP * self.rows

    @property
    def mem_tiles_per_column(self) -> int:
        return self.rows

    @property
    def mem_capacity_per_column(self) -> int:
        """Scratchpad bytes available in one chip column."""
        return self.rows * self.mem_tile.capacity_bytes

    @property
    def pes_per_column(self) -> int:
        """2D-PEs in one column across its FP/BP/WG CompHeavy tiles."""
        return self.comp_tiles_per_column * self.comp_tile.pe_count

    # ------------------------------------------------------------------
    # Peak throughput
    # ------------------------------------------------------------------
    def peak_flops(self, frequency_hz: float) -> float:
        """Chip peak FLOP/s, counting both tile types (as Fig 14 does)."""
        return (
            self.comp_tile_count * self.comp_tile.peak_flops(frequency_hz)
            + self.mem_tile_count * self.mem_tile.peak_flops(frequency_hz)
        )

    def resized(self, rows: int, cols: int) -> "ChipConfig":
        """A copy with a different grid (used by the HP preset and DSE)."""
        return replace(self, rows=rows, cols=cols)
