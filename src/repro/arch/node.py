"""Node-level architecture: the ring of chip clusters (paper Sec 3.3.2).

Clusters connect through their FcLayer hubs in a ring.  Each cluster
works on a different slice of the minibatch; the ring accumulates weight
gradients and distributes updated weights at minibatch boundaries, and —
with model parallelism — carries FC features/errors between the cluster-
resident shards of the FC weights.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.cluster import ClusterConfig
from repro.errors import ConfigError


@dataclass(frozen=True)
class NodeConfig:
    """A full ScaleDeep node: a ring of identical chip clusters."""

    name: str
    cluster: ClusterConfig
    cluster_count: int
    ring_bandwidth: float  # bytes/s per ring link
    frequency_hz: float
    dtype_bytes: int  # 4 for single precision, 2 for half precision
    fc_model_parallel: bool = True  # shard FC weights across clusters
    fc_temporal_batch: int = 8  # successive inputs the hub aggregates
    use_winograd: bool = False  # Sec 6.1 future-work convolution algorithm

    def __post_init__(self) -> None:
        if self.cluster_count < 1:
            raise ConfigError("node needs at least one cluster")
        if self.frequency_hz <= 0:
            raise ConfigError("frequency must be positive")
        if self.dtype_bytes not in (2, 4):
            raise ConfigError(
                f"dtype_bytes must be 2 (half) or 4 (single), got "
                f"{self.dtype_bytes}"
            )
        if self.fc_temporal_batch < 1:
            raise ConfigError("fc_temporal_batch must be >= 1")

    # ------------------------------------------------------------------
    @property
    def comp_tile_count(self) -> int:
        return self.cluster_count * self.cluster.comp_tile_count

    @property
    def mem_tile_count(self) -> int:
        return self.cluster_count * self.cluster.mem_tile_count

    @property
    def tile_count(self) -> int:
        """Total processing tiles (the paper's 7032 for the SP node)."""
        return self.comp_tile_count + self.mem_tile_count

    @property
    def peak_flops(self) -> float:
        return self.cluster_count * self.cluster.peak_flops(self.frequency_hz)

    @property
    def conv_chip_count(self) -> int:
        return self.cluster_count * self.cluster.conv_chip_count

    @property
    def total_conv_columns(self) -> int:
        """ConvLayer chip columns across the node (Fig 16's 'Cols')."""
        return self.conv_chip_count * self.cluster.conv_chip.cols

    def describe(self) -> str:
        """Multi-line human-readable summary (mirrors Fig 14's left table)."""
        c = self.cluster
        lines = [
            f"ScaleDeep node {self.name!r} @ {self.frequency_hz / 1e6:.0f} MHz, "
            f"{'FP32' if self.dtype_bytes == 4 else 'FP16'}",
            f"  clusters: {self.cluster_count} "
            f"(ring {self.ring_bandwidth / 1e9:g} GB/s)",
            f"  chips/cluster: {c.conv_chip_count} ConvLayer + 1 FcLayer "
            f"(spoke {c.spoke_bandwidth / 1e9:g} GB/s, "
            f"arc {c.arc_bandwidth / 1e9:g} GB/s)",
            f"  ConvLayer chip: {c.conv_chip.rows}x{c.conv_chip.cols} cols, "
            f"{c.conv_chip.comp_tile_count} CompHeavy / "
            f"{c.conv_chip.mem_tile_count} MemHeavy tiles",
            f"  FcLayer chip:   {c.fc_chip.rows}x{c.fc_chip.cols} cols, "
            f"{c.fc_chip.comp_tile_count} CompHeavy / "
            f"{c.fc_chip.mem_tile_count} MemHeavy tiles",
            f"  totals: {self.tile_count} tiles, "
            f"{self.peak_flops / 1e12:.1f} TFLOP/s peak",
        ]
        return "\n".join(lines)
