"""Roofline analysis: machine balance vs workload intensity.

Ties the two halves of the paper's argument together quantitatively:
Fig 4/5 characterise layers by Bytes/FLOP, Fig 14 gives each chip's
compute and bandwidth provisioning.  The roofline's *balance point* —
peak FLOPs divided by deliverable bytes/s — says which layers a chip
serves compute-bound (below the balance B/F) and which bandwidth-bound
(above it).  ScaleDeep's heterogeneity argument is exactly that one
balance point cannot serve a 3-orders-of-magnitude B/F spread, so the
ConvLayer and FcLayer chips sit at different points.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List

from repro.arch.chip import ChipConfig
from repro.dnn.analysis import Step, profile
from repro.dnn.network import Network
from repro.errors import ConfigError


class Boundedness(enum.Enum):
    """Which roofline a layer sits under."""

    COMPUTE = "compute-bound"
    BANDWIDTH = "bandwidth-bound"


@dataclass(frozen=True)
class ChipRoofline:
    """A chip's roofline parameters."""

    name: str
    peak_flops: float
    memory_bandwidth: float  # aggregate external bytes/s

    @property
    def balance_bytes_per_flop(self) -> float:
        """B/F at the roofline knee: layers above are bandwidth-bound."""
        return self.memory_bandwidth / self.peak_flops

    def attainable_flops(self, bytes_per_flop: float) -> float:
        """Attainable FLOP/s at a given operational intensity."""
        if bytes_per_flop < 0:
            raise ConfigError("bytes/FLOP must be non-negative")
        if bytes_per_flop == 0:
            return self.peak_flops
        return min(
            self.peak_flops, self.memory_bandwidth / bytes_per_flop
        )

    def classify(self, bytes_per_flop: float) -> Boundedness:
        if bytes_per_flop <= self.balance_bytes_per_flop:
            return Boundedness.COMPUTE
        return Boundedness.BANDWIDTH


def chip_roofline(chip: ChipConfig, frequency_hz: float) -> ChipRoofline:
    """Roofline of one ScaleDeep chip from its Fig 14 parameters."""
    return ChipRoofline(
        name=chip.kind.value,
        peak_flops=chip.peak_flops(frequency_hz),
        memory_bandwidth=chip.links.external_memory_total,
    )


@dataclass(frozen=True)
class LayerRooflinePoint:
    """One layer's position on a chip's roofline."""

    layer: str
    bytes_per_flop: float
    attainable_fraction: float  # attainable / peak
    boundedness: Boundedness


def network_roofline(
    net: Network,
    roofline: ChipRoofline,
    step: Step = Step.FP,
    dtype_bytes: int = 4,
    weight_reuse_batch: int = 1,
) -> List[LayerRooflinePoint]:
    """Place every weighted layer of ``net`` on a chip's roofline.

    ``weight_reuse_batch`` amortises weight traffic (the wheel's FC
    batching): FC layers move from far above the balance point to below
    it as the batch grows — the quantitative content of Sec 3.3.1.
    """
    if weight_reuse_batch < 1:
        raise ConfigError("weight_reuse_batch must be >= 1")
    points: List[LayerRooflinePoint] = []
    for node in net:
        prof = profile(node, step, dtype_bytes)
        if not prof.flops:
            continue
        traffic = prof.feature_bytes + prof.weight_bytes / weight_reuse_batch
        bf = traffic / prof.flops
        points.append(LayerRooflinePoint(
            layer=node.name,
            bytes_per_flop=bf,
            attainable_fraction=(
                roofline.attainable_flops(bf) / roofline.peak_flops
            ),
            boundedness=roofline.classify(bf),
        ))
    return points


def boundedness_summary(
    points: List[LayerRooflinePoint],
) -> Dict[Boundedness, int]:
    """Layer counts per roofline regime."""
    summary = {b: 0 for b in Boundedness}
    for point in points:
        summary[point.boundedness] += 1
    return summary
