"""Design-space exploration around the ScaleDeep template.

The paper tunes one architectural template into two chips (Sec 3.2.5)
and picks the Fig 14 operating point; this module automates that style
of study: sweep the ConvLayer grid, the CompHeavy lane count and the
MemHeavy capacity, re-map and re-simulate a workload set at every
point, estimate power from the per-tile Fig 14 constants, and extract
the performance/power Pareto frontier.
"""

from __future__ import annotations

import sys
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from functools import partial
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.arch.node import NodeConfig
from repro.arch.power import estimate_node_power
from repro.arch.presets import single_precision_node
from repro.dnn.network import Network
from repro.errors import ConfigError
from repro.sweep.cache import cached_simulation


@dataclass(frozen=True)
class DesignPoint:
    """One candidate configuration of the ConvLayer chip."""

    rows: int
    cols: int
    lanes: int
    mem_kb: int  # MemHeavy capacity per tile

    @property
    def label(self) -> str:
        return f"{self.rows}x{self.cols} l{self.lanes} m{self.mem_kb}K"

    def apply(self, base: NodeConfig) -> NodeConfig:
        """Materialise the point as a node configuration."""
        if min(self.rows, self.cols, self.lanes, self.mem_kb) < 1:
            raise ConfigError(f"invalid design point {self}")
        chip = base.cluster.conv_chip
        tile = replace(chip.comp_tile, lanes=self.lanes)
        mem = replace(
            chip.mem_tile, capacity_bytes=self.mem_kb * 1024
        )
        new_chip = replace(
            chip, rows=self.rows, cols=self.cols, comp_tile=tile,
            mem_tile=mem,
        )
        return replace(
            base,
            cluster=replace(base.cluster, conv_chip=new_chip),
            name=f"sd-{self.label}",
        )


@dataclass(frozen=True)
class DseResult:
    """Evaluation of one design point over a workload set."""

    point: DesignPoint
    peak_tflops: float
    estimated_power_w: float
    throughput: Dict[str, float]  # network -> training img/s
    mean_utilization: float

    @property
    def geomean_throughput(self) -> float:
        values = list(self.throughput.values())
        product = 1.0
        for v in values:
            product *= v
        return product ** (1.0 / len(values))

    @property
    def throughput_per_watt(self) -> float:
        return self.geomean_throughput / self.estimated_power_w


def evaluate_point(
    point: DesignPoint,
    workloads: Dict[str, Network],
    base: NodeConfig,
) -> DseResult:
    """Map + simulate every workload on one design point.

    Routed through the content-keyed compile cache: re-running a study
    over an overlapping grid skips STEP1-6 for every point already
    evaluated (in this process or, with a disk-backed cache, ever)."""
    node = point.apply(base)
    results = {
        name: cached_simulation(net, node)
        for name, net in workloads.items()
    }
    return DseResult(
        point=point,
        peak_tflops=node.peak_flops / 1e12,
        estimated_power_w=estimate_node_power(node),
        throughput={
            name: r.training_images_per_s for name, r in results.items()
        },
        mean_utilization=sum(
            r.pe_utilization for r in results.values()
        ) / len(results),
    )


def sweep(
    workloads: Dict[str, Network],
    points: Iterable[DesignPoint],
    base: NodeConfig = None,
    workers: int = 1,
) -> List[DseResult]:
    """Evaluate a set of design points (the Sec 3.2.5 tuning study).

    ``workers > 1`` fans the points across worker processes (results
    keep grid order and are bit-identical to a serial run); a pool that
    cannot start falls back to serial with a warning."""
    base = base or single_precision_node()
    points = list(points)
    if workers > 1 and len(points) > 1:
        run = partial(evaluate_point, workloads=workloads, base=base)
        try:
            with ProcessPoolExecutor(
                max_workers=min(workers, len(points))
            ) as pool:
                return list(pool.map(run, points))
        except (OSError, BrokenProcessPool) as exc:
            print(
                f"repro: DSE worker pool unavailable ({exc}); "
                "falling back to serial execution",
                file=sys.stderr,
            )
    return [evaluate_point(p, workloads, base) for p in points]


def default_grid(
    rows: Sequence[int] = (4, 6, 8),
    cols: Sequence[int] = (12, 16, 20),
    lanes: Sequence[int] = (2, 4, 8),
    mem_kb: Sequence[int] = (512,),
) -> List[DesignPoint]:
    """A modest grid around the published operating point."""
    return [
        DesignPoint(r, c, l, m)
        for r in rows for c in cols for l in lanes for m in mem_kb
    ]


def pareto_front(results: Sequence[DseResult]) -> List[DseResult]:
    """Non-dominated points on (geomean throughput, -power).

    A point survives unless another point is at least as fast AND at
    most as power-hungry (and strictly better on one axis).
    """
    front: List[DseResult] = []
    for candidate in results:
        dominated = False
        for other in results:
            if other is candidate:
                continue
            faster = other.geomean_throughput >= candidate.geomean_throughput
            cooler = other.estimated_power_w <= candidate.estimated_power_w
            strictly = (
                other.geomean_throughput > candidate.geomean_throughput
                or other.estimated_power_w < candidate.estimated_power_w
            )
            if faster and cooler and strictly:
                dominated = True
                break
        if not dominated:
            front.append(candidate)
    return sorted(front, key=lambda r: r.estimated_power_w)
