"""Architecture model: tiles, chips, clusters, node, power."""

from repro.arch.chip import (
    COMP_TILES_PER_GROUP,
    GB,
    KB,
    MB,
    ChipConfig,
    ChipKind,
    LinkBandwidths,
)
from repro.arch.cluster import ClusterConfig
from repro.arch.dse import (
    DesignPoint,
    DseResult,
    default_grid,
    evaluate_point,
    pareto_front,
    sweep,
)
from repro.arch.node import NodeConfig
from repro.arch.topology import (
    build_fat_tree,
    build_topology,
    compare_with_fat_tree,
    profile_topology,
)
from repro.arch.roofline import (
    Boundedness,
    ChipRoofline,
    chip_roofline,
    network_roofline,
)
from repro.arch.power import (
    ComponentPower,
    estimate_node_power,
    PAPER_POWER_TABLE,
    PowerDraw,
    PowerModel,
    cluster_power_model,
    node_power_model,
    processing_efficiency,
)
from repro.arch.presets import (
    FREQUENCY_HZ,
    PAPER_EFFICIENCY,
    PAPER_PEAK_FLOPS,
    PAPER_TILE_COUNTS,
    chip_cluster,
    conv_chip,
    fc_chip,
    half_precision_node,
    single_precision_node,
)
from repro.arch.tiles import (
    ArrayConfig,
    CompHeavyConfig,
    MemHeavyConfig,
    array_utilization,
)

__all__ = [
    "ArrayConfig",
    "COMP_TILES_PER_GROUP",
    "Boundedness",
    "ChipConfig",
    "ChipKind",
    "ChipRoofline",
    "ClusterConfig",
    "CompHeavyConfig",
    "DesignPoint",
    "DseResult",
    "ComponentPower",
    "FREQUENCY_HZ",
    "GB",
    "KB",
    "LinkBandwidths",
    "MB",
    "MemHeavyConfig",
    "NodeConfig",
    "PAPER_EFFICIENCY",
    "PAPER_PEAK_FLOPS",
    "PAPER_POWER_TABLE",
    "PAPER_TILE_COUNTS",
    "PowerDraw",
    "PowerModel",
    "array_utilization",
    "build_fat_tree",
    "build_topology",
    "chip_cluster",
    "compare_with_fat_tree",
    "chip_roofline",
    "cluster_power_model",
    "conv_chip",
    "default_grid",
    "estimate_node_power",
    "evaluate_point",
    "fc_chip",
    "half_precision_node",
    "network_roofline",
    "node_power_model",
    "pareto_front",
    "processing_efficiency",
    "profile_topology",
    "single_precision_node",
    "sweep",
]
