"""Processing tile models: CompHeavy and MemHeavy (paper Sec 3.1).

The CompHeavy tile is a reconfigurable 2D array of vector processing
elements (2D-PEs) with a 1D accumulator column; the MemHeavy tile is a
scratchpad with special-function units (SFUs), a DMA engine and data-flow
trackers.

Peak-FLOPs bookkeeping matches Fig 14 exactly: the ConvLayer CompHeavy
tile's published 134 GFLOPs at 600 MHz implies 224 FLOPs/cycle, i.e.
8 rows x 3 cols x 4 lanes of FMAs (2 FLOPs each) plus 32 accumulator
FLOPs/cycle; the FcLayer CompHeavy tile's 38.4 GFLOPs implies a bare
4x8x1 FMA array.  ``accumulator_flops`` makes that term explicit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Iterator, Tuple

from repro.errors import ConfigError


@dataclass(frozen=True)
class ArrayConfig:
    """One runtime configuration of the 2D-PE array (Sec 3.1.1).

    ``splits`` counts independent sub-arrays after a horizontal row split
    (1 = unsplit, 2 = two half-height arrays working on separate batch
    convolutions).  ``cols``/``lanes`` reflect column/lane redistribution;
    their product is invariant.
    """

    rows: int
    cols: int
    lanes: int
    splits: int = 1

    @property
    def pe_count(self) -> int:
        return self.rows * self.cols * self.splits

    @property
    def fma_count(self) -> int:
        return self.pe_count * self.lanes


@dataclass(frozen=True)
class CompHeavyConfig:
    """Micro-architectural parameters of a CompHeavy tile (Fig 7a, 14)."""

    rows: int
    cols: int
    lanes: int
    accumulator_flops: int  # extra FLOPs/cycle from the 1D accumulators
    left_mem_kb: int
    top_mem_kb: int
    bottom_mem_kb: int
    scratchpad_kb: int
    row_split: bool = True  # array may split into two half-height arrays
    lane_redistribution: bool = True  # cols x lanes may be redistributed

    def __post_init__(self) -> None:
        if min(self.rows, self.cols, self.lanes) < 1:
            raise ConfigError(f"CompHeavy array must be non-empty: {self}")
        if self.accumulator_flops < 0:
            raise ConfigError("accumulator_flops must be >= 0")
        if self.row_split and self.rows % 2:
            raise ConfigError(
                f"row_split requires an even row count, got {self.rows}"
            )

    @property
    def pe_count(self) -> int:
        """Number of 2D-PEs in the array."""
        return self.rows * self.cols

    @property
    def fma_count(self) -> int:
        """Total FMA lanes across the array."""
        return self.pe_count * self.lanes

    @property
    def flops_per_cycle(self) -> int:
        """Peak FLOPs per cycle: 2 per FMA plus the accumulator column."""
        return 2 * self.fma_count + self.accumulator_flops

    def peak_flops(self, frequency_hz: float) -> float:
        """Peak FLOP/s at the given clock."""
        return self.flops_per_cycle * frequency_hz

    # ------------------------------------------------------------------
    # Array reconfigurability (paper Sec 3.1.1)
    # ------------------------------------------------------------------
    def configurations(self) -> Iterator[ArrayConfig]:
        """Enumerate the legal runtime array configurations.

        Column/lane redistribution keeps cols*lanes constant; the row
        split halves the rows and doubles the independent sub-arrays.
        """
        product = self.cols * self.lanes
        lane_options = (
            [l for l in range(1, product + 1) if product % l == 0]
            if self.lane_redistribution
            else [self.lanes]
        )
        split_options = (1, 2) if self.row_split else (1,)
        for splits in split_options:
            for lanes in lane_options:
                yield ArrayConfig(
                    rows=self.rows // splits,
                    cols=product // lanes,
                    lanes=lanes,
                    splits=splits,
                )

    def best_configuration(
        self, feature_rows: int, feature_count: int
    ) -> Tuple[ArrayConfig, float]:
        """Pick the configuration maximising 2D-PE utilization for a batch
        convolution over ``feature_count`` output features whose rows span
        ``feature_rows`` (paper: "identify the array configuration ... that
        yields the best utilization").

        Returns ``(config, utilization)`` where utilization is the fraction
        of FMA-cycles doing useful work under that configuration.
        """
        if feature_rows < 1 or feature_count < 1:
            raise ConfigError(
                "feature_rows and feature_count must be positive, got "
                f"{feature_rows}, {feature_count}"
            )
        best: Tuple[ArrayConfig, float] = (
            ArrayConfig(self.rows, self.cols, self.lanes), 0.0
        )
        for cfg in self.configurations():
            util = array_utilization(cfg, feature_rows, feature_count)
            if util > best[1]:
                best = (cfg, util)
        return best


def _residue_utilization(work: int, capacity: int) -> float:
    """Utilization of a dimension of size ``capacity`` processing ``work``
    items in full sweeps: the final partial sweep leaves units idle."""
    sweeps = math.ceil(work / capacity)
    return work / (sweeps * capacity)


def array_utilization(
    cfg: ArrayConfig, feature_rows: int, feature_count: int
) -> float:
    """FMA utilization of one array configuration on a batch convolution.

    Rows of the input feature stream along the array rows (residue when
    the feature height is not a row-count multiple); kernels stream along
    lanes (residue when the output-feature batch is not a lane multiple).
    A split array processes two convolutions concurrently, so its
    effective batch halves.
    """
    per_split = math.ceil(feature_count / cfg.splits)
    row_util = _residue_utilization(feature_rows, cfg.rows)
    lane_util = _residue_utilization(per_split, cfg.lanes)
    return row_util * lane_util


@dataclass(frozen=True)
class MemHeavyConfig:
    """Micro-architectural parameters of a MemHeavy tile (Fig 7b, 14)."""

    capacity_bytes: int
    num_sfu: int
    sfu_flops_per_cycle: int = 1
    dma_queue_depth: int = 16
    tracker_count: int = 32  # concurrent MEMTRACK address ranges

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0 or self.num_sfu <= 0:
            raise ConfigError(f"MemHeavy tile must be non-empty: {self}")

    @property
    def flops_per_cycle(self) -> int:
        return self.num_sfu * self.sfu_flops_per_cycle

    def peak_flops(self, frequency_hz: float) -> float:
        return self.flops_per_cycle * frequency_hz

    def halved_capacity(self) -> "MemHeavyConfig":
        """The half-precision variant keeps SFU count but halves storage."""
        return replace(self, capacity_bytes=self.capacity_bytes // 2)
