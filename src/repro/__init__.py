"""ScaleDeep (ISCA 2017) reproduction.

A from-scratch Python implementation of the ScaleDeep system: the DNN
workload model and benchmark zoo, the heterogeneous tile/chip/cluster/
node architecture, the 28-instruction ISA, the mapping compiler and code
generator, the analytical and functional simulators, the power model,
and the GPU / DaDianNao baselines.

Quickstart::

    from repro import zoo, single_precision_node, simulate
    result = simulate(zoo.load("AlexNet"), single_precision_node())
    print(result.describe())
"""

from repro.arch import (
    half_precision_node,
    single_precision_node,
)
from repro.compiler import map_network
from repro.dnn import zoo
from repro.sim import simulate, simulate_suite

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "half_precision_node",
    "map_network",
    "simulate",
    "simulate_suite",
    "single_precision_node",
    "zoo",
]
