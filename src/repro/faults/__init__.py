"""Fault-injection subsystem: deterministic fault sampling plus the
graceful-degradation hooks consumed by the compiler, the performance
model, the gradient-sync model and the functional engine."""

from repro.faults.model import (
    ALL_KINDS,
    Fault,
    FaultKind,
    FaultMask,
    FaultModel,
    FaultSpec,
    parse_kinds,
    sample_faults,
)

__all__ = [
    "ALL_KINDS",
    "Fault",
    "FaultKind",
    "FaultMask",
    "FaultModel",
    "FaultSpec",
    "parse_kinds",
    "sample_faults",
]
