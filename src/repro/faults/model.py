"""Deterministic, seed-driven fault injection (the ScaleDeep scale argument).

A 7,032-tile node built from thousands of chips (Fig 12 / Table 6) sees
tile, link and memory faults as the steady state, not the exception.
This module turns a small declarative spec into a concrete, reproducible
set of injected faults that the rest of the stack degrades around:

* **tile-dead** — a chip column's tiles are unusable; the compiler
  remaps around them (column reallocation + home-column re-election);
* **tile-slow** — a column runs at a derated throughput (process
  variation, thermal throttling); the perf model slows any pipeline
  stage whose allocation includes the column;
* **link-down** — a wheel arc or ring link is out; gradient sync and
  link-utilization models reroute the long way around;
* **dma-bitflip** — DMA transfers in the functional engine flip the
  sign bit of one transferred word at a configured rate.

Everything is a pure function of (:class:`FaultSpec`, node shape): the
sampler seeds a named RNG (``scaledeep-faults:<seed>``) and walks the
node's fault sites in a fixed order, so the same spec on the same node
always yields the same :class:`FaultMask` — in-process, across worker
processes, and across runs.  Every injected fault is emitted as a
telemetry ``fault.inject`` instant plus a ``faults`` group counter.

This module deliberately imports nothing from :mod:`repro.arch`,
:mod:`repro.compiler` or :mod:`repro.sim` (node configurations are
duck-typed), so every layer of the stack can depend on it without
cycles.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Tuple

from repro.errors import ConfigError
from repro.telemetry.core import get_telemetry


class FaultKind(enum.Enum):
    """The fault classes the subsystem can inject."""

    TILE_DEAD = "tile-dead"
    TILE_SLOW = "tile-slow"
    LINK_DOWN = "link-down"
    DMA_BITFLIP = "dma-bitflip"


#: Canonical kind order (also the sampler's draw order per site).
ALL_KINDS: Tuple[FaultKind, ...] = tuple(FaultKind)

_KIND_BY_VALUE = {k.value: k for k in FaultKind}


def parse_kinds(text: str) -> Tuple[FaultKind, ...]:
    """Parse a comma-separated kind list (``"tile-dead,link-down"``)."""
    kinds = []
    for token in text.split(","):
        token = token.strip()
        if not token:
            continue
        if token not in _KIND_BY_VALUE:
            raise ConfigError(
                f"unknown fault kind {token!r} "
                f"(choose from: {', '.join(k.value for k in FaultKind)})"
            )
        kinds.append(_KIND_BY_VALUE[token])
    if not kinds:
        raise ConfigError(f"no fault kinds in {text!r}")
    return tuple(kinds)


@dataclass(frozen=True)
class FaultSpec:
    """Declarative fault configuration (plain-dict friendly, no YAML).

    ``rate`` is the per-site fault probability; ``seed`` names the RNG
    stream; ``kinds`` selects which fault classes are drawn;
    ``slow_factor`` is the throughput fraction a tile-slow column
    retains (0.5 = half speed).
    """

    rate: float
    seed: int = 0
    kinds: Tuple[FaultKind, ...] = (FaultKind.TILE_DEAD,)
    slow_factor: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ConfigError(f"fault rate must be in [0, 1], got {self.rate}")
        if not 0.0 < self.slow_factor <= 1.0:
            raise ConfigError(
                f"slow_factor must be in (0, 1], got {self.slow_factor}"
            )
        if not self.kinds:
            raise ConfigError("fault spec needs at least one kind")
        normalised = tuple(
            k for k in ALL_KINDS
            if k in {
                _KIND_BY_VALUE[x] if isinstance(x, str) else x
                for x in self.kinds
            }
        )
        object.__setattr__(self, "kinds", normalised)

    @classmethod
    def from_dict(cls, spec: Mapping[str, object]) -> "FaultSpec":
        """Build a spec from a plain dict, with kinds as value strings
        (``{"rate": 0.02, "seed": 7, "kinds": ["tile-dead"]}``)."""
        known = {"rate", "seed", "kinds", "slow_factor"}
        unknown = set(spec) - known
        if unknown:
            raise ConfigError(
                f"unknown fault spec fields: {sorted(unknown)} "
                f"(known: {sorted(known)})"
            )
        if "rate" not in spec:
            raise ConfigError("fault spec needs a 'rate'")
        kinds_raw = spec.get("kinds")
        if kinds_raw is None:
            kinds: Tuple[FaultKind, ...] = (FaultKind.TILE_DEAD,)
        elif isinstance(kinds_raw, str):
            kinds = parse_kinds(kinds_raw)
        else:
            kinds = parse_kinds(",".join(str(k) for k in kinds_raw))
        return cls(
            rate=float(spec["rate"]),  # type: ignore[arg-type]
            seed=int(spec.get("seed", 0)),  # type: ignore[arg-type]
            kinds=kinds,
            slow_factor=float(spec.get("slow_factor", 0.5)),  # type: ignore[arg-type]
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "rate": self.rate,
            "seed": self.seed,
            "kinds": [k.value for k in self.kinds],
            "slow_factor": self.slow_factor,
        }

    @property
    def rng_name(self) -> str:
        """The named RNG stream this spec draws from."""
        return f"scaledeep-faults:{self.seed}"

    def describe(self) -> str:
        kinds = ",".join(k.value for k in self.kinds)
        return f"rate {self.rate:g}, seed {self.seed}, kinds [{kinds}]"


@dataclass(frozen=True)
class Fault:
    """One injected fault at a named site."""

    kind: FaultKind
    site: str
    magnitude: float = 0.0  # slow factor / flip rate where applicable

    def describe(self) -> str:
        mag = f" ({self.magnitude:g})" if self.magnitude else ""
        return f"{self.kind.value} @ {self.site}{mag}"


@dataclass(frozen=True, eq=True)
class FaultMask:
    """The sampled fault set, indexed the way consumers need it.

    Conv/FC columns are addressed by *global* column index: conv column
    ``chip * chip_cols + col`` with chips numbered wheel-major across
    clusters; FC column ``cluster * fc_cols + col``.  Wheel arcs are
    ``(cluster, i)`` for the rim edge between chips ``i`` and ``i+1``;
    ring links are the edge between hubs ``i`` and ``i+1`` (mod n).
    """

    spec: FaultSpec
    faults: Tuple[Fault, ...]
    conv_chip_cols: int  # columns per ConvLayer chip (for site math)
    fc_chip_cols: int
    dead_conv_columns: FrozenSet[int] = frozenset()
    slow_conv_columns: Tuple[Tuple[int, float], ...] = ()
    dead_fc_columns: FrozenSet[int] = frozenset()
    slow_fc_columns: Tuple[Tuple[int, float], ...] = ()
    down_arcs: FrozenSet[Tuple[int, int]] = frozenset()
    down_ring: FrozenSet[int] = frozenset()
    dma_flip_rate: float = 0.0

    # ------------------------------------------------------------------
    @property
    def fault_count(self) -> int:
        return len(self.faults)

    @property
    def degraded(self) -> bool:
        return bool(self.faults)

    @property
    def slow_conv(self) -> Dict[int, float]:
        return dict(self.slow_conv_columns)

    @property
    def slow_fc(self) -> Dict[int, float]:
        return dict(self.slow_fc_columns)

    def conv_speed(self, column: int) -> float:
        """Throughput factor of a global conv column (0 = dead)."""
        if column in self.dead_conv_columns:
            return 0.0
        return self.slow_conv.get(column, 1.0)

    def fc_speed(self, column: int) -> float:
        if column in self.dead_fc_columns:
            return 0.0
        return self.slow_fc.get(column, 1.0)

    def dead_conv_in_chip(self, chip_index: int) -> int:
        """Dead conv columns on global chip ``chip_index``."""
        lo = chip_index * self.conv_chip_cols
        hi = lo + self.conv_chip_cols
        return sum(1 for c in self.dead_conv_columns if lo <= c < hi)

    def down_arcs_in_cluster(self, cluster: int) -> int:
        return sum(1 for c, _ in self.down_arcs if c == cluster)

    @property
    def worst_cluster_down_arcs(self) -> int:
        """Down arcs in the worst-hit cluster (the reroute multiplier)."""
        per: Dict[int, int] = {}
        for cluster, _ in self.down_arcs:
            per[cluster] = per.get(cluster, 0) + 1
        return max(per.values(), default=0)

    def kind_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for fault in self.faults:
            counts[fault.kind.value] = counts.get(fault.kind.value, 0) + 1
        return counts

    def describe(self) -> str:
        lines = [
            f"fault mask ({self.spec.describe()}): "
            f"{self.fault_count} fault"
            f"{'s' if self.fault_count != 1 else ''}"
        ]
        for kind in ALL_KINDS:
            n = self.kind_counts().get(kind.value, 0)
            if n:
                sites = [
                    f.site for f in self.faults if f.kind is kind
                ]
                shown = ", ".join(sites[:8])
                if len(sites) > 8:
                    shown += f", ... (+{len(sites) - 8} more)"
                lines.append(f"  {kind.value:<11} x{n}: {shown}")
        if not self.degraded:
            lines.append("  (no faults drawn at this rate/seed)")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Site naming
# ---------------------------------------------------------------------------
def conv_column_site(chip_cols: int, wheel: int, column: int) -> str:
    chip, col = divmod(column, chip_cols)
    cluster, spoke = divmod(chip, wheel)
    return f"conv/cl{cluster}/chip{spoke}/col{col}"


def fc_column_site(fc_cols: int, column: int) -> str:
    cluster, col = divmod(column, fc_cols)
    return f"fc/cl{cluster}/col{col}"


def arc_site(cluster: int, index: int, wheel: int) -> str:
    return f"arc/cl{cluster}/{index}-{(index + 1) % wheel}"


def ring_site(index: int, clusters: int) -> str:
    return f"ring/{index}-{(index + 1) % clusters}"


class FaultModel:
    """Samples a :class:`FaultMask` from a spec and a node shape.

    The node argument is duck-typed (any object with ``cluster_count``
    and a ``cluster`` exposing ``conv_chip_count`` plus ``conv_chip`` /
    ``fc_chip`` grids works), so the model composes with real
    :class:`~repro.arch.node.NodeConfig` presets and with test stubs.
    """

    def __init__(self, spec: FaultSpec) -> None:
        self.spec = spec

    def sample(self, node) -> FaultMask:
        """Draw the fault set for ``node``, deterministically."""
        spec = self.spec
        kinds = set(spec.kinds)
        rng = random.Random(spec.rng_name)
        tel = get_telemetry()

        cluster = node.cluster
        wheel = cluster.conv_chip_count
        conv_cols = cluster.conv_chip.cols
        fc_cols = cluster.fc_chip.cols
        clusters = node.cluster_count
        total_conv = clusters * wheel * conv_cols
        total_fc = clusters * fc_cols

        faults: List[Fault] = []
        dead_conv: List[int] = []
        slow_conv: List[Tuple[int, float]] = []
        dead_fc: List[int] = []
        slow_fc: List[Tuple[int, float]] = []
        down_arcs: List[Tuple[int, int]] = []
        down_ring: List[int] = []

        def tile_draw(column: int, site: str, dead: List[int],
                      slow: List[Tuple[int, float]]) -> None:
            if FaultKind.TILE_DEAD in kinds and rng.random() < spec.rate:
                dead.append(column)
                faults.append(Fault(FaultKind.TILE_DEAD, site))
                return
            if FaultKind.TILE_SLOW in kinds and rng.random() < spec.rate:
                slow.append((column, spec.slow_factor))
                faults.append(
                    Fault(FaultKind.TILE_SLOW, site, spec.slow_factor)
                )

        if kinds & {FaultKind.TILE_DEAD, FaultKind.TILE_SLOW}:
            for column in range(total_conv):
                tile_draw(
                    column, conv_column_site(conv_cols, wheel, column),
                    dead_conv, slow_conv,
                )
            for column in range(total_fc):
                tile_draw(
                    column, fc_column_site(fc_cols, column),
                    dead_fc, slow_fc,
                )

        if FaultKind.LINK_DOWN in kinds:
            if wheel > 1:
                for c in range(clusters):
                    for i in range(wheel):
                        if rng.random() < spec.rate:
                            down_arcs.append((c, i))
                            faults.append(Fault(
                                FaultKind.LINK_DOWN, arc_site(c, i, wheel)
                            ))
            if clusters > 1:
                for i in range(clusters):
                    if rng.random() < spec.rate:
                        down_ring.append(i)
                        faults.append(Fault(
                            FaultKind.LINK_DOWN, ring_site(i, clusters)
                        ))

        flip_rate = 0.0
        if FaultKind.DMA_BITFLIP in kinds and spec.rate > 0:
            flip_rate = spec.rate
            faults.append(Fault(FaultKind.DMA_BITFLIP, "dma", spec.rate))

        if tel.enabled:
            for index, fault in enumerate(faults):
                tel.instant(
                    "fault.inject", "faults", ("faults", fault.kind.value),
                    index, site=fault.site, kind=fault.kind.value,
                    magnitude=fault.magnitude, seed=spec.seed,
                )
                tel.count("faults", fault.kind.value.replace("-", "_"))
            tel.record("faults", "total", len(faults))
            tel.record("faults", "seed", spec.seed)
            tel.record("faults", "rate", spec.rate)

        return FaultMask(
            spec=spec,
            faults=tuple(faults),
            conv_chip_cols=conv_cols,
            fc_chip_cols=fc_cols,
            dead_conv_columns=frozenset(dead_conv),
            slow_conv_columns=tuple(slow_conv),
            dead_fc_columns=frozenset(dead_fc),
            slow_fc_columns=tuple(slow_fc),
            down_arcs=frozenset(down_arcs),
            down_ring=frozenset(down_ring),
            dma_flip_rate=flip_rate,
        )


def sample_faults(spec, node) -> FaultMask:
    """Convenience wrapper: ``spec`` may be a :class:`FaultSpec` or a
    plain dict (see :meth:`FaultSpec.from_dict`)."""
    if isinstance(spec, Mapping):
        spec = FaultSpec.from_dict(spec)
    if not isinstance(spec, FaultSpec):
        raise ConfigError(f"not a fault spec: {spec!r}")
    return FaultModel(spec).sample(node)
