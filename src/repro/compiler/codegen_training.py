"""Training code generation: FP + BP + WG + weight update on the engine.

This extends the forward compiler to the full training iteration of the
paper's Fig 3: beside each layer's FP program, it emits

* a **BP program** that back-propagates the error to the predecessor —
  convolving error features with rotated kernels (conv), multiplying by
  the transposed weights (FC), or up-sampling (SAMP) — and masks the
  result with the predecessor's activation derivative (NDACTBP);
* a **WG program** that correlates the layer's staged FP inputs with its
  error features to produce weight gradients (NDCONV with the error as
  the kernel for CONV layers; per-output-row MATMULs realising the
  outer product for FC layers) and applies them in place with WUPDATE.

In the paper the FP, BP, and WG programs of a layer run on the three
CompHeavy tiles of its column group; here each gets its own CompTile on
the engine machine, synchronised purely through MEMTRACK trackers — a
direct functional test of the Sec 3.2.4 scheme on a dataflow with both
directions active.

Since the IR refactor the BP/WG emission lives in the shared lowering
(:mod:`repro.compiler.passes.lower`): this compiler builds the
tile-level IR with all three phases and drives the pipeline in the
exact-tracker dialect; the lowering grows the FP tracker counts for the
backward wave's readers, allocates the error regions, and emits the
deferred weight-update programs in minibatch mode.

The loss gradient at the network output is computed by the host between
the FP and BP phases (the paper computes it in the final FP tiles) and
injected through a tracker-counted write, which is what un-blocks the
whole backward wave.

Scope: sequential networks with ``groups=1`` convolutions (strided ones
included — their BP and WG dilate the error by zero-insertion), max or
average pooling with window == stride (max routing recomputes the
argmax from the stored features), softmax+cross-entropy head, SGD with
frozen biases (see DESIGN.md) — per image, or with gradient
accumulation over a minibatch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.arch.chip import ChipConfig
from repro.compiler.codegen import CompiledForward, ForwardCompiler
from repro.compiler.ir import Phase
from repro.compiler.passes.legalize import check_training_scope
from repro.dnn.layers import ConvSpec
from repro.dnn.network import Network
from repro.errors import MappingError, SimulationError
from repro.functional import tensor_ops as ops
from repro.functional.reference import ReferenceModel
from repro.sim.engine import Engine, RunReport
from repro.sim.machine import Machine


@dataclass
class CompiledTraining:
    """Training programs plus a persistent machine for SGD iterations."""

    forward: CompiledForward
    err_port: int
    err_addr: int
    err_size: int
    lr_num: int
    lr_denom: int
    minibatch: int = 1
    update_tiles: frozenset = frozenset()
    _machine: Optional[Machine] = None
    _engine: Optional[Engine] = None

    @property
    def network(self) -> Network:
        return self.forward.network

    @property
    def instruction_count(self) -> int:
        return self.forward.instruction_count

    def _ensure_machine(self) -> Engine:
        if self._engine is None:
            self._machine = self.forward.build_machine()
            self._engine = Engine(self._machine)
        return self._engine

    def read_weights(self, layer: str) -> np.ndarray:
        """Current (possibly trained) weights of a layer, from the
        machine's scratchpads, in the reference layout."""
        engine = self._ensure_machine()
        machine = engine.machine
        net = self.network
        node = net[layer]
        part = self.forward.partition
        col = part.column_of[layer]
        blocks: List[np.ndarray] = []
        for home in part.blocks_of(layer):
            alloc = part.allocator(col - 1, home.row)
            if isinstance(node.spec, ConvSpec):
                base, words = alloc.lookup(f"{layer}/kernels@r{home.row}")
            else:
                base, words = alloc.lookup(f"{layer}/weights@r{home.row}")
            tile = machine.mem_tile(machine.mem_tile_id(col - 1, home.row))
            blocks.append(tile.read(base, words).copy())
        flat = np.concatenate(blocks)
        if isinstance(node.spec, ConvSpec):
            spec = node.spec
            in_c = node.input_shapes[0].count
            return flat.reshape(-1, in_c, spec.kernel, spec.kernel)
        return flat.reshape(node.output_shape.count, -1)

    def train_step(
        self, image: np.ndarray, label: int
    ) -> Tuple[np.ndarray, float, RunReport]:
        """One SGD iteration on the engine: FP, host loss gradient,
        BP/WG, in-place weight update.  Returns (softmax output, loss,
        run statistics).

        In minibatch mode this runs one *accumulation* pass (gradients
        add into the resident gradient regions; weights do not move) —
        call :meth:`apply_update` after a minibatch of steps, or use
        :meth:`train_minibatch`."""
        engine = self._ensure_machine()
        machine = engine.machine
        machine.reset_programs()

        # Load the image into column 0's home blocks.
        part = self.forward.partition
        in_node = self.network.input
        for home in part.blocks_of(in_node.name):
            tile = machine.mem_tile(machine.mem_tile_id(0, home.row))
            tile.write(
                home.address,
                image[home.first_feature:
                      home.first_feature + home.feature_count],
                accumulate=False,
            )

        # Phase 1: forward propagation; BP/WG tiles block on their first
        # tracker-gated access until the loss gradient arrives.
        fp_report = engine.run(
            raise_on_deadlock=False,
            exclude_tiles=self.update_tiles or None,
        )
        out_col = part.column_of[self.network.output.name]
        output = np.concatenate([
            machine.mem_tile(machine.mem_tile_id(out_col, h.row))
            .read(h.address, h.feature_count * h.feature_words).copy()
            for h in self.forward.output_blocks
        ])
        loss, grad = ops.softmax_cross_entropy(output, label)

        # Phase 2: inject dLoss/dpre at the output and run BP/WG/update.
        engine.inject(self.err_port, self.err_addr, grad.astype(np.float32))
        bp_report = engine.run(
            raise_on_deadlock=True, exclude_tiles=self.update_tiles or None
        )
        report = RunReport(
            cycles=bp_report.cycles,
            instructions=fp_report.instructions + bp_report.instructions,
            rounds=fp_report.rounds + bp_report.rounds,
            blocked_reads=bp_report.blocked_reads,
            blocked_writes=bp_report.blocked_writes,
            busy_cycles=bp_report.busy_cycles,
        )
        return output, loss, report

    def apply_update(self) -> None:
        """Run the weight-update programs (minibatch mode): one SGD step
        from the accumulated gradients, which WUPDATE also clears."""
        if not self.update_tiles:
            raise SimulationError(
                "per-image compilation has no deferred update programs"
            )
        engine = self._ensure_machine()
        for tile in self.update_tiles:
            engine.machine.comp_tiles[tile].pc = 0
            engine.machine.comp_tiles[tile].halted = False
            engine.machine.comp_tiles[tile].blocked = False
        engine.run(raise_on_deadlock=True, only_tiles=set(self.update_tiles))

    def train_minibatch(
        self, images: np.ndarray, labels
    ) -> Tuple[float, int]:
        """One full minibatch iteration (Sec 2.2): accumulate FP/BP/WG
        over every image, then update the weights once.  Returns
        (mean loss, correct classifications)."""
        if len(images) != self.minibatch:
            raise SimulationError(
                f"compiled for minibatch {self.minibatch}, got "
                f"{len(images)} images"
            )
        losses = []
        correct = 0
        for image, label in zip(images, labels):
            out, loss, _ = self.train_step(
                image.astype(np.float32), int(label)
            )
            losses.append(loss)
            correct += int(out.argmax() == int(label))
        self.apply_update()
        return float(np.mean(losses)), correct


class TrainingCompiler(ForwardCompiler):
    """Compiles FP + BP + WG + update programs for a sequential net.

    With ``minibatch > 1`` the WG programs *accumulate* gradients across
    images (the Sec 2.2 semantics: "their gradients are accumulated
    together to update the network weights") and the SGD update moves to
    separate weight-update programs that run once per minibatch with the
    learning rate scaled by 1/minibatch.
    """

    scope = "training"
    phases = (Phase.FP, Phase.BP, Phase.WG)
    # Fusion only models the forward fast path; training programs keep
    # per-instruction execution (BP/WG grammars are out of fusion scope).
    supports_fusion = False

    def __init__(
        self,
        net: Network,
        model: ReferenceModel,
        chip: Optional[ChipConfig] = None,
        rows: int = 2,
        learning_rate: Tuple[int, int] = (1, 100),
        minibatch: int = 1,
    ) -> None:
        super().__init__(net, model, chip, rows)
        if minibatch < 1:
            raise MappingError("minibatch must be >= 1")
        self.lr_num, self.lr_denom = learning_rate
        self.minibatch = minibatch
        # Scope violations surface at construction, as they always have
        # for the training compiler (legalize re-checks in the pipeline).
        check_training_scope(net)

    # ------------------------------------------------------------------
    def compile_training(self) -> CompiledTraining:
        ctx = self._run_pipeline(
            align=True,
            minibatch=self.minibatch,
            learning_rate=(self.lr_num, self.lr_denom),
        )
        err_port, err_addr, err_size = ctx.extra["err_injection"]
        forward = CompiledForward(
            network=self.net,
            chip=self.chip,
            rows=self.rows,
            partition=self.partition,
            programs=ctx.programs + ctx.update_programs,
            preloads=self.preloads,
            output_blocks=self.partition.blocks_of(self.net.output.name),
            ir=self.ir,
            pass_stats=self.pass_stats,
        )
        forward.verify(host_writes=[(err_port, err_addr, err_size)])

        return CompiledTraining(
            forward=forward,
            err_port=err_port,
            err_addr=err_addr,
            err_size=err_size,
            lr_num=self.lr_num,
            lr_denom=self.lr_denom,
            minibatch=self.minibatch,
            update_tiles=frozenset(
                p.tile for p in ctx.update_programs
            ),
        )


def compile_training(
    net: Network,
    model: ReferenceModel,
    chip: Optional[ChipConfig] = None,
    rows: int = 2,
    learning_rate: Tuple[int, int] = (1, 100),
    minibatch: int = 1,
) -> CompiledTraining:
    """Compile a full training iteration for the engine.

    ``minibatch > 1`` compiles the gradient-accumulation variant: WG
    programs add into resident gradient regions and deferred update
    programs apply one scaled SGD step per minibatch."""
    return TrainingCompiler(
        net, model, chip, rows, learning_rate, minibatch
    ).compile_training()
