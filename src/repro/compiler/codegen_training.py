"""Training code generation: FP + BP + WG + weight update on the engine.

This extends the forward compiler to the full training iteration of the
paper's Fig 3: beside each layer's FP program, it emits

* a **BP program** that back-propagates the error to the predecessor —
  convolving error features with rotated kernels (conv), multiplying by
  the transposed weights (FC), or up-sampling (SAMP) — and masks the
  result with the predecessor's activation derivative (NDACTBP);
* a **WG program** that correlates the layer's staged FP inputs with its
  error features to produce weight gradients (NDCONV with the error as
  the kernel for CONV layers; per-output-row MATMULs realising the
  outer product for FC layers) and applies them in place with WUPDATE.

In the paper the FP, BP, and WG programs of a layer run on the three
CompHeavy tiles of its column group; here each gets its own CompTile on
the engine machine, synchronised purely through MEMTRACK trackers — a
direct functional test of the Sec 3.2.4 scheme on a dataflow with both
directions active.

The loss gradient at the network output is computed by the host between
the FP and BP phases (the paper computes it in the final FP tiles) and
injected through a tracker-counted write, which is what un-blocks the
whole backward wave.

Scope: sequential networks with ``groups=1`` convolutions (strided ones
included — their BP and WG dilate the error by zero-insertion), max or
average pooling with window == stride (max routing recomputes the
argmax from the stored features), softmax+cross-entropy head, SGD with
frozen biases (see DESIGN.md) — per image, or with gradient
accumulation over a minibatch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.arch.chip import ChipConfig
from repro.compiler.codegen import (
    CompiledForward,
    ForwardCompiler,
    _Preload,
)
from repro.compiler.partition import FeatureHome
from repro.dnn.layers import (
    Activation,
    ConvSpec,
    FCSpec,
    GlobalPoolSpec,
    LayerKind,
    PoolMode,
    PoolSpec,
)
from repro.dnn.network import LayerNode, Network
from repro.errors import MappingError, SimulationError
from repro.functional import tensor_ops as ops
from repro.functional.reference import ReferenceModel
from repro.isa.instructions import Instruction, Opcode, make
from repro.isa.program import Program
from repro.sim.engine import (
    ACT_CODES,
    Engine,
    RunReport,
    SAMP_CODES,
    UPSAMP_ZERO_INSERT,
)
from repro.sim.machine import Machine, pack_shape


@dataclass
class CompiledTraining:
    """Training programs plus a persistent machine for SGD iterations."""

    forward: CompiledForward
    err_port: int
    err_addr: int
    err_size: int
    lr_num: int
    lr_denom: int
    minibatch: int = 1
    update_tiles: frozenset = frozenset()
    _machine: Optional[Machine] = None
    _engine: Optional[Engine] = None

    @property
    def network(self) -> Network:
        return self.forward.network

    @property
    def instruction_count(self) -> int:
        return self.forward.instruction_count

    def _ensure_machine(self) -> Engine:
        if self._engine is None:
            self._machine = self.forward.build_machine()
            self._engine = Engine(self._machine)
        return self._engine

    def read_weights(self, layer: str) -> np.ndarray:
        """Current (possibly trained) weights of a layer, from the
        machine's scratchpads, in the reference layout."""
        engine = self._ensure_machine()
        machine = engine.machine
        net = self.network
        node = net[layer]
        part = self.forward.partition
        col = part.column_of[layer]
        blocks: List[np.ndarray] = []
        for home in part.blocks_of(layer):
            alloc = part.allocator(col - 1, home.row)
            if isinstance(node.spec, ConvSpec):
                base, words = alloc.lookup(f"{layer}/kernels@r{home.row}")
            else:
                base, words = alloc.lookup(f"{layer}/weights@r{home.row}")
            tile = machine.mem_tile(machine.mem_tile_id(col - 1, home.row))
            blocks.append(tile.read(base, words).copy())
        flat = np.concatenate(blocks)
        if isinstance(node.spec, ConvSpec):
            spec = node.spec
            in_c = node.input_shapes[0].count
            return flat.reshape(-1, in_c, spec.kernel, spec.kernel)
        return flat.reshape(node.output_shape.count, -1)

    def train_step(
        self, image: np.ndarray, label: int
    ) -> Tuple[np.ndarray, float, RunReport]:
        """One SGD iteration on the engine: FP, host loss gradient,
        BP/WG, in-place weight update.  Returns (softmax output, loss,
        run statistics).

        In minibatch mode this runs one *accumulation* pass (gradients
        add into the resident gradient regions; weights do not move) —
        call :meth:`apply_update` after a minibatch of steps, or use
        :meth:`train_minibatch`."""
        engine = self._ensure_machine()
        machine = engine.machine
        machine.reset_programs()

        # Load the image into column 0's home blocks.
        part = self.forward.partition
        in_node = self.network.input
        for home in part.blocks_of(in_node.name):
            tile = machine.mem_tile(machine.mem_tile_id(0, home.row))
            tile.write(
                home.address,
                image[home.first_feature:
                      home.first_feature + home.feature_count],
                accumulate=False,
            )

        # Phase 1: forward propagation; BP/WG tiles block on their first
        # tracker-gated access until the loss gradient arrives.
        fp_report = engine.run(
            raise_on_deadlock=False,
            exclude_tiles=self.update_tiles or None,
        )
        out_col = part.column_of[self.network.output.name]
        output = np.concatenate([
            machine.mem_tile(machine.mem_tile_id(out_col, h.row))
            .read(h.address, h.feature_count * h.feature_words).copy()
            for h in self.forward.output_blocks
        ])
        loss, grad = ops.softmax_cross_entropy(output, label)

        # Phase 2: inject dLoss/dpre at the output and run BP/WG/update.
        engine.inject(self.err_port, self.err_addr, grad.astype(np.float32))
        bp_report = engine.run(
            raise_on_deadlock=True, exclude_tiles=self.update_tiles or None
        )
        report = RunReport(
            cycles=bp_report.cycles,
            instructions=fp_report.instructions + bp_report.instructions,
            rounds=fp_report.rounds + bp_report.rounds,
            blocked_reads=bp_report.blocked_reads,
            blocked_writes=bp_report.blocked_writes,
        )
        return output, loss, report

    def apply_update(self) -> None:
        """Run the weight-update programs (minibatch mode): one SGD step
        from the accumulated gradients, which WUPDATE also clears."""
        if not self.update_tiles:
            raise SimulationError(
                "per-image compilation has no deferred update programs"
            )
        engine = self._ensure_machine()
        for tile in self.update_tiles:
            engine.machine.comp_tiles[tile].pc = 0
            engine.machine.comp_tiles[tile].halted = False
            engine.machine.comp_tiles[tile].blocked = False
        engine.run(raise_on_deadlock=True, only_tiles=set(self.update_tiles))

    def train_minibatch(
        self, images: np.ndarray, labels
    ) -> Tuple[float, int]:
        """One full minibatch iteration (Sec 2.2): accumulate FP/BP/WG
        over every image, then update the weights once.  Returns
        (mean loss, correct classifications)."""
        if len(images) != self.minibatch:
            raise SimulationError(
                f"compiled for minibatch {self.minibatch}, got "
                f"{len(images)} images"
            )
        losses = []
        correct = 0
        for image, label in zip(images, labels):
            out, loss, _ = self.train_step(
                image.astype(np.float32), int(label)
            )
            losses.append(loss)
            correct += int(out.argmax() == int(label))
        self.apply_update()
        return float(np.mean(losses)), correct


class TrainingCompiler(ForwardCompiler):
    """Compiles FP + BP + WG + update programs for a sequential net.

    With ``minibatch > 1`` the WG programs *accumulate* gradients across
    images (the Sec 2.2 semantics: "their gradients are accumulated
    together to update the network weights") and the SGD update moves to
    separate weight-update programs that run once per minibatch with the
    learning rate scaled by 1/minibatch.
    """

    def __init__(
        self,
        net: Network,
        model: ReferenceModel,
        chip: Optional[ChipConfig] = None,
        rows: int = 2,
        learning_rate: Tuple[int, int] = (1, 100),
        minibatch: int = 1,
    ) -> None:
        super().__init__(net, model, chip, rows)
        if minibatch < 1:
            raise MappingError("minibatch must be >= 1")
        self.lr_num, self.lr_denom = learning_rate
        self.minibatch = minibatch
        self._validate_scope()
        #: err[L] home blocks, allocated lazily per layer.
        self._err_blocks: Dict[str, List[Tuple[FeatureHome, int]]] = {}
        #: Deferred weight-update programs (minibatch mode).
        self._update_programs: List[Program] = []

    # ------------------------------------------------------------------
    def _validate_scope(self) -> None:
        nodes = list(self.net)
        last = nodes[-1]
        if not isinstance(last.spec, FCSpec) or (
            last.spec.activation is not Activation.SOFTMAX
        ):
            raise MappingError(
                "training compilation needs a softmax FC head"
            )
        for node in nodes:
            spec = node.spec
            if isinstance(spec, ConvSpec):
                if spec.groups != 1 or spec.connection_table is not None:
                    raise MappingError(
                        f"{node.name}: BP compilation supports plain "
                        "ungrouped convolutions"
                    )
                if spec.stride > 1:
                    in_shape = node.input_shapes[0]
                    for extent in (in_shape.height, in_shape.width):
                        if (extent + 2 * spec.pad - spec.kernel) % spec.stride:
                            raise MappingError(
                                f"{node.name}: strided BP needs the window "
                                "sweep to divide the input exactly"
                            )
            elif isinstance(spec, PoolSpec):
                if spec.pad or spec.effective_stride != spec.window:
                    raise MappingError(
                        f"{node.name}: BP compilation supports unpadded "
                        "pooling with stride == window"
                    )
                if spec.mode is PoolMode.MAX:
                    in_shape = node.input_shapes[0]
                    if (in_shape.height % spec.window
                            or in_shape.width % spec.window):
                        raise MappingError(
                            f"{node.name}: max-pool BP needs the window "
                            "to tile the input exactly (the routing "
                            "reads the covered region contiguously)"
                        )
            elif isinstance(spec, GlobalPoolSpec):
                if spec.mode is not PoolMode.AVG:
                    raise MappingError(
                        f"{node.name}: BP needs average global pooling"
                    )

    # ------------------------------------------------------------------
    # Bookkeeping helpers
    # ------------------------------------------------------------------
    def _pred(self, node: LayerNode) -> LayerNode:
        return self.net[node.input_names[0]]

    def _succ(self, node: LayerNode) -> Optional[LayerNode]:
        consumers = self.net.consumers(node.name)
        return self.net[consumers[0]] if consumers else None

    def _is_weighted(self, node: LayerNode) -> bool:
        return node.kind in (LayerKind.CONV, LayerKind.FC)

    def _bp_exists(self, node: LayerNode) -> bool:
        """BP program of ``node`` exists iff its predecessor needs an
        error (i.e. is not the network input)."""
        return self._pred(node).kind is not LayerKind.INPUT

    def _err_reads(self, node: LayerNode, block: FeatureHome) -> int:
        """Readers of err[node]'s home block ``block``."""
        reads = 0
        if self._bp_exists(node):
            if self._is_weighted(node):
                # BP staging: one DMA per predecessor block row.
                reads += len(self.partition.blocks_of(self._pred(node).name))
            else:
                # Pool BP: one NDUPSAMP read per feature.
                reads += block.feature_count
        if self._is_weighted(node):
            reads += 1  # WG's err-copy DMA
        return reads

    def _err_updates(self, node: LayerNode, block: FeatureHome) -> int:
        """Writers of err[node]'s home block."""
        succ = self._succ(node)
        if succ is None:
            return 1  # host injection at the network output
        if self._is_weighted(node):
            return 1  # NDACTBP write by the successor's BP program
        # Pool: the successor's BP partials land here unmasked.
        if succ.kind is LayerKind.CONV:
            return block.feature_count * succ.output_shape.count
        if succ.kind is LayerKind.FC:
            return 1  # one MATMUL write per block
        raise MappingError(
            f"unsupported SAMP successor {succ.name} ({succ.kind})"
        )

    def _alloc_err_blocks(self) -> None:
        """Allocate err[L] regions mirroring each layer's home blocks."""
        for node in self.net:
            if node.kind is LayerKind.INPUT:
                continue
            col = self.partition.column_of[node.name]
            entries: List[Tuple[FeatureHome, int]] = []
            for home in self.partition.blocks_of(node.name):
                addr = self.partition.allocator(col, home.row).alloc(
                    f"{node.name}/err@r{home.row}",
                    home.feature_count * home.feature_words,
                )
                entries.append((home, addr))
            self._err_blocks[node.name] = entries

    def _err_block(self, layer: str, row: int) -> Tuple[FeatureHome, int]:
        for home, addr in self._err_blocks[layer]:
            if home.row == row:
                return home, addr
        raise MappingError(f"no err block for {layer} at row {row}")

    # ------------------------------------------------------------------
    # Hooks that extend the forward programs' tracker counts
    # ------------------------------------------------------------------
    def _extra_out_reads(self, node: LayerNode) -> int:
        # The BP mask copies the layer's activations next to the raw
        # error (one DMA per block) for every weighted, non-final layer
        # that receives an error; a MAX-pool successor's BP additionally
        # copies the original (pre-pool) feature per block for argmax
        # recomputation.
        reads = 0
        succ = self._succ(node)
        if self._is_weighted(node) and succ is not None:
            reads += 1
        if succ is not None and isinstance(succ.spec, PoolSpec):
            if succ.spec.mode is PoolMode.MAX and self._bp_exists(succ):
                reads += 1
        return reads

    def _conv_staging_reads(self, node: LayerNode, block_features: int) -> int:
        # FP reads each staged input once per output feature; WG reads
        # it again as the correlation input for each gradient.
        return 2 * block_features

    def _fc_staging_reads(self, node: LayerNode, block_features: int) -> int:
        # FP's single MATMUL plus one WG outer-product MATMUL per output.
        return 1 + block_features

    # ------------------------------------------------------------------
    def compile_training(self) -> CompiledTraining:
        self._alloc_err_blocks()
        forward = super().compile(align=False)

        training_programs: List[Program] = []
        for node in self.net:
            if node.kind is LayerKind.INPUT:
                continue
            if node.kind is LayerKind.SAMP:
                if self._bp_exists(node):
                    training_programs.extend(self._compile_pool_bp(node))
            elif self._is_weighted(node):
                if self._bp_exists(node):
                    training_programs.extend(self._compile_bp(node))
                training_programs.extend(self._compile_wg(node))

        # The output layer's error tracker: armed here so the host's
        # injection is the counted single update.
        final = self.net.output
        fin_home, fin_addr = self._err_block(final.name, 0)
        tracker_prog = Program(tile="err-injection-tracker")
        tracker_prog.append(make(
            Opcode.MEMTRACK,
            addr=fin_addr,
            port=self._port(
                self.partition.column_of[final.name], fin_home.row
            ),
            size=fin_home.feature_count * fin_home.feature_words,
            num_updates=1,
            num_reads=self._err_reads(final, fin_home),
            comment="loss gradient injection point",
        ))
        tracker_prog.append(make(Opcode.HALT))
        training_programs.append(tracker_prog)

        all_programs = (
            forward.programs + training_programs + self._update_programs
        )
        self._align_prologues(all_programs)
        for program in all_programs:
            program.validate()
        forward.programs = all_programs
        forward.verify(host_writes=[(
            self._port(
                self.partition.column_of[final.name], fin_home.row
            ),
            fin_addr,
            fin_home.feature_count * fin_home.feature_words,
        )])

        return CompiledTraining(
            forward=forward,
            err_port=self._port(
                self.partition.column_of[final.name], fin_home.row
            ),
            err_addr=fin_addr,
            err_size=fin_home.feature_count * fin_home.feature_words,
            lr_num=self.lr_num,
            lr_denom=self.lr_denom,
            minibatch=self.minibatch,
            update_tiles=frozenset(
                p.tile for p in self._update_programs
            ),
        )

    # ------------------------------------------------------------------
    # BP of weighted layers
    # ------------------------------------------------------------------
    def _stage_err(
        self, prog: Program, body: List[Instruction], node: LayerNode,
        col: int, row: int, reads: int, tag: str,
    ) -> int:
        """Stage all of err[node] into tile (col, row); returns base."""
        blocks = self._err_blocks[node.name]
        fwords = node.output_shape.feature_size
        total = node.output_shape.count * fwords
        base = self.partition.allocator(col, row).alloc(
            f"{tag}/errstage@r{row}", total
        )
        port = self._port(col, row)
        prog.append(make(
            Opcode.MEMTRACK, addr=base, port=port, size=total,
            num_updates=len(blocks), num_reads=reads,
            comment=f"track staged err[{node.name}]",
        ))
        for home, addr in blocks:
            body.append(make(
                Opcode.DMALOAD,
                src_addr=addr,
                src_port=self._port(col, home.row),
                dst_addr=base + home.first_feature * fwords,
                dst_port=port,
                size=home.feature_count * fwords,
                is_accum=0,
                comment=f"stage err[{node.name}] block r{home.row}",
            ))
        return base

    def _emit_mask(
        self, prog: Program, body: List[Instruction], pred: LayerNode,
        raw_base: int, pred_home: FeatureHome, pred_col: int,
    ) -> None:
        """Copy activations beside the raw error and apply NDACTBP."""
        words = pred_home.feature_count * pred_home.feature_words
        port = self._port(pred_col, pred_home.row)
        _, err_addr = self._err_block(pred.name, pred_home.row)
        act = pred.spec.activation  # type: ignore[attr-defined]
        body.append(make(
            Opcode.DMALOAD,
            src_addr=pred_home.address,
            src_port=port,
            dst_addr=raw_base + words,
            dst_port=port,
            size=words,
            is_accum=0,
            comment=f"copy {pred.name} activations for masking",
        ))
        body.append(make(
            Opcode.NDACTBP,
            fn_type=ACT_CODES.get(act, 0),
            err_addr=raw_base,
            port=port,
            size=words,
            out_addr=err_addr,
            out_port=port,
            comment=f"mask err[{pred.name}] with {act.value}'",
        ))

    def _arm_raw_and_err(
        self, prog: Program, pred: LayerNode, raw_base: int,
        pred_home: FeatureHome, pred_col: int, raw_updates: int,
    ) -> None:
        """Trackers for the raw region (+act copy) and the masked err."""
        words = pred_home.feature_count * pred_home.feature_words
        port = self._port(pred_col, pred_home.row)
        prog.append(make(
            Opcode.MEMTRACK, addr=raw_base, port=port, size=words,
            num_updates=raw_updates, num_reads=1,
            comment=f"track raw err[{pred.name}]",
        ))
        prog.append(make(
            Opcode.MEMTRACK, addr=raw_base + words, port=port, size=words,
            num_updates=1, num_reads=1,
            comment=f"track {pred.name} activation copy",
        ))
        _, err_addr = self._err_block(pred.name, pred_home.row)
        prog.append(make(
            Opcode.MEMTRACK, addr=err_addr, port=port, size=words,
            num_updates=self._err_updates(pred, pred_home),
            num_reads=self._err_reads(pred, pred_home),
            comment=f"track err[{pred.name}]",
        ))

    def _compile_bp(self, node: LayerNode) -> List[Program]:
        """BP of a weighted layer: produce err for its predecessor."""
        pred = self._pred(node)
        col = self.partition.column_of[node.name]
        pred_col = col - 1
        pred_masked = self._is_weighted(pred)
        programs: List[Program] = []

        for pred_home in self.partition.blocks_of(pred.name):
            row = pred_home.row
            prog = Program(tile=f"bp:{node.name}@r{row}")
            body: List[Instruction] = []
            words = pred_home.feature_count * pred_home.feature_words
            pred_port = self._port(pred_col, row)

            if pred_masked:
                raw_base = self.partition.allocator(pred_col, row).alloc(
                    f"{node.name}/raw@r{row}", 2 * words
                )
                raw_updates = (
                    pred_home.feature_count * node.output_shape.count
                    if node.kind is LayerKind.CONV
                    else 1
                )
                self._arm_raw_and_err(
                    prog, pred, raw_base, pred_home, pred_col, raw_updates
                )
                target_addr = raw_base
            else:
                # Predecessor is a pool: write into err[pred] directly.
                _, target_addr = self._err_block(pred.name, row)
                prog.append(make(
                    Opcode.MEMTRACK,
                    addr=target_addr, port=pred_port, size=words,
                    num_updates=self._err_updates(pred, pred_home),
                    num_reads=self._err_reads(pred, pred_home),
                    comment=f"track err[{pred.name}] (unmasked)",
                ))

            if node.kind is LayerKind.CONV:
                self._emit_conv_bp(
                    prog, body, node, pred, pred_home, col, row, target_addr
                )
            else:
                self._emit_fc_bp(
                    prog, body, node, pred, pred_home, col, row, target_addr
                )

            if pred_masked:
                self._emit_mask(prog, body, pred, target_addr, pred_home,
                                pred_col)
            prog.extend(body)
            prog.append(make(Opcode.HALT))
            programs.append(prog)
        return programs

    def _dilate_errors(
        self, prog: Program, body: List[Instruction], node: LayerNode,
        col: int, row: int, stage_base: int, reads_per_feature: int,
        tag: str,
    ) -> Tuple[int, int, int]:
        """Zero-insert every staged error feature of a strided layer.

        Returns (dilated base address, dilated height, dilated width);
        for stride 1 the staged region is returned untouched."""
        spec = node.spec
        assert isinstance(spec, ConvSpec)
        out_shape = node.output_shape
        if spec.stride == 1:
            return stage_base, out_shape.height, out_shape.width
        s_ = spec.stride
        dh = (out_shape.height - 1) * s_ + 1
        dw = (out_shape.width - 1) * s_ + 1
        err_words = out_shape.feature_size
        dil_words = dh * dw
        port = self._port(col, row)
        dil_base = self.partition.allocator(col, row).alloc(
            f"{tag}/dilated@r{row}", out_shape.count * dil_words
        )
        prog.append(make(
            Opcode.MEMTRACK, addr=dil_base, port=port,
            size=out_shape.count * dil_words,
            num_updates=out_shape.count,
            num_reads=reads_per_feature * out_shape.count,
            comment=f"track dilated err[{node.name}]",
        ))
        for f in range(out_shape.count):
            body.append(make(
                Opcode.NDUPSAMP,
                samp_type=UPSAMP_ZERO_INSERT,
                in_addr=stage_base + f * err_words,
                port=port,
                in_size=pack_shape(out_shape.height, out_shape.width),
                window=1,
                stride=s_,
                out_addr=dil_base + f * dil_words,
                out_port=port,
                comment=f"dilate err f={f} (stride {s_})",
            ))
        return dil_base, dh, dw

    def _emit_conv_bp(
        self, prog: Program, body: List[Instruction], node: LayerNode,
        pred: LayerNode, pred_home: FeatureHome, col: int, row: int,
        target_addr: int,
    ) -> None:
        spec = node.spec
        assert isinstance(spec, ConvSpec)
        out_shape = node.output_shape
        k = spec.kernel
        pad_bp = k - 1 - spec.pad
        # For stride 1 every NDCONV reads its error feature directly; a
        # strided layer reads the dilated copies instead (one read per
        # target feature each).
        if spec.stride == 1:
            err_reads = pred_home.feature_count * out_shape.count
        else:
            err_reads = 1  # each staged feature is read once, to dilate
        stage_base = self._stage_err(
            prog, body, node, col, row, err_reads, f"bp:{node.name}"
        )
        stage_base, eff_h, eff_w = self._dilate_errors(
            prog, body, node, col, row, stage_base,
            reads_per_feature=pred_home.feature_count,
            tag=f"bp:{node.name}",
        )
        # Rotated kernels for the targets this row computes.
        weights = self.model.state[node.name].weights
        rot = weights[:, :, ::-1, ::-1]
        g0 = pred_home.first_feature
        kern = np.ascontiguousarray(
            rot[:, g0 : g0 + pred_home.feature_count]
        )  # (out_c, block, k, k)
        kwords = k * k
        kern_base = self.partition.allocator(col, row).alloc(
            f"bp:{node.name}/rotkernels@r{row}", kern.size
        )
        self.preloads.append(_Preload(col, row, kern_base, kern.reshape(-1)))

        err_fwords = eff_h * eff_w
        for g_local in range(pred_home.feature_count):
            for f in range(out_shape.count):
                body.append(make(
                    Opcode.NDCONV,
                    in_addr=stage_base + f * err_fwords,
                    in_port=self._port(col, row),
                    in_size=pack_shape(eff_h, eff_w),
                    kernel_addr=kern_base
                    + (f * pred_home.feature_count + g_local) * kwords,
                    kernel_size=pack_shape(k, k),
                    stride=1,
                    pad=pad_bp,
                    out_addr=target_addr
                    + g_local * pred_home.feature_words,
                    out_port=self._port(col - 1, row),
                    is_accum=int(f > 0),
                    comment=f"bp partial g={g0 + g_local} f={f}",
                ))

    def _emit_fc_bp(
        self, prog: Program, body: List[Instruction], node: LayerNode,
        pred: LayerNode, pred_home: FeatureHome, col: int, row: int,
        target_addr: int,
    ) -> None:
        out_count = node.output_shape.count
        stage_base = self._stage_err(
            prog, body, node, col, row, reads=1, tag=f"bp:{node.name}"
        )
        # W^T rows for the flattened range this predecessor block spans.
        weights = self.model.state[node.name].weights  # (out, in)
        fwords = pred_home.feature_words
        flat0 = pred_home.first_feature * fwords
        flat1 = flat0 + pred_home.feature_count * fwords
        wt = np.ascontiguousarray(weights[:, flat0:flat1].T)
        wt_base = self.partition.allocator(col, row).alloc(
            f"bp:{node.name}/wt@r{row}", wt.size
        )
        self.preloads.append(_Preload(col, row, wt_base, wt.reshape(-1)))
        body.append(make(
            Opcode.MATMUL,
            in1_addr=stage_base,
            in1_port=self._port(col, row),
            in1_size=pack_shape(1, out_count),
            in2_addr=wt_base,
            in2_port=self._port(col, row),
            in2_size=pack_shape(flat1 - flat0, out_count),
            out_addr=target_addr,
            out_port=self._port(col - 1, row),
            is_accum=0,
            comment=f"bp matmul W^T rows [{flat0}, {flat1})",
        ))

    # ------------------------------------------------------------------
    # BP of pool layers: up-sample the error through the window
    # ------------------------------------------------------------------
    def _compile_pool_bp(self, node: LayerNode) -> List[Program]:
        pred = self._pred(node)
        spec = node.spec
        col = self.partition.column_of[node.name]
        pred_col = col - 1
        in_shape = node.input_shapes[0]
        if isinstance(spec, PoolSpec):
            window = spec.window
        else:
            window = in_shape.height
        out_shape = node.output_shape
        programs: List[Program] = []
        pred_blocks = {
            b.row: b for b in self.partition.blocks_of(pred.name)
        }
        mode = getattr(spec, "mode", PoolMode.AVG)
        for err_home, err_addr in self._err_blocks[node.name]:
            row = err_home.row
            pred_home = pred_blocks[row]
            words = pred_home.feature_count * pred_home.feature_words
            prog = Program(tile=f"bp:{node.name}@r{row}")
            body: List[Instruction] = []
            raw_base = self.partition.allocator(pred_col, row).alloc(
                f"{node.name}/raw@r{row}", 2 * words
            )
            self._arm_raw_and_err(
                prog, pred, raw_base, pred_home, pred_col,
                raw_updates=pred_home.feature_count,
            )
            err_words = err_home.feature_words
            orig_words = pred_home.feature_words
            if mode is PoolMode.MAX:
                # Per-feature work slots [error | original feature]: the
                # NDUPSAMP max mode recomputes the argmax from the
                # original and routes the error to it.
                slot = err_words + orig_words
                work_base = self.partition.allocator(col, row).alloc(
                    f"{node.name}/maxwork@r{row}",
                    err_home.feature_count * slot,
                )
                prog.append(make(
                    Opcode.MEMTRACK, addr=work_base,
                    port=self._port(col, row),
                    size=err_home.feature_count * slot,
                    num_updates=2 * err_home.feature_count,
                    num_reads=2 * err_home.feature_count,
                    comment=f"track {node.name} max-routing slots",
                ))
                # All slot fills first, then all routings: the block's
                # tracker must see every update before its first read
                # (the reads sit later in this same program).
                for f_local in range(err_home.feature_count):
                    feature = err_home.first_feature + f_local
                    body.append(make(
                        Opcode.DMALOAD,
                        src_addr=err_addr + f_local * err_words,
                        src_port=self._port(col, row),
                        dst_addr=work_base + f_local * slot,
                        dst_port=self._port(col, row),
                        size=err_words,
                        is_accum=0,
                        comment=f"stage pooled err f={feature}",
                    ))
                    body.append(make(
                        Opcode.DMALOAD,
                        src_addr=pred_home.feature_address(feature),
                        src_port=self._port(pred_col, row),
                        dst_addr=work_base + f_local * slot + err_words,
                        dst_port=self._port(col, row),
                        size=orig_words,
                        is_accum=0,
                        comment=f"stage original f={feature} for argmax",
                    ))
                for f_local in range(err_home.feature_count):
                    feature = err_home.first_feature + f_local
                    body.append(make(
                        Opcode.NDUPSAMP,
                        samp_type=SAMP_CODES[PoolMode.MAX],
                        in_addr=work_base + f_local * slot,
                        port=self._port(col, row),
                        in_size=pack_shape(
                            out_shape.height, out_shape.width
                        ),
                        window=window,
                        stride=window,
                        out_addr=raw_base
                        + f_local * pred_home.feature_words,
                        out_port=self._port(pred_col, row),
                        comment=f"route err to maxima f={feature}",
                    ))
            else:
                for f_local in range(err_home.feature_count):
                    body.append(make(
                        Opcode.NDUPSAMP,
                        samp_type=SAMP_CODES[PoolMode.AVG],
                        in_addr=err_addr + f_local * err_words,
                        port=self._port(col, row),
                        in_size=pack_shape(
                            out_shape.height, out_shape.width
                        ),
                        window=window,
                        stride=window,
                        out_addr=raw_base
                        + f_local * pred_home.feature_words,
                        out_port=self._port(pred_col, row),
                        comment="upsample err "
                                f"f={err_home.first_feature + f_local}",
                    ))
            self._emit_mask(prog, body, pred, raw_base, pred_home, pred_col)
            prog.extend(body)
            prog.append(make(Opcode.HALT))
            programs.append(prog)
        return programs

    # ------------------------------------------------------------------
    # WG: weight gradients + in-place SGD update
    # ------------------------------------------------------------------
    def _compile_wg(self, node: LayerNode) -> List[Program]:
        col = self.partition.column_of[node.name]
        src = self._pred(node)
        in_shape = node.input_shapes[0]
        programs: List[Program] = []

        for home in self.partition.blocks_of(node.name):
            row = home.row
            left = self._port(col - 1, row)
            prog = Program(tile=f"wg:{node.name}@r{row}")
            body: List[Instruction] = []

            # Copy this row's error block beside the weights so NDCONV /
            # MATMUL can read it from the same port as its other operand.
            err_home, err_addr = self._err_block(node.name, row)
            err_words = home.feature_count * node.output_shape.feature_size
            werr_base = self.partition.allocator(col - 1, row).alloc(
                f"wg:{node.name}/err@r{row}", err_words
            )
            strided = (
                node.kind is LayerKind.CONV and node.spec.stride > 1
            )
            if node.kind is not LayerKind.CONV:
                kernel_reads = home.feature_count
            elif strided:
                kernel_reads = home.feature_count  # one dilation each
            else:
                kernel_reads = home.feature_count * in_shape.count
            prog.append(make(
                Opcode.MEMTRACK, addr=werr_base, port=left, size=err_words,
                num_updates=1, num_reads=kernel_reads,
                comment=f"track wg err copy [{node.name}]",
            ))
            body.append(make(
                Opcode.DMALOAD,
                src_addr=err_addr,
                src_port=self._port(col, row),
                dst_addr=werr_base,
                dst_port=left,
                size=err_words,
                is_accum=0,
                comment=f"copy err[{node.name}] block for WG",
            ))

            if node.kind is LayerKind.CONV:
                grad_words = self._emit_conv_wg(
                    prog, body, node, home, col, row, werr_base
                )
                weight_block = f"{node.name}/kernels@r{row}"
            else:
                grad_words = self._emit_fc_wg(
                    prog, body, node, home, col, row, werr_base
                )
                weight_block = f"{node.name}/weights@r{row}"

            weight_base, _ = self.partition.allocator(
                col - 1, row
            ).lookup(weight_block)
            grad_base, _ = self.partition.allocator(col - 1, row).lookup(
                f"wg:{node.name}/grads@r{row}"
            )
            update = make(
                Opcode.WUPDATE,
                weight_addr=weight_base,
                grad_addr=grad_base,
                port=left,
                size=grad_words,
                lr_num=self.lr_num,
                lr_denom=self.lr_denom * self.minibatch,
                comment=f"SGD update {node.name} block r{row}",
            )
            if self.minibatch == 1:
                body.append(update)
            else:
                upd_prog = Program(tile=f"upd:{node.name}@r{row}")
                upd_prog.append(update)
                upd_prog.append(make(Opcode.HALT))
                self._update_programs.append(upd_prog)
            prog.extend(body)
            prog.append(make(Opcode.HALT))
            programs.append(prog)
        return programs

    def _emit_conv_wg(
        self, prog: Program, body: List[Instruction], node: LayerNode,
        home: FeatureHome, col: int, row: int, werr_base: int,
    ) -> int:
        spec = node.spec
        assert isinstance(spec, ConvSpec)
        src = self._pred(node)
        in_shape = node.input_shapes[0]
        out_shape = node.output_shape
        k = spec.kernel
        left = self._port(col - 1, row)
        stage_base, _ = self.partition.allocator(col - 1, row).lookup(
            f"{node.name}/stage@r{row}"
        )
        fwords = in_shape.feature_size
        err_fwords = out_shape.feature_size
        eff_h, eff_w = out_shape.height, out_shape.width
        if spec.stride > 1:
            # Correlating with the *dilated* error recovers the strided
            # gradient; dilate this block's error copies in place.
            s_ = spec.stride
            eff_h = (out_shape.height - 1) * s_ + 1
            eff_w = (out_shape.width - 1) * s_ + 1
            dil_words = eff_h * eff_w
            dil_base = self.partition.allocator(col - 1, row).alloc(
                f"wg:{node.name}/dilated@r{row}",
                home.feature_count * dil_words,
            )
            prog.append(make(
                Opcode.MEMTRACK, addr=dil_base, port=left,
                size=home.feature_count * dil_words,
                num_updates=home.feature_count,
                num_reads=home.feature_count * in_shape.count,
                comment=f"track wg dilated err [{node.name}]",
            ))
            for f_local in range(home.feature_count):
                body.append(make(
                    Opcode.NDUPSAMP,
                    samp_type=UPSAMP_ZERO_INSERT,
                    in_addr=werr_base + f_local * err_fwords,
                    port=left,
                    in_size=pack_shape(out_shape.height, out_shape.width),
                    window=1,
                    stride=s_,
                    out_addr=dil_base + f_local * dil_words,
                    out_port=left,
                    comment=f"wg dilate f={home.first_feature + f_local}",
                ))
            werr_base = dil_base
            err_fwords = dil_words
        kwords = k * k
        grad_words = home.feature_count * in_shape.count * kwords
        grad_base = self.partition.allocator(col - 1, row).alloc(
            f"wg:{node.name}/grads@r{row}", grad_words
        )
        prog.append(make(
            Opcode.MEMTRACK, addr=grad_base, port=left, size=grad_words,
            num_updates=home.feature_count * in_shape.count,
            num_reads=1 if self.minibatch == 1 else 0,
            comment=f"track {node.name} weight gradients",
        ))
        accumulate = int(self.minibatch > 1)
        for f_local in range(home.feature_count):
            for g in range(in_shape.count):
                body.append(make(
                    Opcode.NDCONV,
                    in_addr=stage_base + g * fwords,
                    in_port=left,
                    in_size=pack_shape(in_shape.height, in_shape.width),
                    kernel_addr=werr_base + f_local * err_fwords,
                    kernel_size=pack_shape(eff_h, eff_w),
                    stride=1,
                    pad=spec.pad,
                    out_addr=grad_base
                    + (f_local * in_shape.count + g) * kwords,
                    out_port=left,
                    is_accum=accumulate,
                    comment=f"grad f={home.first_feature + f_local} in={g}",
                ))
        return grad_words

    def _emit_fc_wg(
        self, prog: Program, body: List[Instruction], node: LayerNode,
        home: FeatureHome, col: int, row: int, werr_base: int,
    ) -> int:
        in_elems = node.input_shapes[0].elements
        left = self._port(col - 1, row)
        stage_base, _ = self.partition.allocator(col - 1, row).lookup(
            f"{node.name}/stage@r{row}"
        )
        grad_words = home.feature_count * in_elems
        grad_base = self.partition.allocator(col - 1, row).alloc(
            f"wg:{node.name}/grads@r{row}", grad_words
        )
        prog.append(make(
            Opcode.MEMTRACK, addr=grad_base, port=left, size=grad_words,
            num_updates=home.feature_count,
            num_reads=1 if self.minibatch == 1 else 0,
            comment=f"track {node.name} weight gradients",
        ))
        # Outer product, one output row at a time: grads[f, :] =
        # err[f] * input — realised as MATMUL(input-as-matrix, err[f]).
        accumulate = int(self.minibatch > 1)
        for f_local in range(home.feature_count):
            body.append(make(
                Opcode.MATMUL,
                in1_addr=werr_base + f_local,
                in1_port=left,
                in1_size=pack_shape(1, 1),
                in2_addr=stage_base,
                in2_port=left,
                in2_size=pack_shape(in_elems, 1),
                out_addr=grad_base + f_local * in_elems,
                out_port=left,
                is_accum=accumulate,
                comment=f"grad row f={home.first_feature + f_local}",
            ))
        return grad_words


def compile_training(
    net: Network,
    model: ReferenceModel,
    chip: Optional[ChipConfig] = None,
    rows: int = 2,
    learning_rate: Tuple[int, int] = (1, 100),
    minibatch: int = 1,
) -> CompiledTraining:
    """Compile a full training iteration for the engine.

    ``minibatch > 1`` compiles the gradient-accumulation variant: WG
    programs add into resident gradient regions and deferred update
    programs apply one scaled SGD step per minibatch."""
    return TrainingCompiler(
        net, model, chip, rows, learning_rate, minibatch
    ).compile_training()
