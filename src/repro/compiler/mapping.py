"""Workload mapping: STEP1-6 of the ScaleDeep compiler (paper Fig 13).

The mapper assigns every layer of a DNN to chip columns:

* STEP1 separates CONV/SAMP-side layers from FC-side layers and
  designates them to ConvLayer / FcLayer chips.  Non-weighted layers
  (SAMP, concat, element-wise joins, the input) are folded into the
  preceding weighted layer's allocation — its MemHeavy SFUs execute
  them — matching the paper's "C1/S1" grouping in Fig 19.  Parallel
  branch structures that join in a concatenation (GoogLeNet inception
  modules) are mapped as a single unit, which is how the paper counts
  them in Fig 15.
* STEP2 computes per-unit FLOPs.
* STEP3a computes the minimum columns each unit needs purely from
  memory capacity: the MemHeavy tiles must cumulatively hold two copies
  of the unit's features and errors plus two partial output batches.
* STEP3b load-balances the remaining columns: repeatedly grant one
  column to the unit with the highest stage latency, as long as the
  grant actually shortens it.
* STEP4/5 (state partitioning and compute assignment) are realised in
  the cost model's feature-distribution and array-configuration terms
  and, concretely for the functional engine, by
  :mod:`repro.compiler.partition`.
* STEP6 places weights on-chip where the allocated columns have spare
  scratchpad capacity, otherwise in external memory.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.arch.chip import ChipConfig, ChipKind
from repro.arch.node import NodeConfig
from repro.compiler.cost import layer_stage_cycles
from repro.dnn.analysis import Step, profile
from repro.dnn.layers import LayerKind
from repro.dnn.network import LayerNode, Network
from repro.errors import MappingError, UnmappableError
from repro.faults.model import FaultMask
from repro.telemetry.core import get_telemetry

#: Stop load-balancing a unit when an extra column improves its stage
#: latency by less than this fraction.
MIN_COLUMN_GAIN = 0.02


def default_group_key(layer_name: str) -> str:
    """Mapping-unit key: the prefix before the first underscore.

    Zoo networks name branch structures ``<module>_<branch>`` (e.g.
    ``inc4a_3x3``), so prefix grouping recovers the module.  Whether a
    prefix group is actually merged is decided structurally — see
    :func:`_split_layers`.
    """
    return layer_name.split("_", 1)[0]


@dataclass
class MappingUnit:
    """A set of layers mapped together onto one span of chip columns."""

    name: str
    members: List[LayerNode]  # weighted layers (CONV or FC)
    attached: List[LayerNode]  # SAMP / joins / input executed on SFUs

    @property
    def kind(self) -> LayerKind:
        return self.members[0].kind

    @property
    def layer_names(self) -> Tuple[str, ...]:
        return tuple(n.name for n in self.members)


@dataclass
class UnitAllocation:
    """Columns and weight placement for one mapping unit."""

    unit: str
    members: Tuple[str, ...]
    kind: LayerKind
    chip_kind: ChipKind
    columns: int
    min_columns: int
    weights_on_chip: bool
    attached: Tuple[str, ...] = ()
    training_flops: int = 0
    state_bytes: int = 0
    #: Fault-aware placement: the concrete healthy global column ids
    #: assigned to this unit (empty on a fault-free mapping), the
    #: re-elected home column (first healthy assigned column), and the
    #: throughput derate from tile-slow faults on the assignment.
    assigned_columns: Tuple[int, ...] = ()
    home_column: int = -1
    derate: float = 1.0

    def describe(self) -> str:
        where = "on-chip" if self.weights_on_chip else "ext-mem"
        attached = f" (+{','.join(self.attached)})" if self.attached else ""
        slow = f", derated x{self.derate:g}" if self.derate < 1.0 else ""
        return (
            f"{self.unit}{attached}: {self.columns} col"
            f"{'s' if self.columns != 1 else ''} on {self.chip_kind.value}, "
            f"weights {where}{slow}"
        )


@dataclass
class WorkloadMapping:
    """The result of mapping one network onto a node configuration."""

    network: Network
    node: NodeConfig
    conv_allocations: Dict[str, UnitAllocation]
    fc_allocations: Dict[str, UnitAllocation]
    conv_chips_per_copy: int
    clusters_per_copy: int
    copies: int
    #: Fault mask the mapping was remapped around (``None`` = healthy).
    faults: Optional[FaultMask] = None
    #: Dead columns the remap routed around inside the chips it uses.
    remapped_columns: int = 0

    @property
    def degraded(self) -> bool:
        return self.faults is not None and self.faults.degraded

    @property
    def conv_columns_per_copy(self) -> int:
        """Total ConvLayer-chip columns per network copy (Fig 16 'Cols')."""
        return sum(a.columns for a in self.conv_allocations.values())

    @property
    def fc_columns(self) -> int:
        return sum(a.columns for a in self.fc_allocations.values())

    @property
    def fc_batch_size(self) -> int:
        """Inputs batched per FC pass at each FcLayer hub (Sec 3.3)."""
        per_wheel = self.node.cluster.fc_batch_size(
            min(self.conv_chips_per_copy, self.node.cluster.conv_chip_count)
        )
        batch = per_wheel * self.node.fc_temporal_batch
        if self.node.fc_model_parallel:
            clusters = max(1, self.node.cluster_count // self.clusters_per_copy)
            batch *= clusters
        return batch

    def allocation_for(self, layer: str) -> UnitAllocation:
        """Look up the allocation hosting ``layer`` (member or attached)."""
        for table in (self.conv_allocations, self.fc_allocations):
            for alloc in table.values():
                if layer in alloc.members or layer in alloc.attached:
                    return alloc
        raise MappingError(
            f"layer {layer!r} is not mapped in network "
            f"{self.network.name!r}"
        )

    def describe(self) -> str:
        lines = [
            f"Mapping of {self.network.name} onto {self.node.name}:",
            f"  {self.conv_chips_per_copy} ConvLayer chip(s)/copy, "
            f"{self.clusters_per_copy} cluster(s)/copy, "
            f"{self.copies} cop{'ies' if self.copies != 1 else 'y'}, "
            f"{self.conv_columns_per_copy} conv columns/copy, "
            f"FC batch {self.fc_batch_size}",
        ]
        if self.degraded:
            lines.append(
                f"  degraded: {self.faults.fault_count} fault(s), "
                f"{self.remapped_columns} dead column(s) remapped around"
            )
        for alloc in self.conv_allocations.values():
            lines.append("  " + alloc.describe())
        for alloc in self.fc_allocations.values():
            lines.append("  " + alloc.describe())
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# STEP1: build mapping units and split them between chip kinds
# ---------------------------------------------------------------------------
def _split_layers(
    net: Network,
    group_key: Callable[[str], str],
) -> Tuple[List[MappingUnit], List[MappingUnit]]:
    """Group layers into mapping units for the conv and FC chip sides.

    A prefix group containing a CONCAT layer (the inception-module
    signature) is merged into one unit; all other weighted layers form
    singleton units.  Non-weighted layers attach to the unit of the most
    recent weighted layer (leading layers — the input — attach to the
    first unit).
    """
    # Which prefixes denote branch modules (contain a concat)?
    merged_prefixes = {
        group_key(n.name)
        for n in net
        if n.kind is LayerKind.CONCAT
    }

    conv_units: List[MappingUnit] = []
    fc_units: List[MappingUnit] = []
    by_key: Dict[str, MappingUnit] = {}
    leading: List[LayerNode] = []
    last_unit: Optional[MappingUnit] = None

    for node in net:
        if node.kind in (LayerKind.CONV, LayerKind.FC):
            key = group_key(node.name)
            if key in merged_prefixes and key in by_key:
                by_key[key].members.append(node)
                last_unit = by_key[key]
                continue
            unit = MappingUnit(
                name=key if key in merged_prefixes else node.name,
                members=[node],
                attached=list(leading),
            )
            leading = []
            if key in merged_prefixes:
                by_key[key] = unit
            (conv_units if node.kind is LayerKind.CONV else fc_units).append(
                unit
            )
            last_unit = unit
        else:
            if last_unit is None:
                leading.append(node)
            else:
                # Joins stay with their module even if interleaved.
                key = group_key(node.name)
                target = by_key.get(key, last_unit)
                target.attached.append(node)
                last_unit = target

    if leading:
        raise MappingError(
            f"network {net.name!r} has no weighted layers to map"
        )
    if not conv_units and not fc_units:
        raise MappingError(
            f"network {net.name!r} has no CONV or FC layers to map"
        )
    return conv_units, fc_units


def _unit_state_bytes(
    unit: MappingUnit, dtype_bytes: int, partial_batch: int
) -> int:
    """STEP3a memory requirement: two copies of features and errors plus
    two partial output-feature batches (pipeline double buffering)."""
    outputs = sum(
        n.output_shape.elements for n in unit.members + unit.attached
    )
    features_and_errors = 2 * 2 * outputs * dtype_bytes
    feature_size = max(
        n.output_shape.feature_size for n in unit.members
    )
    partials = 2 * partial_batch * feature_size * dtype_bytes
    return features_and_errors + partials


def _unit_stage_cycles(
    node: NodeConfig,
    chip: ChipConfig,
    unit: MappingUnit,
    columns: int,
) -> float:
    """Stage latency of a unit: members share the columns, so their
    stage latencies add (branches execute as successive batches).

    Weight placement follows STEP6's rule at this column count, so the
    load balancer sees the benefit of a column grant that lets weights
    (and their gradients) move on-chip."""
    dtype = node.dtype_bytes
    state = _unit_state_bytes(unit, dtype, chip.comp_tile.lanes)
    weights = sum(m.weights for m in unit.members) * dtype
    spare = columns * chip.mem_capacity_per_column - state
    on_chip = 2 * weights <= spare
    return sum(
        layer_stage_cycles(
            node.frequency_hz, chip, member, columns, dtype,
            weights_on_chip=on_chip,
        )
        for member in unit.members
    )


def map_network(
    net: Network,
    node: NodeConfig,
    min_column_gain: float = MIN_COLUMN_GAIN,
    group_key: Callable[[str], str] = default_group_key,
    faults: Optional[FaultMask] = None,
) -> WorkloadMapping:
    """Map ``net`` onto ``node`` following the paper's STEP1-6.

    With a ``faults`` mask the mapper remaps around dead columns:
    copies are placed greedily over spans of surviving columns, each
    unit is assigned concrete healthy column ids (re-electing its home
    column past any dead ones), and :class:`UnmappableError` is raised
    only when the surviving capacity genuinely cannot host the network.
    Without a mask the result is bit-identical to the historical path.
    """
    conv_chip = node.cluster.conv_chip
    fc_chip = node.cluster.fc_chip
    conv_units, fc_units = _split_layers(net, group_key)

    if faults is not None:
        # The fault-placement primitives live with the pass pipeline
        # (FaultRemapPass shares them); imported lazily because the
        # passes package pulls in the lowering's simulator imports.
        from repro.compiler.passes.faults import (
            assign_columns,
            conv_fault_footprint,
            fc_fault_budget,
        )

    tel = get_telemetry()
    if tel.enabled:
        tel.instant(
            "step1.partition", "compiler", ("compiler", "STEP1"), 0,
            network=net.name,
            conv_units=[u.name for u in conv_units],
            fc_units=[u.name for u in fc_units],
        )

    fc_budget: Optional[int] = None
    fc_assign_ids: List[int] = []
    if faults is not None and fc_units:
        fc_budget, fc_assign_ids = fc_fault_budget(
            net, node, fc_chip, fc_units, faults
        )
        fc_remapped = len(faults.dead_fc_columns)
    else:
        fc_remapped = 0
    fc_allocs = _allocate_side(
        net, node, fc_chip, fc_units, min_column_gain,
        column_budget=fc_budget,
    )

    # Minimum chips one copy needs from STEP3a's memory constraint.
    dtype = node.dtype_bytes
    min_cols = sum(
        max(1, math.ceil(
            _unit_state_bytes(u, dtype, conv_chip.comp_tile.lanes)
            / conv_chip.mem_capacity_per_column
        ))
        for u in conv_units
    )
    wheel = node.cluster.conv_chip_count
    min_chips = max(1, math.ceil(min_cols / conv_chip.cols))
    if min_chips > wheel * node.cluster_count:
        raise MappingError(
            f"{net.name} needs {min_chips} ConvLayer chips but the node "
            f"only has {node.conv_chip_count}"
        )

    conv_assign_ids: List[int] = []
    remapped = 0
    if faults is None or not conv_units:
        # STEP3a fixes the footprint: the minimum chips that satisfy the
        # memory constraint ("Based on the minimum column constraint we
        # determine the number of chips/chip clusters required to
        # spatially map the DNN").  Copies spanning more than one wheel
        # own whole clusters and use all their ConvLayer chips.
        chips_per_copy = min_chips
        if chips_per_copy <= wheel:
            clusters_per_copy = 1
            copies = node.cluster_count * (wheel // chips_per_copy)
        else:
            clusters_per_copy = math.ceil(chips_per_copy / wheel)
            copies = node.cluster_count // clusters_per_copy
            chips_per_copy = clusters_per_copy * wheel
        conv_budget = chips_per_copy * conv_chip.cols
    else:
        # Fault-aware STEP3a: place copies over spans of *surviving*
        # columns instead of assuming every chip contributes all of
        # its columns.
        (chips_per_copy, clusters_per_copy, copies,
         conv_budget, conv_assign_ids, remapped) = conv_fault_footprint(
            net, node, min_cols, faults
        )
    conv_allocs = _allocate_side(
        net, node, conv_chip, conv_units, min_column_gain,
        column_budget=conv_budget,
    )
    if faults is not None:
        assign_columns(
            conv_allocs, conv_assign_ids, faults.conv_speed, net.name
        )
        assign_columns(
            fc_allocs, fc_assign_ids, faults.fc_speed, net.name
        )

    mapping = WorkloadMapping(
        network=net,
        node=node,
        conv_allocations=conv_allocs,
        fc_allocations=fc_allocs,
        conv_chips_per_copy=chips_per_copy,
        clusters_per_copy=clusters_per_copy,
        copies=copies,
        faults=faults,
        remapped_columns=remapped + fc_remapped,
    )
    _place_weights(mapping)
    if tel.enabled:
        tel.instant(
            "step3a.footprint", "compiler", ("compiler", "STEP3a"), 0,
            network=net.name, min_columns=min_cols,
            chips_per_copy=chips_per_copy,
            clusters_per_copy=clusters_per_copy, copies=copies,
        )
        group = f"mapping/{net.name}"
        tel.record(group, "conv_units", len(conv_units))
        tel.record(group, "fc_units", len(fc_units))
        tel.record(group, "conv_columns_per_copy",
                   mapping.conv_columns_per_copy)
        tel.record(group, "fc_columns", mapping.fc_columns)
        tel.record(group, "copies", copies)
    return mapping


def _allocate_side(
    net: Network,
    node: NodeConfig,
    chip: ChipConfig,
    units: List[MappingUnit],
    min_column_gain: float,
    column_budget: Optional[int] = None,
) -> Dict[str, UnitAllocation]:
    """STEP2 + STEP3 for one chip side."""
    if not units:
        return {}
    dtype = node.dtype_bytes
    partial_batch = chip.comp_tile.lanes

    tel = get_telemetry()
    allocs: Dict[str, UnitAllocation] = {}
    for unit in units:
        state = _unit_state_bytes(unit, dtype, partial_batch)
        min_cols = max(1, math.ceil(state / chip.mem_capacity_per_column))
        if tel.enabled:
            tel.instant(
                "step3a.min_columns", "compiler",
                ("compiler", "STEP3a"), len(allocs),
                unit=unit.name, chip=chip.kind.value,
                state_bytes=state, min_columns=min_cols,
            )
        flops = sum(
            profile(n, step, dtype).flops
            for n in unit.members + unit.attached
            for step in Step
        )
        allocs[unit.name] = UnitAllocation(
            unit=unit.name,
            members=unit.layer_names,
            kind=unit.kind,
            chip_kind=chip.kind,
            columns=min_cols,
            min_columns=min_cols,
            weights_on_chip=False,
            attached=tuple(n.name for n in unit.attached),
            training_flops=flops,
            state_bytes=state,
        )

    # STEP3b: distribute the remaining columns, granting each to the
    # unit with the highest stage latency while the grant still helps.
    total = sum(a.columns for a in allocs.values())
    if column_budget is None:
        chips_needed = max(1, math.ceil(total / chip.cols))
        column_budget = chips_needed * chip.cols
    budget = column_budget - total
    units_by_name = {u.name: u for u in units}

    def stage_cycles(unit_name: str, columns: int) -> float:
        return _unit_stage_cycles(
            node, chip, units_by_name[unit_name], columns
        )

    current = {
        name: stage_cycles(name, a.columns) for name, a in allocs.items()
    }
    grants = 0
    while budget > 0:
        ranked = sorted(current, key=lambda n: current[n], reverse=True)
        granted = False
        for name in ranked:
            # Lane/row quantisation makes the gain a step function of the
            # column count, so search ahead for the smallest grant that
            # actually helps instead of stalling on a plateau.
            base_cols = allocs[name].columns
            for extra in range(1, budget + 1):
                trial = stage_cycles(name, base_cols + extra)
                if trial < current[name] * (1 - min_column_gain):
                    allocs[name].columns = base_cols + extra
                    if tel.enabled:
                        tel.instant(
                            "step3b.grant", "compiler",
                            ("compiler", "STEP3b"), grants,
                            unit=name, extra_columns=extra,
                            columns=base_cols + extra,
                            stage_cycles_before=current[name],
                            stage_cycles_after=trial,
                        )
                        grants += 1
                    current[name] = trial
                    budget -= extra
                    granted = True
                    break
            if granted:
                break
        if not granted:
            break
    return allocs


def _place_weights(mapping: WorkloadMapping) -> None:
    """STEP6: decide on-chip vs external weight storage per unit."""
    node = mapping.node
    dtype = node.dtype_bytes
    net = mapping.network
    tel = get_telemetry()
    placed = 0

    for table, chip in (
        (mapping.conv_allocations, node.cluster.conv_chip),
        (mapping.fc_allocations, node.cluster.fc_chip),
    ):
        for alloc in table.values():
            weights = sum(net[m].weights for m in alloc.members) * dtype
            if chip.kind is ChipKind.FC and node.fc_model_parallel:
                # Model parallelism shards FC weights across the
                # clusters that share one network copy (Sec 3.3.2).
                shards = max(
                    1, node.cluster_count // mapping.clusters_per_copy
                )
                weights = math.ceil(weights / shards)
            capacity = alloc.columns * chip.mem_capacity_per_column
            spare = capacity - alloc.state_bytes
            # Weights and their gradients both live on-chip when chosen.
            alloc.weights_on_chip = 2 * weights <= spare
            if tel.enabled:
                tel.instant(
                    "step6.weight_placement", "compiler",
                    ("compiler", "STEP6"), placed,
                    unit=alloc.unit, chip=chip.kind.value,
                    weight_bytes=weights, spare_bytes=spare,
                    on_chip=alloc.weights_on_chip,
                )
                placed += 1
