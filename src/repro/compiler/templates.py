"""Hand-coded assembly routine templates (paper Sec 4.2).

"The compiler utilizes a library of hand-coded assembly routine
templates for the FP/BP/WG steps of each layer type.  These
parameterized assembly templates are customized by the compiler based
on the information available from the workload mapping phase."

This module is that library: looped ScaleDeep assembly with
``${PARAM}`` placeholders, instantiated per mapping.  The loops use the
scalar ISA for trip counts and pointer arithmetic and pass
register-indirect operands to the data instructions — the style of the
paper's Fig 13 listing — trading instruction-memory footprint for
static analyzability (register-indirect addresses defeat the tracker
calibration pass, which is why the production code generators unroll
instead; see :mod:`repro.compiler.trackers`).
"""

from __future__ import annotations

from dataclasses import dataclass
from string import Template
from typing import Dict, List, Tuple

import numpy as np

from repro.errors import ProgramError
from repro.isa.assembler import assemble
from repro.isa.instructions import Opcode, make
from repro.isa.program import Program


# ---------------------------------------------------------------------------
# Shared emission helpers (used by every engine lowering)
# ---------------------------------------------------------------------------
@dataclass
class Preload:
    """A value written into a tile at machine-build time."""

    col: int
    row: int
    addr: int
    data: np.ndarray

    def __post_init__(self) -> None:
        # Defensive copy: preloads must capture the compile-time values
        # even if the source model's arrays are mutated later.
        self.data = np.array(self.data, dtype=np.float32).reshape(-1)


def port_of(rows: int, col: int, row: int) -> int:
    """Mem-tile port id of (col, row) on an engine machine."""
    return col * rows + row


def tracker_prologue_len(prog: Program) -> int:
    """Length of a program's leading tracker-arming prologue."""
    n = 0
    for instr in prog:
        if instr.opcode in (Opcode.MEMTRACK, Opcode.DMA_MEMTRACK):
            n += 1
        else:
            break
    return n


def align_prologues(programs: List[Program]) -> None:
    """Pad every program's tracker prologue to the same length so all
    trackers are armed before any tile issues its first data access
    (the round-robin scheduler executes one instruction per tile per
    round)."""
    longest = max(tracker_prologue_len(p) for p in programs)
    for prog in programs:
        pad = longest - tracker_prologue_len(prog)
        if pad:
            filler = [
                make(Opcode.LDRI, rd=0, value=0, comment="prologue pad")
                for _ in range(pad)
            ]
            prog.instructions[0:0] = filler


def arm_placeholder_tracker(
    prog: Program, port: int, addr: int, size: int, what: str
) -> None:
    """Arm a placeholder tracker; calibration fills the counts."""
    prog.append(make(
        Opcode.MEMTRACK, addr=addr, port=port, size=size,
        num_updates=0, num_reads=0, comment=f"track {what}",
    ))


@dataclass(frozen=True)
class RoutineTemplate:
    """One parameterized assembly routine."""

    name: str
    params: Tuple[str, ...]
    source: str

    def instantiate(self, tile: str = "tile", **values: int) -> Program:
        """Substitute parameters and assemble to a validated program."""
        missing = [p for p in self.params if p not in values]
        extra = [k for k in values if k not in self.params]
        if missing or extra:
            raise ProgramError(
                f"template {self.name}: missing {missing}, "
                f"unexpected {extra}"
            )
        source = Template(self.source).substitute(
            {k: str(int(v)) for k, v in values.items()}
        )
        return assemble(source, tile=tile)


#: Batch convolution FP (Fig 9 step 1): one input feature convolved
#: against ``N_KERNELS`` kernels stored contiguously, producing
#: contiguous partial outputs — the CompHeavy tile's primitive
#: ("batch convolution (one input, many kernels)", Sec 3.1.1).
#: Registers: r1 = remaining kernels, r2 = kernel pointer,
#: r3 = output pointer.
CONV_BATCH_FP = RoutineTemplate(
    name="conv-batch-fp",
    params=(
        "N_KERNELS", "IN_ADDR", "IN_PORT", "IN_SIZE", "KER_BASE",
        "KER_WORDS", "KER_SIZE", "STRIDE", "PAD", "OUT_BASE",
        "OUT_WORDS", "OUT_PORT", "IS_ACCUM",
    ),
    source="""
    ; conv-batch-fp: loop ${N_KERNELS} kernels over one input feature
    LDRI rd=1, value=${N_KERNELS}
    LDRI rd=2, value=${KER_BASE}
    LDRI rd=3, value=${OUT_BASE}
    loop:
    NDCONV in_addr=${IN_ADDR}, in_port=${IN_PORT}, in_size=${IN_SIZE}, kernel_addr=r2, kernel_size=${KER_SIZE}, stride=${STRIDE}, pad=${PAD}, out_addr=r3, out_port=${OUT_PORT}, is_accum=${IS_ACCUM}
    ADDRI rd=2, rs=2, value=${KER_WORDS}
    ADDRI rd=3, rs=3, value=${OUT_WORDS}
    SUBRI rd=1, rs=1, value=1
    BGTZ rs=1, offset=@loop
    HALT
    """,
)

#: Row-blocked matrix multiply FP for FC layers: the weight matrix is
#: processed in ``N_BLOCKS`` row blocks of ``BLOCK_ROWS`` rows each,
#: re-reading the staged input vector per block (the FcLayer tile's
#: streaming pattern).  Registers: r1 = remaining blocks, r2 = weight
#: pointer, r3 = output pointer.
MATMUL_BLOCKED_FP = RoutineTemplate(
    name="matmul-blocked-fp",
    params=(
        "N_BLOCKS", "VEC_ADDR", "VEC_PORT", "VEC_SIZE", "W_BASE",
        "W_BLOCK_WORDS", "W_BLOCK_SIZE", "OUT_BASE", "BLOCK_ROWS",
        "OUT_PORT",
    ),
    source="""
    ; matmul-blocked-fp: ${N_BLOCKS} row blocks over one input vector
    LDRI rd=1, value=${N_BLOCKS}
    LDRI rd=2, value=${W_BASE}
    LDRI rd=3, value=${OUT_BASE}
    loop:
    MATMUL in1_addr=${VEC_ADDR}, in1_port=${VEC_PORT}, in1_size=${VEC_SIZE}, in2_addr=r2, in2_port=${VEC_PORT}, in2_size=${W_BLOCK_SIZE}, out_addr=r3, out_port=${OUT_PORT}, is_accum=0
    ADDRI rd=2, rs=2, value=${W_BLOCK_WORDS}
    ADDRI rd=3, rs=3, value=${BLOCK_ROWS}
    SUBRI rd=1, rs=1, value=1
    BGTZ rs=1, offset=@loop
    HALT
    """,
)

#: Strided gather: ``COUNT`` fixed-size chunks DMA'd from a strided
#: source layout into a dense destination (the home-tile distribution
#: step of Fig 9 step 4).  Registers: r1 = remaining, r2 = src pointer,
#: r3 = dst pointer.
DMA_GATHER = RoutineTemplate(
    name="dma-gather",
    params=(
        "COUNT", "SRC_BASE", "SRC_STRIDE", "SRC_PORT", "DST_BASE",
        "CHUNK_WORDS", "DST_PORT",
    ),
    source="""
    ; dma-gather: ${COUNT} strided chunks -> dense
    LDRI rd=1, value=${COUNT}
    LDRI rd=2, value=${SRC_BASE}
    LDRI rd=3, value=${DST_BASE}
    loop:
    DMALOAD src_addr=r2, src_port=${SRC_PORT}, dst_addr=r3, dst_port=${DST_PORT}, size=${CHUNK_WORDS}, is_accum=0
    ADDRI rd=2, rs=2, value=${SRC_STRIDE}
    ADDRI rd=3, rs=3, value=${CHUNK_WORDS}
    SUBRI rd=1, rs=1, value=1
    BGTZ rs=1, offset=@loop
    HALT
    """,
)

#: Minibatch weight update: sweep a weight region in ``N_CHUNKS``
#: chunks, applying the scaled gradient in place (the end-of-minibatch
#: step the wheel/ring deliver gradients for, Sec 3.3).
WUPDATE_SWEEP = RoutineTemplate(
    name="wupdate-sweep",
    params=(
        "N_CHUNKS", "W_BASE", "G_BASE", "CHUNK_WORDS", "PORT",
        "LR_NUM", "LR_DENOM",
    ),
    source="""
    ; wupdate-sweep: ${N_CHUNKS} chunks of in-place SGD
    LDRI rd=1, value=${N_CHUNKS}
    LDRI rd=2, value=${W_BASE}
    LDRI rd=3, value=${G_BASE}
    loop:
    WUPDATE weight_addr=r2, grad_addr=r3, port=${PORT}, size=${CHUNK_WORDS}, lr_num=${LR_NUM}, lr_denom=${LR_DENOM}
    ADDRI rd=2, rs=2, value=${CHUNK_WORDS}
    ADDRI rd=3, rs=3, value=${CHUNK_WORDS}
    SUBRI rd=1, rs=1, value=1
    BGTZ rs=1, offset=@loop
    HALT
    """,
)

#: The template library, keyed by routine name.
TEMPLATE_LIBRARY: Dict[str, RoutineTemplate] = {
    t.name: t
    for t in (CONV_BATCH_FP, MATMUL_BLOCKED_FP, DMA_GATHER, WUPDATE_SWEEP)
}
