"""Content fingerprints for compile artifacts.

The mapping and codegen pipelines are deterministic functions of three
inputs: the network topology, the node configuration, and the compiler
itself.  This module digests those inputs into a stable hex key so
caches (:mod:`repro.sweep.cache`) can be keyed by *content* rather than
object identity — two independently-built but logically-equal networks
or presets produce the same digest, while any perturbation of a layer
shape, a preset field, or the compiler version produces a different one.

Cosmetic fields are excluded: the node's ``name`` does not affect what
the compiler produces, and neither does the network's display name
(layer names *are* included — the wiring references them).
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from typing import Any, Dict

from repro.arch.node import NodeConfig
from repro.compiler.ir import IR_SCHEMA_VERSION
from repro.dnn.network import Network

#: Version of the mapping/codegen pipeline baked into every digest.
#: Bump this whenever STEP1-6 or the code generators change the
#: artifacts they produce for the same inputs — every cache entry keyed
#: under the old version becomes unreachable (implicit invalidation).
#: "2": fault-aware mapping added assigned-column/derate fields to
#: allocations and a fault mask to WorkloadMapping.
#: "3": the unified-IR pass pipeline; digests also bake in
#: ``IR_SCHEMA_VERSION``, so IR shape changes invalidate on their own.
#: "4": multi-node scale-out — digests gain a ``system`` slot (topology
#: + parallelism strategy), so system-level results can never collide
#: with single-node entries cached under older versions.
#: "5": superop fusion — lowered programs carry fusion plans and
#: codegen digests bake in the fuse flag, so fused and unfused
#: compilations (and anything cached before fusion existed) never
#: share a cache entry.
COMPILER_VERSION = "5"


def canonical(obj: Any) -> Any:
    """A JSON-serialisable canonical form of ``obj``.

    Dataclasses become ``{"__type__": <class>, <field>: ...}`` maps,
    enums their values; mappings are key-sorted.  Raises ``TypeError``
    for objects with no stable canonical form (by way of
    ``json.dumps`` at digest time).
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        form: Dict[str, Any] = {"__type__": type(obj).__name__}
        for f in dataclasses.fields(obj):
            form[f.name] = canonical(getattr(obj, f.name))
        return form
    if isinstance(obj, enum.Enum):
        return obj.value
    if isinstance(obj, (list, tuple)):
        return [canonical(item) for item in obj]
    if isinstance(obj, dict):
        return {str(k): canonical(v) for k, v in sorted(obj.items())}
    return obj


def network_fingerprint(net: Network) -> Dict[str, Any]:
    """Canonical form of a network's topology (specs + wiring).

    The network's display name is omitted; the layer specs and the
    wiring between them are what the compiler consumes.
    """
    return {
        "layers": [
            {
                "spec": canonical(node.spec),
                "inputs": list(node.input_names),
            }
            for node in net
        ],
    }


def node_fingerprint(node: NodeConfig) -> Dict[str, Any]:
    """Canonical form of a node configuration, minus its display name."""
    form = canonical(node)
    form.pop("name", None)
    return form


def system_fingerprint(system: "SystemConfig") -> Dict[str, Any]:
    """Canonical form of a system configuration.

    Display names (the system's and its node's) are cosmetic and
    excluded; node count, fabric constants and the parallelism strategy
    all change what the system-level simulation produces.
    """
    form = canonical(system)
    form.pop("name", None)
    if isinstance(form.get("node"), dict):
        form["node"].pop("name", None)
    return form


def compile_digest(
    net: Network,
    node: "NodeConfig | None",
    artifact: str = "mapping",
    system: "SystemConfig | None" = None,
    **extra: Any,
) -> str:
    """Stable hex digest of everything a compile artifact depends on.

    ``artifact`` namespaces the digest per artifact kind, and ``extra``
    carries any further inputs (e.g. the simulation minibatch or a
    reference-model seed; dataclasses such as a chip config are fine).
    ``node`` may be ``None`` for artifacts that do not depend on a full
    node configuration; ``system`` stays ``None`` for single-node
    artifacts (the default path) and carries the scale-out topology +
    strategy otherwise.
    """
    payload = {
        "compiler_version": COMPILER_VERSION,
        "ir_schema_version": IR_SCHEMA_VERSION,
        "artifact": artifact,
        "network": network_fingerprint(net),
        "node": None if node is None else node_fingerprint(node),
        "system": None if system is None else system_fingerprint(system),
    }
    if extra:
        payload["extra"] = canonical(extra)
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()
