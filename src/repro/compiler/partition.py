"""Network-state partitioning for the functional engine (STEP4).

Assigns every layer's output features to home MemHeavy tiles of an
engine machine: layer ``i`` of a sequential network occupies mem column
``i + 1`` (column 0 holds the network input), and its features split
into contiguous blocks over the column's rows — the even distribution
the paper's STEP4 prescribes, with block (rather than round-robin)
order so that flattening for FC layers is a per-row contiguous copy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.dnn.layers import LayerKind
from repro.dnn.network import Network
from repro.errors import MappingError


@dataclass
class TileAllocator:
    """Bump allocator for one MemHeavy tile's scratchpad words."""

    capacity_words: int
    cursor: int = 0
    blocks: Dict[str, Tuple[int, int]] = field(default_factory=dict)

    def alloc(self, name: str, words: int) -> int:
        """Reserve ``words`` under ``name``; returns the start address."""
        if name in self.blocks:
            raise MappingError(f"block {name!r} already allocated")
        if self.cursor + words > self.capacity_words:
            raise MappingError(
                f"tile out of scratchpad: need {words} words at "
                f"{self.cursor}/{self.capacity_words} for {name!r}"
            )
        start = self.cursor
        self.cursor += words
        self.blocks[name] = (start, words)
        return start

    def lookup(self, name: str) -> Tuple[int, int]:
        try:
            return self.blocks[name]
        except KeyError:
            raise MappingError(f"no block {name!r}") from None


@dataclass(frozen=True)
class FeatureHome:
    """Home placement of one block of a layer's output features."""

    layer: str
    row: int
    first_feature: int
    feature_count: int
    address: int  # word offset of the block within its home tile
    feature_words: int

    def feature_address(self, feature: int) -> int:
        if not (
            self.first_feature
            <= feature
            < self.first_feature + self.feature_count
        ):
            raise MappingError(
                f"feature {feature} not in block "
                f"[{self.first_feature}, "
                f"{self.first_feature + self.feature_count})"
            )
        return self.address + (feature - self.first_feature) * self.feature_words


@dataclass
class StatePartition:
    """Home blocks per layer plus per-tile allocators."""

    rows: int
    mem_columns: int
    column_of: Dict[str, int]
    homes: Dict[str, List[FeatureHome]]
    allocators: Dict[Tuple[int, int], TileAllocator]

    capacity_words: int = 0

    def allocator(self, col: int, row: int) -> TileAllocator:
        """Allocator for a tile, created on first use (code generation
        keeps allocating staging/weight blocks after partitioning)."""
        key = (col, row)
        if key not in self.allocators:
            self.allocators[key] = TileAllocator(self.capacity_words)
        return self.allocators[key]

    def blocks_of(self, layer: str) -> List[FeatureHome]:
        try:
            return self.homes[layer]
        except KeyError:
            raise MappingError(f"layer {layer!r} not partitioned") from None

    def rows_used(self, layer: str) -> List[int]:
        return [h.row for h in self.blocks_of(layer)]

    def tile_occupancy(self) -> Dict[Tuple[int, int], float]:
        """Fraction of each tile's scratchpad the compiler has claimed."""
        return {
            key: alloc.cursor / alloc.capacity_words
            for key, alloc in sorted(self.allocators.items())
        }

    def memory_map(self) -> str:
        """Human-readable per-tile allocation map — the concrete output
        of STEP4's state partitioning plus the code generator's staging,
        weight, and working regions."""
        lines = ["Memory map (tile -> blocks):"]
        for (col, row), alloc in sorted(self.allocators.items()):
            used = alloc.cursor
            lines.append(
                f"  tile c{col} r{row}: {used:,}/{alloc.capacity_words:,} "
                f"words ({100 * used / alloc.capacity_words:.1f}%)"
            )
            for name, (start, words) in sorted(
                alloc.blocks.items(), key=lambda kv: kv[1][0]
            ):
                lines.append(
                    f"    [{start:>8,} +{words:>8,}] {name}"
                )
        return "\n".join(lines)


def _is_sequential(net: Network) -> bool:
    return all(len(node.input_names) <= 1 for node in net)


def partition_graph(
    net: Network,
    rows: int,
    capacity_words: int,
    final_layer_single_row: bool = True,
) -> StatePartition:
    """Partition any network's state over an engine machine: layer i of
    the topological order owns mem column i, with its output features in
    contiguous blocks over the column's rows.

    ``final_layer_single_row`` places the whole output layer on one row
    so a global softmax can run where the full vector lives.
    """
    column_of: Dict[str, int] = {}
    homes: Dict[str, List[FeatureHome]] = {}
    allocators: Dict[Tuple[int, int], TileAllocator] = {}

    def allocator(col: int, row: int) -> TileAllocator:
        key = (col, row)
        if key not in allocators:
            allocators[key] = TileAllocator(capacity_words)
        return allocators[key]

    for index, node in enumerate(net):
        col = index  # input layer -> column 0, layer i -> column i
        column_of[node.name] = col
        count = node.output_shape.count
        words = node.output_shape.feature_size
        is_last = node is net.output
        if is_last and final_layer_single_row:
            block = count
        else:
            block = math.ceil(count / rows)
        layer_homes: List[FeatureHome] = []
        first = 0
        row = 0
        while first < count:
            size = min(block, count - first)
            addr = allocator(col, row).alloc(
                f"{node.name}/out", size * words
            )
            layer_homes.append(
                FeatureHome(node.name, row, first, size, addr, words)
            )
            first += size
            row += 1
        homes[node.name] = layer_homes

    mem_columns = len(net)
    return StatePartition(
        rows=rows,
        mem_columns=mem_columns,
        column_of=column_of,
        homes=homes,
        allocators=allocators,
        capacity_words=capacity_words,
    )


def partition_sequential(
    net: Network,
    rows: int,
    capacity_words: int,
    final_layer_single_row: bool = True,
) -> StatePartition:
    """Partition a *sequential* network (chain) — the stricter contract
    the sequential code generator relies on."""
    if not _is_sequential(net):
        raise MappingError(
            f"engine partitioning supports sequential networks; "
            f"{net.name!r} has branches"
        )
    return partition_graph(
        net, rows, capacity_words, final_layer_single_row
    )
