"""The compile pipeline entry point: network -> mapping -> unit IR.

:func:`compile_network` is the one front door to the analytical
compiler: it runs STEP1-6 (:func:`~repro.compiler.mapping.map_network`)
for the healthy machine, builds the unit-level
:class:`~repro.compiler.ir.MappingIR`, and runs the pass pipeline over
it — today a single :class:`~repro.compiler.passes.faults.FaultRemapPass`
that rewrites the placement over surviving columns when a fault mask is
given — verifying the IR between passes.  The CLI, bench, sweep, DSE
and fault tooling all consume mappings through this function, so every
placement the repo reports has passed IR verification.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.arch.node import NodeConfig
from repro.compiler.ir import MappingIR, build_mapping_ir
from repro.compiler.mapping import (
    MIN_COLUMN_GAIN,
    WorkloadMapping,
    default_group_key,
    map_network,
)
from repro.compiler.passes.faults import FaultRemapPass
from repro.compiler.passes.manager import (
    PassContext,
    PassManager,
    PassStats,
)
from repro.dnn.network import Network
from repro.faults.model import FaultMask


@dataclass
class CompiledNetwork:
    """A compiled placement: the mapping, its IR, and what passes did."""

    network: Network
    node: NodeConfig
    mapping: WorkloadMapping
    ir: MappingIR
    pass_stats: List[PassStats] = field(default_factory=list)

    def describe(self) -> str:
        lines = [self.mapping.describe()]
        for stats in self.pass_stats:
            lines.append("  " + stats.describe())
        return "\n".join(lines)


def compile_network(
    net: Network,
    node: NodeConfig,
    min_column_gain: float = MIN_COLUMN_GAIN,
    group_key: Callable[[str], str] = default_group_key,
    faults: Optional[FaultMask] = None,
    verify: bool = True,
) -> CompiledNetwork:
    """Compile ``net`` for ``node``: mapping, unit-level IR, passes.

    The mapping starts from the healthy machine; a ``faults`` mask is
    applied by the fault-remap pass, which rewrites the IR (and the
    returned mapping) onto the surviving columns — raising
    :class:`~repro.errors.UnmappableError` when they cannot host the
    network.  ``verify=False`` skips inter-pass IR verification.
    """
    mapping = map_network(
        net, node, min_column_gain=min_column_gain, group_key=group_key
    )
    ir = build_mapping_ir(net, node.name, mapping)
    ctx = PassContext(net=net, node=node, faults=faults, mapping=mapping)
    manager = PassManager(
        [FaultRemapPass(min_column_gain, group_key)], verify=verify
    )
    ir, stats = manager.run(ir, ctx)
    return CompiledNetwork(
        network=net,
        node=node,
        mapping=ctx.mapping,
        ir=ir,
        pass_stats=stats,
    )
