"""Tracker assignment: plan the MEMTRACK budget before emission.

Every synchronising tracker the lowering will arm is planned here at
the IR level: one entry per (op, guarded region) carrying the mem-tile
port it occupies.  The plan serves two purposes:

* **capacity** — the MemHeavy tracker file holds a fixed number of
  trackers per tile (Sec 3.2.4); overflow is a typed
  :class:`~repro.errors.IRVerificationError` *before* any program is
  emitted, instead of a post-hoc verifier finding;
* **accountability** — each op's ``attrs["trackers"]`` and the per-port
  totals in ``ir.meta["tracker_plan"]`` are pinned against the actual
  armed-tracker counts by the pass tests, so the plan cannot drift from
  the emission.

The plan mirrors the lowering exactly: an FP conv/FC op arms an output
tracker, a staging tracker (left tile) and a pre-activation tracker;
pools and copies arm only their output tracker; element-wise ops add
their operand regions; BP ops arm the raw/activation-copy/masked-error
trio (or a single unmasked target), their error staging, and dilation
scratch for strided convolutions; WG ops arm the error copy, gradient
region and (strided) dilation scratch on the weight tile.
"""

from __future__ import annotations

from typing import List

from repro.compiler.ir import IROp, MappingIR, Phase
from repro.compiler.passes.manager import Pass, PassContext, PassStats
from repro.compiler.verifier import IRIssue
from repro.dnn.layers import (
    ConvSpec,
    EltwiseMulSpec,
    LayerKind,
    PoolMode,
    PoolSpec,
)
from repro.errors import IRVerificationError


def planned_tracker_ports(
    op: IROp, ctx: PassContext
) -> List[int]:
    """Mem-tile ports of every tracker ``op``'s program will arm."""
    net, rows = ctx.net, ctx.rows
    if op.kind == "inject":
        return [op.column * rows + op.row]
    node = net[op.layer]
    spec = node.spec
    col, row = op.column, op.row
    left = (col - 1) * rows + row
    right = col * rows + row

    if op.phase is Phase.FP:
        if node.kind is LayerKind.INPUT:
            return []  # host-written pseudo-op
        if node.kind in (LayerKind.CONV, LayerKind.FC):
            return [right, left, right]  # out, stage, pre
        if node.kind is LayerKind.ELTWISE:
            if isinstance(spec, EltwiseMulSpec):
                return [right, right, right]  # out, opA, opB
            return [right, right]  # out, accumulator
        return [right]  # pool / concat / slice: out only

    if op.phase is Phase.BP:
        if node.kind is LayerKind.SAMP:
            ports = [left, left, left]  # raw, act copy, err[pred]
            if getattr(spec, "mode", PoolMode.AVG) is PoolMode.MAX:
                ports.append(right)  # max-routing work slots
            return ports
        ports = [right]  # staged err[node]
        if isinstance(spec, ConvSpec) and spec.stride > 1:
            ports.append(right)  # dilated error
        pred = net[node.input_names[0]]
        if pred.kind in (LayerKind.CONV, LayerKind.FC):
            ports.extend([left, left, left])  # raw, act copy, err[pred]
        else:
            ports.append(left)  # unmasked err[pred]
        return ports

    # WG: error copy + gradients (+ dilation scratch), all on the
    # weight tile to the left.
    ports = [left]
    if isinstance(spec, ConvSpec) and spec.stride > 1:
        ports.append(left)
    ports.append(left)
    return ports


class TrackerAssignPass(Pass):
    """Plan per-tile tracker occupancy; reject capacity overflow."""

    name = "tracker-assign"

    def run(self, ir: MappingIR, ctx: PassContext,
            stats: PassStats) -> MappingIR:
        per_port = {}
        total = 0
        for op in ir.ops:
            ports = planned_tracker_ports(op, ctx)
            op.attrs["trackers"] = len(ports)
            total += len(ports)
            for port in ports:
                per_port[port] = per_port.get(port, 0) + 1
        ir.meta["tracker_plan"] = {
            str(port): count for port, count in sorted(per_port.items())
        }
        stats.notes["trackers"] = total

        shape = ctx.machine_shape()
        if shape is not None:
            issues = [
                IRIssue(
                    op=f"port {port}",
                    message=(
                        f"plans {count} trackers; the tracker file "
                        f"holds {shape.trackers_per_tile}"
                    ),
                )
                for port, count in sorted(per_port.items())
                if count > shape.trackers_per_tile
            ]
            if issues:
                raise IRVerificationError(
                    "tracker plan exceeds tracker-file capacity: "
                    + "; ".join(str(i) for i in issues[:5]),
                    issues=issues,
                )
        return ir
