"""Lower: turn scheduled IR ops into per-tile ISA programs.

This is the one emission module behind all three historical code
generators.  Every op in ``ir.schedule`` lowers to one program through
:class:`EngineEmitter`, which unifies what used to be three copies of
the template/emission logic:

* **dialect** — ``exact`` arms every MEMTRACK with hand-derived
  update/read counts inline (the sequential and training compilers'
  scheme); ``calibrated`` arms placeholder trackers and runs the static
  access analysis (:mod:`repro.compiler.trackers`) over the finished
  programs to fill the counts (the DAG compiler's scheme, which makes
  fan-out bookkeeping automatic);
* **training** — when the IR carries BP/WG ops, the FP tracker counts
  grow to cover the backward wave's extra readers, error regions are
  allocated before any FP emission (allocation order determines
  addresses), and each WG op also emits its deferred weight-update
  program in minibatch mode.

The FP bodies use the general DAG forms (per-feature source lists for
grouped/table convolutions, block-searching pool reads); for plain
sequential networks these emit byte-identical programs to the historic
special cases.  Comments are part of the disassembly, so the exact
dialect keeps its annotated instructions and the calibrated dialect its
bare ones — pinned by the golden byte-identity tests.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.compiler.ir import IROp, MappingIR, Phase
from repro.compiler.partition import FeatureHome
from repro.compiler.passes.manager import Pass, PassContext, PassStats
from repro.compiler.templates import (
    Preload,
    align_prologues,
    arm_placeholder_tracker,
    port_of,
)
from repro.compiler.trackers import calibrate_trackers
from repro.dnn.layers import (
    ConcatSpec,
    ConvSpec,
    EltwiseMulSpec,
    FCSpec,
    GlobalPoolSpec,
    LayerKind,
    PoolMode,
    PoolSpec,
    SliceSpec,
)
from repro.dnn.network import LayerNode
from repro.errors import MappingError
from repro.isa.instructions import Instruction, Opcode, make
from repro.isa.program import Program
from repro.sim.engine import (
    ACT_CODES,
    SAMP_CODES,
    UPSAMP_ZERO_INSERT,
)
from repro.sim.machine import pack_shape


class EngineEmitter:
    """Emits one ISA program per scheduled IR op."""

    def __init__(self, ir: MappingIR, ctx: PassContext) -> None:
        self.ir = ir
        self.net = ctx.net
        self.model = ctx.model
        self.partition = ctx.partition
        self.rows = ctx.rows
        self.exact = ctx.dialect == "exact"
        self.minibatch = ctx.minibatch
        self.lr_num, self.lr_denom = ctx.learning_rate
        self.training = any(op.phase is not Phase.FP for op in ir.ops)
        self.preloads: List[Preload] = []
        self.programs: List[Program] = []
        self.update_programs: List[Program] = []
        self.err_injection: Optional[Tuple[int, int, int]] = None
        #: err[L] home blocks; allocated before FP emission so the
        #: address map is independent of the schedule.
        self._err_blocks: Dict[str, List[Tuple[FeatureHome, int]]] = {}
        if self.training:
            self._alloc_err_blocks()

    # ------------------------------------------------------------------
    def _port(self, col: int, row: int) -> int:
        return port_of(self.rows, col, row)

    def _note(self, text: str) -> str:
        """Instruction comment in the exact dialect; bare otherwise."""
        return text if self.exact else ""

    def _home(self, layer: str, row: int) -> FeatureHome:
        for block in self.partition.blocks_of(layer):
            if block.row == row:
                return block
        raise MappingError(f"no home block for {layer} at row {row}")

    # ------------------------------------------------------------------
    def emit(self, op: IROp) -> None:
        """Lower one scheduled op to its program."""
        if op.kind == "inject":
            self.programs.append(self._emit_injection_tracker())
            return
        node = self.net[op.layer]
        if op.phase is Phase.FP:
            if node.kind is LayerKind.INPUT:
                return  # host-written pseudo-op
            self.programs.append(self._emit_fp(node, self._home(
                op.layer, op.row
            )))
        elif op.phase is Phase.BP:
            if node.kind is LayerKind.SAMP:
                self.programs.append(self._emit_pool_bp(node, op.row))
            else:
                self.programs.append(self._emit_bp(node, op.row))
        else:
            self.programs.append(self._emit_wg(node, self._home(
                op.layer, op.row
            )))

    def _emit_fp(self, node: LayerNode, home: FeatureHome) -> Program:
        spec = node.spec
        if isinstance(spec, ConvSpec):
            return self._emit_conv_fp(node, home)
        if isinstance(spec, FCSpec):
            return self._emit_fc_fp(node, home)
        if isinstance(spec, (PoolSpec, GlobalPoolSpec)):
            return self._emit_pool_fp(node, home)
        if isinstance(spec, ConcatSpec):
            return self._emit_concat(node, home)
        if isinstance(spec, SliceSpec):
            return self._emit_slice(node, home)
        return self._emit_eltwise(node, home)

    # ------------------------------------------------------------------
    # Tracker-count hooks (exact dialect).  The calibrated dialect arms
    # placeholders instead and never consults these.
    # ------------------------------------------------------------------
    def _consumer_reads(self, node: LayerNode) -> int:
        """How many reads each of ``node``'s home blocks receives."""
        consumers = self.net.consumers(node.name)
        if not consumers:
            return 0
        consumer = self.net[consumers[0]]
        if consumer.kind in (LayerKind.CONV, LayerKind.FC):
            return len(self.partition.blocks_of(consumer.name))
        # SAMP: one NDSUBSAMP read per feature in the block — counted
        # per-block below (varies), handled by the caller.
        return -1

    def _extra_out_reads(self, node: LayerNode) -> int:
        """Additional readers of a home output block beyond the forward
        consumers: the BP mask's activation copy, and a MAX-pool
        successor's argmax recomputation."""
        if not self.training:
            return 0
        reads = 0
        succ = self._succ(node)
        if self._is_weighted(node) and succ is not None:
            reads += 1
        if succ is not None and isinstance(succ.spec, PoolSpec):
            if succ.spec.mode is PoolMode.MAX and self._bp_exists(succ):
                reads += 1
        return reads

    def _conv_staging_reads(
        self, node: LayerNode, block_features: int
    ) -> int:
        """Reads each staged input feature receives from a CONV layer's
        compute (one NDCONV per output feature; training adds WG's
        correlation pass)."""
        if self.training:
            return 2 * block_features
        return block_features

    def _fc_staging_reads(self, node: LayerNode, block_features: int) -> int:
        """Reads of the staged FC input vector (one FP MATMUL; training
        adds one WG outer-product MATMUL per output feature)."""
        if self.training:
            return 1 + block_features
        return 1

    # ------------------------------------------------------------------
    # Shared tracker/staging emission
    # ------------------------------------------------------------------
    def _out_tracker(
        self, prog: Program, node: LayerNode, home: FeatureHome, col: int,
        num_updates: int = 1,
    ) -> None:
        """Arm the tracker guarding a home output block."""
        size = home.feature_count * home.feature_words
        if not self.exact:
            arm_placeholder_tracker(
                prog, self._port(col, home.row), home.address, size,
                f"{node.name} outputs",
            )
            return
        reads = self._consumer_reads(node)
        if reads < 0:  # SAMP consumer reads each feature once
            reads = home.feature_count
        reads += self._extra_out_reads(node)
        prog.append(make(
            Opcode.DMA_MEMTRACK,
            addr=home.address,
            port=self._port(col, home.row),
            size=size,
            num_updates=num_updates,
            num_reads=reads,
            target=self._port(col, home.row),
            comment=f"track {node.name} outputs @r{home.row}",
        ))

    def _stage_inputs(
        self,
        prog: Program,
        body: List[Instruction],
        src: LayerNode,
        col: int,
        row: int,
        reads_per_feature: int,
        tag: str,
    ) -> Tuple[int, int]:
        """Arm + emit DMAs staging all of ``src``'s features into tile
        (col-1, row), exact-dialect counts.  Returns (staging base
        address, feature words)."""
        src_blocks = self.partition.blocks_of(src.name)
        fwords = src.output_shape.feature_size
        total_words = src.output_shape.count * fwords
        alloc = self.partition.allocator(col - 1, row)
        base = alloc.alloc(f"{tag}/stage@r{row}", total_words)
        port = self._port(col - 1, row)
        prog.append(make(
            Opcode.MEMTRACK,
            addr=base,
            port=port,
            size=total_words,
            num_updates=len(src_blocks),
            num_reads=reads_per_feature * src.output_shape.count,
            comment=f"track staged {src.name} inputs",
        ))
        src_col = self.partition.column_of[src.name]
        for block in src_blocks:
            body.append(make(
                Opcode.DMALOAD,
                src_addr=block.address,
                src_port=self._port(src_col, block.row),
                dst_addr=base + block.first_feature * fwords,
                dst_port=port,
                size=block.feature_count * fwords,
                is_accum=0,
                comment=f"stage {src.name}[{block.first_feature}:"
                        f"{block.first_feature + block.feature_count}]",
            ))
        return base, fwords

    def _copy_features(
        self,
        body: List[Instruction],
        src: LayerNode,
        feature_lo: int,
        feature_hi: int,
        dst_port: int,
        dst_addr: int,
        accum: int = 0,
        src_feature_offset: int = 0,
    ) -> None:
        """DMA features [feature_lo, feature_hi) of ``src`` (offset by
        ``src_feature_offset`` in the source's own numbering) into a
        contiguous destination, one DMA per overlapping source block."""
        src_col = self.partition.column_of[src.name]
        fwords = src.output_shape.feature_size
        for block in self.partition.blocks_of(src.name):
            lo = max(feature_lo + src_feature_offset, block.first_feature)
            hi = min(
                feature_hi + src_feature_offset,
                block.first_feature + block.feature_count,
            )
            if lo >= hi:
                continue
            body.append(make(
                Opcode.DMALOAD,
                src_addr=block.feature_address(lo),
                src_port=self._port(src_col, block.row),
                dst_addr=dst_addr
                + (lo - src_feature_offset - feature_lo) * fwords,
                dst_port=dst_port,
                size=(hi - lo) * fwords,
                is_accum=accum,
                comment=f"copy {src.name}[{lo}:{hi}]",
            ))

    def _stage_all(
        self,
        prog: Program,
        body: List[Instruction],
        src: LayerNode,
        col: int,
        row: int,
        tag: str,
    ) -> int:
        """Stage every feature of ``src`` into tile (col-1, row),
        calibrated-dialect placeholder tracker."""
        total = src.output_shape.elements
        base = self.partition.allocator(col - 1, row).alloc(
            f"{tag}/stage@r{row}", total
        )
        port = self._port(col - 1, row)
        arm_placeholder_tracker(
            prog, port, base, total, f"staged {src.name}"
        )
        self._copy_features(body, src, 0, src.output_shape.count, port, base)
        return base

    def _stage_fp_inputs(
        self,
        prog: Program,
        body: List[Instruction],
        src: LayerNode,
        col: int,
        row: int,
        reads_per_feature: int,
        tag: str,
    ) -> int:
        """Stage ``src`` for an FP body, dialect-appropriate tracker."""
        if self.exact:
            base, _ = self._stage_inputs(
                prog, body, src, col, row, reads_per_feature, tag
            )
            return base
        return self._stage_all(prog, body, src, col, row, tag)

    # ------------------------------------------------------------------
    # FP bodies
    # ------------------------------------------------------------------
    def _emit_conv_fp(self, node: LayerNode, home: FeatureHome) -> Program:
        spec = node.spec
        assert isinstance(spec, ConvSpec)
        src = self.net[node.input_names[0]]
        col = self.partition.column_of[node.name]
        in_shape = node.input_shapes[0]
        out_size = node.output_shape.feature_size
        k = spec.kernel
        weights = self.model.state[node.name].weights
        bias = self.model.state[node.name].bias

        row = home.row
        left = self._port(col - 1, row)
        right = self._port(col, row)
        prog = Program(tile=f"{node.name}@c{col}r{row}")
        body: List[Instruction] = []

        # Trackers (prologue).
        self._out_tracker(prog, node, home, col)
        stage_base = self._stage_fp_inputs(
            prog, body, src, col, row,
            reads_per_feature=self._conv_staging_reads(
                node, home.feature_count
            ),
            tag=node.name,
        )

        # Pre-activation region plus a preserved bias-broadcast
        # region: the first NDCONV per output overwrites stale data,
        # so the same programs re-run image after image.
        alloc = self.partition.allocator(col, row)
        pre_base = alloc.alloc(
            f"{node.name}/pre@r{row}", home.feature_count * out_size
        )
        bias_base = alloc.alloc(
            f"{node.name}/bias@r{row}", home.feature_count * out_size
        )
        self.preloads.append(Preload(
            col, row, bias_base,
            np.repeat(
                bias[home.first_feature:
                     home.first_feature + home.feature_count],
                out_size,
            ),
        ))
        if self.exact:
            prog.append(make(
                Opcode.MEMTRACK,
                addr=pre_base,
                port=right,
                size=home.feature_count * out_size,
                num_updates=home.feature_count * (in_shape.count + 1),
                num_reads=1,
                comment=f"track {node.name} partial sums",
            ))
        else:
            arm_placeholder_tracker(
                prog, right, pre_base, home.feature_count * out_size,
                f"{node.name} partial sums",
            )

        # Each output feature's input sources as (global input index,
        # kernel plane index): tables store kernels densely at the
        # *global* input index (masked-dense layout), groups at the
        # *within-group* index.  For plain groups=1 convolutions this
        # is the identity enumeration of every input feature.
        def sources_of(feature: int):
            if spec.connection_table is not None:
                return [
                    (g, g) for g in spec.connection_table[feature]
                ]
            per_out = node.output_shape.count // spec.groups
            in_per = in_shape.count // spec.groups
            group = feature // per_out
            return [
                (group * in_per + local, local)
                for local in range(in_per)
            ]

        kwords = k * k
        kernel_slots = sum(
            len(sources_of(home.first_feature + f_local))
            for f_local in range(home.feature_count)
        )
        kern_base = self.partition.allocator(col - 1, row).alloc(
            f"{node.name}/kernels@r{row}", kernel_slots * kwords
        )
        # Pack kernels ragged: for output f, one k*k kernel per
        # connected source, in source order.  Dense weights store
        # (out, in/groups, k, k): source index within the group (or
        # within the table row) selects the kernel plane.
        packed = []
        for f_local in range(home.feature_count):
            feature = home.first_feature + f_local
            for _, plane in sources_of(feature):
                packed.append(weights[feature, plane])
        self.preloads.append(Preload(
            col - 1, row, kern_base, np.stack(packed)
        ))

        # Body: batch convolution, Fig 9 steps 1-2, then bias.
        fwords = in_shape.feature_size
        slot = 0
        for f_local in range(home.feature_count):
            feature = home.first_feature + f_local
            for i, (g, _) in enumerate(sources_of(feature)):
                body.append(make(
                    Opcode.NDCONV,
                    in_addr=stage_base + g * fwords,
                    in_port=left,
                    in_size=pack_shape(in_shape.height, in_shape.width),
                    kernel_addr=kern_base + slot * kwords,
                    kernel_size=pack_shape(k, k),
                    stride=spec.stride,
                    pad=spec.pad,
                    out_addr=pre_base + f_local * out_size,
                    out_port=right,
                    is_accum=int(i > 0),
                    comment=self._note(f"conv out={feature} in={g}"),
                ))
                slot += 1
            body.append(make(
                Opcode.NDACCUM,
                src_addr=bias_base + f_local * out_size,
                port=right,
                size=out_size,
                dst_addr=pre_base + f_local * out_size,
                comment=self._note(f"bias out={feature}"),
            ))
        # Step 4: activation into the home block.
        body.append(make(
            Opcode.NDACTFN,
            fn_type=ACT_CODES.get(spec.activation, 0),
            in_addr=pre_base,
            port=right,
            size=home.feature_count * out_size,
            out_addr=home.address,
            out_port=right,
            comment=self._note(f"{spec.activation.value} -> home block"),
        ))
        prog.extend(body)
        prog.append(make(Opcode.HALT))
        return prog

    def _emit_fc_fp(self, node: LayerNode, home: FeatureHome) -> Program:
        spec = node.spec
        assert isinstance(spec, FCSpec)
        src = self.net[node.input_names[0]]
        col = self.partition.column_of[node.name]
        in_elems = node.input_shapes[0].elements
        weights = self.model.state[node.name].weights
        bias = self.model.state[node.name].bias

        row = home.row
        left = self._port(col - 1, row)
        right = self._port(col, row)
        prog = Program(tile=f"{node.name}@c{col}r{row}")
        body: List[Instruction] = []
        self._out_tracker(prog, node, home, col)
        stage_base = self._stage_fp_inputs(
            prog, body, src, col, row, reads_per_feature=0, tag=node.name
        )
        if self.exact:
            # The staged vector is read as a whole (not per feature):
            # replace the tracker emitted by _stage_inputs with the FC
            # read count.
            tracked = prog.instructions[-1]
            assert tracked.opcode is Opcode.MEMTRACK
            prog.instructions[-1] = make(
                Opcode.MEMTRACK,
                addr=tracked.operand("addr"),
                port=tracked.operand("port"),
                size=tracked.operand("size"),
                num_updates=tracked.operand("num_updates"),
                num_reads=self._fc_staging_reads(node, home.feature_count),
                comment="track staged FC input vector",
            )

        alloc = self.partition.allocator(col, row)
        pre_base = alloc.alloc(
            f"{node.name}/pre@r{row}", home.feature_count
        )
        bias_base = alloc.alloc(
            f"{node.name}/bias@r{row}", home.feature_count
        )
        self.preloads.append(Preload(
            col, row, bias_base,
            bias[home.first_feature:
                 home.first_feature + home.feature_count].copy(),
        ))
        if self.exact:
            prog.append(make(
                Opcode.MEMTRACK,
                addr=pre_base,
                port=right,
                size=home.feature_count,
                num_updates=2,
                num_reads=1,
                comment=f"track {node.name} pre-activation",
            ))
        else:
            arm_placeholder_tracker(
                prog, right, pre_base, home.feature_count,
                f"{node.name} pre-activation",
            )

        w_base = self.partition.allocator(col - 1, row).alloc(
            f"{node.name}/weights@r{row}",
            home.feature_count * in_elems,
        )
        self.preloads.append(Preload(
            col - 1, row, w_base,
            weights[home.first_feature:
                    home.first_feature + home.feature_count].reshape(-1),
        ))

        body.append(make(
            Opcode.MATMUL,
            in1_addr=stage_base,
            in1_port=left,
            in1_size=pack_shape(1, in_elems),
            in2_addr=w_base,
            in2_port=left,
            in2_size=pack_shape(home.feature_count, in_elems),
            out_addr=pre_base,
            out_port=right,
            is_accum=0,
            comment=self._note(
                f"matmul rows [{home.first_feature}, "
                f"{home.first_feature + home.feature_count})"
            ),
        ))
        body.append(make(
            Opcode.NDACCUM,
            src_addr=bias_base,
            port=right,
            size=home.feature_count,
            dst_addr=pre_base,
            comment=self._note("bias add"),
        ))
        body.append(make(
            Opcode.NDACTFN,
            fn_type=ACT_CODES.get(spec.activation, 0),
            in_addr=pre_base,
            port=right,
            size=home.feature_count,
            out_addr=home.address,
            out_port=right,
            comment=self._note(f"{spec.activation.value} -> home block"),
        ))
        prog.extend(body)
        prog.append(make(Opcode.HALT))
        return prog

    def _emit_pool_fp(self, node: LayerNode, home: FeatureHome) -> Program:
        spec = node.spec
        src = self.net[node.input_names[0]]
        src_col = self.partition.column_of[src.name]
        col = self.partition.column_of[node.name]
        in_shape = node.input_shapes[0]
        if isinstance(spec, PoolSpec):
            window, stride, mode = (
                spec.window, spec.effective_stride, spec.mode
            )
        else:
            assert isinstance(spec, GlobalPoolSpec)
            window = stride = in_shape.height
            mode = spec.mode
        src_blocks = self.partition.blocks_of(src.name)

        def src_location(feature: int) -> Tuple[int, int]:
            for block in src_blocks:
                if (block.first_feature <= feature
                        < block.first_feature + block.feature_count):
                    return (
                        self._port(src_col, block.row),
                        block.feature_address(feature),
                    )
            raise MappingError(f"feature {feature} unplaced in {src.name}")

        row = home.row
        right = self._port(col, row)
        prog = Program(tile=f"{node.name}@c{col}r{row}")
        # Pooling writes its home block one feature at a time.
        self._out_tracker(
            prog, node, home, col, num_updates=home.feature_count
        )
        pad = spec.pad if isinstance(spec, PoolSpec) else 0
        if pad:
            # Padded pooling (DAG dialect only — legalize enforces
            # pad < window, and MAX additionally a non-negative input):
            # stage each source plane into the interior of a padded
            # (ph, pw) scratch plane on the left-neighbour tile, then
            # pool the staged planes unpadded.  The scratch block is
            # preloaded with zeros at machine build and only its
            # interiors are ever rewritten, so the borders stay 0.0 —
            # equal to the reference's 0.0 AVG fill exactly, and to its
            # -inf MAX fill for the non-negative inputs legalize
            # admits.  All row DMAs are emitted before all NDSUBSAMPs
            # so the fusion pass sees one fat load run and one fat
            # pool run.
            h, w = in_shape.height, in_shape.width
            ph, pw = h + 2 * pad, w + 2 * pad
            left = self._port(col - 1, row)
            stage_words = home.feature_count * ph * pw
            base = self.partition.allocator(col - 1, row).alloc(
                f"{node.name}/padstage@r{row}", stage_words,
            )
            self.preloads.append(Preload(
                col - 1, row, base, np.zeros(stage_words, np.float32),
            ))
            arm_placeholder_tracker(
                prog, left, base, stage_words,
                f"{node.name} padded staging",
            )
            body: List[Instruction] = []
            for f_local in range(home.feature_count):
                feature = home.first_feature + f_local
                src_port, src_addr = src_location(feature)
                plane = base + f_local * ph * pw
                for y in range(h):
                    body.append(make(
                        Opcode.DMALOAD,
                        src_addr=src_addr + y * w,
                        src_port=src_port,
                        dst_addr=plane + (y + pad) * pw + pad,
                        dst_port=left,
                        size=w,
                        is_accum=0,
                        comment=self._note(
                            f"stage padded row {y} of feature {feature}"
                        ),
                    ))
            for f_local in range(home.feature_count):
                feature = home.first_feature + f_local
                body.append(make(
                    Opcode.NDSUBSAMP,
                    samp_type=SAMP_CODES[mode],
                    in_addr=base + f_local * ph * pw,
                    port=left,
                    in_size=pack_shape(ph, pw),
                    window=window,
                    stride=stride,
                    out_addr=home.address + f_local * home.feature_words,
                    out_port=right,
                    comment=self._note(f"pool padded feature {feature}"),
                ))
            prog.extend(body)
            prog.append(make(Opcode.HALT))
            return prog
        for f_local in range(home.feature_count):
            feature = home.first_feature + f_local
            src_port, src_addr = src_location(feature)
            prog.append(make(
                Opcode.NDSUBSAMP,
                samp_type=SAMP_CODES[mode],
                in_addr=src_addr,
                port=src_port,
                in_size=pack_shape(in_shape.height, in_shape.width),
                window=window,
                stride=stride,
                out_addr=home.address + f_local * home.feature_words,
                out_port=right,
                comment=self._note(f"pool feature {feature}"),
            ))
        prog.append(make(Opcode.HALT))
        return prog

    def _emit_concat(self, node: LayerNode, home: FeatureHome) -> Program:
        col = self.partition.column_of[node.name]
        sources = [self.net[s] for s in node.input_names]
        offsets = []
        offset = 0
        for src in sources:
            offsets.append(offset)
            offset += src.output_shape.count
        row = home.row
        right = self._port(col, row)
        prog = Program(tile=f"{node.name}@c{col}r{row}")
        body: List[Instruction] = []
        arm_placeholder_tracker(
            prog, right, home.address,
            home.feature_count * home.feature_words,
            f"{node.name} outputs",
        )
        lo, hi = home.first_feature, (
            home.first_feature + home.feature_count
        )
        for src, src_offset in zip(sources, offsets):
            s_lo = max(lo, src_offset)
            s_hi = min(hi, src_offset + src.output_shape.count)
            if s_lo >= s_hi:
                continue
            self._copy_features(
                body, src,
                feature_lo=s_lo - src_offset,
                feature_hi=s_hi - src_offset,
                dst_port=right,
                dst_addr=home.address
                + (s_lo - lo) * home.feature_words,
            )
        prog.extend(body)
        prog.append(make(Opcode.HALT))
        return prog

    def _emit_slice(self, node: LayerNode, home: FeatureHome) -> Program:
        spec = node.spec
        assert isinstance(spec, SliceSpec)
        col = self.partition.column_of[node.name]
        src = self.net[node.input_names[0]]
        row = home.row
        right = self._port(col, row)
        prog = Program(tile=f"{node.name}@c{col}r{row}")
        body: List[Instruction] = []
        arm_placeholder_tracker(
            prog, right, home.address,
            home.feature_count * home.feature_words,
            f"{node.name} outputs",
        )
        self._copy_features(
            body, src,
            feature_lo=home.first_feature,
            feature_hi=home.first_feature + home.feature_count,
            dst_port=right,
            dst_addr=home.address,
            src_feature_offset=spec.start,
        )
        prog.extend(body)
        prog.append(make(Opcode.HALT))
        return prog

    def _emit_eltwise(self, node: LayerNode, home: FeatureHome) -> Program:
        spec = node.spec
        col = self.partition.column_of[node.name]
        sources = [self.net[s] for s in node.input_names]
        row = home.row
        right = self._port(col, row)
        words = home.feature_count * home.feature_words
        prog = Program(tile=f"{node.name}@c{col}r{row}")
        body: List[Instruction] = []
        arm_placeholder_tracker(
            prog, right, home.address, words, f"{node.name} outputs"
        )
        alloc = self.partition.allocator(col, row)
        lo = home.first_feature
        hi = home.first_feature + home.feature_count

        if isinstance(spec, EltwiseMulSpec):
            acc1 = alloc.alloc(f"{node.name}/opA@r{row}", words)
            acc2 = alloc.alloc(f"{node.name}/opB@r{row}", words)
            arm_placeholder_tracker(prog, right, acc1, words, "operand A")
            arm_placeholder_tracker(prog, right, acc2, words, "operand B")
            self._copy_features(body, sources[0], lo, hi, right, acc1)
            self._copy_features(body, sources[1], lo, hi, right, acc2)
            body.append(make(
                Opcode.VECMUL,
                in1_addr=acc1, in2_addr=acc2, port=right,
                size=words, out_addr=home.address,
            ))
        else:
            # Element-wise sum (possibly >2 operands) or standalone
            # activation (one operand): accumulate then activate.
            acc = alloc.alloc(f"{node.name}/acc@r{row}", words)
            arm_placeholder_tracker(prog, right, acc, words, "accumulator")
            for i, src in enumerate(sources):
                self._copy_features(
                    body, src, lo, hi, right, acc, accum=int(i > 0)
                )
            fn = spec.activation  # type: ignore[attr-defined]
            body.append(make(
                Opcode.NDACTFN,
                fn_type=ACT_CODES[fn],
                in_addr=acc,
                port=right,
                size=words,
                out_addr=home.address,
                out_port=right,
            ))
        prog.extend(body)
        prog.append(make(Opcode.HALT))
        return prog

    # ------------------------------------------------------------------
    # Training bookkeeping
    # ------------------------------------------------------------------
    def _pred(self, node: LayerNode) -> LayerNode:
        return self.net[node.input_names[0]]

    def _succ(self, node: LayerNode) -> Optional[LayerNode]:
        consumers = self.net.consumers(node.name)
        return self.net[consumers[0]] if consumers else None

    def _is_weighted(self, node: LayerNode) -> bool:
        return node.kind in (LayerKind.CONV, LayerKind.FC)

    def _bp_exists(self, node: LayerNode) -> bool:
        """BP program of ``node`` exists iff its predecessor needs an
        error (i.e. is not the network input)."""
        return self._pred(node).kind is not LayerKind.INPUT

    def _err_reads(self, node: LayerNode, block: FeatureHome) -> int:
        """Readers of err[node]'s home block ``block``."""
        reads = 0
        if self._bp_exists(node):
            if self._is_weighted(node):
                # BP staging: one DMA per predecessor block row.
                reads += len(self.partition.blocks_of(self._pred(node).name))
            else:
                # Pool BP: one NDUPSAMP read per feature.
                reads += block.feature_count
        if self._is_weighted(node):
            reads += 1  # WG's err-copy DMA
        return reads

    def _err_updates(self, node: LayerNode, block: FeatureHome) -> int:
        """Writers of err[node]'s home block."""
        succ = self._succ(node)
        if succ is None:
            return 1  # host injection at the network output
        if self._is_weighted(node):
            return 1  # NDACTBP write by the successor's BP program
        # Pool: the successor's BP partials land here unmasked.
        if succ.kind is LayerKind.CONV:
            return block.feature_count * succ.output_shape.count
        if succ.kind is LayerKind.FC:
            return 1  # one MATMUL write per block
        raise MappingError(
            f"unsupported SAMP successor {succ.name} ({succ.kind})"
        )

    def _alloc_err_blocks(self) -> None:
        """Allocate err[L] regions mirroring each layer's home blocks."""
        for node in self.net:
            if node.kind is LayerKind.INPUT:
                continue
            col = self.partition.column_of[node.name]
            entries: List[Tuple[FeatureHome, int]] = []
            for home in self.partition.blocks_of(node.name):
                addr = self.partition.allocator(col, home.row).alloc(
                    f"{node.name}/err@r{home.row}",
                    home.feature_count * home.feature_words,
                )
                entries.append((home, addr))
            self._err_blocks[node.name] = entries

    def _err_block(self, layer: str, row: int) -> Tuple[FeatureHome, int]:
        for home, addr in self._err_blocks[layer]:
            if home.row == row:
                return home, addr
        raise MappingError(f"no err block for {layer} at row {row}")

    def _emit_injection_tracker(self) -> Program:
        """The output layer's error tracker: armed in its own program so
        the host's injection is the counted single update."""
        final = self.net.output
        fin_home, fin_addr = self._err_block(final.name, 0)
        port = self._port(
            self.partition.column_of[final.name], fin_home.row
        )
        size = fin_home.feature_count * fin_home.feature_words
        prog = Program(tile="err-injection-tracker")
        prog.append(make(
            Opcode.MEMTRACK,
            addr=fin_addr,
            port=port,
            size=size,
            num_updates=1,
            num_reads=self._err_reads(final, fin_home),
            comment="loss gradient injection point",
        ))
        prog.append(make(Opcode.HALT))
        self.err_injection = (port, fin_addr, size)
        return prog

    # ------------------------------------------------------------------
    # BP of weighted layers
    # ------------------------------------------------------------------
    def _stage_err(
        self, prog: Program, body: List[Instruction], node: LayerNode,
        col: int, row: int, reads: int, tag: str,
    ) -> int:
        """Stage all of err[node] into tile (col, row); returns base."""
        blocks = self._err_blocks[node.name]
        fwords = node.output_shape.feature_size
        total = node.output_shape.count * fwords
        base = self.partition.allocator(col, row).alloc(
            f"{tag}/errstage@r{row}", total
        )
        port = self._port(col, row)
        prog.append(make(
            Opcode.MEMTRACK, addr=base, port=port, size=total,
            num_updates=len(blocks), num_reads=reads,
            comment=f"track staged err[{node.name}]",
        ))
        for home, addr in blocks:
            body.append(make(
                Opcode.DMALOAD,
                src_addr=addr,
                src_port=self._port(col, home.row),
                dst_addr=base + home.first_feature * fwords,
                dst_port=port,
                size=home.feature_count * fwords,
                is_accum=0,
                comment=f"stage err[{node.name}] block r{home.row}",
            ))
        return base

    def _emit_mask(
        self, prog: Program, body: List[Instruction], pred: LayerNode,
        raw_base: int, pred_home: FeatureHome, pred_col: int,
    ) -> None:
        """Copy activations beside the raw error and apply NDACTBP."""
        words = pred_home.feature_count * pred_home.feature_words
        port = self._port(pred_col, pred_home.row)
        _, err_addr = self._err_block(pred.name, pred_home.row)
        act = pred.spec.activation  # type: ignore[attr-defined]
        body.append(make(
            Opcode.DMALOAD,
            src_addr=pred_home.address,
            src_port=port,
            dst_addr=raw_base + words,
            dst_port=port,
            size=words,
            is_accum=0,
            comment=f"copy {pred.name} activations for masking",
        ))
        body.append(make(
            Opcode.NDACTBP,
            fn_type=ACT_CODES.get(act, 0),
            err_addr=raw_base,
            port=port,
            size=words,
            out_addr=err_addr,
            out_port=port,
            comment=f"mask err[{pred.name}] with {act.value}'",
        ))

    def _arm_raw_and_err(
        self, prog: Program, pred: LayerNode, raw_base: int,
        pred_home: FeatureHome, pred_col: int, raw_updates: int,
    ) -> None:
        """Trackers for the raw region (+act copy) and the masked err."""
        words = pred_home.feature_count * pred_home.feature_words
        port = self._port(pred_col, pred_home.row)
        prog.append(make(
            Opcode.MEMTRACK, addr=raw_base, port=port, size=words,
            num_updates=raw_updates, num_reads=1,
            comment=f"track raw err[{pred.name}]",
        ))
        prog.append(make(
            Opcode.MEMTRACK, addr=raw_base + words, port=port, size=words,
            num_updates=1, num_reads=1,
            comment=f"track {pred.name} activation copy",
        ))
        _, err_addr = self._err_block(pred.name, pred_home.row)
        prog.append(make(
            Opcode.MEMTRACK, addr=err_addr, port=port, size=words,
            num_updates=self._err_updates(pred, pred_home),
            num_reads=self._err_reads(pred, pred_home),
            comment=f"track err[{pred.name}]",
        ))

    def _emit_bp(self, node: LayerNode, row: int) -> Program:
        """BP of a weighted layer: produce err for its predecessor."""
        pred = self._pred(node)
        col = self.partition.column_of[node.name]
        pred_col = col - 1
        pred_masked = self._is_weighted(pred)
        pred_home = self._home(pred.name, row)

        prog = Program(tile=f"bp:{node.name}@r{row}")
        body: List[Instruction] = []
        words = pred_home.feature_count * pred_home.feature_words
        pred_port = self._port(pred_col, row)

        if pred_masked:
            raw_base = self.partition.allocator(pred_col, row).alloc(
                f"{node.name}/raw@r{row}", 2 * words
            )
            raw_updates = (
                pred_home.feature_count * node.output_shape.count
                if node.kind is LayerKind.CONV
                else 1
            )
            self._arm_raw_and_err(
                prog, pred, raw_base, pred_home, pred_col, raw_updates
            )
            target_addr = raw_base
        else:
            # Predecessor is a pool: write into err[pred] directly.
            _, target_addr = self._err_block(pred.name, row)
            prog.append(make(
                Opcode.MEMTRACK,
                addr=target_addr, port=pred_port, size=words,
                num_updates=self._err_updates(pred, pred_home),
                num_reads=self._err_reads(pred, pred_home),
                comment=f"track err[{pred.name}] (unmasked)",
            ))

        if node.kind is LayerKind.CONV:
            self._emit_conv_bp(
                prog, body, node, pred, pred_home, col, row, target_addr
            )
        else:
            self._emit_fc_bp(
                prog, body, node, pred, pred_home, col, row, target_addr
            )

        if pred_masked:
            self._emit_mask(prog, body, pred, target_addr, pred_home,
                            pred_col)
        prog.extend(body)
        prog.append(make(Opcode.HALT))
        return prog

    def _dilate_errors(
        self, prog: Program, body: List[Instruction], node: LayerNode,
        col: int, row: int, stage_base: int, reads_per_feature: int,
        tag: str,
    ) -> Tuple[int, int, int]:
        """Zero-insert every staged error feature of a strided layer.

        Returns (dilated base address, dilated height, dilated width);
        for stride 1 the staged region is returned untouched."""
        spec = node.spec
        assert isinstance(spec, ConvSpec)
        out_shape = node.output_shape
        if spec.stride == 1:
            return stage_base, out_shape.height, out_shape.width
        s_ = spec.stride
        dh = (out_shape.height - 1) * s_ + 1
        dw = (out_shape.width - 1) * s_ + 1
        err_words = out_shape.feature_size
        dil_words = dh * dw
        port = self._port(col, row)
        dil_base = self.partition.allocator(col, row).alloc(
            f"{tag}/dilated@r{row}", out_shape.count * dil_words
        )
        prog.append(make(
            Opcode.MEMTRACK, addr=dil_base, port=port,
            size=out_shape.count * dil_words,
            num_updates=out_shape.count,
            num_reads=reads_per_feature * out_shape.count,
            comment=f"track dilated err[{node.name}]",
        ))
        for f in range(out_shape.count):
            body.append(make(
                Opcode.NDUPSAMP,
                samp_type=UPSAMP_ZERO_INSERT,
                in_addr=stage_base + f * err_words,
                port=port,
                in_size=pack_shape(out_shape.height, out_shape.width),
                window=1,
                stride=s_,
                out_addr=dil_base + f * dil_words,
                out_port=port,
                comment=f"dilate err f={f} (stride {s_})",
            ))
        return dil_base, dh, dw

    def _emit_conv_bp(
        self, prog: Program, body: List[Instruction], node: LayerNode,
        pred: LayerNode, pred_home: FeatureHome, col: int, row: int,
        target_addr: int,
    ) -> None:
        spec = node.spec
        assert isinstance(spec, ConvSpec)
        out_shape = node.output_shape
        k = spec.kernel
        pad_bp = k - 1 - spec.pad
        # For stride 1 every NDCONV reads its error feature directly; a
        # strided layer reads the dilated copies instead (one read per
        # target feature each).
        if spec.stride == 1:
            err_reads = pred_home.feature_count * out_shape.count
        else:
            err_reads = 1  # each staged feature is read once, to dilate
        stage_base = self._stage_err(
            prog, body, node, col, row, err_reads, f"bp:{node.name}"
        )
        stage_base, eff_h, eff_w = self._dilate_errors(
            prog, body, node, col, row, stage_base,
            reads_per_feature=pred_home.feature_count,
            tag=f"bp:{node.name}",
        )
        # Rotated kernels for the targets this row computes.
        weights = self.model.state[node.name].weights
        rot = weights[:, :, ::-1, ::-1]
        g0 = pred_home.first_feature
        kern = np.ascontiguousarray(
            rot[:, g0 : g0 + pred_home.feature_count]
        )  # (out_c, block, k, k)
        kwords = k * k
        kern_base = self.partition.allocator(col, row).alloc(
            f"bp:{node.name}/rotkernels@r{row}", kern.size
        )
        self.preloads.append(Preload(col, row, kern_base, kern.reshape(-1)))

        err_fwords = eff_h * eff_w
        for g_local in range(pred_home.feature_count):
            for f in range(out_shape.count):
                body.append(make(
                    Opcode.NDCONV,
                    in_addr=stage_base + f * err_fwords,
                    in_port=self._port(col, row),
                    in_size=pack_shape(eff_h, eff_w),
                    kernel_addr=kern_base
                    + (f * pred_home.feature_count + g_local) * kwords,
                    kernel_size=pack_shape(k, k),
                    stride=1,
                    pad=pad_bp,
                    out_addr=target_addr
                    + g_local * pred_home.feature_words,
                    out_port=self._port(col - 1, row),
                    is_accum=int(f > 0),
                    comment=f"bp partial g={g0 + g_local} f={f}",
                ))

    def _emit_fc_bp(
        self, prog: Program, body: List[Instruction], node: LayerNode,
        pred: LayerNode, pred_home: FeatureHome, col: int, row: int,
        target_addr: int,
    ) -> None:
        out_count = node.output_shape.count
        stage_base = self._stage_err(
            prog, body, node, col, row, reads=1, tag=f"bp:{node.name}"
        )
        # W^T rows for the flattened range this predecessor block spans.
        weights = self.model.state[node.name].weights  # (out, in)
        fwords = pred_home.feature_words
        flat0 = pred_home.first_feature * fwords
        flat1 = flat0 + pred_home.feature_count * fwords
        wt = np.ascontiguousarray(weights[:, flat0:flat1].T)
        wt_base = self.partition.allocator(col, row).alloc(
            f"bp:{node.name}/wt@r{row}", wt.size
        )
        self.preloads.append(Preload(col, row, wt_base, wt.reshape(-1)))
        body.append(make(
            Opcode.MATMUL,
            in1_addr=stage_base,
            in1_port=self._port(col, row),
            in1_size=pack_shape(1, out_count),
            in2_addr=wt_base,
            in2_port=self._port(col, row),
            in2_size=pack_shape(flat1 - flat0, out_count),
            out_addr=target_addr,
            out_port=self._port(col - 1, row),
            is_accum=0,
            comment=f"bp matmul W^T rows [{flat0}, {flat1})",
        ))

    # ------------------------------------------------------------------
    # BP of pool layers: up-sample the error through the window
    # ------------------------------------------------------------------
    def _emit_pool_bp(self, node: LayerNode, row: int) -> Program:
        pred = self._pred(node)
        spec = node.spec
        col = self.partition.column_of[node.name]
        pred_col = col - 1
        in_shape = node.input_shapes[0]
        if isinstance(spec, PoolSpec):
            window = spec.window
        else:
            window = in_shape.height
        out_shape = node.output_shape
        mode = getattr(spec, "mode", PoolMode.AVG)

        err_home, err_addr = self._err_block(node.name, row)
        pred_home = self._home(pred.name, row)
        words = pred_home.feature_count * pred_home.feature_words
        prog = Program(tile=f"bp:{node.name}@r{row}")
        body: List[Instruction] = []
        raw_base = self.partition.allocator(pred_col, row).alloc(
            f"{node.name}/raw@r{row}", 2 * words
        )
        self._arm_raw_and_err(
            prog, pred, raw_base, pred_home, pred_col,
            raw_updates=pred_home.feature_count,
        )
        err_words = err_home.feature_words
        orig_words = pred_home.feature_words
        if mode is PoolMode.MAX:
            # Per-feature work slots [error | original feature]: the
            # NDUPSAMP max mode recomputes the argmax from the
            # original and routes the error to it.
            slot = err_words + orig_words
            work_base = self.partition.allocator(col, row).alloc(
                f"{node.name}/maxwork@r{row}",
                err_home.feature_count * slot,
            )
            prog.append(make(
                Opcode.MEMTRACK, addr=work_base,
                port=self._port(col, row),
                size=err_home.feature_count * slot,
                num_updates=2 * err_home.feature_count,
                num_reads=2 * err_home.feature_count,
                comment=f"track {node.name} max-routing slots",
            ))
            # All slot fills first, then all routings: the block's
            # tracker must see every update before its first read
            # (the reads sit later in this same program).
            for f_local in range(err_home.feature_count):
                feature = err_home.first_feature + f_local
                body.append(make(
                    Opcode.DMALOAD,
                    src_addr=err_addr + f_local * err_words,
                    src_port=self._port(col, row),
                    dst_addr=work_base + f_local * slot,
                    dst_port=self._port(col, row),
                    size=err_words,
                    is_accum=0,
                    comment=f"stage pooled err f={feature}",
                ))
                body.append(make(
                    Opcode.DMALOAD,
                    src_addr=pred_home.feature_address(feature),
                    src_port=self._port(pred_col, row),
                    dst_addr=work_base + f_local * slot + err_words,
                    dst_port=self._port(col, row),
                    size=orig_words,
                    is_accum=0,
                    comment=f"stage original f={feature} for argmax",
                ))
            for f_local in range(err_home.feature_count):
                feature = err_home.first_feature + f_local
                body.append(make(
                    Opcode.NDUPSAMP,
                    samp_type=SAMP_CODES[PoolMode.MAX],
                    in_addr=work_base + f_local * slot,
                    port=self._port(col, row),
                    in_size=pack_shape(
                        out_shape.height, out_shape.width
                    ),
                    window=window,
                    stride=window,
                    out_addr=raw_base
                    + f_local * pred_home.feature_words,
                    out_port=self._port(pred_col, row),
                    comment=f"route err to maxima f={feature}",
                ))
        else:
            for f_local in range(err_home.feature_count):
                body.append(make(
                    Opcode.NDUPSAMP,
                    samp_type=SAMP_CODES[PoolMode.AVG],
                    in_addr=err_addr + f_local * err_words,
                    port=self._port(col, row),
                    in_size=pack_shape(
                        out_shape.height, out_shape.width
                    ),
                    window=window,
                    stride=window,
                    out_addr=raw_base
                    + f_local * pred_home.feature_words,
                    out_port=self._port(pred_col, row),
                    comment="upsample err "
                            f"f={err_home.first_feature + f_local}",
                ))
        self._emit_mask(prog, body, pred, raw_base, pred_home, pred_col)
        prog.extend(body)
        prog.append(make(Opcode.HALT))
        return prog

    # ------------------------------------------------------------------
    # WG: weight gradients + in-place SGD update
    # ------------------------------------------------------------------
    def _emit_wg(self, node: LayerNode, home: FeatureHome) -> Program:
        col = self.partition.column_of[node.name]
        in_shape = node.input_shapes[0]
        row = home.row
        left = self._port(col - 1, row)
        prog = Program(tile=f"wg:{node.name}@r{row}")
        body: List[Instruction] = []

        # Copy this row's error block beside the weights so NDCONV /
        # MATMUL can read it from the same port as its other operand.
        err_home, err_addr = self._err_block(node.name, row)
        err_words = home.feature_count * node.output_shape.feature_size
        werr_base = self.partition.allocator(col - 1, row).alloc(
            f"wg:{node.name}/err@r{row}", err_words
        )
        strided = (
            node.kind is LayerKind.CONV and node.spec.stride > 1
        )
        if node.kind is not LayerKind.CONV:
            kernel_reads = home.feature_count
        elif strided:
            kernel_reads = home.feature_count  # one dilation each
        else:
            kernel_reads = home.feature_count * in_shape.count
        prog.append(make(
            Opcode.MEMTRACK, addr=werr_base, port=left, size=err_words,
            num_updates=1, num_reads=kernel_reads,
            comment=f"track wg err copy [{node.name}]",
        ))
        body.append(make(
            Opcode.DMALOAD,
            src_addr=err_addr,
            src_port=self._port(col, row),
            dst_addr=werr_base,
            dst_port=left,
            size=err_words,
            is_accum=0,
            comment=f"copy err[{node.name}] block for WG",
        ))

        if node.kind is LayerKind.CONV:
            grad_words = self._emit_conv_wg(
                prog, body, node, home, col, row, werr_base
            )
            weight_block = f"{node.name}/kernels@r{row}"
        else:
            grad_words = self._emit_fc_wg(
                prog, body, node, home, col, row, werr_base
            )
            weight_block = f"{node.name}/weights@r{row}"

        weight_base, _ = self.partition.allocator(
            col - 1, row
        ).lookup(weight_block)
        grad_base, _ = self.partition.allocator(col - 1, row).lookup(
            f"wg:{node.name}/grads@r{row}"
        )
        update = make(
            Opcode.WUPDATE,
            weight_addr=weight_base,
            grad_addr=grad_base,
            port=left,
            size=grad_words,
            lr_num=self.lr_num,
            lr_denom=self.lr_denom * self.minibatch,
            comment=f"SGD update {node.name} block r{row}",
        )
        if self.minibatch == 1:
            body.append(update)
        else:
            upd_prog = Program(tile=f"upd:{node.name}@r{row}")
            upd_prog.append(update)
            upd_prog.append(make(Opcode.HALT))
            self.update_programs.append(upd_prog)
        prog.extend(body)
        prog.append(make(Opcode.HALT))
        return prog

    def _emit_conv_wg(
        self, prog: Program, body: List[Instruction], node: LayerNode,
        home: FeatureHome, col: int, row: int, werr_base: int,
    ) -> int:
        spec = node.spec
        assert isinstance(spec, ConvSpec)
        in_shape = node.input_shapes[0]
        out_shape = node.output_shape
        k = spec.kernel
        left = self._port(col - 1, row)
        stage_base, _ = self.partition.allocator(col - 1, row).lookup(
            f"{node.name}/stage@r{row}"
        )
        fwords = in_shape.feature_size
        err_fwords = out_shape.feature_size
        eff_h, eff_w = out_shape.height, out_shape.width
        if spec.stride > 1:
            # Correlating with the *dilated* error recovers the strided
            # gradient; dilate this block's error copies in place.
            s_ = spec.stride
            eff_h = (out_shape.height - 1) * s_ + 1
            eff_w = (out_shape.width - 1) * s_ + 1
            dil_words = eff_h * eff_w
            dil_base = self.partition.allocator(col - 1, row).alloc(
                f"wg:{node.name}/dilated@r{row}",
                home.feature_count * dil_words,
            )
            prog.append(make(
                Opcode.MEMTRACK, addr=dil_base, port=left,
                size=home.feature_count * dil_words,
                num_updates=home.feature_count,
                num_reads=home.feature_count * in_shape.count,
                comment=f"track wg dilated err [{node.name}]",
            ))
            for f_local in range(home.feature_count):
                body.append(make(
                    Opcode.NDUPSAMP,
                    samp_type=UPSAMP_ZERO_INSERT,
                    in_addr=werr_base + f_local * err_fwords,
                    port=left,
                    in_size=pack_shape(out_shape.height, out_shape.width),
                    window=1,
                    stride=s_,
                    out_addr=dil_base + f_local * dil_words,
                    out_port=left,
                    comment=f"wg dilate f={home.first_feature + f_local}",
                ))
            werr_base = dil_base
            err_fwords = dil_words
        kwords = k * k
        grad_words = home.feature_count * in_shape.count * kwords
        grad_base = self.partition.allocator(col - 1, row).alloc(
            f"wg:{node.name}/grads@r{row}", grad_words
        )
        prog.append(make(
            Opcode.MEMTRACK, addr=grad_base, port=left, size=grad_words,
            num_updates=home.feature_count * in_shape.count,
            num_reads=1 if self.minibatch == 1 else 0,
            comment=f"track {node.name} weight gradients",
        ))
        accumulate = int(self.minibatch > 1)
        for f_local in range(home.feature_count):
            for g in range(in_shape.count):
                body.append(make(
                    Opcode.NDCONV,
                    in_addr=stage_base + g * fwords,
                    in_port=left,
                    in_size=pack_shape(in_shape.height, in_shape.width),
                    kernel_addr=werr_base + f_local * err_fwords,
                    kernel_size=pack_shape(eff_h, eff_w),
                    stride=1,
                    pad=spec.pad,
                    out_addr=grad_base
                    + (f_local * in_shape.count + g) * kwords,
                    out_port=left,
                    is_accum=accumulate,
                    comment=f"grad f={home.first_feature + f_local} in={g}",
                ))
        return grad_words

    def _emit_fc_wg(
        self, prog: Program, body: List[Instruction], node: LayerNode,
        home: FeatureHome, col: int, row: int, werr_base: int,
    ) -> int:
        in_elems = node.input_shapes[0].elements
        left = self._port(col - 1, row)
        stage_base, _ = self.partition.allocator(col - 1, row).lookup(
            f"{node.name}/stage@r{row}"
        )
        grad_words = home.feature_count * in_elems
        grad_base = self.partition.allocator(col - 1, row).alloc(
            f"wg:{node.name}/grads@r{row}", grad_words
        )
        prog.append(make(
            Opcode.MEMTRACK, addr=grad_base, port=left, size=grad_words,
            num_updates=home.feature_count,
            num_reads=1 if self.minibatch == 1 else 0,
            comment=f"track {node.name} weight gradients",
        ))
        # Outer product, one output row at a time: grads[f, :] =
        # err[f] * input — realised as MATMUL(input-as-matrix, err[f]).
        accumulate = int(self.minibatch > 1)
        for f_local in range(home.feature_count):
            body.append(make(
                Opcode.MATMUL,
                in1_addr=werr_base + f_local,
                in1_port=left,
                in1_size=pack_shape(1, 1),
                in2_addr=stage_base,
                in2_port=left,
                in2_size=pack_shape(in_elems, 1),
                out_addr=grad_base + f_local * in_elems,
                out_port=left,
                is_accum=accumulate,
                comment=f"grad row f={home.first_feature + f_local}",
            ))
        return grad_words


class LowerPass(Pass):
    """Emit one program per scheduled op; calibrate, align, validate."""

    name = "lower"

    def __init__(self, align: bool = True) -> None:
        self.align = align

    def run(self, ir: MappingIR, ctx: PassContext,
            stats: PassStats) -> MappingIR:
        emitter = EngineEmitter(ir, ctx)
        by_name = {op.name: op for op in ir.ops}
        for name in ir.schedule:
            emitter.emit(by_name[name])
        programs = emitter.programs
        if not emitter.exact:
            calibrate_trackers(programs)
        all_programs = programs + emitter.update_programs
        if self.align and all_programs:
            align_prologues(all_programs)
        for program in all_programs:
            program.validate()
        ctx.programs = programs
        ctx.update_programs = emitter.update_programs
        ctx.preloads = emitter.preloads
        if emitter.err_injection is not None:
            ctx.extra["err_injection"] = emitter.err_injection
            ctx.host_writes = [emitter.err_injection]
        stats.notes["programs"] = len(all_programs)
        stats.notes["instructions"] = sum(len(p) for p in all_programs)
        stats.notes["dialect"] = ctx.dialect
        return ir
