"""The pass manager: ordered IR transforms with verification between.

Each pass receives the IR and a shared :class:`PassContext` (the
compile inputs plus accumulating outputs such as emitted programs and
preloads), returns the — possibly rewritten — IR, and gets a
:class:`PassStats` row recording what it did.  After every pass the
manager re-runs the IR verifier, so a pass that produces a malformed
placement fails loudly at its own boundary rather than corrupting a
later stage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.compiler.ir import MappingIR
from repro.compiler.verifier import MachineShape, assert_ir_verified
from repro.telemetry.core import get_telemetry


@dataclass
class PassContext:
    """Everything the passes share for one compilation.

    Inputs are set by the pipeline entry point; passes accumulate their
    outputs here (``programs``, ``preloads``, ``mapping`` and free-form
    ``extra`` entries) so downstream passes and the caller can read
    them.
    """

    net: Any = None
    node: Any = None  # NodeConfig (analytical) — None on the engine path
    model: Any = None  # ReferenceModel (engine path)
    chip: Any = None  # ChipConfig (engine path)
    partition: Any = None  # StatePartition (engine path)
    rows: int = 2
    dialect: str = "exact"  # "exact" | "calibrated" tracker counts
    minibatch: int = 1
    learning_rate: Tuple[int, int] = (1, 100)
    faults: Any = None  # FaultMask (analytical path)
    # Outputs
    mapping: Any = None  # WorkloadMapping
    programs: List[Any] = field(default_factory=list)
    update_programs: List[Any] = field(default_factory=list)
    preloads: List[Any] = field(default_factory=list)
    host_writes: List[Tuple[int, int, int]] = field(default_factory=list)
    extra: Dict[str, Any] = field(default_factory=dict)

    def machine_shape(self) -> Optional[MachineShape]:
        """Addressing envelope of the engine machine (None when the
        compilation has no engine chip, e.g. the analytical path)."""
        if self.chip is None or self.partition is None:
            return None
        return MachineShape(
            mem_tiles=self.partition.mem_columns * self.rows,
            words_per_tile=self.chip.mem_tile.capacity_bytes // 4,
            trackers_per_tile=self.chip.mem_tile.tracker_count,
        )


@dataclass
class PassStats:
    """What one pass did: op/edge deltas plus free-form notes."""

    name: str
    ops_before: int
    ops_after: int
    edges_before: int
    edges_after: int
    notes: Dict[str, Any] = field(default_factory=dict)

    @property
    def changed(self) -> bool:
        return (
            self.ops_before != self.ops_after
            or self.edges_before != self.edges_after
            or bool(self.notes)
        )

    def describe(self) -> str:
        delta = (
            f"ops {self.ops_before}->{self.ops_after}, "
            f"edges {self.edges_before}->{self.edges_after}"
        )
        notes = ", ".join(f"{k}={v}" for k, v in sorted(self.notes.items()))
        return f"{self.name}: {delta}" + (f" ({notes})" if notes else "")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "ops_before": self.ops_before,
            "ops_after": self.ops_after,
            "edges_before": self.edges_before,
            "edges_after": self.edges_after,
            "notes": dict(self.notes),
        }


class Pass:
    """Base class: override :meth:`run`; set ``name`` per subclass."""

    name = "pass"

    def run(self, ir: MappingIR, ctx: PassContext,
            stats: PassStats) -> MappingIR:
        raise NotImplementedError


class PassManager:
    """Runs an ordered pass list with inter-pass IR verification."""

    def __init__(self, passes: List[Pass], verify: bool = True) -> None:
        self.passes = list(passes)
        self.verify = verify

    def run(
        self, ir: MappingIR, ctx: PassContext
    ) -> Tuple[MappingIR, List[PassStats]]:
        tel = get_telemetry()
        all_stats: List[PassStats] = []
        for index, pipeline_pass in enumerate(self.passes):
            stats = PassStats(
                name=pipeline_pass.name,
                ops_before=len(ir.ops),
                ops_after=len(ir.ops),
                edges_before=len(ir.edges),
                edges_after=len(ir.edges),
            )
            ir = pipeline_pass.run(ir, ctx, stats) or ir
            stats.ops_after = len(ir.ops)
            stats.edges_after = len(ir.edges)
            all_stats.append(stats)
            if tel.enabled:
                tel.instant(
                    f"pass.{pipeline_pass.name}", "compiler",
                    ("compiler", "passes"), index,
                    network=ir.network, **{
                        k: v for k, v in stats.to_dict().items()
                        if k != "name"
                    },
                )
            if self.verify:
                assert_ir_verified(ir, ctx.machine_shape())
        return ir, all_stats
