"""Schedule: pin the deterministic lowering order into the IR.

The engine's round-robin scheduler executes one instruction per tile
per round, so the *order* programs are emitted in is cycle-visible:
prologue alignment, tracker arming and DMA interleave all depend on it.
This pass makes that order explicit IR state (``ir.schedule``) instead
of an emission accident:

* FP ops in network order, per layer in home-block order;
* then, per layer in network order, its BP ops (pool BP over the
  layer's own rows, weighted BP over the predecessor's) followed by its
  WG ops;
* finally the host's loss-gradient injection point (``bp:inject``).

Weight-update programs (minibatch mode) are emitted by the lowering as
a side effect of each WG op, in schedule order, so they need no ops of
their own.
"""

from __future__ import annotations

from repro.compiler.ir import MappingIR, Phase
from repro.compiler.passes.manager import Pass, PassContext, PassStats
from repro.dnn.layers import LayerKind


class SchedulePass(Pass):
    """Order ops: FP forward, then per-layer BP + WG, then injection."""

    name = "schedule"

    def run(self, ir: MappingIR, ctx: PassContext,
            stats: PassStats) -> MappingIR:
        present = {op.name for op in ir.ops}
        schedule = []
        net, partition = ctx.net, ctx.partition

        for node in net:
            if node.kind is LayerKind.INPUT:
                continue
            for home in partition.blocks_of(node.name):
                name = f"fp:{node.name}@r{home.row}"
                if name in present:
                    schedule.append(name)

        training = any(op.phase is not Phase.FP for op in ir.ops)
        if training:
            weighted = (LayerKind.CONV, LayerKind.FC)
            for node in net:
                if node.kind is LayerKind.INPUT:
                    continue
                pred = net[node.input_names[0]]
                bp_blocks = (
                    partition.blocks_of(pred.name)
                    if node.kind in weighted
                    else partition.blocks_of(node.name)
                )
                for home in bp_blocks:
                    name = f"bp:{node.name}@r{home.row}"
                    if name in present:
                        schedule.append(name)
                if node.kind in weighted:
                    for home in partition.blocks_of(node.name):
                        name = f"wg:{node.name}@r{home.row}"
                        if name in present:
                            schedule.append(name)
            if "bp:inject" in present:
                schedule.append("bp:inject")

        ir.schedule = schedule
        stats.notes["scheduled"] = len(schedule)
        return ir
