"""Superop fusion: collapse straight-line instruction runs for the engine.

The code generator emits each layer as a long straight-line sequence of
immediate-operand data instructions — per-feature staging DMAs, one
NDCONV per (feature, source) pair, a bias NDACCUM per feature, one
block-wide NDACTFN.  The engine's pre-decoded fast path still pays a
per-instruction toll for every one of them: closure dispatch, tracker
gating, and — dominating the profile — the decode itself.

This pass pattern-matches those sequences *at compile time* into
:class:`~repro.isa.program.SuperOp` entries attached to each program:

* ``load_run`` — a run of 2+ DMALOADs (input staging, concat/slice
  copies, eltwise accumulation copies);
* ``conv_block`` — a whole convolution layer slice: ``(NDCONV+
  NDACCUM)`` per feature, closed by the block-wide NDACTFN;
* ``fc_block`` — MATMUL + bias NDACCUM + NDACTFN;
* ``pool_run`` — a run of NDSUBSAMPs, pre-grouped into contiguous
  same-shape plane blocks.

For every superop the pass also performs a whole-machine dataflow
analysis over the armed MEMTRACK ranges: a tracker range accessed
*only* from inside fused superops of the program that armed it is
**internal** — its per-quad consumes are unobservable, so the engine
force-expires it when the superop completes (the exact per-instruction
end state).  Every other access stays an **external** quad, peeked and
consumed one at a time so shared-tracker handshakes between tiles are
bit-identical to per-instruction execution.  Accesses to ranges no
tracker ever arms are dropped from the gate entirely.

The pass rewrites no instructions: with fusion off (or an engine that
ignores superops) the same programs execute unchanged.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.compiler.passes.manager import Pass, PassContext, PassStats
from repro.compiler.ir import MappingIR
from repro.isa.instructions import Instruction, InstrGroup, Opcode
from repro.isa.program import Program, SuperOp
from repro.sim.machine import (
    instruction_accesses,
    is_reg_operand,
    unpack_shape,
)

#: Opcodes a superop may cover.  Everything else — scalar/control,
#: tracker arms, VECMUL and the other low-count ops — stays on the
#: per-instruction path.
_FUSABLE = frozenset((
    Opcode.DMALOAD, Opcode.NDCONV, Opcode.NDACCUM, Opcode.NDACTFN,
    Opcode.MATMUL, Opcode.NDSUBSAMP,
))

#: Minimum instructions for a run-style superop to be worth the gate.
_MIN_RUN = 2

#: The instruction groups that touch scratchpad data.
_DATA_GROUPS = frozenset((
    InstrGroup.COARSE, InstrGroup.OFFLOAD, InstrGroup.TRANSFER,
))


def _has_reg(instr: Instruction) -> bool:
    return any(is_reg_operand(v) for v in instr.operands)


class _Span:
    """A matched superop candidate before externality analysis."""

    __slots__ = ("kind", "start", "end", "params")

    def __init__(self, kind: str, start: int, end: int, params: dict):
        self.kind = kind
        self.start = start
        self.end = end
        self.params = params


class _Arm:
    """One armed tracker range and what the analysis learned about it."""

    __slots__ = ("port", "addr", "size", "prog", "internal", "last_span")

    def __init__(self, port: int, addr: int, size: int, prog: int):
        self.port = port
        self.addr = addr
        self.size = size
        self.prog = prog
        self.internal = True  # until a non-fused accessor shows up
        self.last_span: Optional[Tuple[int, int]] = None  # (prog, span_idx)

    def overlaps(self, addr: int, count: int) -> bool:
        return addr < self.addr + self.size and self.addr < addr + count


# ---------------------------------------------------------------------------
# Pattern matching
# ---------------------------------------------------------------------------
def _parse_load_run(instrs: Sequence[Instruction], start: int) -> Optional[_Span]:
    n = len(instrs)
    j = start
    dmas: List[Tuple[int, int, int, int, int, int]] = []
    while j < n and instrs[j].opcode is Opcode.DMALOAD and not _has_reg(instrs[j]):
        o = instrs[j].named_operands()
        dmas.append((
            o["src_port"], o["src_addr"], o["dst_port"], o["dst_addr"],
            o["size"], int(bool(o["is_accum"])),
        ))
        j += 1
    if j - start < _MIN_RUN:
        return None
    return _Span("load_run", start, j, {"dmas": tuple(dmas)})


def _parse_conv_block(
    instrs: Sequence[Instruction], start: int
) -> Optional[_Span]:
    """Match ``(NDCONV+ NDACCUM)+ NDACTFN`` — one conv layer slice."""
    n = len(instrs)
    o0 = instrs[start].named_operands()
    if o0["is_accum"]:
        return None
    in_port, out_port = o0["in_port"], o0["out_port"]
    in_size, kern_size = o0["in_size"], o0["kernel_size"]
    stride, pad = o0["stride"], o0["pad"]
    h, w = unpack_shape(in_size)
    k, _ = unpack_shape(kern_size)
    out_h = (h + 2 * pad - k) // stride + 1
    out_w = (w + 2 * pad - k) // stride + 1
    out_size = out_h * out_w
    if out_size <= 0:
        return None
    pre_base = o0["out_addr"]
    features: List[List[Tuple[int, int]]] = []
    bias_addrs: List[int] = []
    i = start
    while i < n and instrs[i].opcode is Opcode.NDCONV:
        if _has_reg(instrs[i]):
            return None
        o = instrs[i].named_operands()
        expected_out = pre_base + len(features) * out_size
        if (
            o["is_accum"]
            or o["in_port"] != in_port or o["out_port"] != out_port
            or o["in_size"] != in_size or o["kernel_size"] != kern_size
            or o["stride"] != stride or o["pad"] != pad
            or o["out_addr"] != expected_out
        ):
            return None
        sources = [(o["in_addr"], o["kernel_addr"])]
        i += 1
        while i < n and instrs[i].opcode is Opcode.NDCONV:
            if _has_reg(instrs[i]):
                return None
            o = instrs[i].named_operands()
            if not o["is_accum"]:
                break  # next feature's first source
            if (
                o["in_port"] != in_port or o["out_port"] != out_port
                or o["in_size"] != in_size or o["kernel_size"] != kern_size
                or o["stride"] != stride or o["pad"] != pad
                or o["out_addr"] != expected_out
            ):
                return None
            sources.append((o["in_addr"], o["kernel_addr"]))
            i += 1
        if i >= n or instrs[i].opcode is not Opcode.NDACCUM:
            return None
        if _has_reg(instrs[i]):
            return None
        o = instrs[i].named_operands()
        if (
            o["port"] != out_port or o["dst_addr"] != expected_out
            or o["size"] != out_size
        ):
            return None
        bias_addrs.append(o["src_addr"])
        features.append(sources)
        i += 1
        if i < n and instrs[i].opcode is Opcode.NDACTFN:
            break
    if not features or i >= n or instrs[i].opcode is not Opcode.NDACTFN:
        return None
    if _has_reg(instrs[i]):
        return None
    o = instrs[i].named_operands()
    n_features = len(features)
    if (
        o["port"] != out_port or o["in_addr"] != pre_base
        or o["size"] != n_features * out_size
    ):
        return None
    bias_base = bias_addrs[0]
    if any(
        addr != bias_base + f * out_size for f, addr in enumerate(bias_addrs)
    ):
        return None
    # Per-step (ragged) source groups: step s covers every feature with
    # more than s sources, in feature order.
    max_sources = max(len(srcs) for srcs in features)
    steps = []
    for s in range(max_sources):
        feats = tuple(
            f for f, srcs in enumerate(features) if len(srcs) > s
        )
        steps.append((
            feats,
            tuple(features[f][s][0] for f in feats),
            tuple(features[f][s][1] for f in feats),
        ))
    if steps[0][0] != tuple(range(n_features)):
        return None
    return _Span("conv_block", start, i + 1, {
        "in_port": in_port, "out_port": out_port,
        "h": h, "w": w, "k": k, "stride": stride, "pad": pad,
        "out_size": out_size, "n_features": n_features,
        "pre_base": pre_base, "bias_base": bias_base,
        "fn_type": o["fn_type"],
        "home_port": o["out_port"], "home_addr": o["out_addr"],
        "steps": tuple(steps),
    })


def _parse_fc_block(
    instrs: Sequence[Instruction], start: int
) -> Optional[_Span]:
    """Match ``MATMUL NDACCUM NDACTFN`` — one FC layer slice."""
    if start + 2 >= len(instrs):
        return None
    mm, acc, act = instrs[start], instrs[start + 1], instrs[start + 2]
    if acc.opcode is not Opcode.NDACCUM or act.opcode is not Opcode.NDACTFN:
        return None
    if _has_reg(mm) or _has_reg(acc) or _has_reg(act):
        return None
    om = mm.named_operands()
    rows, cols = unpack_shape(om["in2_size"])
    _, n = unpack_shape(om["in1_size"])
    if n != cols or om["is_accum"]:
        return None
    oa = acc.named_operands()
    of = act.named_operands()
    if (
        oa["port"] != om["out_port"] or oa["dst_addr"] != om["out_addr"]
        or oa["size"] != rows
        or of["port"] != om["out_port"] or of["in_addr"] != om["out_addr"]
        or of["size"] != rows
    ):
        return None
    return _Span("fc_block", start, start + 3, {
        "vec_port": om["in1_port"], "vec_addr": om["in1_addr"], "n": n,
        "mat_port": om["in2_port"], "mat_addr": om["in2_addr"],
        "rows": rows,
        "pre_port": om["out_port"], "pre_addr": om["out_addr"],
        "bias_addr": oa["src_addr"], "fn_type": of["fn_type"],
        "home_port": of["out_port"], "home_addr": of["out_addr"],
    })


def _parse_pool_run(
    instrs: Sequence[Instruction], start: int
) -> Optional[_Span]:
    """Match a run of NDSUBSAMPs, grouped into contiguous plane blocks."""
    n = len(instrs)
    j = start
    planes = []
    while j < n and instrs[j].opcode is Opcode.NDSUBSAMP and not _has_reg(
        instrs[j]
    ):
        o = instrs[j].named_operands()
        h, w = unpack_shape(o["in_size"])
        planes.append((
            o["port"], o["in_addr"], h, w, o["window"], o["stride"],
            o["samp_type"], o["out_port"], o["out_addr"],
        ))
        j += 1
    if j - start < _MIN_RUN:
        return None
    # Coalesce planes that are contiguous in both source and destination
    # into (count > 1) groups — one pool_forward call per group.
    groups: List[Tuple[int, int, int, int, int, int, int, int, int, int]] = []
    for plane in planes:
        port, in_addr, h, w, window, stride, samp, out_port, out_addr = plane
        out_words = (
            ((h - window) // stride + 1) * ((w - window) // stride + 1)
        )
        if groups:
            g = groups[-1]
            (g_port, g_addr, g_count, g_h, g_w, g_win, g_str, g_samp,
             g_oport, g_oaddr) = g
            if (
                g_port == port and g_h == h and g_w == w
                and g_win == window and g_str == stride and g_samp == samp
                and g_oport == out_port
                and in_addr == g_addr + g_count * h * w
                and out_addr == g_oaddr + g_count * out_words
            ):
                groups[-1] = (
                    g_port, g_addr, g_count + 1, g_h, g_w, g_win, g_str,
                    g_samp, g_oport, g_oaddr,
                )
                continue
        groups.append((
            port, in_addr, 1, h, w, window, stride, samp, out_port,
            out_addr,
        ))
    return _Span("pool_run", start, j, {"groups": tuple(groups)})


def _match_spans(instrs: Sequence[Instruction]) -> List[_Span]:
    spans: List[_Span] = []
    i = 0
    n = len(instrs)
    while i < n:
        instr = instrs[i]
        op = instr.opcode
        span: Optional[_Span] = None
        if op in _FUSABLE and not _has_reg(instr):
            if op is Opcode.DMALOAD:
                span = _parse_load_run(instrs, i)
            elif op is Opcode.NDCONV:
                span = _parse_conv_block(instrs, i)
            elif op is Opcode.MATMUL:
                span = _parse_fc_block(instrs, i)
            elif op is Opcode.NDSUBSAMP:
                span = _parse_pool_run(instrs, i)
        if span is not None:
            spans.append(span)
            i = span.end
        else:
            i += 1
    return spans


# ---------------------------------------------------------------------------
# Externality analysis
# ---------------------------------------------------------------------------
def _collect_arms(programs: Sequence[Program]) -> Optional[Dict[int, List[_Arm]]]:
    """All armed tracker ranges per port; None if any is unanalyzable."""
    arms: Dict[int, List[_Arm]] = {}
    for pi, prog in enumerate(programs):
        for instr in prog.instructions:
            if instr.group is not InstrGroup.TRACK:
                continue
            if _has_reg(instr):
                return None  # register-indirect arm: cannot analyze
            o = instr.named_operands()
            port = (
                o["target"] if instr.opcode is Opcode.DMA_MEMTRACK
                else o["port"]
            )
            arms.setdefault(port, []).append(
                _Arm(port, o["addr"], o["size"], pi)
            )
    return arms


def _annotate_superops(programs: Sequence[Program]) -> int:
    """Match spans, classify tracker ranges, attach superops.

    Returns the number of instructions covered by superops (0 when the
    program set is unanalyzable and fusion is skipped entirely).
    """
    arms = _collect_arms(programs)
    if arms is None:
        return 0
    spans_by_prog = [_match_spans(prog.instructions) for prog in programs]
    covered_by_prog = []
    for spans in spans_by_prog:
        covered: Dict[int, int] = {}
        for si, span in enumerate(spans):
            for pc in range(span.start, span.end):
                covered[pc] = si
        covered_by_prog.append(covered)

    # Pass 1: every data access marks each armed range it overlaps as
    # internal (same program, inside a span) or external.
    quads_cache: List[List[Tuple[int, list, list]]] = []
    for pi, prog in enumerate(programs):
        covered = covered_by_prog[pi]
        prog_quads: List[Tuple[int, list, list]] = []
        for pc, instr in enumerate(prog.instructions):
            if instr.group not in _DATA_GROUPS:
                continue
            if _has_reg(instr):
                return 0  # register-indirect data op: cannot analyze
            reads, writes = instruction_accesses(instr)
            prog_quads.append((pc, reads, writes))
            span_idx = covered.get(pc)
            for port, addr, count in reads + writes:
                for arm in arms.get(port, ()):
                    if not arm.overlaps(addr, count):
                        continue
                    if span_idx is None or arm.prog != pi:
                        arm.internal = False
                    elif arm.last_span is None or arm.last_span < (
                        pi, span_idx
                    ):
                        arm.last_span = (pi, span_idx)
        quads_cache.append(prog_quads)

    # Pass 2: build the external quad lists and expire sets per span.
    fused_instrs = 0
    for pi, prog in enumerate(programs):
        spans = spans_by_prog[pi]
        if not spans:
            prog.superops = ()
            continue
        ext_reads: List[List[Tuple[int, int, int]]] = [[] for _ in spans]
        ext_writes: List[List[Tuple[int, int, int]]] = [[] for _ in spans]
        covered = covered_by_prog[pi]
        for pc, reads, writes in quads_cache[pi]:
            si = covered.get(pc)
            if si is None:
                continue
            for quads, out in ((reads, ext_reads), (writes, ext_writes)):
                for port, addr, count in quads:
                    hit = [
                        arm for arm in arms.get(port, ())
                        if arm.overlaps(addr, count)
                    ]
                    if hit and all(a.internal for a in hit):
                        continue  # internal: expired at span end
                    if hit:
                        out[si].append((port, addr, count))
                    # no tracker ever arms this range: drop the quad
        expires: List[List[Tuple[int, int, int]]] = [[] for _ in spans]
        for port_arms in arms.values():
            for arm in port_arms:
                if (
                    arm.internal and arm.last_span is not None
                    and arm.last_span[0] == pi
                ):
                    expires[arm.last_span[1]].append(
                        (arm.port, arm.addr, arm.size)
                    )
        superops = []
        for si, span in enumerate(spans):
            superops.append(SuperOp(
                kind=span.kind,
                start=span.start,
                end=span.end,
                external_reads=tuple(ext_reads[si]),
                external_writes=tuple(ext_writes[si]),
                expire=tuple(sorted(expires[si])),
                params=tuple(sorted(span.params.items())),
            ))
            fused_instrs += span.end - span.start
        prog.superops = tuple(superops)
    return fused_instrs


class FusePass(Pass):
    """Attach superop fusion plans to the lowered programs."""

    name = "fuse"

    def run(
        self, ir: MappingIR, ctx: PassContext, stats: PassStats
    ) -> MappingIR:
        programs = list(ctx.programs)
        if not programs:
            return ir
        fused = _annotate_superops(programs)
        total = sum(len(p.instructions) for p in programs)
        stats.notes["fused_instructions"] = fused
        stats.notes["superops"] = sum(len(p.superops) for p in programs)
        stats.notes["coverage"] = round(fused / total, 4) if total else 0.0
        return ir
