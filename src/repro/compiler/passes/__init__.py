"""The compiler pass pipeline over the unified IR.

Ordered, individually-testable passes transform a
:class:`~repro.compiler.ir.MappingIR`:

``legalize`` -> ``place-check`` -> ``tracker-assign`` -> ``schedule``
-> ``lower``

The :class:`~repro.compiler.passes.manager.PassManager` threads a
shared :class:`~repro.compiler.passes.manager.PassContext` through the
pipeline, records per-pass statistics, and runs the IR verifier between
every pair of passes, rejecting malformed placements with typed errors
before they can reach emission.  Fault-mask remapping is the
:class:`~repro.compiler.passes.faults.FaultRemapPass` IR rewrite.

Re-exports are lazy (PEP 562): :mod:`~repro.compiler.passes.lower`
imports the functional simulator, and eagerly importing it here would
cycle through ``repro.sim``'s package init when the analytical path
(mapping, perf) touches the fault or manager modules.
"""

from typing import List

_EXPORTS = {
    "Pass": "repro.compiler.passes.manager",
    "PassContext": "repro.compiler.passes.manager",
    "PassManager": "repro.compiler.passes.manager",
    "PassStats": "repro.compiler.passes.manager",
    "LegalizePass": "repro.compiler.passes.legalize",
    "PlaceCheckPass": "repro.compiler.passes.place_check",
    "TrackerAssignPass": "repro.compiler.passes.tracker_assign",
    "SchedulePass": "repro.compiler.passes.schedule",
    "LowerPass": "repro.compiler.passes.lower",
    "FusePass": "repro.compiler.passes.fuse",
    "FaultRemapPass": "repro.compiler.passes.faults",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module = _EXPORTS.get(name)
    if module is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    import importlib

    return getattr(importlib.import_module(module), name)


def __dir__() -> List[str]:
    return sorted(set(globals()) | set(__all__))
