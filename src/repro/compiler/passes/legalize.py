"""Legalize: reject networks outside a lowering dialect's scope.

The scope rules formerly scattered across the three codegen backends
(`_validate_scope` and per-layer raises) live here as one pass with
three dialects:

* ``forward`` — the sequential exact-tracker lowering: chains of
  ``groups=1`` convolutions, unpadded pooling, FC;
* ``dag`` — the calibrated-tracker DAG lowering: adds concat, slice,
  element-wise joins, grouped/table convolutions, and padded pooling
  (zero-staged; MAX needs a provably non-negative input);
* ``training`` — the forward scope plus BP/WG restrictions (softmax FC
  head, stride/window divisibility, average global pooling).

Violations raise :class:`~repro.errors.MappingError` — the same typed
error the backends historically raised — so scope failures surface
before any placement or emission work happens.
"""

from __future__ import annotations

from repro.compiler.ir import MappingIR
from repro.compiler.passes.manager import Pass, PassContext, PassStats
from repro.dnn.layers import (
    Activation,
    ActivationSpec,
    ConcatSpec,
    ConvSpec,
    EltwiseAddSpec,
    EltwiseMulSpec,
    FCSpec,
    GlobalPoolSpec,
    LayerKind,
    PoolMode,
    PoolSpec,
    SliceSpec,
)
from repro.dnn.network import Network
from repro.errors import MappingError


def check_forward_scope(net: Network) -> None:
    """Sequential exact-tracker lowering scope."""
    for node in net:
        if node.kind is LayerKind.INPUT:
            continue
        spec = node.spec
        if isinstance(spec, ConvSpec):
            if spec.groups != 1:
                raise MappingError(
                    "engine code generation supports groups=1 convolutions"
                )
        elif isinstance(spec, PoolSpec):
            if spec.pad:
                raise MappingError(
                    "engine code generation supports unpadded pooling"
                )
        elif isinstance(spec, (GlobalPoolSpec, FCSpec)):
            pass
        else:
            raise MappingError(
                f"cannot generate engine code for layer kind {node.kind}"
            )


#: Activations whose outputs are provably >= 0 everywhere.
_NONNEG_ACTS = frozenset(
    (Activation.RELU, Activation.SIGMOID, Activation.SOFTMAX)
)


def _nonneg_output(net: Network, name: str, depth: int = 0) -> bool:
    """Whether layer ``name``'s output is provably non-negative.

    The padded-pool lowering stages planes into a zero-initialised
    scratch block, so MAX pooling sees 0.0 where the reference model
    fills -inf — equal results exactly when every real input element is
    >= 0 (and every window covers at least one real element, which
    ``pad < window`` guarantees).  This walks producers conservatively:
    anything unproven returns False.
    """
    if depth > 128:  # paranoia guard; Network DAGs are acyclic
        return False
    node = net[name]
    if node.kind is LayerKind.INPUT:
        return False
    spec = node.spec
    if isinstance(spec, (ConvSpec, FCSpec)):
        return spec.activation in _NONNEG_ACTS
    if isinstance(spec, (PoolSpec, GlobalPoolSpec, SliceSpec)):
        # Max/avg over non-negatives (or a feature slice of them) stays
        # non-negative.
        return _nonneg_output(net, node.input_names[0], depth + 1)
    if isinstance(spec, ActivationSpec):
        return spec.activation in _NONNEG_ACTS
    if isinstance(spec, EltwiseAddSpec):
        if spec.activation in _NONNEG_ACTS:
            return True
        return all(
            _nonneg_output(net, s, depth + 1) for s in node.input_names
        )
    if isinstance(spec, (ConcatSpec, EltwiseMulSpec)):
        return all(
            _nonneg_output(net, s, depth + 1) for s in node.input_names
        )
    return False


def check_dag_scope(net: Network) -> None:
    """DAG calibrated-tracker lowering scope."""
    for node in net:
        spec = node.spec
        if isinstance(spec, PoolSpec) and spec.pad:
            if spec.pad >= spec.window:
                raise MappingError(
                    f"{node.name}: pool padding must be smaller than "
                    "the window (every window must cover a real element)"
                )
            if spec.mode is PoolMode.MAX and not _nonneg_output(
                net, node.input_names[0]
            ):
                raise MappingError(
                    f"{node.name}: padded MAX pooling needs a provably "
                    "non-negative input (the lowering zero-fills the "
                    "borders, which only equals the reference's -inf "
                    "fill for non-negative inputs)"
                )
        elif isinstance(spec, EltwiseMulSpec):
            if len(node.input_names) != 2:
                raise MappingError(
                    f"{node.name}: element-wise products take exactly "
                    "two operands"
                )
        elif not isinstance(spec, (
            ConvSpec, FCSpec, PoolSpec, GlobalPoolSpec, ConcatSpec,
            SliceSpec, EltwiseAddSpec, ActivationSpec,
        )) and node.kind is not LayerKind.INPUT:
            raise MappingError(
                f"DAG codegen cannot compile layer kind {node.kind}"
            )


def check_training_scope(net: Network) -> None:
    """Training (FP+BP+WG) lowering scope."""
    nodes = list(net)
    last = nodes[-1]
    if not isinstance(last.spec, FCSpec) or (
        last.spec.activation is not Activation.SOFTMAX
    ):
        raise MappingError(
            "training compilation needs a softmax FC head"
        )
    for node in nodes:
        spec = node.spec
        if isinstance(spec, ConvSpec):
            if spec.groups != 1 or spec.connection_table is not None:
                raise MappingError(
                    f"{node.name}: BP compilation supports plain "
                    "ungrouped convolutions"
                )
            if spec.stride > 1:
                in_shape = node.input_shapes[0]
                for extent in (in_shape.height, in_shape.width):
                    if (extent + 2 * spec.pad - spec.kernel) % spec.stride:
                        raise MappingError(
                            f"{node.name}: strided BP needs the window "
                            "sweep to divide the input exactly"
                        )
        elif isinstance(spec, PoolSpec):
            if spec.pad or spec.effective_stride != spec.window:
                raise MappingError(
                    f"{node.name}: BP compilation supports unpadded "
                    "pooling with stride == window"
                )
            if spec.mode is PoolMode.MAX:
                in_shape = node.input_shapes[0]
                if (in_shape.height % spec.window
                        or in_shape.width % spec.window):
                    raise MappingError(
                        f"{node.name}: max-pool BP needs the window "
                        "to tile the input exactly (the routing "
                        "reads the covered region contiguously)"
                    )
        elif isinstance(spec, GlobalPoolSpec):
            if spec.mode is not PoolMode.AVG:
                raise MappingError(
                    f"{node.name}: BP needs average global pooling"
                )


_CHECKS = {
    "forward": (check_forward_scope,),
    "dag": (check_dag_scope,),
    "training": (check_forward_scope, check_training_scope),
}


class LegalizePass(Pass):
    """Reject out-of-scope networks before placement/emission."""

    name = "legalize"

    def __init__(self, scope: str) -> None:
        if scope not in _CHECKS:
            raise MappingError(
                f"unknown legalization scope {scope!r} "
                f"(choose from: {', '.join(sorted(_CHECKS))})"
            )
        self.scope = scope

    def run(self, ir: MappingIR, ctx: PassContext,
            stats: PassStats) -> MappingIR:
        for check in _CHECKS[self.scope]:
            check(ctx.net)
        stats.notes["scope"] = self.scope
        return ir
