"""Fault-aware remapping: column reallocation as an IR rewrite pass.

The placement primitives live here — greedy span packing over surviving
columns, the fault-aware STEP3a footprint, the FcLayer budget and the
concrete column assignment with home re-election —  and
:func:`~repro.compiler.mapping.map_network` imports them for its fault
path.  :class:`FaultRemapPass` expresses the whole remap at the IR
level: given a healthy unit-level IR, it recomputes the placement over
the surviving columns and rewrites the unit plans, op placements and
footprint in place, recording what moved in ``ir.meta["fault_remap"]``.
A compilation without a fault mask passes through untouched.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Sequence, Tuple

from repro.arch.chip import ChipConfig
from repro.arch.node import NodeConfig
from repro.compiler.ir import MappingIR
from repro.compiler.passes.manager import Pass, PassContext, PassStats
from repro.dnn.network import Network
from repro.errors import UnmappableError
from repro.faults.model import FaultMask
from repro.telemetry.core import get_telemetry


def healthy_conv_columns(
    node: NodeConfig, faults: FaultMask
) -> List[List[int]]:
    """Per global ConvLayer chip: surviving global column ids, in order."""
    cols = node.cluster.conv_chip.cols
    healthy: List[List[int]] = []
    for chip in range(node.conv_chip_count):
        ids = range(chip * cols, (chip + 1) * cols)
        healthy.append(
            [c for c in ids if c not in faults.dead_conv_columns]
        )
    return healthy


def greedy_spans(
    capacities: Sequence[int], group: int, need: int
) -> List[Tuple[List[int], int]]:
    """Greedily pack contiguous spans with capacity >= ``need``.

    Spans never cross a ``group`` boundary (a copy cannot straddle two
    wheels, or two non-adjacent cluster groups).  Returns
    ``(member indices, capacity)`` per span.  With no dead columns this
    reduces exactly to the uniform ``group // ceil(need / cap)`` layout
    of the fault-free mapper.
    """
    spans: List[Tuple[List[int], int]] = []
    for start in range(0, len(capacities), group):
        members: List[int] = []
        cap = 0
        for i in range(start, min(start + group, len(capacities))):
            members.append(i)
            cap += capacities[i]
            if cap >= need:
                spans.append((members, cap))
                members, cap = [], 0
    return spans


def conv_fault_footprint(
    net: Network,
    node: NodeConfig,
    min_cols: int,
    faults: FaultMask,
) -> Tuple[int, int, int, int, List[int], int]:
    """Fault-aware STEP3a: place network copies over surviving columns.

    Returns ``(chips_per_copy, clusters_per_copy, copies, column_budget,
    assign_ids, remapped)`` where ``assign_ids`` are the healthy global
    column ids of the first placement (the copy every unit's concrete
    assignment is expressed in) and ``remapped`` counts the dead columns
    routed around inside the chips the placements actually use.
    """
    wheel = node.cluster.conv_chip_count
    healthy = healthy_conv_columns(node, faults)
    caps = [len(h) for h in healthy]
    tel = get_telemetry()

    spans = greedy_spans(caps, wheel, min_cols)
    if spans:
        clusters_per_copy = 1
        copies = len(spans)
        chips_per_copy = max(len(chips) for chips, _ in spans)
        budget = min(cap for _, cap in spans)
        used_chips = [i for chips, _ in spans for i in chips]
        first_chips = spans[0][0]
    else:
        cluster_caps = [
            sum(caps[c * wheel:(c + 1) * wheel])
            for c in range(node.cluster_count)
        ]
        cspans = greedy_spans(cluster_caps, node.cluster_count, min_cols)
        if not cspans:
            alive = sum(caps)
            raise UnmappableError(
                f"{net.name} needs {min_cols} ConvLayer columns in one "
                f"copy but only {alive} of {node.total_conv_columns} "
                f"columns survive "
                f"{len(faults.dead_conv_columns)} tile-dead fault(s): "
                f"capacity exhausted"
            )
        clusters_per_copy = max(len(cl) for cl, _ in cspans)
        chips_per_copy = clusters_per_copy * wheel
        copies = len(cspans)
        budget = min(cap for _, cap in cspans)
        used_chips = [
            chip
            for clusters, _ in cspans
            for cl in clusters
            for chip in range(cl * wheel, (cl + 1) * wheel)
        ]
        first_chips = [
            chip
            for cl in cspans[0][0]
            for chip in range(cl * wheel, (cl + 1) * wheel)
        ]

    cols = node.cluster.conv_chip.cols
    remapped = sum(cols - caps[chip] for chip in used_chips)
    assign_ids = [c for chip in first_chips for c in healthy[chip]]
    if tel.enabled and remapped:
        tel.instant(
            "fault.remap", "faults", ("faults", "remap"), 0,
            network=net.name, dead_columns=remapped,
            copies=copies, chips_per_copy=chips_per_copy,
            column_budget=budget,
        )
        tel.count("faults", "remapped_columns", remapped)
    return (chips_per_copy, clusters_per_copy, copies, budget,
            assign_ids, remapped)


def fc_fault_budget(
    net: Network,
    node: NodeConfig,
    fc_chip: ChipConfig,
    fc_units: List[Any],
    faults: FaultMask,
) -> Tuple[int, List[int]]:
    """Surviving FcLayer column budget (the worst hub bounds everyone:
    model parallelism shards the same allocation across every hub)."""
    from repro.compiler.mapping import _unit_state_bytes

    cols = fc_chip.cols
    dtype = node.dtype_bytes
    healthy = [
        [
            c * cols + k
            for k in range(cols)
            if (c * cols + k) not in faults.dead_fc_columns
        ]
        for c in range(node.cluster_count)
    ]
    worst = min(healthy, key=len)
    need = sum(
        max(1, math.ceil(
            _unit_state_bytes(u, dtype, fc_chip.comp_tile.lanes)
            / fc_chip.mem_capacity_per_column
        ))
        for u in fc_units
    )
    if need > len(worst):
        raise UnmappableError(
            f"{net.name} needs {need} FcLayer columns per hub but only "
            f"{len(worst)} of {cols} survive on the worst hub after "
            f"{len(faults.dead_fc_columns)} tile-dead fault(s): "
            f"capacity exhausted"
        )
    return len(worst), list(worst)


def assign_columns(
    allocs: Dict[str, Any],
    healthy_ids: Sequence[int],
    speed_of: Callable[[int], float],
    network: str,
) -> None:
    """Give every unit its concrete healthy columns, re-elect its home
    column, and fold tile-slow faults into a per-unit derate."""
    if not allocs or not healthy_ids:
        return
    tel = get_telemetry()
    pos = 0
    for index, alloc in enumerate(allocs.values()):
        span = tuple(healthy_ids[pos:pos + alloc.columns])
        pos += alloc.columns
        alloc.assigned_columns = span
        if not span:
            continue
        alloc.home_column = span[0]
        alloc.derate = min(speed_of(c) for c in span)
        if tel.enabled:
            tel.instant(
                "fault.assign", "faults", ("faults", "assign"), index,
                network=network, unit=alloc.unit,
                home_column=alloc.home_column,
                columns=len(span), derate=alloc.derate,
            )


class FaultRemapPass(Pass):
    """Rewrite a healthy unit-level IR into its fault-remapped placement.

    With no fault mask in the context the pass is the identity.  With a
    mask it recomputes the mapping over the surviving columns (the same
    STEP1-6 flow, using the fault-aware footprint and budget above) and
    replaces the IR's unit plans, ops, edges, schedule and footprint
    with the degraded placement, annotating ``ir.meta["fault_remap"]``.
    Raises :class:`~repro.errors.UnmappableError` when the surviving
    capacity genuinely cannot host the network.
    """

    name = "fault-remap"

    def __init__(
        self,
        min_column_gain: float = None,  # type: ignore[assignment]
        group_key: Callable[[str], str] = None,  # type: ignore[assignment]
    ) -> None:
        self.min_column_gain = min_column_gain
        self.group_key = group_key

    def run(self, ir: MappingIR, ctx: PassContext,
            stats: PassStats) -> MappingIR:
        faults = ctx.faults
        if faults is None:
            return ir
        from repro.compiler.ir import build_mapping_ir
        from repro.compiler.mapping import (
            MIN_COLUMN_GAIN,
            default_group_key,
            map_network,
        )

        gain = (self.min_column_gain if self.min_column_gain is not None
                else MIN_COLUMN_GAIN)
        key = self.group_key or default_group_key
        remapped = map_network(
            ctx.net, ctx.node, min_column_gain=gain, group_key=key,
            faults=faults,
        )
        new_ir = build_mapping_ir(ctx.net, ctx.node.name, remapped)
        moved = [
            unit
            for unit, plan in new_ir.units.items()
            if plan.assigned_columns
            and plan.home_column != ir.units[unit].home_column
        ]
        ir.ops = new_ir.ops
        ir.edges = new_ir.edges
        ir.units = new_ir.units
        ir.schedule = new_ir.schedule
        ir.footprint = new_ir.footprint
        ir.meta["fault_remap"] = {
            "fault_count": faults.fault_count,
            "dead_conv_columns": len(faults.dead_conv_columns),
            "dead_fc_columns": len(faults.dead_fc_columns),
            "remapped_columns": remapped.remapped_columns,
            "moved_units": moved,
            "homes": {
                unit: plan.home_column
                for unit, plan in new_ir.units.items()
            },
        }
        ctx.mapping = remapped
        stats.notes["remapped_columns"] = remapped.remapped_columns
        stats.notes["moved_units"] = len(moved)
        return ir
