"""Place-check: the IR verifier as an explicit pipeline stage.

The :class:`~repro.compiler.passes.manager.PassManager` already runs
the verifier after every pass; this pass makes the placement gate an
explicit, orderable stage (and the one the ``ir-verify`` CI job and the
``repro lower`` verb report on), recording the diagnostic count in its
stats.  Malformed placements raise
:class:`~repro.errors.IRVerificationError` with the typed findings.
"""

from __future__ import annotations

from repro.compiler.ir import MappingIR
from repro.compiler.passes.manager import Pass, PassContext, PassStats
from repro.compiler.verifier import assert_ir_verified, verify_ir


class PlaceCheckPass(Pass):
    """Verify op placements and dataflow edges; raise on findings."""

    name = "place-check"

    def run(self, ir: MappingIR, ctx: PassContext,
            stats: PassStats) -> MappingIR:
        shape = ctx.machine_shape()
        issues = verify_ir(ir, shape)
        stats.notes["diagnostics"] = len(issues)
        if issues:
            assert_ir_verified(ir, shape)  # raises with the findings
        return ir
