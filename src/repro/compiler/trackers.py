"""Static access analysis and tracker calibration.

The MEMTRACK scheme works because "the data access sequence to each
location in memory can be ascertained at compile time" (Sec 3.2.4).
This module makes that claim executable: :func:`instruction_accesses`
enumerates the gated reads and writes of any data instruction — the
single source of truth shared with the engine's gating logic — and
:func:`calibrate_trackers` scans a set of compiled programs, counts the
accesses landing in every armed range, and rewrites each MEMTRACK /
DMA_MEMTRACK with the exact update/read counts.

Compilers can therefore emit trackers with placeholder counts and let
the calibration pass finish the job; a miscounted tracker becomes
impossible by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ProgramError
from repro.isa.instructions import Instruction, Opcode, make
from repro.isa.program import Program
from repro.sim.machine import Access, instruction_accesses

@dataclass
class _ArmedRange:
    """One tracker instruction found during the scan."""

    program: Program
    pc: int
    port: int
    addr: int
    size: int
    updates: int = 0
    reads: int = 0

    def overlaps(self, port: int, addr: int, count: int) -> bool:
        return (
            port == self.port
            and addr < self.addr + self.size
            and self.addr < addr + count
        )


def calibrate_trackers(
    programs: Sequence[Program],
    external_updates: Optional[Dict[Tuple[int, int], int]] = None,
    external_reads: Optional[Dict[Tuple[int, int], int]] = None,
) -> int:
    """Rewrite every MEMTRACK / DMA_MEMTRACK with statically counted
    accesses.

    ``external_updates`` / ``external_reads`` add host-side accesses the
    programs cannot see (e.g. the injected loss gradient), keyed by
    ``(port, addr)`` of the armed range.

    Returns the number of trackers calibrated.  Raises
    :class:`ProgramError` if two armed ranges overlap (the hardware
    cannot disambiguate them) or an armed range receives no accesses at
    all (a dead tracker is a compiler bug).
    """
    external_updates = external_updates or {}
    external_reads = external_reads or {}

    armed: List[_ArmedRange] = []
    for program in programs:
        for pc, instr in enumerate(program):
            if instr.opcode in (Opcode.MEMTRACK, Opcode.DMA_MEMTRACK):
                o = instr.named_operands()
                port = (
                    o["target"]
                    if instr.opcode is Opcode.DMA_MEMTRACK
                    else o["port"]
                )
                armed.append(_ArmedRange(
                    program=program, pc=pc, port=port,
                    addr=o["addr"], size=o["size"],
                ))

    for i, a in enumerate(armed):
        for b in armed[i + 1:]:
            if a.overlaps(b.port, b.addr, b.size):
                raise ProgramError(
                    f"overlapping trackers: {a.program.tile}@{a.pc} and "
                    f"{b.program.tile}@{b.pc} "
                    f"(port {a.port}, [{a.addr}, {a.addr + a.size}) vs "
                    f"[{b.addr}, {b.addr + b.size}))"
                )

    # Count every planned access against the armed ranges.
    for program in programs:
        for instr in program:
            reads, writes = instruction_accesses(instr)
            for port, addr, count in reads:
                for tracked in armed:
                    if tracked.overlaps(port, addr, count):
                        tracked.reads += 1
            for port, addr, count in writes:
                for tracked in armed:
                    if tracked.overlaps(port, addr, count):
                        tracked.updates += 1

    for tracked in armed:
        key = (tracked.port, tracked.addr)
        tracked.updates += external_updates.get(key, 0)
        tracked.reads += external_reads.get(key, 0)
        if tracked.updates == 0:
            raise ProgramError(
                f"dead tracker (never written): {tracked.program.tile}"
                f"@{tracked.pc} port {tracked.port} addr {tracked.addr}"
            )
        old = tracked.program[tracked.pc]
        o = old.named_operands()
        o["num_updates"] = tracked.updates
        o["num_reads"] = tracked.reads
        tracked.program.instructions[tracked.pc] = make(
            old.opcode, comment=old.comment, **o
        )
    return len(armed)


def audit_trackers(
    programs: Sequence[Program],
    external_updates: Optional[Dict[Tuple[int, int], int]] = None,
    external_reads: Optional[Dict[Tuple[int, int], int]] = None,
) -> Dict[str, int]:
    """Count declared vs statically-observed accesses without rewriting.

    Returns a summary; used in tests to cross-check hand-emitted
    tracker counts against the static analysis.
    """
    import copy

    clones = [copy.deepcopy(p) for p in programs]
    declared = [
        (instr.operand("num_updates"), instr.operand("num_reads"))
        for p in programs
        for instr in p
        if instr.opcode in (Opcode.MEMTRACK, Opcode.DMA_MEMTRACK)
    ]
    calibrate_trackers(clones, external_updates, external_reads)
    observed = [
        (instr.operand("num_updates"), instr.operand("num_reads"))
        for p in clones
        for instr in p
        if instr.opcode in (Opcode.MEMTRACK, Opcode.DMA_MEMTRACK)
    ]
    mismatches = sum(1 for d, o in zip(declared, observed) if d != o)
    return {
        "trackers": len(declared),
        "mismatches": mismatches,
    }
