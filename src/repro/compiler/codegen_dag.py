"""DAG-capable forward code generation: branches on the engine.

The sequential compiler (:mod:`repro.compiler.codegen`) covers chains;
this one compiles arbitrary DAGs — inception-style branches joined by
concatenation, residual element-wise adds, LSTM-style gates, slices —
into per-tile ISA programs.  It leans on two pieces the sequential
compiler predates:

* engine DMA between *any* two tiles (a producer many columns away is a
  multi-hop point-to-point transfer, charged per hop), and
* the tracker-calibration pass (:mod:`repro.compiler.trackers`): every
  MEMTRACK is emitted with placeholder counts and the static access
  analysis fills in the exact update/read numbers afterwards, so fan-out
  to multiple consumers never needs hand bookkeeping.

Scope: forward propagation; unpadded pooling; element-wise products of
exactly two operands.  Convolutions may be grouped (AlexNet's two-GPU
split) or carry a connection table (LeNet-5's C3): each output feature
convolves exactly the input features it connects to — the engine-level
realisation of Sec 2.2's "connection table denoting which input and
output features are connected".
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.arch.chip import ChipConfig
from repro.arch.presets import conv_chip
from repro.compiler.codegen import CompiledForward, ForwardCompiler, _Preload
from repro.compiler.partition import FeatureHome, partition_graph
from repro.compiler.trackers import calibrate_trackers
from repro.dnn.layers import (
    Activation,
    ActivationSpec,
    ConcatSpec,
    ConvSpec,
    EltwiseAddSpec,
    EltwiseMulSpec,
    FCSpec,
    GlobalPoolSpec,
    LayerKind,
    PoolSpec,
    SliceSpec,
)
from repro.dnn.network import LayerNode, Network
from repro.errors import MappingError
from repro.functional.reference import ReferenceModel
from repro.isa.instructions import Instruction, Opcode, make
from repro.isa.program import Program
from repro.sim.engine import ACT_CODES, SAMP_CODES
from repro.sim.machine import pack_shape


class DagForwardCompiler:
    """Compiles the forward pass of an arbitrary network DAG."""

    def __init__(
        self,
        net: Network,
        model: ReferenceModel,
        chip: Optional[ChipConfig] = None,
        rows: int = 2,
    ) -> None:
        if model.net is not net:
            raise MappingError("model must be built from the same network")
        self.net = net
        self.model = model
        self.chip = chip or conv_chip()
        self.rows = rows
        self.partition = partition_graph(
            net, rows, self.chip.mem_tile.capacity_bytes // 4
        )
        self.preloads: List[_Preload] = []
        self._validate_scope()

    def _validate_scope(self) -> None:
        for node in self.net:
            spec = node.spec
            if isinstance(spec, PoolSpec) and spec.pad:
                raise MappingError(
                    f"{node.name}: DAG codegen supports unpadded pooling"
                )
            elif isinstance(spec, EltwiseMulSpec):
                if len(node.input_names) != 2:
                    raise MappingError(
                        f"{node.name}: element-wise products take exactly "
                        "two operands"
                    )

    # ------------------------------------------------------------------
    def compile(self) -> CompiledForward:
        programs: List[Program] = []
        for node in self.net:
            if node.kind is LayerKind.INPUT:
                continue
            programs.extend(self._compile_node(node))
        calibrate_trackers(programs)
        ForwardCompiler._align_prologues(programs)
        for program in programs:
            program.validate()
        compiled = CompiledForward(
            network=self.net,
            chip=self.chip,
            rows=self.rows,
            partition=self.partition,
            programs=programs,
            preloads=self.preloads,
            output_blocks=self.partition.blocks_of(self.net.output.name),
        )
        compiled.verify()
        return compiled

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def _port(self, col: int, row: int) -> int:
        return col * self.rows + row

    def _track(
        self, prog: Program, port: int, addr: int, size: int, what: str
    ) -> None:
        """Arm a placeholder tracker; calibration fills the counts."""
        prog.append(make(
            Opcode.MEMTRACK, addr=addr, port=port, size=size,
            num_updates=0, num_reads=0, comment=f"track {what}",
        ))

    def _copy_features(
        self,
        body: List[Instruction],
        src: LayerNode,
        feature_lo: int,
        feature_hi: int,
        dst_port: int,
        dst_addr: int,
        accum: int = 0,
        src_feature_offset: int = 0,
    ) -> None:
        """DMA features [feature_lo, feature_hi) of ``src`` (offset by
        ``src_feature_offset`` in the source's own numbering) into a
        contiguous destination, one DMA per overlapping source block."""
        src_col = self.partition.column_of[src.name]
        fwords = src.output_shape.feature_size
        for block in self.partition.blocks_of(src.name):
            lo = max(feature_lo + src_feature_offset, block.first_feature)
            hi = min(
                feature_hi + src_feature_offset,
                block.first_feature + block.feature_count,
            )
            if lo >= hi:
                continue
            body.append(make(
                Opcode.DMALOAD,
                src_addr=block.feature_address(lo),
                src_port=self._port(src_col, block.row),
                dst_addr=dst_addr
                + (lo - src_feature_offset - feature_lo) * fwords,
                dst_port=dst_port,
                size=(hi - lo) * fwords,
                is_accum=accum,
                comment=f"copy {src.name}[{lo}:{hi}]",
            ))

    def _stage_all(
        self,
        prog: Program,
        body: List[Instruction],
        src: LayerNode,
        col: int,
        row: int,
        tag: str,
    ) -> int:
        """Stage every feature of ``src`` into tile (col-1, row)."""
        total = src.output_shape.elements
        base = self.partition.allocator(col - 1, row).alloc(
            f"{tag}/stage@r{row}", total
        )
        port = self._port(col - 1, row)
        self._track(prog, port, base, total, f"staged {src.name}")
        self._copy_features(body, src, 0, src.output_shape.count, port, base)
        return base

    # ------------------------------------------------------------------
    def _compile_node(self, node: LayerNode) -> List[Program]:
        spec = node.spec
        if isinstance(spec, ConvSpec):
            return self._compile_conv(node)
        if isinstance(spec, FCSpec):
            return self._compile_fc(node)
        if isinstance(spec, (PoolSpec, GlobalPoolSpec)):
            return self._compile_pool(node)
        if isinstance(spec, ConcatSpec):
            return self._compile_concat(node)
        if isinstance(spec, SliceSpec):
            return self._compile_slice(node)
        if isinstance(spec, (EltwiseAddSpec, EltwiseMulSpec,
                             ActivationSpec)):
            return self._compile_eltwise(node)
        raise MappingError(
            f"DAG codegen cannot compile layer kind {node.kind}"
        )

    # ------------------------------------------------------------------
    def _compile_conv(self, node: LayerNode) -> List[Program]:
        spec = node.spec
        assert isinstance(spec, ConvSpec)
        src = self.net[node.input_names[0]]
        col = self.partition.column_of[node.name]
        in_shape = node.input_shapes[0]
        out_size = node.output_shape.feature_size
        k = spec.kernel
        weights = self.model.state[node.name].weights
        bias = self.model.state[node.name].bias
        programs = []
        for home in self.partition.blocks_of(node.name):
            row = home.row
            left = self._port(col - 1, row)
            right = self._port(col, row)
            prog = Program(tile=f"{node.name}@c{col}r{row}")
            body: List[Instruction] = []
            self._track(
                prog, right, home.address,
                home.feature_count * home.feature_words,
                f"{node.name} outputs",
            )
            stage_base = self._stage_all(prog, body, src, col, row,
                                         node.name)
            alloc = self.partition.allocator(col, row)
            pre_base = alloc.alloc(
                f"{node.name}/pre@r{row}", home.feature_count * out_size
            )
            bias_base = alloc.alloc(
                f"{node.name}/bias@r{row}", home.feature_count * out_size
            )
            self.preloads.append(_Preload(
                col, row, bias_base,
                np.repeat(
                    bias[home.first_feature:
                         home.first_feature + home.feature_count],
                    out_size,
                ),
            ))
            self._track(
                prog, right, pre_base, home.feature_count * out_size,
                f"{node.name} partial sums",
            )
            # Each output feature's input sources as (global input
            # index, kernel plane index): tables store kernels densely
            # at the *global* input index (masked-dense layout), groups
            # at the *within-group* index.
            def sources_of(feature: int):
                if spec.connection_table is not None:
                    return [
                        (g, g) for g in spec.connection_table[feature]
                    ]
                per_out = node.output_shape.count // spec.groups
                in_per = in_shape.count // spec.groups
                group = feature // per_out
                return [
                    (group * in_per + local, local)
                    for local in range(in_per)
                ]

            kwords = k * k
            kernel_slots = sum(
                len(sources_of(home.first_feature + f_local))
                for f_local in range(home.feature_count)
            )
            kern_base = self.partition.allocator(col - 1, row).alloc(
                f"{node.name}/kernels@r{row}", kernel_slots * kwords
            )
            # Pack kernels ragged: for output f, one k*k kernel per
            # connected source, in source order.  Dense weights store
            # (out, in/groups, k, k): source index within the group (or
            # within the table row) selects the kernel plane.
            packed = []
            for f_local in range(home.feature_count):
                feature = home.first_feature + f_local
                for _, plane in sources_of(feature):
                    packed.append(weights[feature, plane])
            self.preloads.append(_Preload(
                col - 1, row, kern_base, np.stack(packed)
            ))
            fwords = in_shape.feature_size
            slot = 0
            for f_local in range(home.feature_count):
                feature = home.first_feature + f_local
                for i, (g, _) in enumerate(sources_of(feature)):
                    body.append(make(
                        Opcode.NDCONV,
                        in_addr=stage_base + g * fwords,
                        in_port=left,
                        in_size=pack_shape(in_shape.height, in_shape.width),
                        kernel_addr=kern_base + slot * kwords,
                        kernel_size=pack_shape(k, k),
                        stride=spec.stride,
                        pad=spec.pad,
                        out_addr=pre_base + f_local * out_size,
                        out_port=right,
                        is_accum=int(i > 0),
                    ))
                    slot += 1
                body.append(make(
                    Opcode.NDACCUM,
                    src_addr=bias_base + f_local * out_size,
                    port=right,
                    size=out_size,
                    dst_addr=pre_base + f_local * out_size,
                ))
            body.append(make(
                Opcode.NDACTFN,
                fn_type=ACT_CODES[spec.activation],
                in_addr=pre_base,
                port=right,
                size=home.feature_count * out_size,
                out_addr=home.address,
                out_port=right,
            ))
            prog.extend(body)
            prog.append(make(Opcode.HALT))
            programs.append(prog)
        return programs

    # ------------------------------------------------------------------
    def _compile_fc(self, node: LayerNode) -> List[Program]:
        spec = node.spec
        assert isinstance(spec, FCSpec)
        src = self.net[node.input_names[0]]
        col = self.partition.column_of[node.name]
        in_elems = node.input_shapes[0].elements
        weights = self.model.state[node.name].weights
        bias = self.model.state[node.name].bias
        programs = []
        for home in self.partition.blocks_of(node.name):
            row = home.row
            left = self._port(col - 1, row)
            right = self._port(col, row)
            prog = Program(tile=f"{node.name}@c{col}r{row}")
            body: List[Instruction] = []
            self._track(
                prog, right, home.address, home.feature_count,
                f"{node.name} outputs",
            )
            stage_base = self._stage_all(prog, body, src, col, row,
                                         node.name)
            alloc = self.partition.allocator(col, row)
            pre_base = alloc.alloc(
                f"{node.name}/pre@r{row}", home.feature_count
            )
            bias_base = alloc.alloc(
                f"{node.name}/bias@r{row}", home.feature_count
            )
            self.preloads.append(_Preload(
                col, row, bias_base,
                bias[home.first_feature:
                     home.first_feature + home.feature_count],
            ))
            self._track(
                prog, right, pre_base, home.feature_count,
                f"{node.name} pre-activation",
            )
            w_base = self.partition.allocator(col - 1, row).alloc(
                f"{node.name}/weights@r{row}",
                home.feature_count * in_elems,
            )
            self.preloads.append(_Preload(
                col - 1, row, w_base,
                weights[home.first_feature:
                        home.first_feature + home.feature_count],
            ))
            body.append(make(
                Opcode.MATMUL,
                in1_addr=stage_base,
                in1_port=left,
                in1_size=pack_shape(1, in_elems),
                in2_addr=w_base,
                in2_port=left,
                in2_size=pack_shape(home.feature_count, in_elems),
                out_addr=pre_base,
                out_port=right,
                is_accum=0,
            ))
            body.append(make(
                Opcode.NDACCUM,
                src_addr=bias_base,
                port=right,
                size=home.feature_count,
                dst_addr=pre_base,
            ))
            body.append(make(
                Opcode.NDACTFN,
                fn_type=ACT_CODES[spec.activation],
                in_addr=pre_base,
                port=right,
                size=home.feature_count,
                out_addr=home.address,
                out_port=right,
            ))
            prog.extend(body)
            prog.append(make(Opcode.HALT))
            programs.append(prog)
        return programs

    # ------------------------------------------------------------------
    def _compile_pool(self, node: LayerNode) -> List[Program]:
        spec = node.spec
        src = self.net[node.input_names[0]]
        src_col = self.partition.column_of[src.name]
        col = self.partition.column_of[node.name]
        in_shape = node.input_shapes[0]
        if isinstance(spec, PoolSpec):
            window, stride, mode = (
                spec.window, spec.effective_stride, spec.mode
            )
        else:
            assert isinstance(spec, GlobalPoolSpec)
            window = stride = in_shape.height
            mode = spec.mode
        src_blocks = self.partition.blocks_of(src.name)

        def src_location(feature: int) -> Tuple[int, int]:
            for block in src_blocks:
                if (block.first_feature <= feature
                        < block.first_feature + block.feature_count):
                    return (
                        self._port(src_col, block.row),
                        block.feature_address(feature),
                    )
            raise MappingError(f"feature {feature} unplaced in {src.name}")

        programs = []
        for home in self.partition.blocks_of(node.name):
            row = home.row
            right = self._port(col, row)
            prog = Program(tile=f"{node.name}@c{col}r{row}")
            self._track(
                prog, right, home.address,
                home.feature_count * home.feature_words,
                f"{node.name} outputs",
            )
            for f_local in range(home.feature_count):
                feature = home.first_feature + f_local
                src_port, src_addr = src_location(feature)
                prog.append(make(
                    Opcode.NDSUBSAMP,
                    samp_type=SAMP_CODES[mode],
                    in_addr=src_addr,
                    port=src_port,
                    in_size=pack_shape(in_shape.height, in_shape.width),
                    window=window,
                    stride=stride,
                    out_addr=home.address + f_local * home.feature_words,
                    out_port=right,
                ))
            prog.append(make(Opcode.HALT))
            programs.append(prog)
        return programs

    # ------------------------------------------------------------------
    def _compile_concat(self, node: LayerNode) -> List[Program]:
        col = self.partition.column_of[node.name]
        sources = [self.net[s] for s in node.input_names]
        offsets = []
        offset = 0
        for src in sources:
            offsets.append(offset)
            offset += src.output_shape.count
        programs = []
        for home in self.partition.blocks_of(node.name):
            row = home.row
            right = self._port(col, row)
            prog = Program(tile=f"{node.name}@c{col}r{row}")
            body: List[Instruction] = []
            self._track(
                prog, right, home.address,
                home.feature_count * home.feature_words,
                f"{node.name} outputs",
            )
            lo, hi = home.first_feature, (
                home.first_feature + home.feature_count
            )
            for src, src_offset in zip(sources, offsets):
                s_lo = max(lo, src_offset)
                s_hi = min(hi, src_offset + src.output_shape.count)
                if s_lo >= s_hi:
                    continue
                self._copy_features(
                    body, src,
                    feature_lo=s_lo - src_offset,
                    feature_hi=s_hi - src_offset,
                    dst_port=right,
                    dst_addr=home.address
                    + (s_lo - lo) * home.feature_words,
                )
            prog.extend(body)
            prog.append(make(Opcode.HALT))
            programs.append(prog)
        return programs

    # ------------------------------------------------------------------
    def _compile_slice(self, node: LayerNode) -> List[Program]:
        spec = node.spec
        assert isinstance(spec, SliceSpec)
        col = self.partition.column_of[node.name]
        src = self.net[node.input_names[0]]
        programs = []
        for home in self.partition.blocks_of(node.name):
            row = home.row
            right = self._port(col, row)
            prog = Program(tile=f"{node.name}@c{col}r{row}")
            body: List[Instruction] = []
            self._track(
                prog, right, home.address,
                home.feature_count * home.feature_words,
                f"{node.name} outputs",
            )
            self._copy_features(
                body, src,
                feature_lo=home.first_feature,
                feature_hi=home.first_feature + home.feature_count,
                dst_port=right,
                dst_addr=home.address,
                src_feature_offset=spec.start,
            )
            prog.extend(body)
            prog.append(make(Opcode.HALT))
            programs.append(prog)
        return programs

    # ------------------------------------------------------------------
    def _compile_eltwise(self, node: LayerNode) -> List[Program]:
        spec = node.spec
        col = self.partition.column_of[node.name]
        sources = [self.net[s] for s in node.input_names]
        programs = []
        for home in self.partition.blocks_of(node.name):
            row = home.row
            right = self._port(col, row)
            words = home.feature_count * home.feature_words
            prog = Program(tile=f"{node.name}@c{col}r{row}")
            body: List[Instruction] = []
            self._track(
                prog, right, home.address, words, f"{node.name} outputs"
            )
            alloc = self.partition.allocator(col, row)
            lo = home.first_feature
            hi = home.first_feature + home.feature_count

            if isinstance(spec, EltwiseMulSpec):
                acc1 = alloc.alloc(f"{node.name}/opA@r{row}", words)
                acc2 = alloc.alloc(f"{node.name}/opB@r{row}", words)
                self._track(prog, right, acc1, words, "operand A")
                self._track(prog, right, acc2, words, "operand B")
                self._copy_features(body, sources[0], lo, hi, right, acc1)
                self._copy_features(body, sources[1], lo, hi, right, acc2)
                body.append(make(
                    Opcode.VECMUL,
                    in1_addr=acc1, in2_addr=acc2, port=right,
                    size=words, out_addr=home.address,
                ))
            else:
                # Element-wise sum (possibly >2 operands) or standalone
                # activation (one operand): accumulate then activate.
                acc = alloc.alloc(f"{node.name}/acc@r{row}", words)
                self._track(prog, right, acc, words, "accumulator")
                for i, src in enumerate(sources):
                    self._copy_features(
                        body, src, lo, hi, right, acc, accum=int(i > 0)
                    )
                fn = spec.activation  # type: ignore[attr-defined]
                body.append(make(
                    Opcode.NDACTFN,
                    fn_type=ACT_CODES[fn],
                    in_addr=acc,
                    port=right,
                    size=words,
                    out_addr=home.address,
                    out_port=right,
                ))
            prog.extend(body)
            prog.append(make(Opcode.HALT))
            programs.append(prog)
        return programs


def compile_dag_forward(
    net: Network,
    model: ReferenceModel,
    chip: Optional[ChipConfig] = None,
    rows: int = 2,
) -> CompiledForward:
    """Compile the forward pass of an arbitrary network DAG."""
    return DagForwardCompiler(net, model, chip, rows).compile()
