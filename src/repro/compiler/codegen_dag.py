"""DAG-capable forward code generation: branches on the engine.

The sequential compiler (:mod:`repro.compiler.codegen`) covers chains;
this one compiles arbitrary DAGs — inception-style branches joined by
concatenation, residual element-wise adds, LSTM-style gates, slices —
into per-tile ISA programs.  It leans on two pieces the sequential
compiler predates:

* engine DMA between *any* two tiles (a producer many columns away is a
  multi-hop point-to-point transfer, charged per hop), and
* the tracker-calibration pass (:mod:`repro.compiler.trackers`): every
  MEMTRACK is emitted with placeholder counts and the static access
  analysis fills in the exact update/read numbers afterwards, so fan-out
  to multiple consumers never needs hand bookkeeping.

Since the IR refactor this is a thin dialect of the shared pass
pipeline: the same :class:`~repro.compiler.passes.lower.EngineEmitter`
emits the general DAG forms (per-feature source lists for grouped and
connection-table convolutions, block-searching pool reads) with
``calibrated`` placeholder trackers, over a graph partition.

Scope: forward propagation; padded pooling (planes are staged into
zero-preloaded scratch with ``pad < window``; MAX additionally needs a
provably non-negative input — see :mod:`repro.compiler.passes.legalize`);
element-wise products of exactly two operands.  Convolutions may be
grouped (AlexNet's two-GPU split) or carry a connection table (LeNet-5's
C3): each output feature convolves exactly the input features it
connects to — the engine-level realisation of Sec 2.2's "connection
table denoting which input and output features are connected".
"""

from __future__ import annotations

from typing import Optional

from repro.arch.chip import ChipConfig
from repro.compiler.codegen import (
    CompiledForward,
    ForwardCompiler,
    _Preload,  # noqa: F401  (historic re-export)
)
from repro.compiler.partition import StatePartition, partition_graph
from repro.compiler.passes.legalize import check_dag_scope
from repro.dnn.network import Network
from repro.functional.reference import ReferenceModel


class DagForwardCompiler(ForwardCompiler):
    """Compiles the forward pass of an arbitrary network DAG."""

    dialect = "calibrated"
    scope = "dag"

    def __init__(
        self,
        net: Network,
        model: ReferenceModel,
        chip: Optional[ChipConfig] = None,
        rows: int = 2,
        fuse: bool = True,
    ) -> None:
        super().__init__(net, model, chip, rows, fuse=fuse)
        # Scope violations surface at construction, as they always have
        # for the DAG compiler (the pipeline's legalize pass re-checks).
        check_dag_scope(net)

    def _partition(self) -> StatePartition:
        return partition_graph(
            self.net, self.rows, self.chip.mem_tile.capacity_bytes // 4
        )


def compile_dag_forward(
    net: Network,
    model: ReferenceModel,
    chip: Optional[ChipConfig] = None,
    rows: int = 2,
    fuse: bool = True,
) -> CompiledForward:
    """Compile the forward pass of an arbitrary network DAG.

    ``fuse=False`` skips the superop fusion pass (per-instruction
    execution only; same programs, same outputs — kept addressable for
    the fused-vs-unfused equivalence tests and cache keying)."""
    return DagForwardCompiler(net, model, chip, rows, fuse=fuse).compile()


def run_dag_batch(
    net: Network,
    model: ReferenceModel,
    images,
    chip: Optional[ChipConfig] = None,
    rows: int = 2,
):
    """Batch-aware entry: compile ``net`` (DAG dialect) and execute a
    whole ``(batch, channels, height, width)`` minibatch at once on the
    engine's pre-decoded batched path.  Returns ``(outputs, report)``
    with outputs shaped ``(batch, features)``; cycles model one image's
    program, identical to :meth:`CompiledForward.run`."""
    return compile_dag_forward(net, model, chip, rows).run_batch(images)
