"""The ScaleDeep compiler: workload mapping, cost model, code generation."""

from repro.compiler.cost import (
    INSTRUCTION_OVERHEAD_FACTOR,
    StepCost,
    TrafficSummary,
    UtilizationCascade,
    layer_stage_cycles,
    step_cost,
)
from repro.compiler.mapping import (
    MappingUnit,
    UnitAllocation,
    WorkloadMapping,
    default_group_key,
    map_network,
)
from repro.compiler.partition import (
    FeatureHome,
    StatePartition,
    TileAllocator,
    partition_graph,
    partition_sequential,
)
from repro.compiler.codegen import (
    CompiledForward,
    ForwardCompiler,
    compile_forward,
)
from repro.compiler.codegen_training import (
    CompiledTraining,
    TrainingCompiler,
    compile_training,
)
from repro.compiler.codegen_dag import (
    DagForwardCompiler,
    compile_dag_forward,
)
from repro.compiler.templates import (
    CONV_BATCH_FP,
    DMA_GATHER,
    MATMUL_BLOCKED_FP,
    RoutineTemplate,
    TEMPLATE_LIBRARY,
    WUPDATE_SWEEP,
)
from repro.compiler.trackers import (
    audit_trackers,
    calibrate_trackers,
    instruction_accesses,
)
from repro.compiler.verifier import (
    MachineShape,
    assert_verified,
    verify_programs,
)
from repro.compiler.ir import (
    IR_SCHEMA_VERSION,
    IREdge,
    IROp,
    MappingIR,
    Phase,
    UnitPlan,
    build_mapping_ir,
    build_tile_ir,
)
from repro.compiler.pipeline import CompiledNetwork, compile_network

__all__ = [
    "CompiledNetwork",
    "IR_SCHEMA_VERSION",
    "IREdge",
    "IROp",
    "MappingIR",
    "Phase",
    "UnitPlan",
    "build_mapping_ir",
    "build_tile_ir",
    "compile_network",
    "CompiledForward",
    "CONV_BATCH_FP",
    "CompiledTraining",
    "DMA_GATHER",
    "DagForwardCompiler",
    "MATMUL_BLOCKED_FP",
    "MachineShape",
    "RoutineTemplate",
    "TEMPLATE_LIBRARY",
    "WUPDATE_SWEEP",
    "TrainingCompiler",
    "assert_verified",
    "audit_trackers",
    "calibrate_trackers",
    "compile_dag_forward",
    "compile_training",
    "instruction_accesses",
    "FeatureHome",
    "ForwardCompiler",
    "INSTRUCTION_OVERHEAD_FACTOR",
    "MappingUnit",
    "StatePartition",
    "StepCost",
    "TileAllocator",
    "TrafficSummary",
    "UnitAllocation",
    "UtilizationCascade",
    "WorkloadMapping",
    "compile_forward",
    "default_group_key",
    "layer_stage_cycles",
    "map_network",
    "partition_graph",
    "partition_sequential",
    "step_cost",
    "verify_programs",
]
